// Tests for the advance-reservation substrate and the LibraReserve
// deferred-admission policy built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/reservation.hpp"
#include "service/computing_service.hpp"
#include "sim/rng.hpp"
#include "workload/workload.hpp"

namespace utilrisk {
namespace {

using cluster::ReservationBook;
using cluster::ReservationTimeline;

// ------------------------------------------------------ ReservationTimeline

TEST(ReservationTimelineTest, EmptyTimelineIsUncommitted) {
  const ReservationTimeline timeline;
  EXPECT_DOUBLE_EQ(timeline.committed_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(timeline.committed_at(1e9), 0.0);
  EXPECT_DOUBLE_EQ(timeline.max_committed(0.0, 100.0), 0.0);
}

TEST(ReservationTimelineTest, BookCreatesAStep) {
  ReservationTimeline timeline;
  timeline.book(10.0, 20.0, 0.4);
  EXPECT_DOUBLE_EQ(timeline.committed_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(timeline.committed_at(10.0), 0.4) << "start inclusive";
  EXPECT_DOUBLE_EQ(timeline.committed_at(15.0), 0.4);
  EXPECT_DOUBLE_EQ(timeline.committed_at(20.0), 0.0) << "end exclusive";
}

TEST(ReservationTimelineTest, OverlappingBookingsStack) {
  ReservationTimeline timeline;
  timeline.book(0.0, 100.0, 0.3);
  timeline.book(50.0, 150.0, 0.5);
  EXPECT_DOUBLE_EQ(timeline.committed_at(25.0), 0.3);
  EXPECT_DOUBLE_EQ(timeline.committed_at(75.0), 0.8);
  EXPECT_DOUBLE_EQ(timeline.committed_at(125.0), 0.5);
  EXPECT_DOUBLE_EQ(timeline.max_committed(0.0, 150.0), 0.8);
  EXPECT_DOUBLE_EQ(timeline.max_committed(0.0, 50.0), 0.3);
  EXPECT_DOUBLE_EQ(timeline.max_committed(100.0, 150.0), 0.5);
}

TEST(ReservationTimelineTest, ReleaseInvertsBooking) {
  ReservationTimeline timeline;
  timeline.book(0.0, 100.0, 0.6);
  timeline.release(0.0, 100.0, 0.6);
  EXPECT_DOUBLE_EQ(timeline.max_committed(0.0, 100.0), 0.0);
}

TEST(ReservationTimelineTest, PartialReleaseFreesTheTail) {
  ReservationTimeline timeline;
  timeline.book(0.0, 100.0, 0.6);
  timeline.release(40.0, 100.0, 0.6);  // early completion at t=40
  EXPECT_DOUBLE_EQ(timeline.committed_at(20.0), 0.6);
  EXPECT_DOUBLE_EQ(timeline.committed_at(60.0), 0.0);
}

TEST(ReservationTimelineTest, OverReleaseThrows) {
  ReservationTimeline timeline;
  timeline.book(0.0, 100.0, 0.3);
  EXPECT_THROW(timeline.release(0.0, 100.0, 0.5), std::logic_error);
}

TEST(ReservationTimelineTest, ValidatesArguments) {
  ReservationTimeline timeline;
  EXPECT_THROW(timeline.book(10.0, 10.0, 0.5), std::invalid_argument);
  EXPECT_THROW(timeline.book(10.0, 5.0, 0.5), std::invalid_argument);
  EXPECT_THROW(timeline.book(0.0, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(timeline.book(0.0, 10.0, -0.2), std::invalid_argument);
  EXPECT_THROW((void)timeline.max_committed(5.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW((void)timeline.earliest_fit(0.0, 10.0, 0.0, 0.5),
               std::invalid_argument);
}

TEST(ReservationTimelineTest, EarliestFitFindsGaps) {
  ReservationTimeline timeline;
  timeline.book(0.0, 100.0, 0.8);  // nearly full until t=100
  // A 0.5-share, 50-long booking fits only from t=100.
  EXPECT_DOUBLE_EQ(timeline.earliest_fit(0.0, 500.0, 50.0, 0.5), 100.0);
  // A 0.2-share booking fits immediately (0.8 + 0.2 <= 1).
  EXPECT_DOUBLE_EQ(timeline.earliest_fit(0.0, 500.0, 50.0, 0.2), 0.0);
  // Nothing fits if the latest start precedes the gap.
  EXPECT_EQ(timeline.earliest_fit(0.0, 99.0, 50.0, 0.5), sim::kTimeNever);
}

TEST(ReservationTimelineTest, DiscardBeforeCompacts) {
  ReservationTimeline timeline;
  for (int i = 0; i < 50; ++i) {
    timeline.book(i * 10.0, i * 10.0 + 5.0, 0.1);
  }
  const std::size_t before = timeline.breakpoint_count();
  timeline.discard_before(250.0);
  EXPECT_LT(timeline.breakpoint_count(), before);
  // Future state is unaffected.
  EXPECT_DOUBLE_EQ(timeline.committed_at(302.0), 0.1);
  EXPECT_DOUBLE_EQ(timeline.committed_at(308.0), 0.0);
}

// Randomised check against a brute-force reference: a dense time grid
// where every booking adds its share to each covered cell. The timeline's
// committed_at / max_committed must agree with the grid at every probe.
class TimelineReferenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TimelineReferenceSweep, AgreesWithBruteForceGrid) {
  sim::Rng rng(GetParam());
  ReservationTimeline timeline;
  constexpr int kCells = 200;        // grid over [0, 200) at 1s resolution
  std::vector<double> grid(kCells, 0.0);
  struct Interval {
    int start, end;
    double share;
  };
  std::vector<Interval> live;

  for (int op = 0; op < 120; ++op) {
    const bool do_release = !live.empty() && rng.bernoulli(0.35);
    if (do_release) {
      const auto idx = rng.uniform_int(0, live.size() - 1);
      const Interval interval = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      timeline.release(interval.start, interval.end, interval.share);
      for (int c = interval.start; c < interval.end; ++c) {
        grid[static_cast<std::size_t>(c)] -= interval.share;
      }
    } else {
      const int start = static_cast<int>(rng.uniform_int(0, kCells - 2));
      const int end =
          static_cast<int>(rng.uniform_int(start + 1, kCells - 1));
      const double share = rng.uniform(0.05, 0.4);
      live.push_back({start, end, share});
      timeline.book(start, end, share);
      for (int c = start; c < end; ++c) {
        grid[static_cast<std::size_t>(c)] += share;
      }
    }
    // Probe a few random points and windows.
    for (int probe = 0; probe < 4; ++probe) {
      const int t = static_cast<int>(rng.uniform_int(0, kCells - 1));
      ASSERT_NEAR(timeline.committed_at(t + 0.5),
                  grid[static_cast<std::size_t>(t)], 1e-9);
      const int a = static_cast<int>(rng.uniform_int(0, kCells - 2));
      const int b = static_cast<int>(rng.uniform_int(a + 1, kCells - 1));
      double expected = 0.0;
      for (int c = a; c < b; ++c) {
        expected = std::max(expected, grid[static_cast<std::size_t>(c)]);
      }
      ASSERT_NEAR(timeline.max_committed(a, b), expected, 1e-9)
          << "window [" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineReferenceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------------------- ReservationBook

TEST(ReservationBookTest, FittingNodesAreBestFitOrdered) {
  ReservationBook book(3);
  book.node(0).book(0.0, 100.0, 0.2);
  book.node(1).book(0.0, 100.0, 0.6);
  book.node(2).book(0.0, 100.0, 0.95);
  const auto fitting = book.fitting_nodes(0.0, 100.0, 0.3);
  // Node 2 cannot fit 0.3; node 1 (most committed that fits) first.
  ASSERT_EQ(fitting.size(), 2u);
  EXPECT_EQ(fitting[0], 1u);
  EXPECT_EQ(fitting[1], 0u);
}

TEST(ReservationBookTest, ValidatesConstructionAndAccess) {
  EXPECT_THROW(ReservationBook(0), std::invalid_argument);
  ReservationBook book(2);
  EXPECT_THROW((void)book.node(2), std::out_of_range);
}

// ------------------------------------------------------------- LibraReserve

std::vector<workload::Job> reserve_workload(double inaccuracy) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 500;
  const workload::WorkloadBuilder builder(trace);
  return builder.build(workload::QosConfig{}, 0.25, inaccuracy);
}

TEST(LibraReserveTest, PerfectEstimatesMeanPerfectReliability) {
  const auto report =
      service::simulate(reserve_workload(0.0),
                        policy::PolicyKind::LibraReserve,
                        economy::EconomicModel::BidBased);
  EXPECT_DOUBLE_EQ(report.objectives.reliability, 100.0)
      << "every booked job runs inside its booked window";
  EXPECT_GT(report.objectives.wait, 0.0)
      << "deferred admissions wait for their slot";
}

TEST(LibraReserveTest, TradesWaitForReliabilityVsLibraUnderInaccuracy) {
  const auto jobs = reserve_workload(100.0);
  const auto libra = service::simulate(jobs, policy::PolicyKind::Libra,
                                       economy::EconomicModel::BidBased);
  const auto reserve =
      service::simulate(jobs, policy::PolicyKind::LibraReserve,
                        economy::EconomicModel::BidBased);
  EXPECT_GE(reserve.objectives.reliability, libra.objectives.reliability)
      << "whole-window guarantees absorb mis-estimates better";
  EXPECT_GT(reserve.objectives.wait, libra.objectives.wait)
      << "Libra never defers";
}

TEST(LibraReserveTest, AcceptsJobsThatNeedDeferral) {
  // Two whole-machine jobs with deadlines loose enough to run serially:
  // Libra rejects the second (no instantaneous share), LibraReserve books
  // it behind the first.
  auto make = [](workload::JobId id, double submit) {
    workload::Job job;
    job.id = id;
    job.submit_time = submit;
    job.procs = 4;
    job.actual_runtime = 1000.0;
    job.estimated_runtime = 1000.0;
    job.deadline_duration = 5000.0;
    job.budget = 5000.0;
    job.penalty_rate = 1.0;
    return job;
  };
  const std::vector<workload::Job> jobs = {make(1, 0.0), make(2, 1.0)};
  cluster::MachineConfig machine;
  machine.node_count = 4;

  const auto libra = service::simulate(jobs, policy::PolicyKind::Libra,
                                       economy::EconomicModel::BidBased,
                                       machine);
  // Libra can still fit both if shares stack (0.2 each) — force full
  // shares with tight deadlines relative to estimates? share = 1000/5000
  // = 0.2, stacks fine. Use near-deadline jobs instead:
  (void)libra;

  auto tight = jobs;
  for (auto& job : tight) {
    job.deadline_duration = 2200.0;  // share 0.45, two fit; third won't
  }
  tight.push_back(make(3, 2.0));
  tight[2].deadline_duration = 9000.0;  // relaxed: can wait its turn
  const auto libra_tight =
      service::simulate(tight, policy::PolicyKind::Libra,
                        economy::EconomicModel::BidBased, machine);
  const auto reserve_tight =
      service::simulate(tight, policy::PolicyKind::LibraReserve,
                        economy::EconomicModel::BidBased, machine);
  EXPECT_GE(reserve_tight.inputs.accepted, libra_tight.inputs.accepted);
  EXPECT_EQ(reserve_tight.inputs.fulfilled, reserve_tight.inputs.accepted)
      << "accurate estimates: every accepted job fulfilled";
}

TEST(LibraReserveTest, DegradedStartWhenPredecessorOverruns) {
  // The liar books [0, 110) with share ~0.909 but really runs 5000 s.
  // The newcomer's reserved start at t=200 finds the node still 90.9 %
  // committed: it starts degraded at the residual share and violates —
  // but it runs (no deadlock, no starvation).
  workload::Job liar;
  liar.id = 1;
  liar.procs = 1;
  liar.actual_runtime = 5000.0;
  liar.estimated_runtime = 100.0;
  liar.deadline_duration = 110.0;
  liar.budget = 1000.0;
  liar.penalty_rate = 0.01;

  workload::Job newcomer;
  newcomer.id = 2;
  newcomer.submit_time = 200.0;
  newcomer.procs = 1;
  newcomer.actual_runtime = 100.0;
  newcomer.estimated_runtime = 100.0;
  newcomer.deadline_duration = 200.0;  // share 0.5 if started immediately
  newcomer.budget = 1000.0;
  newcomer.penalty_rate = 0.01;

  cluster::MachineConfig machine;
  machine.node_count = 1;
  const auto report =
      service::simulate({liar, newcomer}, policy::PolicyKind::LibraReserve,
                        economy::EconomicModel::BidBased, machine);
  EXPECT_EQ(report.inputs.accepted, 2u);
  EXPECT_EQ(report.records[1].outcome, workload::JobOutcome::ViolatedSLA)
      << "degraded share cannot meet the deadline";
  EXPECT_GT(report.records[1].finish_time, 0.0);
  // Degraded rate ~0.0909 for 100 s of work while the liar runs: long.
  EXPECT_GT(report.records[1].finish_time - report.records[1].start_time,
            newcomer.actual_runtime);
}

TEST(LibraReserveTest, RetriesWhenResidualShareIsTooSmall) {
  // Liar holds ~0.999 share: below the degraded-share floor, so the
  // newcomer re-books and retries until the liar completes at t=5000.
  workload::Job liar;
  liar.id = 1;
  liar.procs = 1;
  liar.actual_runtime = 5000.0;
  liar.estimated_runtime = 100.0;
  liar.deadline_duration = 100.05;
  liar.budget = 1000.0;
  liar.penalty_rate = 0.0;

  workload::Job newcomer;
  newcomer.id = 2;
  newcomer.submit_time = 150.0;
  newcomer.procs = 1;
  newcomer.actual_runtime = 100.0;
  newcomer.estimated_runtime = 100.0;
  newcomer.deadline_duration = 300.0;
  newcomer.budget = 1000.0;
  newcomer.penalty_rate = 0.0;

  cluster::MachineConfig machine;
  machine.node_count = 1;
  const auto report =
      service::simulate({liar, newcomer}, policy::PolicyKind::LibraReserve,
                        economy::EconomicModel::BidBased, machine);
  ASSERT_EQ(report.inputs.accepted, 2u);
  EXPECT_EQ(report.records[1].outcome, workload::JobOutcome::ViolatedSLA);
  EXPECT_GE(report.records[1].start_time, 5000.0)
      << "retries defer the start until the liar finally releases the node";
  EXPECT_NEAR(report.records[1].finish_time,
              report.records[1].start_time + 100.0, 1.0)
      << "once alone it runs at full rate";
}

TEST(LibraReserveTest, RegisteredInFactory) {
  EXPECT_EQ(policy::to_string(policy::PolicyKind::LibraReserve),
            "LibraReserve");
  EXPECT_EQ(policy::parse_policy_kind("LibraReserve"),
            policy::PolicyKind::LibraReserve);
  // Not part of the paper's Table V sets.
  for (auto model : {economy::EconomicModel::CommodityMarket,
                     economy::EconomicModel::BidBased}) {
    for (auto kind : policy::policies_for_model(model)) {
      EXPECT_NE(kind, policy::PolicyKind::LibraReserve);
    }
  }
}

}  // namespace
}  // namespace utilrisk
