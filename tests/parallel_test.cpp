// Tests for the parallel sweep executor: thread pool semantics,
// parallel-vs-serial bit-identity, concurrent ResultStore safety and
// in-flight deduplication.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/parallel.hpp"
#include "exp/replication.hpp"
#include "exp/result_store.hpp"
#include "exp/scenario.hpp"

namespace utilrisk::exp {
namespace {

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusableBarrier) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3);
  pool.wait_idle();  // idle pool: returns immediately
}

TEST(ThreadPoolTest, ZeroWorkerRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelForIndexTest, CoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(pool, hits.size(),
                     [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForIndexTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_index(pool, 64,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> counter{0};
  parallel_for_index(pool, 8, [&counter](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 8);
}

// ------------------------------------------------- parallel sweep executor

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.model = economy::EconomicModel::BidBased;
  config.set = ExperimentSet::B;
  config.trace.job_count = 120;  // keep the sweep quick
  return config;
}

const std::vector<policy::PolicyKind> kTestPolicies = {
    policy::PolicyKind::Libra, policy::PolicyKind::FcfsBf};

std::vector<Scenario> small_scenario_set() {
  const auto& all = all_scenarios();
  return {all.begin(), all.begin() + 3};
}

TEST(ParallelSweepTest, BitIdenticalToSerialAcrossWorkerCounts) {
  const ExperimentConfig config = tiny_config();
  const std::vector<Scenario> scenarios = small_scenario_set();
  const RunSettings defaults = config.default_settings();

  ResultStore serial_store;
  ExperimentRunner serial(config, &serial_store, 1);
  const SweepResult reference =
      serial.run_scenarios(scenarios, defaults, kTestPolicies);

  for (std::size_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ResultStore store;
    ParallelRunner runner(config, &store, workers);
    const SweepResult sweep =
        runner.run_scenarios(scenarios, defaults, kTestPolicies);
    EXPECT_TRUE(bit_identical(sweep, reference));
    EXPECT_EQ(runner.simulations_run(), serial.simulations_run())
        << "in-flight dedup must match the serial cache dedup";
  }
}

TEST(ParallelSweepTest, ExperimentRunnerParallelPathMatchesSerial) {
  const ExperimentConfig config = tiny_config();
  const std::vector<Scenario> scenarios = small_scenario_set();
  const RunSettings defaults = config.default_settings();

  ExperimentRunner serial(config, nullptr, 1);
  ExperimentRunner parallel(config, nullptr, 4);
  EXPECT_EQ(parallel.worker_count(), 4u);
  const SweepResult a =
      serial.run_scenarios(scenarios, defaults, kTestPolicies);
  const SweepResult b =
      parallel.run_scenarios(scenarios, defaults, kTestPolicies);
  EXPECT_TRUE(bit_identical(a, b));
  EXPECT_EQ(serial.simulations_run(), parallel.simulations_run());
}

TEST(ParallelSweepTest, InFlightDedupSimulatesSharedKeysOnce) {
  // Every value of this scenario maps to identical settings, so all six
  // cells share one cache key per policy: exactly one simulation each,
  // five coalesced in flight.
  Scenario constant;
  constant.name = "constant";
  constant.values = {1, 2, 3, 4, 5, 6};
  constant.apply = [](RunSettings&, double) {};

  const ExperimentConfig config = tiny_config();
  ResultStore store;
  ParallelRunner runner(config, &store, 4);
  const SweepResult sweep = runner.run_scenarios(
      {constant}, config.default_settings(), kTestPolicies);
  EXPECT_EQ(runner.simulations_run(), kTestPolicies.size());
  EXPECT_EQ(runner.stats().deduped,
            kTestPolicies.size() * (constant.values.size() - 1));
  EXPECT_EQ(store.size(), kTestPolicies.size());
  // All six cells of a policy carry the same raw values.
  for (std::size_t o = 0; o < 4; ++o) {
    for (std::size_t p = 0; p < kTestPolicies.size(); ++p) {
      for (double v : sweep.raw[0][o][p]) {
        EXPECT_EQ(v, sweep.raw[0][o][p][0]);
      }
    }
  }
}

TEST(ParallelSweepTest, WarmStoreServesEverythingWithoutSimulating) {
  const ExperimentConfig config = tiny_config();
  const std::vector<Scenario> scenarios = small_scenario_set();
  ResultStore store;
  ParallelRunner first(config, &store, 4);
  const SweepResult a = first.run_scenarios(
      scenarios, config.default_settings(), kTestPolicies);
  ParallelRunner second(config, &store, 4);
  const SweepResult b = second.run_scenarios(
      scenarios, config.default_settings(), kTestPolicies);
  EXPECT_EQ(second.simulations_run(), 0u) << "fully served from the store";
  EXPECT_TRUE(bit_identical(a, b));
}

TEST(ParallelSweepTest, TimingCountersArePopulated) {
  const ExperimentConfig config = tiny_config();
  ResultStore store;
  ParallelRunner runner(config, &store, 2);
  (void)runner.run_scenarios(small_scenario_set(),
                             config.default_settings(), kTestPolicies);
  const SweepStats& stats = runner.stats();
  EXPECT_GT(stats.simulations, 0u);
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  ASSERT_EQ(stats.runs.size(), stats.simulations);
  for (const RunTiming& run : stats.runs) {
    EXPECT_FALSE(run.key.empty());
    EXPECT_GT(run.events, 0u);
    EXPECT_GE(run.wall_seconds, 0.0);
  }
}

// ----------------------------------------------- concurrent ResultStore

TEST(ConcurrentResultStoreTest, ParallelInsertsAndLookupsLoseNothing) {
  ResultStore store;
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 200;
  std::atomic<int> observed_hits{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, &observed_hits, t] {
        for (int k = 0; k < kKeysPerThread; ++k) {
          // Half the keys are shared across all threads (contended
          // inserts must stay idempotent), half are thread-private.
          const bool shared = k % 2 == 0;
          const std::string key = shared
                                      ? "shared-" + std::to_string(k)
                                      : "t" + std::to_string(t) + "-" +
                                            std::to_string(k);
          const double base = shared ? k : t * 1000.0 + k;
          store.insert(key, {.wait = base,
                             .sla = base + 0.25,
                             .reliability = base + 0.5,
                             .profitability = base + 0.75});
          if (store.lookup(key).has_value()) observed_hits.fetch_add(1);
        }
      });
    }
  }
  // 100 shared keys + 8 * 100 private keys.
  EXPECT_EQ(store.size(), 100u + kThreads * 100u);
  EXPECT_EQ(observed_hits.load(), kThreads * kKeysPerThread)
      << "an insert must be immediately visible to its own thread";
  for (int k = 0; k < kKeysPerThread; k += 2) {
    const auto v = store.lookup("shared-" + std::to_string(k));
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->wait, k) << "first insert wins, no torn values";
  }
}

TEST(ConcurrentResultStoreTest, FileBackedConcurrentInsertsRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "utilrisk_parallel_store.csv")
          .string();
  std::remove(path.c_str());
  {
    ResultStore store(path);
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&store, t] {
        for (int k = 0; k < 50; ++k) {
          store.insert("t" + std::to_string(t) + "-" + std::to_string(k),
                       {.wait = static_cast<double>(k),
                        .sla = static_cast<double>(t),
                        .reliability = 1.0,
                        .profitability = -2.5});
        }
      });
    }
  }
  ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 200u) << "no interleaved/torn lines on disk";
  EXPECT_EQ(reloaded.malformed_lines_skipped(), 0u);
  const auto v = reloaded.lookup("t3-49");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->profitability, -2.5);
  std::remove(path.c_str());
}

// ------------------------------------------------- parallel replication

TEST(ParallelReplicationTest, MatchesSerialReplication) {
  ReplicationConfig config;
  config.policy = policy::PolicyKind::Libra;
  config.model = economy::EconomicModel::BidBased;
  config.trace.job_count = 100;
  config.seeds = {42, 1001, 2002, 3003};

  config.workers = 1;
  const ReplicationSummary serial = replicate(config);
  config.workers = 4;
  const ReplicationSummary parallel = replicate(config);

  ASSERT_EQ(serial.replicates.size(), parallel.replicates.size());
  for (std::size_t i = 0; i < serial.replicates.size(); ++i) {
    EXPECT_EQ(serial.replicates[i].wait, parallel.replicates[i].wait);
    EXPECT_EQ(serial.replicates[i].sla, parallel.replicates[i].sla);
    EXPECT_EQ(serial.replicates[i].reliability,
              parallel.replicates[i].reliability);
    EXPECT_EQ(serial.replicates[i].profitability,
              parallel.replicates[i].profitability);
  }
  for (core::Objective objective : core::kAllObjectives) {
    EXPECT_EQ(serial.of(objective).mean, parallel.of(objective).mean);
    EXPECT_EQ(serial.of(objective).ci95_half,
              parallel.of(objective).ci95_half);
  }
}

}  // namespace
}  // namespace utilrisk::exp
