// Tests for the economic models: pricing functions (flat, Libra static
// incentive, Libra+$ dynamic), the bid-based penalty function (Fig. 2),
// and the revenue ledger.
#include <gtest/gtest.h>

#include <cmath>

#include "economy/accounting.hpp"
#include "economy/penalty.hpp"
#include "economy/pricing.hpp"
#include "sim/time.hpp"

namespace utilrisk::economy {
namespace {

workload::Job make_job(double estimate, double deadline, double budget = 0.0,
                       double penalty_rate = 0.0) {
  workload::Job job;
  job.id = 1;
  job.actual_runtime = estimate;
  job.estimated_runtime = estimate;
  job.deadline_duration = deadline;
  job.budget = budget;
  job.penalty_rate = penalty_rate;
  return job;
}

// --------------------------------------------------------------- Pricing

TEST(PricingTest, FlatQuoteChargesEstimateTimesBase) {
  PricingParams params;  // $1/s
  EXPECT_DOUBLE_EQ(flat_quote(make_job(3600.0, 7200.0), params), 3600.0);
  params.base_price = 2.5;
  EXPECT_DOUBLE_EQ(flat_quote(make_job(100.0, 200.0), params), 250.0);
}

TEST(PricingTest, FlatQuoteUsesEstimateNotActual) {
  // Over-estimated jobs are over-charged (§5.2's observation).
  workload::Job job = make_job(1000.0, 8000.0);
  job.estimated_runtime = 4000.0;
  EXPECT_DOUBLE_EQ(flat_quote(job, PricingParams{}), 4000.0);
}

TEST(PricingTest, LibraQuoteRewardsRelaxedDeadlines) {
  PricingParams params;  // gamma = delta = 1
  const Money tight = libra_quote(make_job(1000.0, 1100.0), params);
  const Money relaxed = libra_quote(make_job(1000.0, 8000.0), params);
  EXPECT_GT(tight, relaxed);
  // cost = gamma*tr + delta*tr/d.
  EXPECT_DOUBLE_EQ(relaxed, 1000.0 + 1000.0 / 8000.0);
}

TEST(PricingTest, LibraQuoteScalesWithGammaDelta) {
  PricingParams params;
  params.libra_gamma = 2.0;
  params.libra_delta = 0.0;
  EXPECT_DOUBLE_EQ(libra_quote(make_job(500.0, 1000.0), params), 1000.0);
}

TEST(PricingTest, LibraQuoteRejectsNonPositiveDeadline) {
  EXPECT_THROW((void)libra_quote(make_job(100.0, 0.0), PricingParams{}),
               std::invalid_argument);
}

TEST(PricingTest, LibraDollarPriceRisesWithSaturation) {
  PricingParams params;  // alpha 1, beta 0.3
  const Money idle = libra_dollar_node_price(1000.0, 900.0, params);
  const Money busy = libra_dollar_node_price(1000.0, 100.0, params);
  EXPECT_GT(busy, idle);
  // alpha*PBase + beta*(max/free)*PBase.
  EXPECT_DOUBLE_EQ(idle, 1.0 + 0.3 * 1000.0 / 900.0);
  EXPECT_DOUBLE_EQ(busy, 1.0 + 0.3 * 10.0);
}

TEST(PricingTest, LibraDollarSaturatedNodeIsUnaffordable) {
  PricingParams params;
  EXPECT_EQ(libra_dollar_node_price(1000.0, 0.0, params), kUnaffordable);
  EXPECT_EQ(libra_dollar_node_price(1000.0, -5.0, params), kUnaffordable);
  EXPECT_THROW((void)libra_dollar_node_price(0.0, 1.0, params),
               std::invalid_argument);
}

TEST(PricingTest, LibraDollarQuoteMultipliesEstimate) {
  EXPECT_DOUBLE_EQ(libra_dollar_quote(make_job(100.0, 800.0), 2.0), 200.0);
  EXPECT_EQ(libra_dollar_quote(make_job(100.0, 800.0), kUnaffordable),
            kUnaffordable);
}

// ------------------------------------------------------ Variable pricing

TEST(VariablePricingTest, DisabledMeansFlat) {
  PricingParams params;  // variable.enabled = false
  EXPECT_DOUBLE_EQ(price_multiplier_at(0.0, params), 1.0);
  EXPECT_DOUBLE_EQ(price_multiplier_at(12.0 * 3600.0, params), 1.0);
  EXPECT_DOUBLE_EQ(flat_quote_at(make_job(100.0, 800.0), 12.0 * 3600.0,
                                 params),
                   100.0);
}

TEST(VariablePricingTest, PeakWindowBoundaries) {
  PricingParams params;
  params.variable.enabled = true;
  params.variable.peak_multiplier = 2.0;
  params.variable.peak_start_hour = 9;
  params.variable.peak_end_hour = 17;
  const double hour = 3600.0;
  EXPECT_DOUBLE_EQ(price_multiplier_at(8.99 * hour, params), 1.0);
  EXPECT_DOUBLE_EQ(price_multiplier_at(9.0 * hour, params), 2.0)
      << "start inclusive";
  EXPECT_DOUBLE_EQ(price_multiplier_at(16.99 * hour, params), 2.0);
  EXPECT_DOUBLE_EQ(price_multiplier_at(17.0 * hour, params), 1.0)
      << "end exclusive";
  // Wraps with the day.
  EXPECT_DOUBLE_EQ(price_multiplier_at(24.0 * hour + 12.0 * hour, params),
                   2.0);
}

TEST(VariablePricingTest, QuoteScalesByMultiplier) {
  PricingParams params;
  params.variable.enabled = true;
  params.variable.peak_multiplier = 1.5;
  const workload::Job job = make_job(1000.0, 8000.0);
  EXPECT_DOUBLE_EQ(flat_quote_at(job, 12.0 * 3600.0, params), 1500.0);
  EXPECT_DOUBLE_EQ(flat_quote_at(job, 2.0 * 3600.0, params), 1000.0);
}

TEST(VariablePricingTest, ValidatesWindowAndMultiplier) {
  PricingParams params;
  params.variable.enabled = true;
  params.variable.peak_multiplier = 0.0;
  EXPECT_THROW((void)price_multiplier_at(0.0, params),
               std::invalid_argument);
  params.variable.peak_multiplier = 1.5;
  params.variable.peak_start_hour = 18;
  params.variable.peak_end_hour = 9;
  EXPECT_THROW((void)price_multiplier_at(0.0, params),
               std::invalid_argument);
}

// --------------------------------------------------------------- Penalty

TEST(PenaltyTest, OnTimeJobEarnsFullBudget) {
  const workload::Job job = make_job(100.0, 500.0, 1000.0, 2.0);
  EXPECT_DOUBLE_EQ(deadline_delay(job, 400.0), 0.0);
  EXPECT_DOUBLE_EQ(bid_utility(job, 400.0), 1000.0);
  EXPECT_DOUBLE_EQ(bid_utility(job, 500.0), 1000.0) << "exactly on time";
}

TEST(PenaltyTest, DeadlineBoundaryIsEpsilonPinned) {
  // Eqn 10 boundary: a finish within kTimeEpsilon of the deadline is the
  // same event the SLA classifier calls "on time", so the delay must be
  // exactly zero and the utility exactly the budget — no sliver of penalty
  // from floating-point event timestamps.
  const workload::Job job = make_job(100.0, 500.0, 1000.0, 2.0);
  EXPECT_DOUBLE_EQ(deadline_delay(job, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(deadline_delay(job, 500.0 + sim::kTimeEpsilon), 0.0);
  EXPECT_DOUBLE_EQ(bid_utility(job, 500.0 + sim::kTimeEpsilon), 1000.0);
  // Just past the pin, the linear penalty applies to the true delay.
  const double late = 500.0 + 2.0 * sim::kTimeEpsilon;
  EXPECT_GT(deadline_delay(job, late), 0.0);
  EXPECT_LT(bid_utility(job, late), 1000.0);
}

TEST(PenaltyTest, UtilityDropsLinearlyPastDeadline) {
  const workload::Job job = make_job(100.0, 500.0, 1000.0, 2.0);
  EXPECT_DOUBLE_EQ(bid_utility(job, 600.0), 1000.0 - 100.0 * 2.0);
  EXPECT_DOUBLE_EQ(bid_utility(job, 1000.0), 0.0) << "breakeven point";
  EXPECT_DOUBLE_EQ(bid_utility(job, 1500.0), -1000.0)
      << "penalty is unbounded below";
}

TEST(PenaltyTest, DelayIsRelativeToSubmission) {
  workload::Job job = make_job(100.0, 500.0, 1000.0, 2.0);
  job.submit_time = 10000.0;
  // eqn 10: dy = (tf - tsu) - d.
  EXPECT_DOUBLE_EQ(deadline_delay(job, 10500.0), 0.0);
  EXPECT_DOUBLE_EQ(deadline_delay(job, 10700.0), 200.0);
}

TEST(PenaltyTest, BreakevenDelayMatchesFormula) {
  const workload::Job job = make_job(100.0, 500.0, 1000.0, 2.0);
  EXPECT_DOUBLE_EQ(breakeven_delay(job), 500.0 + 1000.0 / 2.0);
  const workload::Job no_penalty = make_job(100.0, 500.0, 1000.0, 0.0);
  EXPECT_TRUE(std::isinf(breakeven_delay(no_penalty)));
}

// Property: utility at the breakeven point is exactly zero for any
// positive penalty rate.
class PenaltyBreakevenSweep : public ::testing::TestWithParam<double> {};

TEST_P(PenaltyBreakevenSweep, UtilityIsZeroAtBreakeven) {
  const workload::Job job = make_job(100.0, 700.0, 5000.0, GetParam());
  const double t_breakeven = job.submit_time + breakeven_delay(job);
  EXPECT_NEAR(bid_utility(job, t_breakeven), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, PenaltyBreakevenSweep,
                         ::testing::Values(0.01, 0.5, 1.0, 2.0, 10.0, 250.0));

// ---------------------------------------------------------------- Ledger

TEST(LedgerTest, ProfitabilityIsUtilityOverBudget) {
  Ledger ledger;
  workload::Job a = make_job(100.0, 500.0, 1000.0);
  workload::Job b = make_job(100.0, 500.0, 3000.0);
  ledger.record_submitted(a);
  ledger.record_submitted(b);
  ledger.record_utility(a.id, 800.0);
  EXPECT_DOUBLE_EQ(ledger.total_budget(), 4000.0);
  EXPECT_DOUBLE_EQ(ledger.total_utility(), 800.0);
  EXPECT_DOUBLE_EQ(ledger.profitability_percent(), 20.0);
  EXPECT_EQ(ledger.submitted(), 2u);
}

TEST(LedgerTest, NegativeUtilityReducesProfitability) {
  Ledger ledger;
  workload::Job a = make_job(100.0, 500.0, 1000.0);
  ledger.record_submitted(a);
  ledger.record_utility(a.id, 500.0);
  ledger.record_utility(a.id, -700.0);  // penalty on another settlement
  EXPECT_DOUBLE_EQ(ledger.profitability_percent(), -20.0);
}

TEST(LedgerTest, EmptyLedgerIsZero) {
  const Ledger ledger;
  EXPECT_DOUBLE_EQ(ledger.profitability_percent(), 0.0);
  EXPECT_TRUE(ledger.entries().empty());
}

}  // namespace
}  // namespace utilrisk::economy
