// Tests for the command-line argument parser behind the utilrisk tool.
#include <gtest/gtest.h>

#include "cli/args.hpp"

namespace utilrisk::cli {
namespace {

ArgParser make_parser() {
  ArgParser parser("utilrisk test", "test parser");
  parser.option("jobs", "N", "job count", "100")
      .option("model", "M", "economic model", "commodity")
      .option("needed", "X", "a required option", "", /*required=*/true)
      .flag("verbose", "chatty output")
      .positional("input", "input file", /*required=*/false);
  return parser;
}

TEST(ArgParserTest, DefaultsApplyWhenAbsent) {
  ArgParser parser = make_parser();
  parser.parse({"--needed", "v"});
  EXPECT_EQ(parser.get("jobs"), "100");
  EXPECT_EQ(parser.get_int("jobs"), 100);
  EXPECT_EQ(parser.get("model"), "commodity");
  EXPECT_FALSE(parser.get_flag("verbose"));
  EXPECT_FALSE(parser.positional_value("input").has_value());
}

TEST(ArgParserTest, ParsesSeparateAndInlineValues) {
  ArgParser parser = make_parser();
  parser.parse({"--needed", "v", "--jobs", "250", "--model=bid"});
  EXPECT_EQ(parser.get_int("jobs"), 250);
  EXPECT_EQ(parser.get("model"), "bid");
  EXPECT_TRUE(parser.has("jobs"));
  EXPECT_FALSE(parser.has("verbose"));
}

TEST(ArgParserTest, FlagsAndPositionals) {
  ArgParser parser = make_parser();
  parser.parse({"--needed", "v", "--verbose", "trace.swf"});
  EXPECT_TRUE(parser.get_flag("verbose"));
  ASSERT_TRUE(parser.positional_value("input").has_value());
  EXPECT_EQ(*parser.positional_value("input"), "trace.swf");
}

TEST(ArgParserTest, HelpShortCircuits) {
  ArgParser parser = make_parser();
  parser.parse({"--help"});
  EXPECT_TRUE(parser.help_requested());
  // Missing required option is not an error under --help.
}

TEST(ArgParserTest, ErrorsAreSpecific) {
  {
    ArgParser parser = make_parser();
    EXPECT_THROW(parser.parse({"--needed", "v", "--bogus", "1"}), ArgError);
  }
  {
    ArgParser parser = make_parser();
    EXPECT_THROW(parser.parse({"--needed", "v", "--jobs"}), ArgError)
        << "option without a value";
  }
  {
    ArgParser parser = make_parser();
    EXPECT_THROW(parser.parse({"--jobs", "3"}), ArgError)
        << "missing required option";
  }
  {
    ArgParser parser = make_parser();
    EXPECT_THROW(parser.parse({"--needed", "v", "--verbose=1"}), ArgError)
        << "flags take no value";
  }
  {
    ArgParser parser = make_parser();
    EXPECT_THROW(parser.parse({"--needed", "v", "a", "b"}), ArgError)
        << "too many positionals";
  }
}

TEST(ArgParserTest, DuplicateSingleValuedOptionIsAnError) {
  {
    ArgParser parser = make_parser();
    try {
      parser.parse({"--needed", "v", "--jobs", "10", "--jobs", "20"});
      FAIL() << "duplicate --jobs must throw";
    } catch (const ArgError& e) {
      EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("more than once"),
                std::string::npos);
    }
  }
  {
    // Inline (=) and separate forms count as the same occurrence.
    ArgParser parser = make_parser();
    EXPECT_THROW(
        parser.parse({"--needed", "v", "--model=bid", "--model", "commodity"}),
        ArgError);
  }
  {
    // Repeating a flag stays idempotent, not an error.
    ArgParser parser = make_parser();
    parser.parse({"--needed", "v", "--verbose", "--verbose"});
    EXPECT_TRUE(parser.get_flag("verbose"));
  }
}

TEST(ArgParserTest, TypedAccessValidates) {
  ArgParser parser = make_parser();
  parser.parse({"--needed", "v", "--jobs", "12.5"});
  EXPECT_THROW((void)parser.get_int("jobs"), ArgError);
  EXPECT_DOUBLE_EQ(parser.get_double("jobs"), 12.5);
  ArgParser parser2 = make_parser();
  parser2.parse({"--needed", "v", "--jobs", "abc"});
  EXPECT_THROW((void)parser2.get_double("jobs"), ArgError);
}

TEST(ArgParserTest, UsageListsEverything) {
  const ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--jobs <N>"), std::string::npos);
  EXPECT_NE(usage.find("(default: 100)"), std::string::npos);
  EXPECT_NE(usage.find("[required]"), std::string::npos);
  EXPECT_NE(usage.find("<input>"), std::string::npos)
      << usage;
}

TEST(ArgParserTest, RequiredPositionalEnforced) {
  ArgParser parser("cmd", "s");
  parser.positional("file", "the file", /*required=*/true);
  EXPECT_THROW(parser.parse({}), ArgError);
}

TEST(SplitCsvTest, SplitsAndTrims) {
  EXPECT_EQ(split_csv("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv(" 0.25 ,0.5,  0.25"),
            (std::vector<std::string>{"0.25", "0.5", "0.25"}));
  EXPECT_EQ(split_csv("single"), (std::vector<std::string>{"single"}));
  EXPECT_EQ(split_csv("a,,b"), (std::vector<std::string>{"a", "", "b"}));
}

}  // namespace
}  // namespace utilrisk::cli
