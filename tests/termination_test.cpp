// Tests for executor cancellation and the terminate-at-deadline ablation.
#include <gtest/gtest.h>

#include "cluster/space_shared.hpp"
#include "cluster/time_shared.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

namespace utilrisk {
namespace {

workload::Job make_job(workload::JobId id, std::uint32_t procs,
                       double runtime, double deadline_factor = 8.0) {
  workload::Job job;
  job.id = id;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = runtime;
  job.deadline_duration = runtime * deadline_factor;
  job.budget = runtime * 10.0;
  job.penalty_rate = 1.0;
  return job;
}

// ------------------------------------------------------- executor cancel

TEST(SpaceSharedCancelTest, FreesProcessorsAndSuppressesCompletion) {
  sim::Simulator simk;
  cluster::SpaceSharedCluster cluster(simk, {.node_count = 8});
  bool completed = false;
  cluster.start(make_job(1, 4, 1000.0),
                [&](workload::JobId, sim::SimTime) { completed = true; });
  simk.schedule_at(300.0, [&] {
    EXPECT_TRUE(cluster.cancel(1));
    EXPECT_EQ(cluster.free_procs(), 8u);
    EXPECT_FALSE(cluster.cancel(1)) << "double cancel";
  });
  simk.run();
  EXPECT_FALSE(completed) << "cancelled jobs never complete";
  // Partial work is still accounted as delivered.
  EXPECT_DOUBLE_EQ(cluster.busy_proc_seconds(simk.now()), 4.0 * 300.0);
}

TEST(SpaceSharedCancelTest, UnknownJobReturnsFalse) {
  sim::Simulator simk;
  cluster::SpaceSharedCluster cluster(simk, {.node_count = 8});
  EXPECT_FALSE(cluster.cancel(99));
}

TEST(TimeSharedCancelTest, FreesShareAndSpeedsUpSurvivors) {
  sim::Simulator simk;
  cluster::TimeSharedCluster cluster(simk, {.node_count = 1});
  bool hog_completed = false;
  double victim_finish = -1.0;
  // Hog: share 0.5, huge. Victim: share 0.5, 300s of work.
  cluster.start(make_job(1, 1, 1e6), {0}, 0.5,
                [&](workload::JobId, sim::SimTime) { hog_completed = true; });
  cluster.start(make_job(2, 1, 300.0), {0}, 0.5,
                [&](workload::JobId, sim::SimTime t) { victim_finish = t; });
  simk.schedule_at(200.0, [&] {
    EXPECT_TRUE(cluster.cancel(1));
    EXPECT_NEAR(cluster.committed_share(0), 0.5, 1e-9);
  });
  simk.run();
  EXPECT_FALSE(hog_completed);
  // Victim: 100 work done by t=200 (rate .5), then alone at rate 1:
  // finishes at 200 + 200 = 400 instead of 600.
  EXPECT_NEAR(victim_finish, 400.0, 1e-6);
}

TEST(TimeSharedCancelTest, CancelParallelJobClearsAllNodes) {
  sim::Simulator simk;
  cluster::TimeSharedCluster cluster(simk, {.node_count = 3});
  cluster.start(make_job(1, 3, 1000.0), {0, 1, 2}, 0.4, {});
  simk.schedule_at(100.0, [&] {
    EXPECT_TRUE(cluster.cancel(1));
    for (cluster::NodeId n = 0; n < 3; ++n) {
      EXPECT_NEAR(cluster.committed_share(n), 0.0, 1e-9);
    }
    EXPECT_EQ(cluster.running_count(), 0u);
  });
  simk.run();
}

// ------------------------------------------- terminate-at-deadline service

service::SimulationReport run_with_termination(
    const std::vector<workload::Job>& jobs, policy::PolicyKind kind,
    bool terminate) {
  policy::PolicyContext context;
  context.model = economy::EconomicModel::BidBased;
  context.terminate_at_deadline = terminate;
  return service::simulate(jobs, service::factory_for(kind), context);
}

TEST(TerminateAtDeadlineTest, KillsOverrunningJobsAtZeroUtility) {
  // One job that under-estimates badly: believed 100 s (fits deadline
  // 800 s), really 10000 s.
  workload::Job liar = make_job(1, 4, 10000.0);
  liar.estimated_runtime = 100.0;
  liar.deadline_duration = 800.0;
  liar.penalty_rate = 20.0;  // delay 9200s at $20/s dwarfs the $100k bid

  const auto without = run_with_termination({liar}, policy::PolicyKind::Libra,
                                            false);
  EXPECT_EQ(without.records[0].outcome, workload::JobOutcome::ViolatedSLA);
  EXPECT_LT(without.records[0].utility, 0.0) << "unbounded penalty accrues";

  const auto with = run_with_termination({liar}, policy::PolicyKind::Libra,
                                         true);
  EXPECT_EQ(with.records[0].outcome, workload::JobOutcome::TerminatedSLA);
  EXPECT_DOUBLE_EQ(with.records[0].utility, 0.0);
  EXPECT_NEAR(with.records[0].finish_time, 800.0, 2e-3)
      << "killed at the deadline (plus the 1 ms on-time-settlement slack)";
  EXPECT_EQ(with.inputs.accepted, 1u);
  EXPECT_EQ(with.inputs.fulfilled, 0u);
}

TEST(TerminateAtDeadlineTest, OnTimeJobsAreUntouched) {
  const auto report = run_with_termination(
      {make_job(1, 4, 500.0)}, policy::PolicyKind::Libra, true);
  EXPECT_EQ(report.records[0].outcome, workload::JobOutcome::FulfilledSLA);
  EXPECT_DOUBLE_EQ(report.records[0].utility, report.records[0].job.budget);
}

TEST(TerminateAtDeadlineTest, FreedCapacityServesLaterJobs) {
  // The hog blocks the whole 4-node machine far past job 2's viability;
  // killing it at t=800 lets job 2 start and fulfil.
  workload::Job hog = make_job(1, 4, 10000.0);
  hog.estimated_runtime = 100.0;
  hog.deadline_duration = 800.0;
  workload::Job later = make_job(2, 4, 500.0);
  later.submit_time = 100.0;
  later.estimated_runtime = 500.0;
  later.deadline_duration = 2000.0;

  cluster::MachineConfig machine;
  machine.node_count = 4;
  policy::PolicyContext context;
  context.machine = machine;
  context.model = economy::EconomicModel::BidBased;
  context.terminate_at_deadline = true;
  const auto report = service::simulate(
      {hog, later}, service::factory_for(policy::PolicyKind::FcfsBf),
      context);
  EXPECT_EQ(report.records[0].outcome, workload::JobOutcome::TerminatedSLA);
  EXPECT_EQ(report.records[1].outcome, workload::JobOutcome::FulfilledSLA)
      << "queued job started after the kill freed the machine";
  EXPECT_NEAR(report.records[1].start_time, 800.0, 2e-3);
}

class TerminationInvariantSweep
    : public ::testing::TestWithParam<policy::PolicyKind> {};

TEST_P(TerminationInvariantSweep, EveryJobSettlesUnderTermination) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 300;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  const auto report = run_with_termination(jobs, GetParam(), true);
  std::size_t settled = 0;
  for (const auto& record : report.records) {
    EXPECT_NE(record.outcome, workload::JobOutcome::Unfinished);
    if (record.outcome == workload::JobOutcome::TerminatedSLA) {
      EXPECT_DOUBLE_EQ(record.utility, 0.0);
    }
    ++settled;
  }
  EXPECT_EQ(settled, jobs.size());
  // Terminations bound the downside: total utility can't be negative.
  EXPECT_GE(report.inputs.total_utility, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TerminationInvariantSweep,
    ::testing::Values(policy::PolicyKind::FcfsBf, policy::PolicyKind::EdfBf,
                      policy::PolicyKind::Libra,
                      policy::PolicyKind::LibraRiskD,
                      policy::PolicyKind::FirstReward,
                      policy::PolicyKind::LibraReserve),
    [](const auto& info) {
      std::string name = std::string(policy::to_string(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace utilrisk
