// Tests for the experiment harness: Table VI scenarios, the result store,
// sweep assembly and figure construction.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "exp/result_store.hpp"
#include "exp/scenario.hpp"

namespace utilrisk::exp {
namespace {

// ------------------------------------------------------------- Scenarios

TEST(ScenarioTest, TwelveScenariosWithSixValuesEach) {
  const auto& scenarios = all_scenarios();
  EXPECT_EQ(scenarios.size(), 12u);
  for (const Scenario& scenario : scenarios) {
    EXPECT_EQ(scenario.values.size(), kValuesPerScenario) << scenario.name;
  }
}

TEST(ScenarioTest, LookupByName) {
  EXPECT_EQ(scenario_by_name("workload").values.front(), 0.02);
  EXPECT_THROW((void)scenario_by_name("phase of the moon"),
               std::invalid_argument);
}

TEST(ScenarioTest, EachScenarioPerturbsExactlyItsOwnKnob) {
  const RunSettings defaults;
  const std::string default_key = defaults.key_fragment();
  for (const Scenario& scenario : all_scenarios()) {
    SCOPED_TRACE(scenario.name);
    // Every scenario value yields a settings object whose key differs from
    // the default in at most the scenario's knob: mutating back to the
    // default value must reproduce the default key.
    for (std::size_t v = 0; v < scenario.values.size(); ++v) {
      RunSettings settings = scenario.settings_for(defaults, v);
      // The key changes iff the applied value differs from the default.
      const bool key_changed = settings.key_fragment() != default_key;
      RunSettings reverted = defaults;
      EXPECT_EQ(reverted.key_fragment(), default_key);
      if (!key_changed) continue;  // value happened to equal the default
    }
    // Index bounds are enforced.
    EXPECT_THROW((void)scenario.settings_for(defaults, 99),
                 std::out_of_range);
  }
}

TEST(ScenarioTest, DefaultValueAppearsInEachScenario) {
  // The dedup savings of the result store depend on every scenario
  // containing the default value of its knob.
  const RunSettings defaults;
  std::size_t scenarios_containing_default = 0;
  for (const Scenario& scenario : all_scenarios()) {
    for (std::size_t v = 0; v < scenario.values.size(); ++v) {
      if (scenario.settings_for(defaults, v).key_fragment() ==
          defaults.key_fragment()) {
        ++scenarios_containing_default;
        break;
      }
    }
  }
  // All but the inaccuracy scenario under Set B defaults... with Set A
  // defaults (inaccuracy 0) every scenario's value list contains the
  // default of its knob.
  EXPECT_GE(scenarios_containing_default, 11u);
}

TEST(ScenarioTest, SetBDefaultsDifferOnlyInInaccuracy) {
  ExperimentConfig config;
  config.set = ExperimentSet::A;
  const RunSettings a = config.default_settings();
  config.set = ExperimentSet::B;
  const RunSettings b = config.default_settings();
  EXPECT_DOUBLE_EQ(a.inaccuracy_percent, 0.0);
  EXPECT_DOUBLE_EQ(b.inaccuracy_percent, 100.0);
  EXPECT_DOUBLE_EQ(a.high_urgency_percent, b.high_urgency_percent);
  EXPECT_DOUBLE_EQ(a.arrival_delay_factor, b.arrival_delay_factor);
}

// ------------------------------------------------------------ ResultStore

TEST(ResultStoreTest, InMemoryLookupAndIdempotentInsert) {
  ResultStore store;
  EXPECT_FALSE(store.lookup("k").has_value());
  store.insert("k", {.wait = 1.0, .sla = 2.0, .reliability = 3.0,
                     .profitability = 4.0});
  store.insert("k", {.wait = 9.0, .sla = 9.0, .reliability = 9.0,
                     .profitability = 9.0});  // ignored
  const auto v = store.lookup("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->wait, 1.0);
  EXPECT_DOUBLE_EQ(v->profitability, 4.0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 1u);
}

TEST(ResultStoreTest, PersistsAcrossInstances) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "utilrisk_store_test.csv")
          .string();
  std::remove(path.c_str());
  {
    ResultStore store(path);
    store.insert("alpha", {.wait = 12.5, .sla = 50.0, .reliability = 75.0,
                           .profitability = -3.25});
    store.insert("beta", {.wait = 0.0, .sla = 100.0, .reliability = 100.0,
                          .profitability = 42.0});
  }
  ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  const auto alpha = reloaded.lookup("alpha");
  ASSERT_TRUE(alpha.has_value());
  EXPECT_DOUBLE_EQ(alpha->wait, 12.5);
  EXPECT_DOUBLE_EQ(alpha->profitability, -3.25)
      << "negative utilities round-trip";
  std::remove(path.c_str());
}

TEST(ResultStoreTest, IgnoresCorruptCacheLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "utilrisk_corrupt_test.csv")
          .string();
  {
    std::ofstream out(path);
    out << ResultStore::kSchemaHeader << "\n"
        << "good\t1.0 2.0 3.0 4.0\n"
        << "no separator line\n"
        << "short\t1.0 2.0\n"
        << "also_good\t9.0 8.0 7.0 6.0\n";
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), 2u) << "malformed rows skipped, not fatal";
  EXPECT_EQ(store.malformed_lines_skipped(), 2u);
  EXPECT_EQ(store.conflicting_lines_dropped(), 0u);
  ASSERT_TRUE(store.lookup("good").has_value());
  EXPECT_DOUBLE_EQ(store.lookup("also_good")->wait, 9.0);
  EXPECT_FALSE(store.lookup("short").has_value());
  std::remove(path.c_str());
}

TEST(ResultStoreTest, DiscardsStaleUnversionedCache) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "utilrisk_stale_test.csv")
          .string();
  {
    // A pre-schema file: its keys predate the failure knobs, so any entry
    // could silently alias a different run. All of it must go.
    std::ofstream out(path);
    out << "old_key\t1.0 2.0 3.0 4.0\n";
  }
  ResultStore store(path);
  EXPECT_TRUE(store.stale_cache_discarded());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.lookup("old_key").has_value());
  store.insert("fresh", {.wait = 5.0, .sla = 6.0, .reliability = 7.0,
                         .profitability = 8.0});

  // The rewritten file carries the schema header and reloads cleanly.
  {
    std::ifstream in(path);
    std::string first_line;
    ASSERT_TRUE(std::getline(in, first_line));
    EXPECT_EQ(first_line, ResultStore::kSchemaHeader);
  }
  ResultStore reloaded(path);
  EXPECT_FALSE(reloaded.stale_cache_discarded());
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_DOUBLE_EQ(reloaded.lookup("fresh")->wait, 5.0);
  std::remove(path.c_str());
}

TEST(ResultStoreTest, ConflictingDuplicateKeysAreDroppedEntirely) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "utilrisk_conflict_test.csv")
          .string();
  {
    std::ofstream out(path);
    out << ResultStore::kSchemaHeader << "\n"
        << "disputed\t1.0 2.0 3.0 4.0\n"
        << "clean\t5.0 6.0 7.0 8.0\n"
        << "disputed\t9.0 9.0 9.0 9.0\n";  // same key, different values
  }
  ResultStore store(path);
  // Neither copy of the disputed key can be trusted: drop both and let the
  // runner re-simulate.
  EXPECT_FALSE(store.lookup("disputed").has_value());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.conflicting_lines_dropped(), 2u);
  EXPECT_GE(store.malformed_lines_skipped(), 2u);
  EXPECT_DOUBLE_EQ(store.lookup("clean")->sla, 6.0);

  // The compacted file no longer contains the disputed key at all.
  ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.conflicting_lines_dropped(), 0u);
  std::remove(path.c_str());
}

TEST(ResultStoreTest, IdenticalDuplicateKeysAreBenign) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "utilrisk_dup_test.csv")
          .string();
  {
    std::ofstream out(path);
    out << ResultStore::kSchemaHeader << "\n"
        << "twice\t1.5 2.5 3.5 4.5\n"
        << "twice\t1.5 2.5 3.5 4.5\n";
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.conflicting_lines_dropped(), 0u);
  EXPECT_EQ(store.malformed_lines_skipped(), 0u);
  EXPECT_DOUBLE_EQ(store.lookup("twice")->profitability, 4.5);
  std::remove(path.c_str());
}

TEST(ResultStoreTest, RejectsKeysWithSeparators) {
  ResultStore store;
  EXPECT_THROW(store.insert("bad\tkey", {}), std::invalid_argument);
  EXPECT_THROW(store.insert("bad\nkey", {}), std::invalid_argument);
}

// ------------------------------------------------------ ExperimentRunner

ExperimentConfig small_config(economy::EconomicModel model,
                              ExperimentSet set) {
  ExperimentConfig config;
  config.model = model;
  config.set = set;
  config.trace.job_count = 150;  // keep the test sweep quick
  return config;
}

TEST(ExperimentRunnerTest, RunOneIsCached) {
  ExperimentRunner runner(
      small_config(economy::EconomicModel::BidBased, ExperimentSet::B));
  const RunSettings defaults = runner.config().default_settings();
  const auto first = runner.run_one(policy::PolicyKind::Libra, defaults);
  EXPECT_EQ(runner.simulations_run(), 1u);
  const auto second = runner.run_one(policy::PolicyKind::Libra, defaults);
  EXPECT_EQ(runner.simulations_run(), 1u) << "second call served from cache";
  EXPECT_DOUBLE_EQ(first.sla, second.sla);
}

TEST(ExperimentRunnerTest, RunKeyDistinguishesEverything) {
  const ExperimentConfig config =
      small_config(economy::EconomicModel::BidBased, ExperimentSet::B);
  const RunSettings defaults = config.default_settings();
  RunSettings other = defaults;
  other.arrival_delay_factor = 0.5;
  EXPECT_NE(config.run_key(policy::PolicyKind::Libra, defaults),
            config.run_key(policy::PolicyKind::Libra, other));
  EXPECT_NE(config.run_key(policy::PolicyKind::Libra, defaults),
            config.run_key(policy::PolicyKind::EdfBf, defaults));
  ExperimentConfig commodity = config;
  commodity.model = economy::EconomicModel::CommodityMarket;
  EXPECT_NE(config.run_key(policy::PolicyKind::Libra, defaults),
            commodity.run_key(policy::PolicyKind::Libra, defaults));
}

TEST(ExperimentRunnerTest, RunKeyCoversFailureAndRecoveryKnobs) {
  // Regression: the key once omitted the --fail-*/recovery parameters, so
  // a failure-injected run could collide with (and be served from) the
  // clean-run cache entry.
  const ExperimentConfig config =
      small_config(economy::EconomicModel::BidBased, ExperimentSet::B);
  const RunSettings defaults = config.default_settings();
  const std::string base_key =
      config.run_key(policy::PolicyKind::Libra, defaults);

  RunSettings failing = defaults;
  failing.failure.mtbf_seconds = 43200.0;
  EXPECT_NE(config.run_key(policy::PolicyKind::Libra, failing), base_key);

  RunSettings recovering = defaults;
  recovering.recovery.retry_limit = defaults.recovery.retry_limit + 1;
  EXPECT_NE(config.run_key(policy::PolicyKind::Libra, recovering), base_key);
}

TEST(ExperimentRunnerTest, SweepShapeAndDedup) {
  ExperimentRunner runner(
      small_config(economy::EconomicModel::BidBased, ExperimentSet::A));
  const std::vector<policy::PolicyKind> policies = {
      policy::PolicyKind::Libra, policy::PolicyKind::LibraRiskD};
  const SweepResult sweep = runner.run_sweep(policies);

  EXPECT_EQ(sweep.scenario_count(), 12u);
  EXPECT_EQ(sweep.policy_count(), 2u);
  ASSERT_EQ(sweep.raw.size(), 12u);
  ASSERT_EQ(sweep.separate.size(), 12u);
  for (std::size_t s = 0; s < 12; ++s) {
    for (const auto& per_objective : sweep.raw[s]) {
      ASSERT_EQ(per_objective.size(), 2u);
      ASSERT_EQ(per_objective[0].size(), kValuesPerScenario);
    }
    ASSERT_EQ(sweep.separate[s].size(), 2u);
  }
  // 12 scenarios x 6 values = 72 settings per policy; every scenario's
  // value list contains the knob's default, so the all-defaults run recurs
  // 12 times -> 72 - 12 + 1 = 61 unique settings.
  EXPECT_EQ(runner.simulations_run(), 2u * 61u);
}

TEST(ExperimentRunnerTest, SeparateRiskPointsAreWithinBounds) {
  ExperimentRunner runner(
      small_config(economy::EconomicModel::CommodityMarket,
                   ExperimentSet::B));
  const SweepResult sweep = runner.run_sweep(
      {policy::PolicyKind::FcfsBf, policy::PolicyKind::Libra});
  for (std::size_t s = 0; s < sweep.scenario_count(); ++s) {
    for (std::size_t p = 0; p < sweep.policy_count(); ++p) {
      for (const core::RiskPoint& point : sweep.separate[s][p]) {
        EXPECT_GE(point.performance, 0.0);
        EXPECT_LE(point.performance, 1.0);
        EXPECT_GE(point.volatility, 0.0);
        EXPECT_LE(point.volatility, 0.5 + 1e-9);
      }
    }
  }
}

TEST(ExperimentRunnerTest, SharedStoreSkipsRepeatedSweeps) {
  ResultStore store;
  const auto config =
      small_config(economy::EconomicModel::BidBased, ExperimentSet::A);
  ExperimentRunner first(config, &store);
  (void)first.run_sweep({policy::PolicyKind::Libra});
  EXPECT_EQ(first.simulations_run(), 61u);
  ExperimentRunner second(config, &store);
  (void)second.run_sweep({policy::PolicyKind::Libra});
  EXPECT_EQ(second.simulations_run(), 0u) << "fully served from the store";
}

// ---------------------------------------------------------------- Figures

class FigureTest : public ::testing::Test {
 protected:
  static const SweepResult& sweep() {
    static const SweepResult result = [] {
      ExperimentRunner runner(
          small_config(economy::EconomicModel::BidBased, ExperimentSet::B));
      return runner.run_sweep(
          {policy::PolicyKind::Libra, policy::PolicyKind::FcfsBf});
    }();
    return result;
  }
};

TEST_F(FigureTest, SeparatePlotHasOnePointPerScenario) {
  const core::RiskPlot plot =
      separate_plot(sweep(), core::Objective::Sla, "SLA");
  ASSERT_EQ(plot.series.size(), 2u);
  EXPECT_EQ(plot.series[0].policy, "Libra");
  EXPECT_EQ(plot.series[0].points.size(), 12u);
  EXPECT_EQ(plot.scenarios.size(), 12u);
}

TEST_F(FigureTest, IntegratedPlotAveragesSeparatePoints) {
  const std::vector<core::Objective> combo = {core::Objective::Sla,
                                              core::Objective::Reliability};
  const core::RiskPlot plot = integrated_plot(sweep(), combo, "combo");
  for (std::size_t p = 0; p < plot.series.size(); ++p) {
    for (std::size_t s = 0; s < plot.series[p].points.size(); ++s) {
      const auto& sla =
          sweep().separate[s][p][static_cast<std::size_t>(
              core::Objective::Sla)];
      const auto& rel = sweep().separate[s][p][static_cast<std::size_t>(
          core::Objective::Reliability)];
      EXPECT_NEAR(plot.series[p].points[s].performance,
                  (sla.performance + rel.performance) / 2.0, 1e-12);
      EXPECT_NEAR(plot.series[p].points[s].volatility,
                  (sla.volatility + rel.volatility) / 2.0, 1e-12);
    }
  }
}

TEST_F(FigureTest, IntegratedPlotHonoursCustomWeights) {
  const std::vector<core::Objective> combo = {core::Objective::Sla,
                                              core::Objective::Reliability};
  const core::RiskPlot plot =
      integrated_plot(sweep(), combo, "weighted", {1.0, 0.0});
  const auto& sla_only =
      separate_plot(sweep(), core::Objective::Sla, "SLA");
  for (std::size_t p = 0; p < plot.series.size(); ++p) {
    for (std::size_t s = 0; s < plot.series[p].points.size(); ++s) {
      EXPECT_NEAR(plot.series[p].points[s].performance,
                  sla_only.series[p].points[s].performance, 1e-12);
    }
  }
}

TEST_F(FigureTest, ThreeObjectiveCombinationsAreLeaveOneOut) {
  const auto combos = three_objective_combinations();
  ASSERT_EQ(combos.size(), 4u);
  for (const auto& combo : combos) {
    EXPECT_EQ(combo.size(), 3u);
  }
  EXPECT_EQ(combination_label(combos[0]), "SLA+reliability+profitability");
  EXPECT_EQ(combination_label(combos[3]), "wait+SLA+reliability");
}

TEST_F(FigureTest, IntegratedPlotRejectsEmptyCombo) {
  EXPECT_THROW((void)integrated_plot(sweep(), {}, "empty"),
               std::invalid_argument);
}

}  // namespace
}  // namespace utilrisk::exp

// -------------------------------------------------------------- Replication

#include <cmath>

#include "exp/replication.hpp"

namespace utilrisk {
namespace replication_tests {

using exp::ObjectiveEstimate;
using exp::ReplicationConfig;
using exp::ReplicationSummary;

TEST(ReplicationTest, SummaryMatchesClosedForm) {
  std::vector<core::ObjectiveValues> replicates = {
      {.wait = 10.0, .sla = 50.0, .reliability = 80.0, .profitability = 20.0},
      {.wait = 20.0, .sla = 60.0, .reliability = 90.0, .profitability = 30.0},
      {.wait = 30.0, .sla = 70.0, .reliability = 100.0,
       .profitability = 40.0},
  };
  const ReplicationSummary summary =
      exp::summarize_replicates(std::move(replicates));
  const ObjectiveEstimate& wait = summary.of(core::Objective::Wait);
  EXPECT_DOUBLE_EQ(wait.mean, 20.0);
  EXPECT_DOUBLE_EQ(wait.stddev, 10.0);  // sample stddev of {10,20,30}
  EXPECT_NEAR(wait.ci95_half, 1.96 * 10.0 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(summary.of(core::Objective::Sla).mean, 60.0);
}

TEST(ReplicationTest, NeedsAtLeastTwoReplicates) {
  EXPECT_THROW((void)exp::summarize_replicates({{}}), std::invalid_argument);
  ReplicationConfig config;
  config.seeds = {1};
  EXPECT_THROW((void)exp::replicate(config), std::invalid_argument);
}

TEST(ReplicationTest, SignificanceIsIntervalSeparation) {
  ObjectiveEstimate high{.mean = 80.0, .stddev = 1.0, .ci95_half = 2.0};
  ObjectiveEstimate low{.mean = 70.0, .stddev = 1.0, .ci95_half = 2.0};
  EXPECT_TRUE(high.significantly_above(low));
  ObjectiveEstimate overlapping{.mean = 75.0, .stddev = 2.0,
                                .ci95_half = 4.0};
  // [71, 79] overlaps low's [68, 72]: not significant.
  EXPECT_FALSE(overlapping.significantly_above(low));
}

TEST(ReplicationTest, EndToEndAcrossSeeds) {
  ReplicationConfig config;
  config.policy = policy::PolicyKind::LibraRiskD;
  config.model = economy::EconomicModel::BidBased;
  config.trace.job_count = 200;
  config.settings.inaccuracy_percent = 100.0;
  config.seeds = {1, 2, 3};
  const ReplicationSummary summary = exp::replicate(config);
  EXPECT_EQ(summary.replicates.size(), 3u);
  EXPECT_GT(summary.of(core::Objective::Sla).mean, 0.0);
  EXPECT_GT(summary.of(core::Objective::Sla).stddev, 0.0)
      << "independent seeds give different workloads";
  EXPECT_DOUBLE_EQ(summary.of(core::Objective::Wait).mean, 0.0)
      << "Libra family has zero wait regardless of the seed";
}

}  // namespace replication_tests
}  // namespace utilrisk
