// Tests for the paper's core contribution: the four objectives (eqns 1-4),
// normalisation, separate (eqns 5-6) and integrated (eqns 7-8) risk
// analysis, trend lines, and the ranking procedures of Tables III-IV —
// validated against the paper's own worked example (Fig. 1 / Table II).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/integrated_risk.hpp"
#include "core/normalization.hpp"
#include "core/objectives.hpp"
#include "core/ranking.hpp"
#include "core/report.hpp"
#include "core/risk_plot.hpp"
#include "core/sample_plot.hpp"
#include "core/separate_risk.hpp"
#include "sim/rng.hpp"

namespace utilrisk::core {
namespace {

// ------------------------------------------------------------- Objectives

TEST(ObjectivesTest, FourFormulasMatchTheEquations) {
  ObjectiveInputs in;
  in.submitted = 200;   // m
  in.accepted = 150;    // n
  in.fulfilled = 120;   // n_SLA
  in.wait_sum_fulfilled = 120 * 30.0;
  in.total_utility = 2500.0;
  in.total_budget = 10000.0;
  const ObjectiveValues v = compute_objectives(in);
  EXPECT_DOUBLE_EQ(v.wait, 30.0);            // eqn 1
  EXPECT_DOUBLE_EQ(v.sla, 60.0);             // eqn 2: 120/200
  EXPECT_DOUBLE_EQ(v.reliability, 80.0);     // eqn 3: 120/150
  EXPECT_DOUBLE_EQ(v.profitability, 25.0);   // eqn 4
}

TEST(ObjectivesTest, DegenerateDenominatorsYieldWorstValues) {
  const ObjectiveValues v = compute_objectives(ObjectiveInputs{});
  EXPECT_DOUBLE_EQ(v.wait, 0.0);
  EXPECT_DOUBLE_EQ(v.sla, 0.0);
  EXPECT_DOUBLE_EQ(v.reliability, 0.0);
  EXPECT_DOUBLE_EQ(v.profitability, 0.0);
}

TEST(ObjectivesTest, EnforcesCountOrdering) {
  ObjectiveInputs in;
  in.submitted = 10;
  in.accepted = 11;
  EXPECT_THROW((void)compute_objectives(in), std::invalid_argument);
  in.accepted = 5;
  in.fulfilled = 6;
  EXPECT_THROW((void)compute_objectives(in), std::invalid_argument);
}

TEST(ObjectivesTest, NamesRoundTrip) {
  for (Objective objective : kAllObjectives) {
    EXPECT_EQ(parse_objective(to_string(objective)), objective);
  }
  EXPECT_THROW((void)parse_objective("latency"), std::invalid_argument);
}

TEST(ObjectivesTest, DirectionOfImprovement) {
  EXPECT_FALSE(higher_is_better(Objective::Wait));
  EXPECT_TRUE(higher_is_better(Objective::Sla));
  EXPECT_TRUE(higher_is_better(Objective::Reliability));
  EXPECT_TRUE(higher_is_better(Objective::Profitability));
}

TEST(ObjectivesTest, GetSelectsByEnum) {
  ObjectiveValues v{.wait = 1.0, .sla = 2.0, .reliability = 3.0,
                    .profitability = 4.0};
  EXPECT_DOUBLE_EQ(v.get(Objective::Wait), 1.0);
  EXPECT_DOUBLE_EQ(v.get(Objective::Profitability), 4.0);
}

// ---------------------------------------------------------- Normalisation

TEST(NormalizationTest, PercentagesDivideBy100AndClamp) {
  EXPECT_DOUBLE_EQ(normalize_percentage(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_percentage(42.0), 0.42);
  EXPECT_DOUBLE_EQ(normalize_percentage(100.0), 1.0);
  EXPECT_DOUBLE_EQ(normalize_percentage(-35.0), 0.0)
      << "negative profitability is the worst case";
  EXPECT_DOUBLE_EQ(normalize_percentage(130.0), 1.0);
  EXPECT_THROW((void)normalize_percentage(NAN), std::invalid_argument);
}

TEST(NormalizationTest, MinMaxWaitPinsBestAndWorst) {
  // Two policies, three scenario values.
  const std::vector<std::vector<double>> raw = {{0.0, 100.0, 50.0},
                                                {200.0, 300.0, 50.0}};
  const auto norm = normalize_objective(Objective::Wait, raw, {});
  EXPECT_DOUBLE_EQ(norm[0][0], 1.0);
  EXPECT_DOUBLE_EQ(norm[1][0], 0.0);
  EXPECT_DOUBLE_EQ(norm[0][1], 1.0);
  EXPECT_DOUBLE_EQ(norm[1][1], 0.0);
  EXPECT_DOUBLE_EQ(norm[0][2], 1.0) << "all-equal column: everyone best";
  EXPECT_DOUBLE_EQ(norm[1][2], 1.0);
}

TEST(NormalizationTest, MinMaxIsRelativeWithinColumn) {
  const std::vector<std::vector<double>> raw = {{0.0}, {50.0}, {200.0}};
  const auto norm = normalize_objective(Objective::Wait, raw, {});
  EXPECT_DOUBLE_EQ(norm[0][0], 1.0);
  EXPECT_DOUBLE_EQ(norm[1][0], 0.75);
  EXPECT_DOUBLE_EQ(norm[2][0], 0.0);
}

TEST(NormalizationTest, ReciprocalIsAbsoluteAndMonotone) {
  NormalizationConfig config;
  config.wait = WaitNormalization::Reciprocal;
  config.reciprocal_tau = 100.0;
  const std::vector<std::vector<double>> raw = {{0.0, 100.0, 300.0}};
  const auto norm = normalize_objective(Objective::Wait, raw, config);
  EXPECT_DOUBLE_EQ(norm[0][0], 1.0);
  EXPECT_DOUBLE_EQ(norm[0][1], 0.5);
  EXPECT_DOUBLE_EQ(norm[0][2], 0.25);
}

TEST(NormalizationTest, RejectsRaggedAndNegativeInput) {
  EXPECT_THROW(
      (void)normalize_objective(Objective::Wait, {{1.0, 2.0}, {1.0}}, {}),
      std::invalid_argument);
  EXPECT_THROW((void)normalize_objective(Objective::Wait, {{-1.0}}, {}),
               std::invalid_argument);
}

TEST(NormalizationTest, HigherIsBetterObjectivesIgnoreWaitStrategy) {
  NormalizationConfig config;
  config.wait = WaitNormalization::Reciprocal;
  const std::vector<std::vector<double>> raw = {{80.0}, {20.0}};
  const auto norm = normalize_objective(Objective::Sla, raw, config);
  EXPECT_DOUBLE_EQ(norm[0][0], 0.8);
  EXPECT_DOUBLE_EQ(norm[1][0], 0.2);
}

// ------------------------------------------------------------ Separate risk

TEST(SeparateRiskTest, MeanAndPopulationStddev) {
  const std::vector<double> results = {0.2, 0.4, 0.6, 0.8};
  const RiskPoint point = separate_risk(results);
  EXPECT_DOUBLE_EQ(point.performance, 0.5);           // eqn 5
  EXPECT_NEAR(point.volatility, std::sqrt(0.05), 1e-12);  // eqn 6
}

TEST(SeparateRiskTest, ConstantResultsHaveZeroVolatility) {
  const std::vector<double> results = {0.7, 0.7, 0.7, 0.7, 0.7, 0.7};
  const RiskPoint point = separate_risk(results);
  EXPECT_DOUBLE_EQ(point.performance, 0.7);
  EXPECT_DOUBLE_EQ(point.volatility, 0.0);
}

TEST(SeparateRiskTest, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW((void)separate_risk(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)separate_risk(std::vector<double>{1.2}),
               std::invalid_argument);
  EXPECT_THROW((void)separate_risk(std::vector<double>{-0.1}),
               std::invalid_argument);
}

// Property: volatility of values in [0,1] is bounded by 0.5 (max spread).
class SeparateRiskBoundsSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeparateRiskBoundsSweep, VolatilityBounded) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> results(6);
  for (auto& r : results) r = rng.uniform01();
  const RiskPoint point = separate_risk(results);
  EXPECT_GE(point.performance, 0.0);
  EXPECT_LE(point.performance, 1.0);
  EXPECT_GE(point.volatility, 0.0);
  EXPECT_LE(point.volatility, 0.5 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparateRiskBoundsSweep,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------- Integrated risk

TEST(IntegratedRiskTest, EqualWeightsAverage) {
  const std::vector<RiskPoint> separate = {{1.0, 0.0}, {0.5, 0.2},
                                           {0.0, 0.4}};
  const RiskPoint point = integrated_risk(separate, equal_weights(3));
  EXPECT_NEAR(point.performance, 0.5, 1e-12);
  EXPECT_NEAR(point.volatility, 0.2, 1e-12);
}

TEST(IntegratedRiskTest, WeightsShiftTheCombination) {
  const std::vector<RiskPoint> separate = {{1.0, 0.0}, {0.0, 0.4}};
  const std::vector<double> weights = {0.75, 0.25};
  const RiskPoint point = integrated_risk(separate, weights);
  EXPECT_DOUBLE_EQ(point.performance, 0.75);
  EXPECT_DOUBLE_EQ(point.volatility, 0.1);
}

TEST(IntegratedRiskTest, ValidatesWeights) {
  const std::vector<RiskPoint> separate = {{1.0, 0.0}, {0.0, 0.4}};
  EXPECT_THROW((void)integrated_risk(separate, std::vector<double>{0.5}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)integrated_risk(separate, std::vector<double>{0.9, 0.3}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)integrated_risk(separate, std::vector<double>{1.5, -0.5}),
      std::invalid_argument);
  EXPECT_THROW((void)integrated_risk({}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(IntegratedRiskTest, EqualWeightsHelper) {
  const auto w3 = equal_weights(3);
  EXPECT_EQ(w3.size(), 3u);
  EXPECT_NEAR(w3[0], 1.0 / 3.0, 1e-15);
  const auto w4 = equal_weights(4);
  EXPECT_DOUBLE_EQ(w4[0], 0.25);
  EXPECT_THROW((void)equal_weights(0), std::invalid_argument);
}

// -------------------------------------------------------------- Trend lines

TEST(TrendTest, FitsLeastSquares) {
  PolicySeries series{"X", {{0.2, 0.3}, {0.4, 0.5}, {0.6, 0.7}}};
  const TrendLine trend = fit_trend(series);
  ASSERT_TRUE(trend.valid);
  EXPECT_NEAR(trend.slope, 1.0, 1e-12) << "perf rises 1:1 with volatility";
  EXPECT_NEAR(trend.intercept, -0.1, 1e-12);
  EXPECT_EQ(classify_gradient(trend), GradientClass::Increasing);
}

TEST(TrendTest, IdenticalPointsHaveNoTrend) {
  PolicySeries series{"A", {{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}}};
  const TrendLine trend = fit_trend(series);
  EXPECT_FALSE(trend.valid);
  EXPECT_EQ(classify_gradient(trend), GradientClass::NotAvailable);
}

TEST(TrendTest, VerticalSpreadHasNoTrend) {
  PolicySeries series{"V", {{0.2, 0.3}, {0.8, 0.3}}};
  EXPECT_FALSE(fit_trend(series).valid);
}

TEST(TrendTest, GradientClasses) {
  EXPECT_EQ(classify_gradient({true, -0.5, 0.0}), GradientClass::Decreasing);
  EXPECT_EQ(classify_gradient({true, 0.5, 0.0}), GradientClass::Increasing);
  EXPECT_EQ(classify_gradient({true, 1e-6, 0.0}), GradientClass::Zero);
  // Preference order (paper §4.3): decreasing < increasing < zero.
  EXPECT_LT(gradient_rank(GradientClass::Decreasing),
            gradient_rank(GradientClass::Increasing));
  EXPECT_LT(gradient_rank(GradientClass::Increasing),
            gradient_rank(GradientClass::Zero));
}

// ------------------------------------------- The paper's worked example

class SamplePlotTest : public ::testing::Test {
 protected:
  RiskPlot plot_ = sample_risk_plot();
};

TEST_F(SamplePlotTest, TableIIAggregatesMatchThePaperExactly) {
  struct Expected {
    const char* policy;
    double perf_max, perf_min, perf_diff, vol_max, vol_min, vol_diff;
  };
  const Expected expected[] = {
      {"A", 1.0, 1.0, 0.0, 0.0, 0.0, 0.0},
      {"B", 0.9, 0.9, 0.0, 0.6, 0.3, 0.3},
      {"C", 0.7, 0.2, 0.5, 1.0, 0.3, 0.7},
      {"D", 0.7, 0.2, 0.5, 1.0, 0.3, 0.7},
      {"E", 0.7, 0.5, 0.2, 0.3, 0.1, 0.2},
      {"F", 0.7, 0.2, 0.5, 0.7, 0.3, 0.4},
      {"G", 0.7, 0.4, 0.3, 1.0, 0.3, 0.7},
      {"H", 0.7, 0.2, 0.5, 1.0, 0.3, 0.7},
  };
  ASSERT_EQ(plot_.series.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const PolicyRankStats stats = compute_rank_stats(plot_.series[i]);
    SCOPED_TRACE(stats.policy);
    EXPECT_EQ(stats.policy, expected[i].policy);
    EXPECT_NEAR(stats.max_performance, expected[i].perf_max, 1e-12);
    EXPECT_NEAR(stats.min_performance, expected[i].perf_min, 1e-12);
    EXPECT_NEAR(stats.performance_difference(), expected[i].perf_diff, 1e-12);
    EXPECT_NEAR(stats.max_volatility, expected[i].vol_max, 1e-12);
    EXPECT_NEAR(stats.min_volatility, expected[i].vol_min, 1e-12);
    EXPECT_NEAR(stats.volatility_difference(), expected[i].vol_diff, 1e-12);
  }
}

TEST_F(SamplePlotTest, GradientsMatchThePaper) {
  auto gradient_of = [&](const char* name) {
    for (const auto& series : plot_.series) {
      if (series.policy == name) {
        return classify_gradient(fit_trend(series));
      }
    }
    ADD_FAILURE() << "no such policy " << name;
    return GradientClass::NotAvailable;
  };
  EXPECT_EQ(gradient_of("A"), GradientClass::NotAvailable);
  EXPECT_EQ(gradient_of("B"), GradientClass::Zero);
  EXPECT_EQ(gradient_of("C"), GradientClass::Decreasing);
  EXPECT_EQ(gradient_of("D"), GradientClass::Decreasing);
  EXPECT_EQ(gradient_of("E"), GradientClass::Decreasing);
  EXPECT_EQ(gradient_of("F"), GradientClass::Increasing);
  EXPECT_EQ(gradient_of("G"), GradientClass::Increasing);
  EXPECT_EQ(gradient_of("H"), GradientClass::Increasing);
}

TEST_F(SamplePlotTest, RankingByPerformanceFollowsTheKeyOrder) {
  const auto ranked = rank_policies(plot_.series, RankBy::BestPerformance);
  std::vector<std::string> order;
  for (const auto& stats : ranked) order.push_back(stats.policy);
  // Strict application of the paper's published key order (§4.3). The
  // paper's Table III swaps E and G relative to its own keys — E's lower
  // minimum volatility (0.1 < 0.3) places it 3rd here; the discrepancy is
  // recorded in EXPERIMENTS.md.
  EXPECT_EQ(order, (std::vector<std::string>{"A", "B", "E", "G", "F", "C",
                                             "D", "H"}));
}

TEST_F(SamplePlotTest, RankingByVolatilityMatchesTableIV) {
  const auto ranked = rank_policies(plot_.series, RankBy::BestVolatility);
  std::vector<std::string> order;
  for (const auto& stats : ranked) order.push_back(stats.policy);
  // Table IV: A, E, B, F, G, C, D, H.
  EXPECT_EQ(order, (std::vector<std::string>{"A", "E", "B", "F", "G", "C",
                                             "D", "H"}));
}

TEST_F(SamplePlotTest, ConcentrationRanksCOverD) {
  const auto ranked = rank_policies(plot_.series, RankBy::BestPerformance);
  std::size_t pos_c = 0, pos_d = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].policy == "C") pos_c = i;
    if (ranked[i].policy == "D") pos_d = i;
  }
  EXPECT_LT(pos_c, pos_d)
      << "C's points cluster at its best corner (paper §4.3)";
}

// ------------------------------------------------------------------ Reports

TEST(ReportTest, CsvHasOneRowPerPoint) {
  const RiskPlot plot = sample_risk_plot();
  std::ostringstream out;
  write_plot_csv(out, plot);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u + 8u * 5u);  // header + 8 policies x 5 scenarios
}

TEST(ReportTest, GnuplotBlocksPerPolicy) {
  const RiskPlot plot = sample_risk_plot();
  std::ostringstream out;
  write_plot_gnuplot(out, plot);
  std::size_t blocks = 0;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) {
    if (line.rfind("# policy", 0) == 0) ++blocks;
  }
  EXPECT_EQ(blocks, 8u);
}

TEST(ReportTest, AsciiScatterContainsLegendAndAxes) {
  const RiskPlot plot = sample_risk_plot();
  std::ostringstream out;
  write_ascii_scatter(out, plot);
  const std::string text = out.str();
  EXPECT_NE(text.find("legend:"), std::string::npos);
  EXPECT_NE(text.find("A=A"), std::string::npos);
  EXPECT_NE(text.find("1.00 |"), std::string::npos);
}

TEST(ReportTest, AsciiScatterToleratesDegenerateInput) {
  RiskPlot empty;
  empty.title = "empty";
  std::ostringstream out;
  write_ascii_scatter(out, empty);  // no series: header + axes only
  EXPECT_NE(out.str().find("empty"), std::string::npos);

  std::ostringstream tiny;
  write_ascii_scatter(tiny, empty, 2, 2);  // below minimum: no output
  EXPECT_TRUE(tiny.str().empty());

  RiskPlot single;
  single.title = "one point";
  single.series = {{"only", {{0.5, 0.0}}}};
  std::ostringstream one;
  write_ascii_scatter(one, single);
  EXPECT_NE(one.str().find("A=only"), std::string::npos);
}

TEST(ReportTest, StatsTableRendersAllRows) {
  const RiskPlot plot = sample_risk_plot();
  std::vector<PolicyRankStats> stats;
  for (const auto& series : plot.series) {
    stats.push_back(compute_rank_stats(series));
  }
  std::ostringstream out;
  write_stats_table(out, stats);
  for (const auto& series : plot.series) {
    EXPECT_NE(out.str().find(series.policy), std::string::npos);
  }
}

TEST(RankingTest, SinglePolicyAndEmptySeriesEdges) {
  PolicySeries solo{"solo", {{0.5, 0.1}, {0.6, 0.2}}};
  const auto ranked = rank_policies({solo}, RankBy::BestPerformance);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].policy, "solo");
  EXPECT_THROW((void)compute_rank_stats(PolicySeries{"empty", {}}),
               std::invalid_argument);
}

TEST(ReportTest, FormatValueIsFixedPrecision) {
  EXPECT_EQ(format_value(0.5), "0.500");
  EXPECT_EQ(format_value(1.0), "1.000");
  EXPECT_EQ(format_value(0.12349), "0.123");
}

}  // namespace
}  // namespace utilrisk::core
