// Cross-module property tests: invariants that must hold for random
// workloads, every policy, and both economic models.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "service/computing_service.hpp"
#include "sim/rng.hpp"
#include "workload/synthetic_lublin.hpp"
#include "workload/workload.hpp"

namespace utilrisk {
namespace {

/// Random (but seeded) workload with QoS terms.
std::vector<workload::Job> random_workload(std::uint64_t seed,
                                           std::uint32_t jobs,
                                           double inaccuracy) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = jobs;
  trace.seed = seed;
  workload::QosConfig qos;
  qos.seed = seed * 7919 + 1;
  const workload::WorkloadBuilder builder(trace);
  return builder.build(qos, 0.25, inaccuracy);
}

struct PropertyCase {
  policy::PolicyKind kind;
  economy::EconomicModel model;
  std::uint64_t seed;
};

class AllPoliciesPropertySweep
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AllPoliciesPropertySweep, UniversalInvariantsHold) {
  const PropertyCase param = GetParam();
  const auto jobs = random_workload(param.seed, 300, 100.0);
  const auto report = service::simulate(jobs, param.kind, param.model);

  // Conservation: every job is exactly one of rejected / fulfilled /
  // violated; nothing is left unfinished after quiescence.
  std::size_t rejected = 0, fulfilled = 0, violated = 0;
  for (const service::SlaRecord& record : report.records) {
    switch (record.outcome) {
      case workload::JobOutcome::Rejected: ++rejected; break;
      case workload::JobOutcome::FulfilledSLA: ++fulfilled; break;
      case workload::JobOutcome::ViolatedSLA: ++violated; break;
      case workload::JobOutcome::TerminatedSLA:
        FAIL() << "job " << record.job.id
               << " terminated without the ablation flag";
      case workload::JobOutcome::FailedOutage:
        FAIL() << "job " << record.job.id
               << " failed by outage with injection disabled";
      case workload::JobOutcome::Unfinished:
        FAIL() << "job " << record.job.id << " unfinished";
    }
  }
  EXPECT_EQ(rejected + fulfilled + violated, jobs.size());
  EXPECT_EQ(report.inputs.accepted, fulfilled + violated);
  EXPECT_EQ(report.inputs.fulfilled, fulfilled);

  // Physical bounds.
  EXPECT_GE(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0 + 1e-9);

  // Causality: starts after submission, finishes after starts by at least
  // the actual runtime (time-sharing can only stretch execution).
  for (const service::SlaRecord& record : report.records) {
    if (!record.accepted()) continue;
    EXPECT_GE(record.start_time, record.submit_time - sim::kTimeEpsilon);
    EXPECT_GE(record.finish_time,
              record.start_time + record.job.actual_runtime - 1e-6)
        << "job " << record.job.id
        << ": non-preemptive execution cannot beat the dedicated runtime";
  }

  // Economic sanity.
  for (const service::SlaRecord& record : report.records) {
    if (!record.accepted()) continue;
    if (param.model == economy::EconomicModel::CommodityMarket) {
      EXPECT_GE(record.utility, 0.0);
      EXPECT_LE(record.utility, record.job.budget + 1e-9);
    } else if (record.fulfilled()) {
      EXPECT_NEAR(record.utility, record.job.budget, 1e-9);
    }
  }
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    for (economy::EconomicModel model :
         {economy::EconomicModel::CommodityMarket,
          economy::EconomicModel::BidBased}) {
      for (policy::PolicyKind kind : policy::policies_for_model(model)) {
        cases.push_back({kind, model, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPoliciesPropertySweep, ::testing::ValuesIn(property_cases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = std::string(policy::to_string(info.param.kind)) +
                         "_" + economy::to_string(info.param.model) + "_s" +
                         std::to_string(info.param.seed);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// With accurate estimates every policy keeps its promises: an accepted job
// either meets its deadline or was started by a policy that never promised
// one (none here — all seven gate on deadlines at admission).
class AccurateEstimatePromiseSweep
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AccurateEstimatePromiseSweep, NoViolationsUnderAccurateEstimates) {
  const PropertyCase param = GetParam();
  const auto jobs = random_workload(param.seed, 300, /*inaccuracy=*/0.0);
  const auto report = service::simulate(jobs, param.kind, param.model);
  EXPECT_EQ(report.inputs.accepted, report.inputs.fulfilled)
      << policy::to_string(param.kind)
      << ": with exact estimates, admission control is a guarantee";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AccurateEstimatePromiseSweep,
    ::testing::Values(
        PropertyCase{policy::PolicyKind::FcfsBf,
                     economy::EconomicModel::BidBased, 5},
        PropertyCase{policy::PolicyKind::SjfBf,
                     economy::EconomicModel::CommodityMarket, 5},
        PropertyCase{policy::PolicyKind::EdfBf,
                     economy::EconomicModel::BidBased, 5},
        PropertyCase{policy::PolicyKind::Libra,
                     economy::EconomicModel::BidBased, 5},
        PropertyCase{policy::PolicyKind::LibraDollar,
                     economy::EconomicModel::CommodityMarket, 5},
        PropertyCase{policy::PolicyKind::LibraRiskD,
                     economy::EconomicModel::BidBased, 5}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = std::string(policy::to_string(info.param.kind));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Note: FirstReward is deliberately absent above — its admission control
// gates on *profitability slack*, not deadlines, so it can accept a job
// whose processors stay busy past the deadline even with exact estimates.
TEST(FirstRewardPromise, MayViolateDeadlinesByDesign) {
  const auto jobs = random_workload(5, 300, 0.0);
  const auto report = service::simulate(jobs, policy::PolicyKind::FirstReward,
                                        economy::EconomicModel::BidBased);
  // Not asserting violations exist (workload-dependent); assert the
  // decomposition stays consistent even if they do.
  EXPECT_LE(report.inputs.fulfilled, report.inputs.accepted);
}

// Monotonicity: lightening the load (higher arrival delay factor) never
// reduces the SLA percentage for deadline-gated policies on the same
// trace.
class LoadMonotonicitySweep
    : public ::testing::TestWithParam<policy::PolicyKind> {};

TEST_P(LoadMonotonicitySweep, SlaImprovesWhenLoadLightens) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 400;
  const workload::WorkloadBuilder builder(trace);
  double previous_sla = -1.0;
  for (double adf : {0.05, 0.25, 1.0}) {
    const auto jobs = builder.build(workload::QosConfig{}, adf, 0.0);
    const auto report = service::simulate(jobs, GetParam(),
                                          economy::EconomicModel::BidBased);
    EXPECT_GE(report.objectives.sla, previous_sla - 5.0)
        << "allowing small non-monotonic wiggle, large regressions are bugs";
    previous_sla = report.objectives.sla;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LoadMonotonicitySweep,
                         ::testing::Values(policy::PolicyKind::FcfsBf,
                                           policy::PolicyKind::EdfBf,
                                           policy::PolicyKind::Libra,
                                           policy::PolicyKind::LibraRiskD),
                         [](const auto& info) {
                           std::string name =
                               std::string(policy::to_string(info.param));
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Determinism: identical inputs give bit-identical outputs for every
// policy (the foundation of the experiment cache).
class DeterminismSweep : public ::testing::TestWithParam<policy::PolicyKind> {
};

TEST_P(DeterminismSweep, BitIdenticalReplay) {
  const auto jobs = random_workload(99, 250, 100.0);
  const economy::EconomicModel model =
      GetParam() == policy::PolicyKind::LibraDollar ||
              GetParam() == policy::PolicyKind::SjfBf
          ? economy::EconomicModel::CommodityMarket
          : economy::EconomicModel::BidBased;
  const auto a = service::simulate(jobs, GetParam(), model);
  const auto b = service::simulate(jobs, GetParam(), model);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.inputs.accepted, b.inputs.accepted);
  EXPECT_EQ(a.inputs.fulfilled, b.inputs.fulfilled);
  EXPECT_EQ(a.inputs.total_utility, b.inputs.total_utility);
  EXPECT_EQ(a.end_time, b.end_time);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DeterminismSweep,
    ::testing::ValuesIn(policy::all_policy_kinds()),
    [](const auto& info) {
      std::string name = std::string(policy::to_string(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The two workload generators must both drive every bid-model policy to a
// consistent, quiescent simulation (guards against generator-specific
// pathologies like zero-length jobs or monster bursts).
TEST(GeneratorCompatibility, LublinWorkloadsRunEverywhere) {
  workload::SyntheticLublinConfig trace;
  trace.job_count = 300;
  const workload::WorkloadBuilder builder(
      workload::generate_synthetic_lublin(trace));
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  for (policy::PolicyKind kind :
       policy::policies_for_model(economy::EconomicModel::BidBased)) {
    const auto report =
        service::simulate(jobs, kind, economy::EconomicModel::BidBased);
    EXPECT_EQ(report.inputs.submitted, 300u) << policy::to_string(kind);
  }
}

}  // namespace
}  // namespace utilrisk
