// Property tests for the O(log n) kernel indexes: every indexed structure
// (free-node bitmap, finish index, share index, calendar event queue) is
// checked against a naive O(n) reference model under seeded random
// operation sequences. The indexes exist purely for speed — any observable
// divergence from the naive answer is a determinism bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cluster/free_index.hpp"
#include "cluster/space_shared.hpp"
#include "cluster/time_shared.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace utilrisk::cluster {
namespace {

workload::Job make_job(workload::JobId id, std::uint32_t procs,
                       double runtime, double estimate = -1.0,
                       double deadline_factor = 8.0) {
  workload::Job job;
  job.id = id;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = estimate < 0.0 ? runtime : estimate;
  job.deadline_duration = runtime * deadline_factor;
  return job;
}

// ------------------------------------------------------------ FreeNodeIndex

TEST(FreeNodeIndexTest, BasicInsertEraseMin) {
  FreeNodeIndex index(100);
  EXPECT_TRUE(index.empty());
  index.insert(42);
  index.insert(7);
  index.insert(99);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_TRUE(index.contains(7));
  EXPECT_FALSE(index.contains(8));
  EXPECT_EQ(index.min(), 7u);
  index.erase(7);
  EXPECT_EQ(index.min(), 42u);
  EXPECT_EQ(index.pop_min(), 42u);
  EXPECT_EQ(index.pop_min(), 99u);
  EXPECT_TRUE(index.empty());
}

TEST(FreeNodeIndexTest, MultiLevelBoundaries) {
  // 100k ids exercise all three bitmap levels; the word boundaries (63/64,
  // 4095/4096) are where carry propagation between levels can go wrong.
  FreeNodeIndex index(100000);
  for (NodeId id : {0u, 63u, 64u, 4095u, 4096u, 99999u}) index.insert(id);
  EXPECT_EQ(index.min(), 0u);
  index.erase(0);
  EXPECT_EQ(index.min(), 63u);
  index.erase(63);
  EXPECT_EQ(index.min(), 64u);
  index.erase(64);
  EXPECT_EQ(index.min(), 4095u);
  index.erase(4095);
  EXPECT_EQ(index.min(), 4096u);
  index.erase(4096);
  EXPECT_EQ(index.min(), 99999u);
}

TEST(FreeNodeIndexTest, RandomOpsMatchOrderedSet) {
  FreeNodeIndex index(8192);
  std::set<NodeId> reference;
  sim::Rng rng(20260808);
  for (int step = 0; step < 20000; ++step) {
    const NodeId id = static_cast<NodeId>(rng.uniform_int(0, 8191));
    if (reference.contains(id)) {
      index.erase(id);
      reference.erase(id);
    } else {
      index.insert(id);
      reference.insert(id);
    }
    ASSERT_EQ(index.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(index.min(), *reference.begin()) << "step " << step;
    }
  }
}

// ------------------------------------- SpaceSharedCluster vs naive reference

/// Naive O(n) model of the space-shared executor: an ordered free set and
/// a flat running list, with every query answered by full rescan.
struct NaiveSpaceModel {
  struct Run {
    std::uint32_t procs = 0;
    sim::SimTime estimated_finish = 0.0;
    sim::SimTime actual_finish = 0.0;
    std::vector<NodeId> nodes;
  };

  std::uint32_t total = 0;
  std::set<NodeId> free;  // up and unoccupied
  std::set<NodeId> down;
  std::map<workload::JobId, Run> running;

  explicit NaiveSpaceModel(std::uint32_t node_count) : total(node_count) {
    for (NodeId id = 0; id < node_count; ++id) free.insert(id);
  }

  void start(const workload::Job& job, sim::SimTime now) {
    Run run;
    run.procs = job.procs;
    run.estimated_finish = now + job.estimated_runtime;
    run.actual_finish = now + job.actual_runtime;
    // Deterministic placement contract: lowest free ids first.
    for (std::uint32_t i = 0; i < job.procs; ++i) {
      run.nodes.push_back(*free.begin());
      free.erase(free.begin());
    }
    running.emplace(job.id, std::move(run));
  }

  void release(const Run& run) {
    for (NodeId id : run.nodes) {
      if (!down.contains(id)) free.insert(id);
    }
  }

  void finish_due(sim::SimTime now) {
    for (auto it = running.begin(); it != running.end();) {
      if (it->second.actual_finish <= now + sim::kTimeEpsilon) {
        release(it->second);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  void cancel(workload::JobId id) {
    auto it = running.find(id);
    release(it->second);
    running.erase(it);
  }

  /// Returns the job killed by taking `id` down, if any.
  std::optional<workload::JobId> node_down(NodeId id) {
    down.insert(id);
    free.erase(id);
    for (auto& [job, run] : running) {
      if (std::find(run.nodes.begin(), run.nodes.end(), id) !=
          run.nodes.end()) {
        release(run);
        free.erase(id);  // the dead node stays out of the pool
        running.erase(job);
        return job;
      }
    }
    return std::nullopt;
  }

  void node_up(NodeId id) {
    down.erase(id);
    free.insert(id);
  }

  [[nodiscard]] std::uint32_t up_procs() const {
    return total - static_cast<std::uint32_t>(down.size());
  }

  /// Full-rescan EASY shadow time: sort running jobs by (estimated finish,
  /// id) and accumulate until `procs` fit.
  [[nodiscard]] sim::SimTime availability(std::uint32_t procs,
                                          sim::SimTime now) const {
    if (procs > up_procs()) return sim::kTimeNever;
    std::uint32_t available = static_cast<std::uint32_t>(free.size());
    if (procs <= available) return now;
    std::vector<std::pair<sim::SimTime, workload::JobId>> order;
    for (const auto& [job, run] : running) {
      order.emplace_back(run.estimated_finish, job);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [finish, job] : order) {
      available += running.at(job).procs;
      if (available >= procs) return std::max(finish, now);
    }
    return sim::kTimeNever;
  }

  [[nodiscard]] std::uint32_t free_by(sim::SimTime when) const {
    std::uint32_t available = static_cast<std::uint32_t>(free.size());
    for (const auto& [job, run] : running) {
      if (run.estimated_finish <= when + sim::kTimeEpsilon) {
        available += run.procs;
      }
    }
    return std::min(available, total);
  }
};

TEST(SpaceSharedPropertyTest, IndexedMatchesNaiveReference) {
  constexpr std::uint32_t kNodes = 64;
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = kNodes});
  NaiveSpaceModel naive(kNodes);
  sim::Rng rng(0xB0B);
  workload::JobId next_id = 1;
  std::vector<workload::JobId> live;  // started and not yet known-finished

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.45) {
      // Start a job if it fits.
      const auto procs = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
      const double runtime = rng.uniform(5.0, 400.0);
      const double estimate = rng.uniform(2.0, 500.0);
      workload::Job job = make_job(next_id++, procs, runtime, estimate);
      if (cluster.can_start(procs)) {
        ASSERT_GE(naive.free.size(), procs);
        cluster.start(job, {});
        naive.start(job, simk.now());
        live.push_back(job.id);
      } else {
        ASSERT_LT(naive.free.size(), procs);
      }
    } else if (roll < 0.60 && !live.empty()) {
      // Cancel a random live job (it may already have finished).
      const std::size_t pick = rng.uniform_int(0, live.size() - 1);
      const workload::JobId victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      const bool cancelled = cluster.cancel(victim);
      ASSERT_EQ(cancelled, naive.running.contains(victim));
      if (cancelled) naive.cancel(victim);
    } else if (roll < 0.70) {
      // Toggle a random node.
      const NodeId id = static_cast<NodeId>(rng.uniform_int(0, kNodes - 1));
      if (cluster.is_up(id)) {
        const auto kill = cluster.node_down(id);
        const auto expected = naive.node_down(id);
        ASSERT_EQ(kill.has_value(), expected.has_value()) << "node " << id;
        if (kill) {
          ASSERT_EQ(kill->job.id, *expected);
        }
      } else {
        cluster.node_up(id);
        naive.node_up(id);
      }
    } else {
      // Advance time; completions fire inside run().
      const double until = simk.now() + rng.uniform(1.0, 60.0);
      simk.run(until);
      naive.finish_due(simk.now());
    }

    // Invariants after every step.
    ASSERT_EQ(cluster.free_procs(), naive.free.size()) << "step " << step;
    ASSERT_EQ(cluster.running_count(), naive.running.size());
    ASSERT_EQ(cluster.up_procs(), naive.up_procs());
    for (std::uint32_t procs : {1u, 4u, 16u, kNodes}) {
      ASSERT_DOUBLE_EQ(cluster.estimated_availability(procs),
                       naive.availability(procs, simk.now()))
          << "step " << step << " procs " << procs;
    }
    for (double dt : {0.0, 10.0, 100.0, 1000.0}) {
      ASSERT_EQ(cluster.estimated_procs_free_by(simk.now() + dt),
                naive.free_by(simk.now() + dt))
          << "step " << step << " dt " << dt;
    }
    // running_jobs() order = (estimated finish, id), straight from the
    // finish index; verify against a full re-sort of the naive model.
    const auto jobs = cluster.running_jobs();
    std::vector<std::pair<sim::SimTime, workload::JobId>> expected;
    for (const auto& [job, run] : naive.running) {
      expected.emplace_back(run.estimated_finish, job);
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(jobs.size(), expected.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_EQ(jobs[i].id, expected[i].second) << "step " << step;
      ASSERT_DOUBLE_EQ(jobs[i].estimated_finish, expected[i].first);
    }
  }
}

// -------------------------------------- TimeSharedCluster vs naive reference

TEST(TimeSharedPropertyTest, ShareIndexMatchesFullScan) {
  constexpr std::uint32_t kNodes = 48;
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = kNodes});
  sim::Rng rng(0xCAFE);
  workload::JobId next_id = 1;
  std::vector<workload::JobId> live;

  // Long runtimes keep every started job resident: the reference tracks
  // share changes through start/cancel/node_down/node_up, which are the
  // paths that maintain the share index.
  for (int step = 0; step < 1500; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.5) {
      const auto procs = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
      const double share = rng.uniform(0.05, 0.4);
      // Pick the `procs` least-committed up nodes with headroom, the way
      // Libra's best-fit admission does, via a full scan.
      std::vector<std::pair<double, NodeId>> eligible;
      for (NodeId id = 0; id < kNodes; ++id) {
        if (!cluster.is_up(id)) continue;
        const double committed = cluster.committed_share(id);
        if (committed + share <= 1.0 + TimeSharedCluster::kShareEpsilon) {
          eligible.emplace_back(committed, id);
        }
      }
      if (eligible.size() < procs) continue;
      std::sort(eligible.begin(), eligible.end());
      std::vector<NodeId> nodes;
      for (std::uint32_t i = 0; i < procs; ++i) {
        nodes.push_back(eligible[i].second);
      }
      workload::Job job = make_job(next_id++, procs, 1e9, 1e9);
      cluster.start(job, nodes, share, {});
      live.push_back(job.id);
    } else if (roll < 0.7 && !live.empty()) {
      const std::size_t pick = rng.uniform_int(0, live.size() - 1);
      const workload::JobId victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(cluster.cancel(victim));
    } else if (roll < 0.85) {
      const NodeId id = static_cast<NodeId>(rng.uniform_int(0, kNodes - 1));
      if (cluster.is_up(id)) {
        for (const FailureKill& kill : cluster.node_down(id)) {
          live.erase(std::find(live.begin(), live.end(), kill.job.id));
        }
      } else {
        cluster.node_up(id);
      }
    } else {
      simk.run(simk.now() + rng.uniform(1.0, 50.0));
    }

    // Reference order: full scan of up nodes, sorted best-fit (committed
    // desc, id asc) — exactly what the old per-admission sort produced.
    std::vector<std::pair<double, NodeId>> reference;
    for (NodeId id = 0; id < kNodes; ++id) {
      if (cluster.is_up(id)) {
        reference.emplace_back(cluster.committed_share(id), id);
      }
    }
    std::sort(reference.begin(), reference.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    std::vector<std::pair<double, NodeId>> visited;
    cluster.for_each_up_node_best_fit(2.0, [&](NodeId id, double committed) {
      visited.emplace_back(committed, id);
      return true;
    });
    ASSERT_EQ(visited.size(), reference.size()) << "step " << step;
    for (std::size_t i = 0; i < visited.size(); ++i) {
      ASSERT_EQ(visited[i].second, reference[i].second) << "step " << step;
      ASSERT_DOUBLE_EQ(visited[i].first, reference[i].first);
    }

    // Bounded visit skips exactly the nodes above the bound.
    const double bound = rng.uniform(0.0, 1.0);
    std::vector<NodeId> bounded;
    cluster.for_each_up_node_best_fit(bound, [&](NodeId id, double) {
      bounded.push_back(id);
      return true;
    });
    std::vector<NodeId> bounded_expected;
    for (const auto& [committed, id] : reference) {
      if (committed <= bound) bounded_expected.push_back(id);
    }
    ASSERT_EQ(bounded, bounded_expected) << "step " << step;
  }
}

TEST(TimeSharedPropertyTest, RejectsDuplicateNodeIds) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 8});
  const workload::Job job = make_job(1, 3, 100.0);
  EXPECT_THROW(cluster.start(job, {2, 5, 2}, 0.5, {}), std::logic_error);
  // The throw happened before any state mutation (validate-then-commit):
  // the same nodes remain fully available.
  for (NodeId id : {2u, 5u}) EXPECT_DOUBLE_EQ(cluster.committed_share(id), 0.0);
  cluster.start(job, {2, 5, 7}, 0.5, {});
  EXPECT_EQ(cluster.running_count(), 1u);
}

}  // namespace
}  // namespace utilrisk::cluster

// ------------------------------------------- EventQueue calendar-heap parity

namespace utilrisk::sim {
namespace {

/// Drives two queues — one pinned to the heap, one free to migrate to the
/// calendar — through an identical operation sequence and asserts the pop
/// streams are identical (time AND sequence number: the full total order).
void expect_identical_pop_streams(std::uint64_t seed, int pushes,
                                  double lo, double hi,
                                  double outlier_probability) {
  EventQueue heap_queue;
  heap_queue.force_heap_mode();
  EventQueue calendar_queue;
  Rng rng(seed);

  std::vector<EventHandle> heap_handles;
  std::vector<EventHandle> calendar_handles;
  int pushed = 0;
  bool saw_calendar = false;
  while (pushed < pushes || !calendar_queue.empty()) {
    const double roll = rng.uniform01();
    if (pushed < pushes && roll < 0.55) {
      double t = rng.uniform(lo, hi);
      if (outlier_probability > 0.0 && rng.bernoulli(outlier_probability)) {
        t *= 1e6;  // far outlier: stresses bucket-width adaptation
      }
      heap_handles.push_back(heap_queue.push(t, [] {}));
      calendar_handles.push_back(calendar_queue.push(t, [] {}));
      ++pushed;
    } else if (roll < 0.65 && !heap_handles.empty()) {
      // Cancel the same (random) pending event in both queues.
      const std::size_t pick = rng.uniform_int(0, heap_handles.size() - 1);
      const bool a = heap_handles[pick].cancel();
      const bool b = calendar_handles[pick].cancel();
      ASSERT_EQ(a, b);
    } else {
      const auto a = heap_queue.pop();
      const auto b = calendar_queue.pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_DOUBLE_EQ(a->time, b->time);
        ASSERT_EQ(a->seq, b->seq);
      }
    }
    ASSERT_EQ(heap_queue.size(), calendar_queue.size());
    ASSERT_DOUBLE_EQ(heap_queue.next_time(), calendar_queue.next_time());
    saw_calendar = saw_calendar || calendar_queue.calendar_active();
  }
  EXPECT_TRUE(saw_calendar)
      << "sequence never grew past kCalendarEnter; widen the push count";
  EXPECT_FALSE(calendar_queue.calendar_active())
      << "draining to empty must fall back to the heap";
}

TEST(CalendarQueuePropertyTest, UniformTimesMatchHeapOrder) {
  expect_identical_pop_streams(/*seed=*/1, /*pushes=*/4000, 0.0, 1000.0,
                               /*outlier_probability=*/0.0);
}

TEST(CalendarQueuePropertyTest, ClusteredTimesWithOutliersMatchHeapOrder) {
  // Tight cluster + rare million-fold outliers: the insert path detects
  // overlong buckets and rebuilds with a fresh width (the adaptation
  // cooldown path), which must not perturb pop order.
  expect_identical_pop_streams(/*seed=*/2, /*pushes=*/3000, 0.0, 1.0,
                               /*outlier_probability=*/0.01);
}

TEST(CalendarQueuePropertyTest, TiedTimesPreserveFifoAcrossModes) {
  EventQueue heap_queue;
  heap_queue.force_heap_mode();
  EventQueue calendar_queue;
  // All-identical timestamps: bucket sorting degenerates to the sequence
  // tiebreak, and the (time, seq) FIFO contract must survive the
  // heap->calendar migration mid-stream.
  for (int i = 0; i < 2000; ++i) {
    heap_queue.push(42.0, [] {});
    calendar_queue.push(42.0, [] {});
  }
  EXPECT_TRUE(calendar_queue.calendar_active());
  EventSequence prev = 0;
  bool first = true;
  while (auto a = heap_queue.pop()) {
    const auto b = calendar_queue.pop();
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a->seq, b->seq);
    if (!first) {
      ASSERT_GT(a->seq, prev) << "FIFO within equal times";
    }
    prev = a->seq;
    first = false;
  }
  EXPECT_FALSE(calendar_queue.pop().has_value());
}

}  // namespace
}  // namespace utilrisk::sim
