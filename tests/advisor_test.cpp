// Tests for the a-priori risk advisor (core/advisor.hpp) and its exp-layer
// adapter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/advisor.hpp"
#include "core/report.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"

namespace utilrisk::core {
namespace {

/// Two synthetic policies over three scenarios:
///  - "steady": performance 0.6 everywhere, volatility 0 (all objectives).
///  - "spiky": performance 0.8, volatility 0.4 (all objectives).
AdvisorInput two_policy_input() {
  AdvisorInput input;
  input.policies = {"steady", "spiky"};
  const std::array<RiskPoint, 4> steady = {
      RiskPoint{0.6, 0.0}, RiskPoint{0.6, 0.0}, RiskPoint{0.6, 0.0},
      RiskPoint{0.6, 0.0}};
  const std::array<RiskPoint, 4> spiky = {
      RiskPoint{0.8, 0.4}, RiskPoint{0.8, 0.4}, RiskPoint{0.8, 0.4},
      RiskPoint{0.8, 0.4}};
  input.points = {{steady, steady, steady}, {spiky, spiky, spiky}};
  return input;
}

TEST(AdvisorTest, RiskAversionFlipsTheRecommendation) {
  const AdvisorInput input = two_policy_input();

  AdvisorConfig tolerant;
  tolerant.risk_aversion = 0.0;
  EXPECT_EQ(advise(input, tolerant).ranked.front().policy, "spiky")
      << "without risk aversion, raw performance wins";

  AdvisorConfig averse;
  averse.risk_aversion = 1.0;
  EXPECT_EQ(advise(input, averse).ranked.front().policy, "steady")
      << "0.8 - 1.0*0.4 = 0.4 < 0.6 - 0";
}

TEST(AdvisorTest, ScoreIsMeanMinusLambdaSigma) {
  const AdvisorInput input = two_policy_input();
  AdvisorConfig config;
  config.risk_aversion = 0.5;
  const AdvisorReport report = advise(input, config);
  for (const PolicyAdvice& advice : report.ranked) {
    EXPECT_NEAR(advice.score,
                advice.mean_performance - 0.5 * advice.mean_volatility,
                1e-12);
  }
}

TEST(AdvisorTest, ObjectiveWeightsSelectTheRelevantObjective) {
  AdvisorInput input;
  input.policies = {"wait-hero", "profit-hero"};
  // wait-hero: ideal wait, poor profitability; profit-hero: the reverse.
  const std::array<RiskPoint, 4> wait_hero = {
      RiskPoint{1.0, 0.0},   // wait
      RiskPoint{0.5, 0.1},   // SLA
      RiskPoint{0.5, 0.1},   // reliability
      RiskPoint{0.1, 0.0}};  // profitability
  const std::array<RiskPoint, 4> profit_hero = {
      RiskPoint{0.1, 0.0}, RiskPoint{0.5, 0.1}, RiskPoint{0.5, 0.1},
      RiskPoint{1.0, 0.0}};
  input.points = {{wait_hero, wait_hero}, {profit_hero, profit_hero}};

  AdvisorConfig wait_only;
  wait_only.objective_weights = {1.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(advise(input, wait_only).ranked.front().policy, "wait-hero");

  AdvisorConfig profit_only;
  profit_only.objective_weights = {0.0, 0.0, 0.0, 1.0};
  EXPECT_EQ(advise(input, profit_only).ranked.front().policy, "profit-hero");

  const AdvisorReport balanced = advise(input, AdvisorConfig{});
  EXPECT_EQ(balanced.best_per_objective[static_cast<std::size_t>(
                Objective::Wait)],
            "wait-hero");
  EXPECT_EQ(balanced.best_per_objective[static_cast<std::size_t>(
                Objective::Profitability)],
            "profit-hero");
}

TEST(AdvisorTest, MostConsistentIsLowestMeanVolatility) {
  const AdvisorReport report = advise(two_policy_input(), AdvisorConfig{});
  EXPECT_EQ(report.most_consistent, "steady");
}

TEST(AdvisorTest, SummaryNamesTheWinner) {
  const AdvisorReport report = advise(two_policy_input(), AdvisorConfig{});
  EXPECT_NE(report.summary.find("Recommended policy"), std::string::npos);
  EXPECT_NE(report.summary.find(report.ranked.front().policy),
            std::string::npos);
}

TEST(AdvisorTest, ValidatesInputAndConfig) {
  AdvisorInput empty;
  EXPECT_THROW((void)advise(empty, {}), std::invalid_argument);

  AdvisorInput ragged = two_policy_input();
  ragged.points[1].pop_back();
  EXPECT_THROW((void)advise(ragged, {}), std::invalid_argument);

  AdvisorConfig bad_weights;
  bad_weights.objective_weights = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW((void)advise(two_policy_input(), bad_weights),
               std::invalid_argument);

  AdvisorConfig negative;
  negative.risk_aversion = -1.0;
  EXPECT_THROW((void)advise(two_policy_input(), negative),
               std::invalid_argument);
}

TEST(AdvisorTest, EndToEndFromASweep) {
  exp::ExperimentConfig config;
  config.model = economy::EconomicModel::BidBased;
  config.set = exp::ExperimentSet::B;
  config.trace.job_count = 150;
  exp::ExperimentRunner runner(config);
  const auto sweep = runner.run_sweep(
      {policy::PolicyKind::Libra, policy::PolicyKind::LibraRiskD,
       policy::PolicyKind::FirstReward});
  const AdvisorInput input = exp::advisor_input(sweep);
  ASSERT_EQ(input.policies.size(), 3u);
  ASSERT_EQ(input.points.size(), 3u);
  ASSERT_EQ(input.points[0].size(), 12u);

  const AdvisorReport report = advise(input, AdvisorConfig{});
  EXPECT_EQ(report.ranked.size(), 3u);
  // Scores are bounded by construction.
  for (const PolicyAdvice& advice : report.ranked) {
    EXPECT_GE(advice.mean_performance, 0.0);
    EXPECT_LE(advice.mean_performance, 1.0);
    EXPECT_GE(advice.mean_volatility, 0.0);
  }
  // Ranking is by descending score.
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_GE(report.ranked[i - 1].score, report.ranked[i].score);
  }
}

TEST(WeightSensitivityTest, FindsTheCrossover) {
  AdvisorInput input;
  input.policies = {"wait-hero", "profit-hero"};
  const std::array<RiskPoint, 4> wait_hero = {
      RiskPoint{1.0, 0.0}, RiskPoint{0.5, 0.0}, RiskPoint{0.5, 0.0},
      RiskPoint{0.1, 0.0}};
  const std::array<RiskPoint, 4> profit_hero = {
      RiskPoint{0.1, 0.0}, RiskPoint{0.5, 0.0}, RiskPoint{0.5, 0.0},
      RiskPoint{1.0, 0.0}};
  input.points = {{wait_hero, wait_hero}, {profit_hero, profit_hero}};

  const auto sweep =
      weight_sensitivity(input, Objective::Profitability, 11);
  ASSERT_EQ(sweep.size(), 11u);
  EXPECT_DOUBLE_EQ(sweep.front().weight, 0.0);
  EXPECT_DOUBLE_EQ(sweep.back().weight, 1.0);
  EXPECT_EQ(sweep.front().winner, "wait-hero")
      << "at weight 0 the profitability gap is invisible";
  EXPECT_EQ(sweep.back().winner, "profit-hero");
  // Exactly one crossover for two policies with linear scores.
  std::size_t flips = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].winner != sweep[i - 1].winner) ++flips;
  }
  EXPECT_EQ(flips, 1u);
}

TEST(WeightSensitivityTest, ScoresAreMonotoneForTheFocusSpecialist) {
  AdvisorInput input = two_policy_input();
  const auto sweep = weight_sensitivity(input, Objective::Sla, 5);
  for (const auto& point : sweep) {
    EXPECT_FALSE(point.winner.empty());
    EXPECT_GE(point.score, 0.0);
  }
  EXPECT_THROW((void)weight_sensitivity(input, Objective::Sla, 1),
               std::invalid_argument);
}

TEST(AdvisorConfigTest, ValidateRejectsNaNAndNegativeWeights) {
  AdvisorConfig config;
  config.objective_weights = {std::nan(""), 0.25, 0.25, 0.5};
  EXPECT_THROW(config.validate(), std::invalid_argument)
      << "NaN must not slip through as a weight";
  config.objective_weights = {-0.25, 0.5, 0.5, 0.25};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.objective_weights = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NO_THROW(config.validate());
}

TEST(AdvisorConfigTest, ValidateRejectsNonUnitSumInsteadOfRenormalizing) {
  AdvisorConfig config;
  config.objective_weights = {0.5, 0.5, 0.5, 0.5};
  try {
    config.validate();
    FAIL() << "a sum of 2 must be rejected, not silently renormalized";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("not renormalizing"),
              std::string::npos)
        << "the error must say the config refuses to renormalize: "
        << e.what();
  }
  // A benign rounding residue is fine.
  config.objective_weights = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NO_THROW(config.validate());
}

TEST(AdvisorConfigTest, ValidateRejectsBadRiskAversion) {
  AdvisorConfig config;
  config.risk_aversion = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.risk_aversion = std::nan("");
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.risk_aversion = 0.0;
  EXPECT_NO_THROW(config.validate()) << "risk-neutral is a valid stance";
}

TEST(AdvisorConfigTest, AdviseValidatesItsConfig) {
  AdvisorInput input = two_policy_input();
  AdvisorConfig config;
  config.objective_weights = {1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW((void)advise(input, config), std::invalid_argument);
}

TEST(AdvisorConfigTest, ParseWeightsIsStrict) {
  const auto weights = AdvisorConfig::parse_weights("0.1,0.2,0.3,0.4");
  EXPECT_DOUBLE_EQ(weights[0], 0.1);
  EXPECT_DOUBLE_EQ(weights[3], 0.4);
  EXPECT_THROW((void)AdvisorConfig::parse_weights("0.5,0.5"),
               std::invalid_argument)
      << "exactly four weights";
  EXPECT_THROW((void)AdvisorConfig::parse_weights("0.25,0.25,0.25,0.25,0"),
               std::invalid_argument);
  EXPECT_THROW((void)AdvisorConfig::parse_weights("0.25,x,0.25,0.25"),
               std::invalid_argument)
      << "a non-numeric token is a structured error";
  EXPECT_THROW((void)AdvisorConfig::parse_weights("0.25,,0.25,0.25"),
               std::invalid_argument);
  EXPECT_THROW((void)AdvisorConfig::parse_weights(""),
               std::invalid_argument);
}

TEST(AdvisorInputTest, ValidateRejectsNonFiniteRiskPoints) {
  AdvisorInput input = two_policy_input();
  input.points[0][1][2].performance = std::nan("");
  EXPECT_THROW(input.validate(), std::invalid_argument);
  input = two_policy_input();
  input.points[1][0][0].volatility = -0.1;
  EXPECT_THROW(input.validate(), std::invalid_argument)
      << "a negative sigma is a measurement bug, not a preference";
}

TEST(ReportTest, GnuplotScriptReferencesDataAndPolicies) {
  AdvisorInput input = two_policy_input();
  RiskPlot plot;
  plot.title = "script test";
  plot.series = {{"steady", {{0.6, 0.0}, {0.7, 0.1}}},
                 {"spiky", {{0.8, 0.4}, {0.9, 0.3}}}};
  std::ostringstream out;
  write_gnuplot_script(out, plot, "data.dat", "out.png");
  const std::string script = out.str();
  EXPECT_NE(script.find("set output 'out.png'"), std::string::npos);
  EXPECT_NE(script.find("'data.dat' index 0"), std::string::npos);
  EXPECT_NE(script.find("'data.dat' index 1"), std::string::npos);
  EXPECT_NE(script.find("title 'steady'"), std::string::npos);
  EXPECT_NE(script.find("title 'spiky'"), std::string::npos);
  EXPECT_NE(script.find("with lines dt 2"), std::string::npos)
      << "trend lines rendered for policies with valid fits";
}

}  // namespace
}  // namespace utilrisk::core
