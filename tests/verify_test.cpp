// Tests for the deterministic-replay verification layer: digest
// primitives, canonical run digests, cross-run invariants and the
// golden-digest regression harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/manifest.hpp"
#include "service/computing_service.hpp"
#include "sim/distributions.hpp"
#include "sim/rng.hpp"
#include "verify/digest.hpp"
#include "verify/golden.hpp"
#include "verify/invariants.hpp"
#include "verify/run_digest.hpp"

namespace utilrisk::verify {
namespace {

// ------------------------------------------------------ Digest primitives

TEST(DigestTest, EmptyStreamIsOffsetBasis) {
  DigestStream stream;
  EXPECT_EQ(stream.value(), kFnvOffsetBasis);
}

TEST(DigestTest, StreamIsOrderSensitive) {
  DigestStream ab;
  ab.put_u64(1);
  ab.put_u64(2);
  DigestStream ba;
  ba.put_u64(2);
  ba.put_u64(1);
  EXPECT_NE(ab.value(), ba.value());
}

TEST(DigestTest, StringsAreLengthPrefixed) {
  DigestStream split;
  split.put_string("ab");
  split.put_string("c");
  DigestStream other;
  other.put_string("a");
  other.put_string("bc");
  EXPECT_NE(split.value(), other.value());
}

TEST(DigestTest, DoublesAreCanonicalised) {
  EXPECT_EQ(canonical_double_bits(-0.0), canonical_double_bits(0.0));
  EXPECT_EQ(canonical_double_bits(std::numeric_limits<double>::quiet_NaN()),
            canonical_double_bits(std::numeric_limits<double>::signaling_NaN()));
  EXPECT_EQ(canonical_double_bits(std::nan("0x123")),
            0x7ff8000000000000ULL);
  EXPECT_NE(canonical_double_bits(1.0), canonical_double_bits(-1.0));
  // Regular values hash their exact bit pattern: nextafter must differ.
  EXPECT_NE(canonical_double_bits(1.0),
            canonical_double_bits(std::nextafter(1.0, 2.0)));
}

TEST(DigestTest, UnorderedDigestIsPermutationInvariant) {
  const std::vector<std::uint64_t> hashes = {7, 42, 42, 0x1234567890abcdefULL};
  UnorderedDigest forward;
  for (std::uint64_t h : hashes) forward.add(h);
  UnorderedDigest backward;
  for (auto it = hashes.rbegin(); it != hashes.rend(); ++it) backward.add(*it);
  EXPECT_EQ(forward.value(), backward.value());
  EXPECT_EQ(forward.count(), 4u);

  // Multiset semantics: dropping one copy of a duplicate changes the value.
  UnorderedDigest fewer;
  fewer.add(7);
  fewer.add(42);
  fewer.add(0x1234567890abcdefULL);
  EXPECT_NE(forward.value(), fewer.value());
}

TEST(DigestTest, MergedPartitionsDigestLikeTheUnion) {
  // Any partitioning of the same element multiset must merge to the
  // digest of a single accumulator over all of it — the property the
  // sharded serving path's combined decision digest is built on.
  UnorderedDigest whole;
  UnorderedDigest left;
  UnorderedDigest right;
  for (std::uint64_t element = 1; element <= 20; ++element) {
    whole.add(element * 0x1234567ULL);
    (element % 3 == 0 ? left : right).add(element * 0x1234567ULL);
  }
  UnorderedDigest merged;
  merged.merge(right);  // merge order must not matter either
  merged.merge(left);
  EXPECT_EQ(merged.value(), whole.value());
  EXPECT_EQ(merged.count(), whole.count());
}

TEST(DigestTest, HexRoundTrips) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xdeadbeef12345678ULL), "deadbeef12345678");
  EXPECT_EQ(parse_hex("deadbeef12345678"), 0xdeadbeef12345678ULL);
  EXPECT_EQ(parse_hex("ff"), 255u);
  EXPECT_THROW((void)parse_hex(""), std::invalid_argument);
  EXPECT_THROW((void)parse_hex("xyz"), std::invalid_argument);
  EXPECT_THROW((void)parse_hex("00000000000000000"), std::invalid_argument);
}

// --------------------------------------------- Distribution golden samples
//
// The digest contract rests on the samplers being pure functions of the
// xoshiro stream. These literals were generated once from the reference
// implementation; a platform, compiler or refactor that changes any bit
// of any sample fails here first, long before a golden digest diverges.

TEST(DistributionGoldenTest, Uniform01MatchesGoldenSamples) {
  sim::Rng rng(12345);
  EXPECT_DOUBLE_EQ(rng.uniform01(), 0.74380816315658937);
  EXPECT_DOUBLE_EQ(rng.uniform01(), 0.13004553462783452);
  EXPECT_DOUBLE_EQ(rng.uniform01(), 0.96333449301285445);
  EXPECT_DOUBLE_EQ(rng.uniform01(), 0.048340114836345816);
}

TEST(DistributionGoldenTest, ExponentialMatchesGoldenSamples) {
  sim::Rng rng(12345);
  EXPECT_DOUBLE_EQ(sample_exponential(rng, 10.0), 13.61828752465019);
  EXPECT_DOUBLE_EQ(sample_exponential(rng, 10.0), 1.3931440735590608);
  EXPECT_DOUBLE_EQ(sample_exponential(rng, 10.0), 33.059188299812973);
  EXPECT_DOUBLE_EQ(sample_exponential(rng, 10.0), 0.49547571508130717);
}

TEST(DistributionGoldenTest, LognormalMatchesGoldenSamples) {
  sim::Rng rng(12345);
  EXPECT_DOUBLE_EQ(sample_lognormal_mean_cv(rng, 100.0, 1.5),
                   84.037681033622604);
  EXPECT_DOUBLE_EQ(sample_lognormal_mean_cv(rng, 100.0, 1.5),
                   57.163152897343522);
  EXPECT_DOUBLE_EQ(sample_lognormal_mean_cv(rng, 100.0, 1.5),
                   22.661925897619124);
  EXPECT_DOUBLE_EQ(sample_lognormal_mean_cv(rng, 100.0, 1.5),
                   43.972888301739708);
}

// ------------------------------------------------------------- Run digest

exp::ExperimentConfig tiny_config(economy::EconomicModel model) {
  exp::ExperimentConfig config;
  config.model = model;
  config.set = exp::ExperimentSet::B;
  config.trace.job_count = 60;
  return config;
}

service::SimulationReport run_tiny(const exp::ExperimentConfig& config,
                                   policy::PolicyKind policy) {
  const workload::WorkloadBuilder builder(config.trace);
  return exp::simulate_run_report(config, builder, policy,
                                  config.default_settings());
}

TEST(RunDigestTest, IdenticalRunsDigestIdentically) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  const auto a = run_tiny(config, policy::PolicyKind::Libra);
  const auto b = run_tiny(config, policy::PolicyKind::Libra);
  EXPECT_FALSE(a.digest.empty());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(run_digest(a), run_digest(b));
}

TEST(RunDigestTest, SeedPolicyAndModelAllLandInTheDigest) {
  auto config = tiny_config(economy::EconomicModel::BidBased);
  const auto base = run_tiny(config, policy::PolicyKind::Libra);

  const auto other_policy = run_tiny(config, policy::PolicyKind::EdfBf);
  EXPECT_NE(base.digest, other_policy.digest);

  auto reseeded_config = config;
  reseeded_config.qos_seed = config.qos_seed + 1;
  const auto reseeded = run_tiny(reseeded_config, policy::PolicyKind::Libra);
  EXPECT_NE(base.digest, reseeded.digest);

  const auto commodity =
      run_tiny(tiny_config(economy::EconomicModel::CommodityMarket),
               policy::PolicyKind::Libra);
  EXPECT_NE(base.digest, commodity.digest);
}

TEST(RunDigestTest, MoneyComponentIgnoresSettlementOrder) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  auto report = run_tiny(config, policy::PolicyKind::Libra);
  ASSERT_GE(report.ledger_entries.size(), 2u);
  const RunDigest before = run_digest(report);
  std::reverse(report.ledger_entries.begin(), report.ledger_entries.end());
  const RunDigest after = run_digest(report);
  EXPECT_EQ(before.money_flows, after.money_flows);
}

TEST(RunDigestTest, TenantAttributionLandsInTheDigest) {
  // Digest schema v2: two runs differing only in tenant assignment must
  // digest apart (a broken tenant-aware router used to pass replay), but
  // tenantless records keep their v1 digests — the golden corpus gate.
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  auto report = run_tiny(config, policy::PolicyKind::Libra);
  ASSERT_FALSE(report.records.empty());
  const RunDigest tenantless = run_digest(report);
  report.records[0].job.tenant = 7;
  const RunDigest attributed = run_digest(report);
  EXPECT_NE(tenantless.event_stream, attributed.event_stream);
  EXPECT_NE(tenantless.combined, attributed.combined);
  report.records[0].job.tenant = 9;
  EXPECT_NE(run_digest(report).combined, attributed.combined);
  report.records[0].job.tenant = 0;
  EXPECT_EQ(run_digest(report), tenantless);
}

// -------------------------------------------------------------- Invariants

TEST(InvariantTest, RealRunsSatisfyEveryInvariant) {
  for (const auto model : {economy::EconomicModel::CommodityMarket,
                           economy::EconomicModel::BidBased}) {
    const auto config = tiny_config(model);
    const auto report = run_tiny(config, policy::PolicyKind::Libra);
    const InvariantReport result =
        check_invariants(report, config.machine.node_count);
    EXPECT_TRUE(result.ok()) << result.to_string();
  }
}

TEST(InvariantTest, DetectsMoneyLeak) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  auto report = run_tiny(config, policy::PolicyKind::Libra);
  report.ledger_total_utility += 1.0;  // money out of thin air
  const InvariantReport result = check_invariants(report);
  EXPECT_FALSE(result.ok());
  EXPECT_THROW(enforce_invariants(report), std::logic_error);
}

TEST(InvariantTest, DetectsBrokenOutcomePartition) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  auto report = run_tiny(config, policy::PolicyKind::Libra);
  ASSERT_FALSE(report.records.empty());
  report.records.front().outcome = workload::JobOutcome::Unfinished;
  EXPECT_FALSE(check_invariants(report).ok());
}

TEST(InvariantTest, DetectsClockViolation) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  auto report = run_tiny(config, policy::PolicyKind::Libra);
  auto settled = std::find_if(
      report.records.begin(), report.records.end(),
      [](const service::SlaRecord& r) { return r.fulfilled(); });
  ASSERT_NE(settled, report.records.end());
  settled->finish_time = settled->start_time - 10.0;
  EXPECT_FALSE(check_invariants(report).ok());
}

TEST(InvariantTest, DetectsImpossibleUtilization) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  auto report = run_tiny(config, policy::PolicyKind::Libra);
  report.utilization = 1.5;
  EXPECT_FALSE(check_invariants(report, config.machine.node_count).ok());
}

// ---------------------------------------------------------- Golden harness

class GoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "utilrisk_golden_test")
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static GoldenConfig tiny_golden() {
    GoldenConfig config;
    config.model = economy::EconomicModel::BidBased;
    config.job_count = 25;  // keep the full matrix affordable in a test
    return config;
  }

  std::string dir_;
};

TEST_F(GoldenTest, RecordLoadCheckRoundTrips) {
  const GoldenConfig config = tiny_golden();
  const GoldenFile recorded = compute_golden(config);
  ASSERT_FALSE(recorded.entries.empty());
  EXPECT_TRUE(std::is_sorted(
      recorded.entries.begin(), recorded.entries.end(),
      [](const GoldenEntry& a, const GoldenEntry& b) { return a.key < b.key; }));

  const std::string path = write_golden(recorded, dir_);
  const GoldenFile loaded = load_golden(path);
  EXPECT_EQ(loaded.config.job_count, config.job_count);
  EXPECT_EQ(loaded.config.model, config.model);
  ASSERT_EQ(loaded.entries.size(), recorded.entries.size());
  EXPECT_EQ(loaded.combined(), recorded.combined());

  const CheckReport check = check_golden(loaded);
  EXPECT_TRUE(check.ok()) << check.diagnostics.front();
  EXPECT_EQ(check.records_checked, recorded.entries.size());
}

TEST_F(GoldenTest, SerialAndParallelComputeIdenticalDigests) {
  const GoldenConfig config = tiny_golden();
  const GoldenFile serial = compute_golden(config, 1);
  const GoldenFile parallel = compute_golden(config, 3);
  ASSERT_EQ(serial.entries.size(), parallel.entries.size());
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    EXPECT_EQ(serial.entries[i].key, parallel.entries[i].key);
    EXPECT_EQ(serial.entries[i].digest, parallel.entries[i].digest) << "key "
        << serial.entries[i].key;
  }
  EXPECT_EQ(serial.combined(), parallel.combined());
}

TEST_F(GoldenTest, PerturbedSeedFailsNamingTheFirstDivergingRecord) {
  GoldenFile golden = compute_golden(tiny_golden());
  golden.config.qos_seed += 1;  // the deliberate perturbation
  const CheckReport check = check_golden(golden);
  EXPECT_FALSE(check.ok());
  ASSERT_FALSE(check.diagnostics.empty());
  EXPECT_EQ(check.diagnostics.front().rfind("first diverging record: ", 0),
            0u)
      << check.diagnostics.front();
}

TEST_F(GoldenTest, LoadRejectsTamperedFiles) {
  const std::string path = write_golden(compute_golden(tiny_golden()), dir_);

  // Flip one digest nibble: the trailer no longer matches the entries.
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const auto tab = text.find('\t');
  ASSERT_NE(tab, std::string::npos);
  text[tab + 1] = text[tab + 1] == '0' ? '1' : '0';
  {
    std::ofstream out(path);
    out << text;
  }
  EXPECT_THROW((void)load_golden(path), std::runtime_error);
  EXPECT_THROW((void)load_golden(path + ".does_not_exist"),
               std::runtime_error);
}

// ------------------------------------------------------------ Sweep digest

TEST(SweepDigestTest, SerialSweepDigestIsDeterministic) {
  const auto config = tiny_config(economy::EconomicModel::BidBased);
  exp::ExperimentRunner a(config);
  exp::ExperimentRunner b(config);
  const std::vector<policy::PolicyKind> policies = {policy::PolicyKind::Libra};
  EXPECT_EQ(sweep_digest(a.run_sweep(policies)),
            sweep_digest(b.run_sweep(policies)));
}

// -------------------------------------------------------- Manifest wiring

TEST(ManifestDigestTest, DigestFieldRoundTripsThroughJson) {
  obs::RunManifest manifest;
  manifest.command = "replay";
  manifest.digest = "deadbeef12345678";
  std::ostringstream out;
  manifest.write(out);
  const obs::RunManifest parsed = obs::RunManifest::parse(out.str());
  EXPECT_EQ(parsed.digest, "deadbeef12345678");
}

}  // namespace
}  // namespace utilrisk::verify
