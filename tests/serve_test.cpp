// Tests for the online admission service: wire protocol, bounded queue
// backpressure, engine determinism, stdio/socket serving, the
// drain-on-shutdown zero-dropped-responses guarantee, the write-ahead
// admission journal with deterministic crash recovery, and the overload
// (shed/brownout) and slow-client defenses.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/bounded_queue.hpp"
#include "serve/engine.hpp"
#include "serve/journal.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"

namespace utilrisk::serve {
namespace {

Request make_request(std::uint64_t id, double t) {
  Request request;
  request.id = id;
  request.submit_time = t;
  request.procs = 4;
  request.runtime = 100.0;
  request.estimate = 120.0;
  request.deadline = 4000.0;
  request.budget = 50000.0;
  return request;
}

// ----------------------------------------------------------------- protocol

TEST(ProtocolTest, RequestRoundTrips) {
  Request request = make_request(7, 12.5);
  request.penalty_rate = 0.25;
  request.urgency = workload::Urgency::High;
  request.deadline_ms = 250.0;
  const Request parsed = parse_request(encode_request(request));
  EXPECT_DOUBLE_EQ(parsed.deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_DOUBLE_EQ(parsed.submit_time, request.submit_time);
  EXPECT_EQ(parsed.procs, request.procs);
  EXPECT_DOUBLE_EQ(parsed.runtime, request.runtime);
  EXPECT_DOUBLE_EQ(parsed.estimate, request.estimate);
  EXPECT_DOUBLE_EQ(parsed.deadline, request.deadline);
  EXPECT_DOUBLE_EQ(parsed.budget, request.budget);
  EXPECT_DOUBLE_EQ(parsed.penalty_rate, request.penalty_rate);
  EXPECT_EQ(parsed.urgency, workload::Urgency::High);
}

TEST(ProtocolTest, ResponseRoundTripsEveryStatus) {
  for (const Status status : {Status::Accepted, Status::Rejected,
                              Status::Busy, Status::Error, Status::Shed}) {
    Response response;
    response.id = 3;
    response.status = status;
    response.price = 42.5;
    response.risk = 0.125;
    response.virtual_time = 99.0;
    response.retry_after_ms = 50.0;
    response.message = "line 1 \"quoted\"";
    const Response parsed = parse_response(encode_response(response));
    EXPECT_EQ(parsed.id, response.id);
    EXPECT_EQ(parsed.status, status);
    if (status == Status::Accepted || status == Status::Rejected) {
      EXPECT_DOUBLE_EQ(parsed.price, response.price);
      EXPECT_DOUBLE_EQ(parsed.risk, response.risk);
    }
    if (status == Status::Busy) {
      EXPECT_DOUBLE_EQ(parsed.retry_after_ms, response.retry_after_ms);
    }
    if (status == Status::Error || status == Status::Shed) {
      EXPECT_EQ(parsed.message, response.message);
    }
  }
}

TEST(ProtocolTest, RejectsMalformedAndInvalidRequests) {
  EXPECT_THROW((void)parse_request("not json"), ProtocolError);
  EXPECT_THROW((void)parse_request("[1,2,3]"), ProtocolError);
  EXPECT_THROW((void)parse_request("{\"id\":1}"), ProtocolError)
      << "missing type";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"cancel","id":1,"procs":1,"runtime":1,"deadline":1,"budget":0})"),
      ProtocolError)
      << "unknown type";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":0,"runtime":1,"deadline":1,"budget":0})"),
      ProtocolError)
      << "procs must be a positive integer";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":2.5,"runtime":1,"deadline":1,"budget":0})"),
      ProtocolError)
      << "fractional procs";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":1,"runtime":-5,"deadline":1,"budget":0})"),
      ProtocolError)
      << "negative runtime";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":1,"runtime":1,"deadline":1,"budget":-1})"),
      ProtocolError)
      << "negative budget";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":1,"runtime":1,"deadline":1,"budget":0,"urgency":"medium"})"),
      ProtocolError)
      << "bad urgency";
}

TEST(ProtocolTest, RejectsOversizedRequestLine) {
  std::string line = R"({"type":"submit","id":1,"padding":")";
  line.append(kMaxRequestBytes, 'x');
  line += "\"}";
  EXPECT_THROW((void)parse_request(line), ProtocolError);
}

TEST(ProtocolTest, DecisionHashCoversIdStatusAndPrice) {
  Response a;
  a.id = 1;
  a.status = Status::Accepted;
  a.price = 10.0;
  Response b = a;
  EXPECT_EQ(decision_hash(a), decision_hash(b));
  b.status = Status::Rejected;
  EXPECT_NE(decision_hash(a), decision_hash(b));
  b = a;
  b.price = 11.0;
  EXPECT_NE(decision_hash(a), decision_hash(b));
  b = a;
  b.id = 2;
  EXPECT_NE(decision_hash(a), decision_hash(b));
}

// ------------------------------------------------------------ bounded queue

TEST(BoundedQueueTest, BackpressureAtCapacityAndDrainAfterClose) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "full queue must refuse";
  EXPECT_EQ(queue.size(), 2u);

  auto item = queue.pop_wait();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  EXPECT_TRUE(queue.try_push(3)) << "pop frees a slot";

  queue.close();
  EXPECT_FALSE(queue.try_push(4)) << "closed queue refuses pushes";
  EXPECT_EQ(queue.pop_wait().value(), 2) << "close still drains";
  EXPECT_EQ(queue.pop_wait().value(), 3);
  EXPECT_FALSE(queue.pop_wait().has_value())
      << "closed and empty wakes consumers with nullopt";
}

TEST(BoundedQueueTest, HoldGatesConsumersUntilReleaseOrClose) {
  BoundedQueue<int> queue(4);
  queue.hold();
  EXPECT_TRUE(queue.try_push(1)) << "a hold only gates the consumer side";
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 4), 0u) << "held queue yields nothing";

  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto item = queue.pop_wait();
    popped.store(true);
    EXPECT_TRUE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(popped.load()) << "pop_wait must block while held";
  queue.release();
  consumer.join();
  EXPECT_TRUE(popped.load());

  // close() overrides a hold so drains always make progress.
  queue.hold();
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_EQ(queue.pop_wait().value(), 2);
  EXPECT_FALSE(queue.pop_wait().has_value());
}

TEST(BoundedQueueTest, BatchPopCoalesces) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.try_pop_batch(out, 10), 2u) << "stops when empty";
  EXPECT_EQ(queue.try_pop_batch(out, 10), 0u);
}

// ----------------------------------------------------------------- engine

EngineStats run_stream(const std::vector<Request>& stream,
                       std::size_t max_batch) {
  EngineConfig config;
  config.queue_capacity = 64;
  config.max_batch = max_batch;
  AdmissionEngine engine(config);
  engine.start();
  for (const Request& request : stream) {
    while (!engine.submit(request, [](const Response&) {})) {
      std::this_thread::yield();
    }
  }
  return engine.drain();
}

TEST(AdmissionEngineTest, SameSeedStreamsYieldIdenticalDecisions) {
  LoadgenConfig config;
  config.requests = 150;
  config.seed = 42;
  const std::vector<Request> stream = make_request_stream(config);
  ASSERT_EQ(stream.size(), 150u);

  const EngineStats first = run_stream(stream, /*max_batch=*/64);
  const EngineStats second = run_stream(stream, /*max_batch=*/64);
  EXPECT_EQ(first.processed, 150u);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.rejected, second.rejected);
  EXPECT_EQ(first.decision_digest, second.decision_digest);
  EXPECT_FALSE(first.decision_digest.empty());
}

TEST(AdmissionEngineTest, DecisionsAreBatchSizeInvariant) {
  LoadgenConfig config;
  config.requests = 120;
  config.seed = 7;
  const std::vector<Request> stream = make_request_stream(config);
  // Batch coalescing is a wall-clock artefact; decisions must not see it.
  const EngineStats one = run_stream(stream, /*max_batch=*/1);
  const EngineStats many = run_stream(stream, /*max_batch=*/64);
  EXPECT_EQ(one.decision_digest, many.decision_digest);
  EXPECT_EQ(one.accepted, many.accepted);
}

TEST(AdmissionEngineTest, RequestStreamIsDeterministicAndOrdered) {
  LoadgenConfig config;
  config.requests = 80;
  config.seed = 99;
  const std::vector<Request> a = make_request_stream(config);
  const std::vector<Request> b = make_request_stream(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(encode_request(a[i]), encode_request(b[i]));
    EXPECT_EQ(a[i].id, i + 1) << "ids are 1..N in submission order";
    if (i > 0) {
      EXPECT_GE(a[i].submit_time, a[i - 1].submit_time)
          << "arrivals are non-decreasing";
    }
  }
}

TEST(AdmissionEngineTest, QueueFullYieldsBusyAndDrainAnswersEverything) {
  EngineConfig config;
  config.queue_capacity = 8;
  AdmissionEngine engine(config);
  engine.start();
  engine.pause();  // deterministically hold the queue at depth

  std::atomic<int> completions{0};
  for (std::uint64_t id = 1; id <= 8; ++id) {
    EXPECT_TRUE(engine.submit(make_request(id, 0.0),
                              [&](const Response&) { ++completions; }));
  }
  EXPECT_EQ(engine.queue_depth(), 8u);
  EXPECT_FALSE(engine.submit(make_request(9, 0.0), [](const Response&) {}))
      << "a full queue is backpressure, not blocking";

  const Response busy = engine.make_busy_response(make_request(9, 0.0));
  EXPECT_EQ(busy.id, 9u);
  EXPECT_EQ(busy.status, Status::Busy);
  EXPECT_GT(busy.retry_after_ms, 0.0);

  // Drain resumes the paused engine and must answer all eight.
  const EngineStats stats = engine.drain();
  EXPECT_EQ(completions.load(), 8);
  EXPECT_EQ(stats.processed, 8u);
  EXPECT_FALSE(engine.submit(make_request(10, 0.0), [](const Response&) {}))
      << "a drained engine refuses new work";
}

// ------------------------------------------------------------- stdio server

TEST(StdioServerTest, AnswersEveryLineAndCountsFailures) {
  EngineConfig config;
  AdmissionEngine engine(config);
  engine.start();

  std::string oversized(300, 'x');
  std::istringstream in(encode_request(make_request(1, 0.0)) + "\n" +
                        "not json\n" + oversized + "\n" +
                        encode_request(make_request(2, 5.0)) + "\n");
  std::ostringstream out;
  const ServerStats stats =
      Server::run_stdio(engine, in, out, /*max_line_bytes=*/256);

  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.responses, 4u) << "every line gets a response";

  std::istringstream replies(out.str());
  std::string line;
  std::size_t decisions = 0;
  std::size_t errors = 0;
  while (std::getline(replies, line)) {
    const Response response = parse_response(line);
    if (response.status == Status::Error) {
      ++errors;
    } else {
      ++decisions;
    }
  }
  EXPECT_EQ(decisions, 2u);
  EXPECT_EQ(errors, 2u);
}

// ------------------------------------------------------------ socket server

TEST(SocketServerTest, ClosedLoopRunMatchesServerDigest) {
  EngineConfig engine_config;
  AdmissionEngine engine(engine_config);
  engine.start();

  ServerConfig server_config;
  server_config.tcp_port = 0;  // ephemeral loopback port
  Server server(server_config, engine);
  server.start();
  ASSERT_GT(server.bound_port(), 0);

  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 200;
  load.seed = 42;
  const LoadgenReport report = run_loadgen(load);
  EXPECT_EQ(report.sent, 200u);
  EXPECT_EQ(report.responses, 200u);
  EXPECT_EQ(report.dropped, 0u) << "zero dropped responses";
  EXPECT_EQ(report.errors, 0u);

  const EngineStats stats = server.stop_and_drain();
  EXPECT_EQ(stats.processed, 200u);
  EXPECT_EQ(report.decision_digest, stats.decision_digest)
      << "client and server must agree on every decision";
}

TEST(SocketServerTest, OverloadSeesBusyBackpressureAndStillNoDrops) {
  EngineConfig engine_config;
  engine_config.queue_capacity = 4;  // tiny queue: overload is certain
  AdmissionEngine engine(engine_config);
  engine.start();
  engine.pause();  // hold the engine so the queue observably fills

  ServerConfig server_config;
  server_config.tcp_port = 0;
  Server server(server_config, engine);
  server.start();

  std::thread resumer([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    engine.resume();
  });

  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 50;
  load.open_loop = true;
  load.rate = 5000.0;  // all 50 go out while the engine is paused
  const LoadgenReport report = run_loadgen(load);
  resumer.join();

  EXPECT_EQ(report.sent, 50u);
  EXPECT_EQ(report.responses, 50u);
  EXPECT_EQ(report.dropped, 0u)
      << "backpressure answers busy, it never drops";
  EXPECT_GT(report.busy, 0u) << "the bounded queue must push back";
  EXPECT_LT(report.accepted + report.rejected, 50u);

  const EngineStats stats = server.stop_and_drain();
  EXPECT_LE(stats.processed, 4u + report.accepted + report.rejected);
}

// -------------------------------------------------- protocol hostile corpus

TEST(ProtocolTest, HostileCorpusNeverEscapesProtocolError) {
  // Every line here is hostile in a different way; parse_request's
  // contract is "ProtocolError and only ProtocolError, whatever the
  // bytes". A plain runtime_error escaping here would crash the server's
  // per-line firewall (this corpus includes the non-string urgency that
  // used to do exactly that).
  std::vector<std::string> corpus = {
      "",
      " ",
      "null",
      "true",
      "42",
      "\"just a string\"",
      "[1,2,3]",
      "{}",
      "{\"type\":42}",
      "{\"type\":\"submit\"}",
      "{\"type\":\"submit\",\"id\":\"seven\"}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0,\"urgency\":42}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0,\"urgency\":[\"high\"]}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0,\"deadline_ms\":-5}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0,\"deadline_ms\":\"soon\"}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1e308,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1e999,"
      "\"deadline\":1,\"budget\":0}",
      "{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0",   // truncated
      "{\"type\":\"submit\",,}",        // bad comma
      "{\"type\" \"submit\"}",          // missing colon
      "\xff\xfe\xfd",                    // not UTF-8 at all
      "{\"type\":\"submit\xc0\xaf\"}",  // overlong UTF-8 encoding
      "{\"a\":\"\xed\xa0\x80\"}",       // UTF-8-encoded surrogate
      "{\"a\":\"\xf5\x80\x80\x80\"}",   // beyond U+10FFFF
      "{\"t\x01ype\":\"submit\"}",      // raw control byte
      std::string(300, '['),             // deep nesting (parser recursion)
      std::string(300, '[') + std::string(300, ']'),
      "{\"type\":\"submit\",\"id\":1,\"id\":2,\"procs\":1,\"runtime\":1,"
      "\"deadline\":1,\"budget\":0}",   // duplicate keys (first wins)
  };
  // And one oversized line just under the parser's own entry check.
  std::string oversized = "{\"pad\":\"";
  oversized.append(kMaxRequestBytes + 10, 'x');
  oversized += "\"}";
  corpus.push_back(std::move(oversized));

  for (const std::string& line : corpus) {
    try {
      const Request request = parse_request(line);
      // A duplicate-keys document may legitimately parse; anything the
      // parser accepts must satisfy the SLA preconditions.
      EXPECT_GT(request.runtime, 0.0);
    } catch (const ProtocolError&) {
      // The contract: this is the only exception type allowed out.
    } catch (const std::exception& e) {
      ADD_FAILURE() << "non-ProtocolError escaped for line of size "
                    << line.size() << ": " << e.what();
    }
  }
}

TEST(StdioServerTest, HostileLinesGetErrorResponsesAndServerSurvives) {
  EngineConfig config;
  AdmissionEngine engine(config);
  engine.start();

  // The once-fatal non-string urgency, raw bytes, deep nesting — then a
  // valid request. The server must answer all four and stay up.
  std::string deep(300, '[');
  std::istringstream in(
      std::string("{\"type\":\"submit\",\"id\":1,\"procs\":1,\"runtime\":1,"
                  "\"deadline\":1,\"budget\":0,\"urgency\":42}\n") +
      "\xff\xfe not even text\n" + deep + "\n" +
      encode_request(make_request(5, 1.0)) + "\n");
  std::ostringstream out;
  const ServerStats stats = Server::run_stdio(engine, in, out);

  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.malformed, 3u);
  EXPECT_EQ(stats.responses, 4u) << "every hostile line gets an answer";

  std::istringstream replies(out.str());
  std::string line;
  std::size_t errors = 0;
  std::size_t decisions = 0;
  while (std::getline(replies, line)) {
    const Response response = parse_response(line);
    (response.status == Status::Error ? errors : decisions) += 1;
  }
  EXPECT_EQ(errors, 3u);
  EXPECT_EQ(decisions, 1u) << "the valid request still got its decision";
}

// ----------------------------------------------------------------- journal

[[nodiscard]] std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(JournalTest, FsyncPolicyParsesAndRoundTrips) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::None, FsyncPolicy::Batch, FsyncPolicy::Always}) {
    EXPECT_EQ(parse_fsync_policy(to_string(policy)), policy);
  }
  EXPECT_THROW((void)parse_fsync_policy("sometimes"), std::invalid_argument);
}

TEST(JournalTest, RoundTripsRequestsAndTicks) {
  const std::string dir = fresh_dir("journal_roundtrip");
  JournalConfig config;
  config.directory = dir;
  config.fsync = FsyncPolicy::None;
  {
    JournalWriter writer(config);
    for (std::uint64_t id = 1; id <= 5; ++id) {
      writer.append_request(make_request(id, static_cast<double>(id)));
    }
    writer.append_tick(5, "0123456789abcdef");
    writer.close();
    EXPECT_EQ(writer.stats().requests, 5u);
    EXPECT_EQ(writer.stats().ticks, 1u);
  }

  const RecoveredJournal recovered = load_journal(dir);
  ASSERT_EQ(recovered.requests.size(), 5u);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(encode_request(recovered.requests[id - 1]),
              encode_request(make_request(id, static_cast<double>(id))));
  }
  EXPECT_EQ(recovered.last_tick_processed, 5u);
  EXPECT_EQ(recovered.last_tick_digest, "0123456789abcdef");
  EXPECT_EQ(recovered.segments, 1u);
  EXPECT_EQ(recovered.sealed_segments, 1u);
  EXPECT_EQ(recovered.truncated_records, 0u);
}

TEST(JournalTest, RotatesAndPreservesOrderAcrossSegments) {
  const std::string dir = fresh_dir("journal_rotate");
  JournalConfig config;
  config.directory = dir;
  config.fsync = FsyncPolicy::None;
  config.max_segment_records = 4;
  {
    JournalWriter writer(config);
    for (std::uint64_t id = 1; id <= 10; ++id) {
      writer.append_request(make_request(id, static_cast<double>(id)));
    }
    writer.append_tick(10, "00000000000000aa");
    EXPECT_GE(writer.stats().rotations, 2u);
  }
  const RecoveredJournal recovered = load_journal(dir);
  ASSERT_EQ(recovered.requests.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(recovered.requests[i].id, i + 1) << "append order preserved";
  }
  EXPECT_GE(recovered.segments, 3u);
  EXPECT_EQ(recovered.last_tick_processed, 10u);
}

TEST(JournalTest, TornTailIsDetectedAndPhysicallyTruncated) {
  const std::string dir = fresh_dir("journal_torn");
  JournalConfig config;
  config.directory = dir;
  config.fsync = FsyncPolicy::None;
  {
    JournalWriter writer(config);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      writer.append_request(make_request(id, static_cast<double>(id)));
    }
    writer.append_tick(3, "00000000000000bb");
  }
  // Simulate a crash mid-append: half a record, no newline, bogus chk.
  const auto segment =
      std::filesystem::directory_iterator(dir)->path().string();
  const auto intact_size = std::filesystem::file_size(segment);
  {
    std::ofstream out(segment, std::ios::app | std::ios::binary);
    out << "{\"type\":\"req\",\"seq\":99,\"req\":{\"type\":\"sub";
  }

  const RecoveredJournal recovered = load_journal(dir);
  EXPECT_EQ(recovered.requests.size(), 3u) << "intact prefix survives";
  EXPECT_EQ(recovered.truncated_records, 1u);
  EXPECT_GT(recovered.truncated_bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(segment), intact_size)
      << "the torn tail is physically removed";
  // A second load sees a clean journal.
  EXPECT_EQ(load_journal(dir).truncated_records, 0u);
}

TEST(JournalTest, TamperedSealedSegmentRefusesToLoad) {
  const std::string dir = fresh_dir("journal_tamper");
  JournalConfig config;
  config.directory = dir;
  config.fsync = FsyncPolicy::None;
  config.max_segment_records = 4;  // force segment 1 to seal
  {
    JournalWriter writer(config);
    for (std::uint64_t id = 1; id <= 8; ++id) {
      writer.append_request(make_request(id, static_cast<double>(id)));
    }
  }
  // Flip one digit inside the *first* (sealed, non-newest) segment: that
  // is not crash damage, it is lost history — recovery must refuse.
  std::vector<std::string> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 2u);
  std::fstream file(segments.front(),
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(20);
  file.put('X');
  file.close();

  EXPECT_THROW((void)load_journal(dir), JournalError);
}

// ---------------------------------------------------------------- recovery

TEST(AdmissionEngineTest, JournalRecoveryReproducesDecisionDigest) {
  const std::string dir = fresh_dir("recovery_digest");
  LoadgenConfig load;
  load.requests = 60;
  load.seed = 42;
  const std::vector<Request> stream = make_request_stream(load);

  EngineConfig config;
  config.journal_dir = dir;
  config.fsync = FsyncPolicy::None;  // durability is not under test here
  std::string first_digest;
  {
    AdmissionEngine engine(config);
    EXPECT_TRUE(engine.recovery().attempted);
    EXPECT_EQ(engine.recovery().replayed, 0u) << "nothing to recover yet";
    engine.start();
    for (const Request& request : stream) {
      while (!engine.submit(request, [](const Response&) {})) {
        std::this_thread::yield();
      }
    }
    const EngineStats stats = engine.drain();
    first_digest = stats.decision_digest;
    EXPECT_EQ(engine.journal_stats().requests, 60u);
    EXPECT_GE(engine.journal_stats().ticks, 1u);
  }

  // A new engine over the same journal must rebuild the exact state: all
  // 60 requests replayed, digest byte-identical to the pre-"crash" run.
  AdmissionEngine recovered(config);
  EXPECT_TRUE(recovered.recovery().attempted);
  EXPECT_EQ(recovered.recovery().replayed, 60u);
  EXPECT_TRUE(recovered.recovery().digest_match);
  EXPECT_EQ(recovered.recovery().replayed_digest, first_digest);
  EXPECT_EQ(recovered.recovery().journal_digest, first_digest);
  const EngineStats stats = recovered.drain();
  EXPECT_EQ(stats.decision_digest, first_digest);
  EXPECT_EQ(stats.processed, 60u);
}

TEST(AdmissionEngineTest, RecoveryRefusesDivergentJournalDigest) {
  const std::string dir = fresh_dir("recovery_mismatch");
  JournalConfig journal_config;
  journal_config.directory = dir;
  journal_config.fsync = FsyncPolicy::None;
  {
    JournalWriter writer(journal_config);
    writer.append_request(make_request(1, 0.0));
    // A tick claiming a digest no replay can reproduce.
    writer.append_tick(1, "deadbeefdeadbeef");
  }
  EngineConfig config;
  config.journal_dir = dir;
  EXPECT_THROW((void)AdmissionEngine(config), JournalError)
      << "an engine must never serve on top of a divergent recovery";
}

TEST(AdmissionEngineTest, RecoveryThenNewTrafficExtendsTheJournal) {
  const std::string dir = fresh_dir("recovery_extend");
  LoadgenConfig load;
  load.requests = 40;
  load.seed = 7;
  const std::vector<Request> stream = make_request_stream(load);

  EngineConfig config;
  config.journal_dir = dir;
  config.fsync = FsyncPolicy::None;
  {
    AdmissionEngine engine(config);
    engine.start();
    for (std::size_t i = 0; i < 20; ++i) {
      while (!engine.submit(stream[i], [](const Response&) {})) {
        std::this_thread::yield();
      }
    }
    (void)engine.drain();
  }
  std::string full_digest;
  {
    AdmissionEngine engine(config);  // recovers the first 20
    EXPECT_EQ(engine.recovery().replayed, 20u);
    engine.start();
    for (std::size_t i = 20; i < 40; ++i) {
      while (!engine.submit(stream[i], [](const Response&) {})) {
        std::this_thread::yield();
      }
    }
    const EngineStats stats = engine.drain();
    EXPECT_EQ(stats.processed, 40u) << "lifetime total, replays included";
    full_digest = stats.decision_digest;
  }
  // Reference: the same 40 requests through one uninterrupted engine.
  EngineConfig plain;
  AdmissionEngine reference(plain);
  reference.start();
  for (const Request& request : stream) {
    while (!reference.submit(request, [](const Response&) {})) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(reference.drain().decision_digest, full_digest)
      << "crash + recover + continue == never crashed at all";
  // And a third engine can recover the full 40-request journal.
  AdmissionEngine third(config);
  EXPECT_EQ(third.recovery().replayed, 40u);
  EXPECT_TRUE(third.recovery().digest_match);
}

// ---------------------------------------------------------- shed / brownout

TEST(AdmissionEngineTest, ExpiredDeadlineIsShedWithoutDigestPollution) {
  EngineConfig config;
  AdmissionEngine engine(config);
  engine.start();
  engine.pause();  // hold requests in the queue past their budget

  std::atomic<int> shed_seen{0};
  for (std::uint64_t id = 1; id <= 5; ++id) {
    Request request = make_request(id, 0.0);
    request.deadline_ms = 1.0;  // expires while the engine is paused
    EXPECT_TRUE(engine.submit(request, [&](const Response& response) {
      if (response.status == Status::Shed) ++shed_seen;
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const EngineStats stats = engine.drain();  // resumes and processes

  EXPECT_EQ(stats.shed, 5u);
  EXPECT_EQ(shed_seen.load(), 5) << "every shed request got its answer";
  EXPECT_EQ(stats.processed, 0u) << "sheds never reach the simulator";

  // Sheds are wall-clock artefacts: the digest must equal an idle run's.
  EngineConfig idle_config;
  AdmissionEngine idle(idle_config);
  idle.start();
  EXPECT_EQ(stats.decision_digest, idle.drain().decision_digest);
}

TEST(AdmissionEngineTest, BrownoutFastFailsAboveWatermark) {
  EngineConfig config;
  config.queue_capacity = 8;
  config.brownout_watermark = 0.5;  // fast-fail at queue depth 4
  AdmissionEngine engine(config);
  engine.start();
  engine.pause();

  std::atomic<int> completions{0};
  std::size_t queued = 0;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    if (engine.submit(make_request(id, 0.0),
                      [&](const Response&) { ++completions; })) {
      ++queued;
    }
  }
  EXPECT_EQ(queued, 4u) << "the watermark, not capacity, is the limit";
  const EngineStats stats = engine.drain();
  EXPECT_EQ(stats.brownout, 4u);
  EXPECT_EQ(stats.processed, 4u);
  EXPECT_EQ(completions.load(), 4);
}

// ------------------------------------------------------- slow-client defense

TEST(SocketServerTest, SlowClientIsDisconnectedAndServerStaysHealthy) {
  EngineConfig engine_config;
  AdmissionEngine engine(engine_config);
  engine.start();

  const std::string socket_path = fresh_dir("slow_client") + ".sock";
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  server_config.write_buffer_bytes = 2048;  // tiny outbox: overflow fast
  server_config.write_stall_ms = 200.0;
  Server server(server_config, engine);
  server.start();

  // A client that submits thousands of requests and never reads a byte:
  // kernel buffers fill, then the 2 KiB outbox, then the server cuts it
  // loose. The engine thread must never block on this connection.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    for (std::uint64_t id = 1; id <= 20000; ++id) {
      std::string line = encode_request(make_request(id, 0.0));
      line.push_back('\n');
      if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) < 0) {
        break;  // the server already cut us off — that is the point
      }
    }
    // Wait (bounded) for the defense to trip.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().stalled == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::close(fd);
  }
  EXPECT_GE(server.stats().stalled, 1u)
      << "the wedged client must be disconnected";

  // The server must still serve a well-behaved client flawlessly.
  LoadgenConfig load;
  load.unix_path = socket_path;
  load.requests = 100;
  const LoadgenReport report = run_loadgen(load);
  EXPECT_EQ(report.responses, 100u);
  EXPECT_EQ(report.dropped, 0u);
  (void)server.stop_and_drain();
}

// ----------------------------------------------------- queue close race

TEST(BoundedQueueTest, ConcurrentProducersRacingCloseLoseNothing) {
  // Exercised under TSan in CI: producers hammer try_push while another
  // thread closes the queue mid-stream. The contract: every accepted
  // push is delivered exactly once, refused pushes are not.
  constexpr int kProducers = 4;
  constexpr int kAttempts = 5000;
  BoundedQueue<int> queue(64);

  std::vector<std::vector<int>> accepted(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted, p] {
      for (int i = 0; i < kAttempts; ++i) {
        const int value = p * kAttempts + i;
        if (queue.try_push(value)) accepted[p].push_back(value);
      }
    });
  }
  std::vector<int> delivered;
  std::thread consumer([&queue, &delivered] {
    for (;;) {
      auto item = queue.pop_wait();
      if (!item.has_value()) break;
      delivered.push_back(*item);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.close();  // races the producers AND the consumer
  for (std::thread& producer : producers) producer.join();
  consumer.join();

  std::multiset<int> delivered_set(delivered.begin(), delivered.end());
  std::size_t accepted_total = 0;
  for (const auto& values : accepted) {
    accepted_total += values.size();
    for (const int value : values) {
      EXPECT_EQ(delivered_set.count(value), 1u)
          << "accepted push " << value << " lost or duplicated";
    }
  }
  EXPECT_EQ(delivered.size(), accepted_total)
      << "nothing delivered that was not accepted";
}

TEST(SocketServerTest, StopAndDrainAnswersQueuedRequests) {
  EngineConfig engine_config;
  engine_config.queue_capacity = 64;
  AdmissionEngine engine(engine_config);
  engine.start();
  engine.pause();

  ServerConfig server_config;
  server_config.tcp_port = 0;
  Server server(server_config, engine);
  server.start();

  // Park requests in the admission queue, then shut down while they are
  // still pending: the drain contract says every one gets its decision.
  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 16;
  load.open_loop = true;
  load.rate = 10000.0;

  std::thread drainer([&engine, &server] {
    // Wait for the queue to hold everything the client sent.
    while (engine.queue_depth() < 16) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    (void)server.stop_and_drain();
  });
  const LoadgenReport report = run_loadgen(load);
  drainer.join();

  EXPECT_EQ(report.sent, 16u);
  EXPECT_EQ(report.responses, 16u) << "drain answered the queued requests";
  EXPECT_EQ(report.dropped, 0u);
}

// ----------------------------------------------------------------- sharding

TEST(ProtocolTest, TenantAndScenarioRoundTripOnTheWire) {
  Request request = make_request(11, 3.0);
  request.tenant = 42;
  request.scenario = "exp-a";
  const Request parsed = parse_request(encode_request(request));
  EXPECT_EQ(parsed.tenant, 42u);
  EXPECT_EQ(parsed.scenario, "exp-a");

  Response response;
  response.id = 11;
  response.status = Status::Accepted;
  response.price = 100.0;
  response.tenant = 42;
  response.shard = 3;
  const Response back = parse_response(encode_response(response));
  EXPECT_EQ(back.tenant, 42u);
  EXPECT_EQ(back.shard, 3);
}

TEST(ProtocolTest, LegacyEncodingsCarryNoShardFields) {
  // Unattributed traffic must encode byte-identically to the pre-shard
  // protocol: the new fields are emitted only when set.
  const std::string wire = encode_request(make_request(5, 1.0));
  EXPECT_EQ(wire.find("tenant"), std::string::npos) << wire;
  EXPECT_EQ(wire.find("scenario"), std::string::npos) << wire;

  Response response;
  response.id = 5;
  response.status = Status::Accepted;
  response.price = 10.0;
  const std::string line = encode_response(response);
  EXPECT_EQ(line.find("tenant"), std::string::npos) << line;
  EXPECT_EQ(line.find("shard"), std::string::npos) << line;
}

TEST(ProtocolTest, DecisionHashFoldsTenantButNotShard) {
  Response response;
  response.id = 9;
  response.status = Status::Accepted;
  response.price = 250.0;

  Response routed = response;
  routed.shard = 7;  // a routing artefact, not a decision
  EXPECT_EQ(decision_hash(response), decision_hash(routed));

  Response attributed = response;
  attributed.tenant = 3;
  EXPECT_NE(decision_hash(response), decision_hash(attributed));
  Response other_tenant = response;
  other_tenant.tenant = 4;
  EXPECT_NE(decision_hash(attributed), decision_hash(other_tenant));
}

TEST(ProtocolTest, RoutingKeyPrefersTenantThenScenario) {
  Request request = make_request(1, 0.0);
  EXPECT_EQ(routing_key(request), 0u) << "unattributed -> shared state";

  request.scenario = "exp-a";
  const std::uint64_t by_scenario = routing_key(request);
  EXPECT_NE(by_scenario, 0u);
  Request same_scenario = make_request(2, 5.0);
  same_scenario.scenario = "exp-a";
  EXPECT_EQ(routing_key(same_scenario), by_scenario)
      << "scenario key is stable across requests";

  request.tenant = 12;
  EXPECT_EQ(routing_key(request), 12u) << "tenant wins over scenario";
}

TEST(ShardRouterTest, DeterministicAndCoversEveryShard) {
  const ShardRouter router(4);
  const ShardRouter twin(4);
  std::set<std::size_t> hit;
  for (std::uint64_t key = 1; key <= 2000; ++key) {
    const std::size_t shard = router.shard_for(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(twin.shard_for(key), shard)
        << "routing must reproduce across router instances (recovery)";
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u) << "every shard takes traffic";

  const ShardRouter single(1);
  EXPECT_EQ(single.shard_for(12345), 0u);
}

/// A multi-tenant stream: a small Zipfian tenant population so every
/// shard sees several tenants and every tenant recurs.
std::vector<Request> make_tenant_stream(std::size_t requests,
                                        std::uint64_t seed) {
  LoadgenConfig config;
  config.requests = requests;
  config.seed = seed;
  config.workload = "zipf:tenants=12,theta=0.9";
  std::vector<Request> stream = make_request_stream(config);
  for (const Request& request : stream) {
    EXPECT_NE(request.tenant, 0u) << "zipf stamps every request's tenant";
  }
  return stream;
}

EngineStats run_sharded(const std::vector<Request>& stream,
                        std::size_t shards) {
  ShardedEngineConfig config;
  config.engine.queue_capacity = 64;
  config.shards = shards;
  ShardedEngine engine(config);
  engine.start();
  for (const Request& request : stream) {
    while (!engine.submit(request, [](const Response&) {})) {
      std::this_thread::yield();
    }
  }
  return engine.drain();
}

TEST(ShardedEngineTest, MergedDigestInvariantUnderShardCount) {
  const std::vector<Request> stream = make_tenant_stream(120, 21);

  const EngineStats one = run_sharded(stream, 1);
  const EngineStats four = run_sharded(stream, 4);
  EXPECT_EQ(one.processed, 120u);
  EXPECT_EQ(four.processed, 120u);
  EXPECT_EQ(one.accepted, four.accepted);
  EXPECT_EQ(one.rejected, four.rejected);
  ASSERT_FALSE(one.decision_digest.empty());
  EXPECT_EQ(one.decision_digest, four.decision_digest)
      << "the merged digest is the shard-count-invariant session digest";

  // And shards=1 is bit-identical to the plain single engine.
  const EngineStats plain = run_stream(stream, /*max_batch=*/64);
  EXPECT_EQ(plain.decision_digest, one.decision_digest);
}

TEST(ShardedEngineTest, MergedDigestInvariantUnderInterleaving) {
  const std::vector<Request> stream = make_tenant_stream(96, 33);

  // A different global interleaving that preserves every routing key's
  // subsequence order — exactly what concurrent client connections
  // produce. Round-robin across per-key queues.
  std::map<std::uint64_t, std::vector<Request>> by_key;
  for (const Request& request : stream) {
    by_key[routing_key(request)].push_back(request);
  }
  std::vector<Request> interleaved;
  interleaved.reserve(stream.size());
  bool more = true;
  for (std::size_t round = 0; more; ++round) {
    more = false;
    for (auto& [key, queue] : by_key) {
      if (round < queue.size()) {
        interleaved.push_back(queue[round]);
        more = true;
      }
    }
  }
  ASSERT_EQ(interleaved.size(), stream.size());
  ASSERT_FALSE(std::equal(stream.begin(), stream.end(),
                          interleaved.begin(),
                          [](const Request& a, const Request& b) {
                            return a.id == b.id;
                          }))
      << "the permutation must actually reorder the stream";

  const EngineStats original = run_sharded(stream, 4);
  const EngineStats reordered = run_sharded(interleaved, 4);
  EXPECT_EQ(original.decision_digest, reordered.decision_digest)
      << "per-key order is the only order that matters";
  EXPECT_EQ(original.accepted, reordered.accepted);
}

TEST(ShardedEngineTest, JournalRecoveryWithTwoShardsReproducesDigest) {
  const std::string dir = fresh_dir("sharded_recovery");
  const std::vector<Request> stream = make_tenant_stream(60, 5);

  ShardedEngineConfig config;
  config.engine.journal_dir = dir;
  config.engine.fsync = FsyncPolicy::None;
  config.shards = 2;

  std::string first_digest;
  {
    ShardedEngine engine(config);
    EXPECT_EQ(engine.recovery().replayed, 0u) << "nothing to recover yet";
    engine.start();
    for (const Request& request : stream) {
      while (!engine.submit(request, [](const Response&) {})) {
        std::this_thread::yield();
      }
    }
    const EngineStats stats = engine.drain();
    first_digest = stats.decision_digest;
    EXPECT_EQ(engine.journal_stats().requests, 60u);
    // Both shards actually journal: the layout is real, not one flat dir.
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "shard-0000"));
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "shard-0001"));
  }

  // A new sharded engine over the same journal root replays every shard
  // and reproduces the merged digest — the kill-9 recovery contract.
  ShardedEngine recovered(config);
  const RecoveryStats recovery = recovered.recovery();
  EXPECT_TRUE(recovery.attempted);
  EXPECT_EQ(recovery.replayed, 60u);
  EXPECT_TRUE(recovery.digest_match);
  EXPECT_EQ(recovery.replayed_digest, first_digest);
  const EngineStats stats = recovered.drain();
  EXPECT_EQ(stats.decision_digest, first_digest);
  EXPECT_EQ(stats.processed, 60u);
}

TEST(ShardedEngineTest, RefusesShardCountMismatchOnRecovery) {
  const std::string dir = fresh_dir("sharded_mismatch");
  ShardedEngineConfig config;
  config.engine.journal_dir = dir;
  config.engine.fsync = FsyncPolicy::None;
  config.shards = 2;
  {
    ShardedEngine engine(config);
    engine.start();
    Request request = make_request(1, 0.0);
    request.tenant = 3;
    while (!engine.submit(request, [](const Response&) {})) {
      std::this_thread::yield();
    }
    (void)engine.drain();
  }
  // Reopening with a different shard count would re-route journalled
  // tenants onto different simulation states: refuse, loudly.
  ShardedEngineConfig wrong = config;
  wrong.shards = 3;
  EXPECT_THROW((void)ShardedEngine(wrong), JournalError);
}

TEST(ShardedEngineTest, RefusesToShardAFlatLegacyJournal) {
  const std::string dir = fresh_dir("sharded_legacy");
  EngineConfig flat;
  flat.journal_dir = dir;
  flat.fsync = FsyncPolicy::None;
  {
    AdmissionEngine engine(flat);
    engine.start();
    while (!engine.submit(make_request(1, 0.0), [](const Response&) {})) {
      std::this_thread::yield();
    }
    (void)engine.drain();
  }
  ShardedEngineConfig sharded;
  sharded.engine = flat;
  sharded.shards = 4;
  EXPECT_THROW((void)ShardedEngine(sharded), JournalError)
      << "a flat pre-shard journal cannot be reopened sharded";
  // But shards=1 keeps the legacy layout and recovers it unchanged.
  ShardedEngineConfig compatible;
  compatible.engine = flat;
  compatible.shards = 1;
  ShardedEngine engine(compatible);
  EXPECT_EQ(engine.recovery().replayed, 1u);
}

TEST(LoadgenTest, BusyRetryHonorsServerHint) {
  EngineConfig engine_config;
  engine_config.queue_capacity = 2;
  engine_config.retry_after_ms = 10.0;
  AdmissionEngine engine(engine_config);
  engine.start();
  engine.pause();
  // Fill the queue while paused so the client's first request is
  // guaranteed a `busy` with the retry hint.
  for (std::uint64_t id = 1000; id < 1002; ++id) {
    ASSERT_TRUE(engine.submit(make_request(id, 0.0), [](const Response&) {}));
  }

  ServerConfig server_config;
  server_config.tcp_port = 0;
  Server server(server_config, engine);
  server.start();

  std::thread resumer([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    engine.resume();
  });

  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 5;
  load.busy_retries = 200;
  load.retry_interval_ms = 1.0;
  const LoadgenReport report = run_loadgen(load);
  resumer.join();
  (void)server.stop_and_drain();
  (void)engine.drain();

  EXPECT_EQ(report.sent, 5u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.accepted + report.rejected, 5u)
      << "every request got a real decision after retrying through busy";
  // Every busy answer was retried (the budget never ran out), and every
  // wire response — terminal decisions plus retried busys — is counted.
  EXPECT_GE(report.busy_retried, 1u);
  EXPECT_EQ(report.busy, report.busy_retried);
  EXPECT_EQ(report.responses, 5u + report.busy_retried);
  EXPECT_GE(report.hinted_retries, 1u)
      << "the server's retry_after_ms hint drove the backoff";
  EXPECT_LE(report.hinted_retries, report.busy_retried);
}

TEST(LoadgenTest, FanOutConnectionsReproduceTheMergedDigest) {
  ShardedEngineConfig engine_config;
  engine_config.engine.queue_capacity = 64;
  engine_config.shards = 2;
  ShardedEngine engine(engine_config);
  engine.start();

  ServerConfig server_config;
  server_config.tcp_port = 0;
  Server server(server_config, engine);
  server.start();

  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 80;
  load.seed = 13;
  load.workload = "zipf:tenants=12,theta=0.9";
  load.connections = 3;
  const LoadgenReport report = run_loadgen(load);
  (void)server.stop_and_drain();
  const EngineStats stats = engine.drain();

  EXPECT_EQ(report.sent, 80u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.decision_digest, stats.decision_digest)
      << "client-merged digest == server-merged digest across fan-out";
}

// ------------------------------------------------------------ advise verb

TEST(ProtocolTest, AdviseRequestRoundTrips) {
  Request request;
  request.kind = RequestKind::Advise;
  request.id = 31;
  request.tenant = 9;
  request.weights = {0.1, 0.2, 0.3, 0.4};
  request.risk_aversion = 1.25;
  const Request parsed = parse_request(encode_request(request));
  EXPECT_EQ(parsed.kind, RequestKind::Advise);
  EXPECT_EQ(parsed.id, 31u);
  EXPECT_EQ(parsed.tenant, 9u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(parsed.weights[i], request.weights[i]) << i;
  }
  EXPECT_DOUBLE_EQ(parsed.risk_aversion, 1.25);

  // Omitted weights/risk_aversion fall back to the documented defaults.
  const Request defaults = parse_request("{\"type\":\"advise\",\"id\":2}");
  EXPECT_EQ(defaults.kind, RequestKind::Advise);
  for (double w : defaults.weights) EXPECT_DOUBLE_EQ(w, 0.25);
  EXPECT_DOUBLE_EQ(defaults.risk_aversion, 0.5);
}

TEST(ProtocolTest, AdviseRejectsInvalidPreferences) {
  // Weights not summing to 1 — rejected, never silently renormalised.
  EXPECT_THROW(
      (void)parse_request(
          "{\"type\":\"advise\",\"id\":1,\"weights\":[0.5,0.5,0.5,0.5]}"),
      ProtocolError);
  EXPECT_THROW(
      (void)parse_request(
          "{\"type\":\"advise\",\"id\":1,\"weights\":[-0.25,0.5,0.5,0.25]}"),
      ProtocolError);
  EXPECT_THROW((void)parse_request(
                   "{\"type\":\"advise\",\"id\":1,\"weights\":[0.5,0.5]}"),
               ProtocolError)
      << "exactly four weights";
  EXPECT_THROW(
      (void)parse_request(
          "{\"type\":\"advise\",\"id\":1,\"risk_aversion\":-1}"),
      ProtocolError);
}

TEST(ProtocolTest, AdviceResponseRoundTrips) {
  Response response;
  response.id = 12;
  response.status = Status::Advice;
  response.tenant = 4;
  auto advice = std::make_shared<AdviceBody>();
  advice->active = "Libra";
  advice->recommended = "FCFS-BF";
  advice->decided = 96;
  advice->evaluations = 6;
  advice->switches = 1;
  advice->samples = 64;
  advice->estimate_mean = {10.5, 80.0, 90.0, 55.0};
  advice->estimate_stddev = {1.5, 2.0, 0.5, 3.0};
  advice->ranked = {{"FCFS-BF", 0.61, 0.7, 0.18}, {"Libra", 0.58, 0.6, 0.04}};
  advice->digest = "0123456789abcdef";
  response.advice = advice;

  const Response parsed = parse_response(encode_response(response));
  EXPECT_EQ(parsed.status, Status::Advice);
  EXPECT_EQ(parsed.id, 12u);
  EXPECT_EQ(parsed.tenant, 4u);
  ASSERT_NE(parsed.advice, nullptr);
  EXPECT_EQ(parsed.advice->active, "Libra");
  EXPECT_EQ(parsed.advice->recommended, "FCFS-BF");
  EXPECT_EQ(parsed.advice->decided, 96u);
  EXPECT_EQ(parsed.advice->evaluations, 6u);
  EXPECT_EQ(parsed.advice->switches, 1u);
  EXPECT_EQ(parsed.advice->samples, 64u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(parsed.advice->estimate_mean[i],
                     advice->estimate_mean[i]);
    EXPECT_DOUBLE_EQ(parsed.advice->estimate_stddev[i],
                     advice->estimate_stddev[i]);
  }
  ASSERT_EQ(parsed.advice->ranked.size(), 2u);
  EXPECT_EQ(parsed.advice->ranked[0].policy, "FCFS-BF");
  EXPECT_DOUBLE_EQ(parsed.advice->ranked[0].score, 0.61);
  EXPECT_DOUBLE_EQ(parsed.advice->ranked[1].volatility, 0.04);
  EXPECT_EQ(parsed.advice->digest, "0123456789abcdef");
}

TEST(JournalTest, SwitchRecordsRoundTrip) {
  const std::string dir = fresh_dir("journal_switches");
  JournalConfig config;
  config.directory = dir;
  config.fsync = FsyncPolicy::None;
  SwitchRecord first{/*key=*/0xDEADBEEFCAFE0123ull, /*at=*/64, "Libra",
                     "FCFS-BF"};
  SwitchRecord second{/*key=*/7, /*at=*/128, "FCFS-BF", "SJF-BF"};
  {
    JournalWriter writer(config);
    writer.append_request(make_request(1, 0.0));
    writer.append_switch(first);
    writer.append_request(make_request(2, 10.0));
    writer.append_switch(second);
    writer.append_tick(2, "0000000000000000");
    EXPECT_EQ(writer.stats().switches, 2u);
  }
  const RecoveredJournal recovered = load_journal(dir);
  EXPECT_EQ(recovered.requests.size(), 2u);
  ASSERT_EQ(recovered.switches.size(), 2u);
  EXPECT_EQ(recovered.switches[0].key, first.key)
      << "the hex encoding must carry all 64 key bits";
  EXPECT_EQ(recovered.switches[0].at, 64u);
  EXPECT_EQ(recovered.switches[0].from, "Libra");
  EXPECT_EQ(recovered.switches[0].to, "FCFS-BF");
  EXPECT_EQ(recovered.switches[1].key, 7u);
  EXPECT_EQ(recovered.switches[1].to, "SJF-BF");
}

/// Drives `stream` through an engine built from `config`, counting the
/// advise answers seen on the completion path.
EngineStats run_stream_with_config(const std::vector<Request>& stream,
                                   EngineConfig config,
                                   std::uint64_t* advice_answers = nullptr) {
  config.queue_capacity = 64;
  AdmissionEngine engine(config);
  engine.start();
  std::atomic<std::uint64_t> advice{0};
  for (const Request& request : stream) {
    while (!engine.submit(request, [&advice](const Response& response) {
      if (response.status == Status::Advice) advice.fetch_add(1);
    })) {
      std::this_thread::yield();
    }
  }
  EngineStats stats = engine.drain();
  if (advice_answers != nullptr) *advice_answers = advice.load();
  return stats;
}

TEST(AdmissionEngineTest, AdviseQueriesAreReadOnlyOnTheDigest) {
  const std::vector<Request> stream = make_tenant_stream(90, 17);

  // The same stream with an advise query wedged in after every fifth
  // submission — and a burst up front, before any decision exists.
  std::vector<Request> with_advise;
  std::uint64_t next_id = 100000;
  for (int i = 0; i < 3; ++i) {
    Request query;
    query.kind = RequestKind::Advise;
    query.id = next_id++;
    query.tenant = 3;
    with_advise.push_back(query);
  }
  for (std::size_t i = 0; i < stream.size(); ++i) {
    with_advise.push_back(stream[i]);
    if (i % 5 == 4) {
      Request query;
      query.kind = RequestKind::Advise;
      query.id = next_id++;
      query.tenant = stream[i].tenant;
      with_advise.push_back(query);
    }
  }

  EngineConfig config;
  const EngineStats plain = run_stream_with_config(stream, config);
  std::uint64_t advice_answers = 0;
  const EngineStats queried =
      run_stream_with_config(with_advise, config, &advice_answers);
  EXPECT_GT(queried.advise_queries, 0u);
  EXPECT_EQ(queried.advise_queries, advice_answers)
      << "every advise query draws exactly one advice answer";
  EXPECT_EQ(plain.processed, queried.processed)
      << "advise queries are not admission decisions";
  EXPECT_EQ(plain.decision_digest, queried.decision_digest)
      << "read-only queries must not perturb the decision digest";
}

/// Tenant stream whose mix shifts mid-run — the advisor's home turf.
std::vector<Request> make_mix_shift_stream(std::size_t requests,
                                           std::uint64_t seed) {
  LoadgenConfig config;
  config.requests = requests;
  config.seed = seed;
  config.workload = "zipf:tenants=4,theta=0.6";
  config.mix_shift = "40000:zipf:tenants=4,theta=0.6,mean_runtime=14000,"
                     "mean_interarrival=120";
  return make_request_stream(config);
}

[[nodiscard]] EngineConfig advise_auto_config() {
  EngineConfig config;
  config.advisor.auto_switch = true;
  config.advisor.advise_every = 16;
  config.advisor.window = 16;
  return config;
}

TEST(AdmissionEngineTest, AdviseAutoIsDeterministicAcrossRuns) {
  const std::vector<Request> stream = make_mix_shift_stream(160, 29);
  const EngineStats first =
      run_stream_with_config(stream, advise_auto_config());
  const EngineStats second =
      run_stream_with_config(stream, advise_auto_config());
  EXPECT_GT(first.advisor_evaluations, 0u);
  EXPECT_EQ(first.advisor_evaluations, second.advisor_evaluations);
  EXPECT_EQ(first.policy_switches, second.policy_switches);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.decision_digest, second.decision_digest)
      << "switch points and switches must replay bit-identically";
}

TEST(ShardedEngineTest, AdviseAutoMergedDigestInvariantUnderShardCount) {
  const std::vector<Request> stream = make_mix_shift_stream(160, 31);
  const auto run = [&stream](std::size_t shards) {
    ShardedEngineConfig config;
    config.engine = advise_auto_config();
    config.engine.queue_capacity = 64;
    config.shards = shards;
    ShardedEngine engine(config);
    engine.start();
    for (const Request& request : stream) {
      while (!engine.submit(request, [](const Response&) {})) {
        std::this_thread::yield();
      }
    }
    return engine.drain();
  };
  const EngineStats one = run(1);
  const EngineStats four = run(4);
  EXPECT_GT(one.advisor_evaluations, 0u);
  EXPECT_EQ(one.advisor_evaluations, four.advisor_evaluations)
      << "switch points are per routing key, never engine-global";
  EXPECT_EQ(one.policy_switches, four.policy_switches);
  EXPECT_EQ(one.decision_digest, four.decision_digest)
      << "the merged digest must not see the shard count, advise-auto on";
}

TEST(AdmissionEngineTest, AdviseAutoJournalRecoveryReplaysSwitches) {
  const std::string dir = fresh_dir("recovery_switches");
  const std::vector<Request> stream = make_mix_shift_stream(160, 29);

  EngineConfig config = advise_auto_config();
  config.journal_dir = dir;
  config.fsync = FsyncPolicy::None;
  std::string first_digest;
  std::uint64_t first_switches = 0;
  {
    AdmissionEngine engine(config);
    engine.start();
    for (const Request& request : stream) {
      while (!engine.submit(request, [](const Response&) {})) {
        std::this_thread::yield();
      }
    }
    const EngineStats stats = engine.drain();
    first_digest = stats.decision_digest;
    first_switches = stats.policy_switches;
    EXPECT_EQ(engine.journal_stats().switches, stats.policy_switches)
        << "every live switch writes one sw record";
  }

  // Replay must re-derive every journalled switch (prefix check) and
  // land on the identical digest — the switches are folded into it.
  AdmissionEngine recovered(config);
  EXPECT_TRUE(recovered.recovery().digest_match);
  EXPECT_EQ(recovered.recovery().replayed_digest, first_digest);
  const EngineStats stats = recovered.drain();
  EXPECT_EQ(stats.decision_digest, first_digest);
  EXPECT_EQ(stats.policy_switches, first_switches);
}

TEST(AdmissionEngineTest, RecoveryRefusesFabricatedSwitchRecords) {
  const std::string dir = fresh_dir("recovery_bogus_switch");
  JournalConfig journal_config;
  journal_config.directory = dir;
  journal_config.fsync = FsyncPolicy::None;
  {
    JournalWriter writer(journal_config);
    writer.append_request(make_request(1, 0.0));
    // A switch no replay of one request can possibly re-derive.
    writer.append_switch(SwitchRecord{/*key=*/1, /*at=*/1, "Libra",
                                      "FCFS-BF"});
  }
  EngineConfig config = advise_auto_config();
  config.journal_dir = dir;
  EXPECT_THROW((void)AdmissionEngine(config), JournalError)
      << "journalled switches must be a prefix of the replayed ones";
}

}  // namespace
}  // namespace utilrisk::serve
