// Tests for the online admission service: wire protocol, bounded queue
// backpressure, engine determinism, stdio/socket serving and the
// drain-on-shutdown zero-dropped-responses guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/bounded_queue.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace utilrisk::serve {
namespace {

Request make_request(std::uint64_t id, double t) {
  Request request;
  request.id = id;
  request.submit_time = t;
  request.procs = 4;
  request.runtime = 100.0;
  request.estimate = 120.0;
  request.deadline = 4000.0;
  request.budget = 50000.0;
  return request;
}

// ----------------------------------------------------------------- protocol

TEST(ProtocolTest, RequestRoundTrips) {
  Request request = make_request(7, 12.5);
  request.penalty_rate = 0.25;
  request.urgency = workload::Urgency::High;
  const Request parsed = parse_request(encode_request(request));
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_DOUBLE_EQ(parsed.submit_time, request.submit_time);
  EXPECT_EQ(parsed.procs, request.procs);
  EXPECT_DOUBLE_EQ(parsed.runtime, request.runtime);
  EXPECT_DOUBLE_EQ(parsed.estimate, request.estimate);
  EXPECT_DOUBLE_EQ(parsed.deadline, request.deadline);
  EXPECT_DOUBLE_EQ(parsed.budget, request.budget);
  EXPECT_DOUBLE_EQ(parsed.penalty_rate, request.penalty_rate);
  EXPECT_EQ(parsed.urgency, workload::Urgency::High);
}

TEST(ProtocolTest, ResponseRoundTripsEveryStatus) {
  for (const Status status : {Status::Accepted, Status::Rejected,
                              Status::Busy, Status::Error}) {
    Response response;
    response.id = 3;
    response.status = status;
    response.price = 42.5;
    response.risk = 0.125;
    response.virtual_time = 99.0;
    response.retry_after_ms = 50.0;
    response.message = "line 1 \"quoted\"";
    const Response parsed = parse_response(encode_response(response));
    EXPECT_EQ(parsed.id, response.id);
    EXPECT_EQ(parsed.status, status);
    if (status == Status::Accepted || status == Status::Rejected) {
      EXPECT_DOUBLE_EQ(parsed.price, response.price);
      EXPECT_DOUBLE_EQ(parsed.risk, response.risk);
    }
    if (status == Status::Busy) {
      EXPECT_DOUBLE_EQ(parsed.retry_after_ms, response.retry_after_ms);
    }
    if (status == Status::Error) {
      EXPECT_EQ(parsed.message, response.message);
    }
  }
}

TEST(ProtocolTest, RejectsMalformedAndInvalidRequests) {
  EXPECT_THROW((void)parse_request("not json"), ProtocolError);
  EXPECT_THROW((void)parse_request("[1,2,3]"), ProtocolError);
  EXPECT_THROW((void)parse_request("{\"id\":1}"), ProtocolError)
      << "missing type";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"cancel","id":1,"procs":1,"runtime":1,"deadline":1,"budget":0})"),
      ProtocolError)
      << "unknown type";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":0,"runtime":1,"deadline":1,"budget":0})"),
      ProtocolError)
      << "procs must be a positive integer";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":2.5,"runtime":1,"deadline":1,"budget":0})"),
      ProtocolError)
      << "fractional procs";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":1,"runtime":-5,"deadline":1,"budget":0})"),
      ProtocolError)
      << "negative runtime";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":1,"runtime":1,"deadline":1,"budget":-1})"),
      ProtocolError)
      << "negative budget";
  EXPECT_THROW(
      (void)parse_request(
          R"({"type":"submit","id":1,"procs":1,"runtime":1,"deadline":1,"budget":0,"urgency":"medium"})"),
      ProtocolError)
      << "bad urgency";
}

TEST(ProtocolTest, RejectsOversizedRequestLine) {
  std::string line = R"({"type":"submit","id":1,"padding":")";
  line.append(kMaxRequestBytes, 'x');
  line += "\"}";
  EXPECT_THROW((void)parse_request(line), ProtocolError);
}

TEST(ProtocolTest, DecisionHashCoversIdStatusAndPrice) {
  Response a;
  a.id = 1;
  a.status = Status::Accepted;
  a.price = 10.0;
  Response b = a;
  EXPECT_EQ(decision_hash(a), decision_hash(b));
  b.status = Status::Rejected;
  EXPECT_NE(decision_hash(a), decision_hash(b));
  b = a;
  b.price = 11.0;
  EXPECT_NE(decision_hash(a), decision_hash(b));
  b = a;
  b.id = 2;
  EXPECT_NE(decision_hash(a), decision_hash(b));
}

// ------------------------------------------------------------ bounded queue

TEST(BoundedQueueTest, BackpressureAtCapacityAndDrainAfterClose) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "full queue must refuse";
  EXPECT_EQ(queue.size(), 2u);

  auto item = queue.pop_wait();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  EXPECT_TRUE(queue.try_push(3)) << "pop frees a slot";

  queue.close();
  EXPECT_FALSE(queue.try_push(4)) << "closed queue refuses pushes";
  EXPECT_EQ(queue.pop_wait().value(), 2) << "close still drains";
  EXPECT_EQ(queue.pop_wait().value(), 3);
  EXPECT_FALSE(queue.pop_wait().has_value())
      << "closed and empty wakes consumers with nullopt";
}

TEST(BoundedQueueTest, HoldGatesConsumersUntilReleaseOrClose) {
  BoundedQueue<int> queue(4);
  queue.hold();
  EXPECT_TRUE(queue.try_push(1)) << "a hold only gates the consumer side";
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 4), 0u) << "held queue yields nothing";

  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto item = queue.pop_wait();
    popped.store(true);
    EXPECT_TRUE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(popped.load()) << "pop_wait must block while held";
  queue.release();
  consumer.join();
  EXPECT_TRUE(popped.load());

  // close() overrides a hold so drains always make progress.
  queue.hold();
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_EQ(queue.pop_wait().value(), 2);
  EXPECT_FALSE(queue.pop_wait().has_value());
}

TEST(BoundedQueueTest, BatchPopCoalesces) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.try_pop_batch(out, 10), 2u) << "stops when empty";
  EXPECT_EQ(queue.try_pop_batch(out, 10), 0u);
}

// ----------------------------------------------------------------- engine

EngineStats run_stream(const std::vector<Request>& stream,
                       std::size_t max_batch) {
  EngineConfig config;
  config.queue_capacity = 64;
  config.max_batch = max_batch;
  AdmissionEngine engine(config);
  engine.start();
  for (const Request& request : stream) {
    while (!engine.submit(request, [](const Response&) {})) {
      std::this_thread::yield();
    }
  }
  return engine.drain();
}

TEST(AdmissionEngineTest, SameSeedStreamsYieldIdenticalDecisions) {
  LoadgenConfig config;
  config.requests = 150;
  config.seed = 42;
  const std::vector<Request> stream = make_request_stream(config);
  ASSERT_EQ(stream.size(), 150u);

  const EngineStats first = run_stream(stream, /*max_batch=*/64);
  const EngineStats second = run_stream(stream, /*max_batch=*/64);
  EXPECT_EQ(first.processed, 150u);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.rejected, second.rejected);
  EXPECT_EQ(first.decision_digest, second.decision_digest);
  EXPECT_FALSE(first.decision_digest.empty());
}

TEST(AdmissionEngineTest, DecisionsAreBatchSizeInvariant) {
  LoadgenConfig config;
  config.requests = 120;
  config.seed = 7;
  const std::vector<Request> stream = make_request_stream(config);
  // Batch coalescing is a wall-clock artefact; decisions must not see it.
  const EngineStats one = run_stream(stream, /*max_batch=*/1);
  const EngineStats many = run_stream(stream, /*max_batch=*/64);
  EXPECT_EQ(one.decision_digest, many.decision_digest);
  EXPECT_EQ(one.accepted, many.accepted);
}

TEST(AdmissionEngineTest, RequestStreamIsDeterministicAndOrdered) {
  LoadgenConfig config;
  config.requests = 80;
  config.seed = 99;
  const std::vector<Request> a = make_request_stream(config);
  const std::vector<Request> b = make_request_stream(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(encode_request(a[i]), encode_request(b[i]));
    EXPECT_EQ(a[i].id, i + 1) << "ids are 1..N in submission order";
    if (i > 0) {
      EXPECT_GE(a[i].submit_time, a[i - 1].submit_time)
          << "arrivals are non-decreasing";
    }
  }
}

TEST(AdmissionEngineTest, QueueFullYieldsBusyAndDrainAnswersEverything) {
  EngineConfig config;
  config.queue_capacity = 8;
  AdmissionEngine engine(config);
  engine.start();
  engine.pause();  // deterministically hold the queue at depth

  std::atomic<int> completions{0};
  for (std::uint64_t id = 1; id <= 8; ++id) {
    EXPECT_TRUE(engine.submit(make_request(id, 0.0),
                              [&](const Response&) { ++completions; }));
  }
  EXPECT_EQ(engine.queue_depth(), 8u);
  EXPECT_FALSE(engine.submit(make_request(9, 0.0), [](const Response&) {}))
      << "a full queue is backpressure, not blocking";

  const Response busy = engine.make_busy_response(make_request(9, 0.0));
  EXPECT_EQ(busy.id, 9u);
  EXPECT_EQ(busy.status, Status::Busy);
  EXPECT_GT(busy.retry_after_ms, 0.0);

  // Drain resumes the paused engine and must answer all eight.
  const EngineStats stats = engine.drain();
  EXPECT_EQ(completions.load(), 8);
  EXPECT_EQ(stats.processed, 8u);
  EXPECT_FALSE(engine.submit(make_request(10, 0.0), [](const Response&) {}))
      << "a drained engine refuses new work";
}

// ------------------------------------------------------------- stdio server

TEST(StdioServerTest, AnswersEveryLineAndCountsFailures) {
  EngineConfig config;
  AdmissionEngine engine(config);
  engine.start();

  std::string oversized(300, 'x');
  std::istringstream in(encode_request(make_request(1, 0.0)) + "\n" +
                        "not json\n" + oversized + "\n" +
                        encode_request(make_request(2, 5.0)) + "\n");
  std::ostringstream out;
  const ServerStats stats =
      Server::run_stdio(engine, in, out, /*max_line_bytes=*/256);

  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.responses, 4u) << "every line gets a response";

  std::istringstream replies(out.str());
  std::string line;
  std::size_t decisions = 0;
  std::size_t errors = 0;
  while (std::getline(replies, line)) {
    const Response response = parse_response(line);
    if (response.status == Status::Error) {
      ++errors;
    } else {
      ++decisions;
    }
  }
  EXPECT_EQ(decisions, 2u);
  EXPECT_EQ(errors, 2u);
}

// ------------------------------------------------------------ socket server

TEST(SocketServerTest, ClosedLoopRunMatchesServerDigest) {
  EngineConfig engine_config;
  AdmissionEngine engine(engine_config);
  engine.start();

  ServerConfig server_config;
  server_config.tcp_port = 0;  // ephemeral loopback port
  Server server(server_config, engine);
  server.start();
  ASSERT_GT(server.bound_port(), 0);

  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 200;
  load.seed = 42;
  const LoadgenReport report = run_loadgen(load);
  EXPECT_EQ(report.sent, 200u);
  EXPECT_EQ(report.responses, 200u);
  EXPECT_EQ(report.dropped, 0u) << "zero dropped responses";
  EXPECT_EQ(report.errors, 0u);

  const EngineStats stats = server.stop_and_drain();
  EXPECT_EQ(stats.processed, 200u);
  EXPECT_EQ(report.decision_digest, stats.decision_digest)
      << "client and server must agree on every decision";
}

TEST(SocketServerTest, OverloadSeesBusyBackpressureAndStillNoDrops) {
  EngineConfig engine_config;
  engine_config.queue_capacity = 4;  // tiny queue: overload is certain
  AdmissionEngine engine(engine_config);
  engine.start();
  engine.pause();  // hold the engine so the queue observably fills

  ServerConfig server_config;
  server_config.tcp_port = 0;
  Server server(server_config, engine);
  server.start();

  std::thread resumer([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    engine.resume();
  });

  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 50;
  load.open_loop = true;
  load.rate = 5000.0;  // all 50 go out while the engine is paused
  const LoadgenReport report = run_loadgen(load);
  resumer.join();

  EXPECT_EQ(report.sent, 50u);
  EXPECT_EQ(report.responses, 50u);
  EXPECT_EQ(report.dropped, 0u)
      << "backpressure answers busy, it never drops";
  EXPECT_GT(report.busy, 0u) << "the bounded queue must push back";
  EXPECT_LT(report.accepted + report.rejected, 50u);

  const EngineStats stats = server.stop_and_drain();
  EXPECT_LE(stats.processed, 4u + report.accepted + report.rejected);
}

TEST(SocketServerTest, StopAndDrainAnswersQueuedRequests) {
  EngineConfig engine_config;
  engine_config.queue_capacity = 64;
  AdmissionEngine engine(engine_config);
  engine.start();
  engine.pause();

  ServerConfig server_config;
  server_config.tcp_port = 0;
  Server server(server_config, engine);
  server.start();

  // Park requests in the admission queue, then shut down while they are
  // still pending: the drain contract says every one gets its decision.
  LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = 16;
  load.open_loop = true;
  load.rate = 10000.0;

  std::thread drainer([&engine, &server] {
    // Wait for the queue to hold everything the client sent.
    while (engine.queue_depth() < 16) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    (void)server.stop_and_drain();
  });
  const LoadgenReport report = run_loadgen(load);
  drainer.join();

  EXPECT_EQ(report.sent, 16u);
  EXPECT_EQ(report.responses, 16u) << "drain answered the queued requests";
  EXPECT_EQ(report.dropped, 0u);
}

}  // namespace
}  // namespace utilrisk::serve
