// Tests for the cluster executors: space-shared allocation and EASY
// availability estimation; time-shared proportional-share integration,
// work conservation and completion semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/space_shared.hpp"
#include "cluster/time_shared.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace utilrisk::cluster {
namespace {

workload::Job make_job(workload::JobId id, std::uint32_t procs,
                       double runtime, double estimate = -1.0,
                       double deadline_factor = 8.0) {
  workload::Job job;
  job.id = id;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = estimate < 0.0 ? runtime : estimate;
  job.deadline_duration = runtime * deadline_factor;
  return job;
}

// ---------------------------------------------------------- Space-shared

TEST(SpaceSharedTest, RunsJobForExactlyItsRuntime) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 8});
  double finish = -1.0;
  cluster.start(make_job(1, 4, 100.0),
                [&](workload::JobId, sim::SimTime t) { finish = t; });
  EXPECT_EQ(cluster.free_procs(), 4u);
  simk.run();
  EXPECT_DOUBLE_EQ(finish, 100.0);
  EXPECT_EQ(cluster.free_procs(), 8u);
}

TEST(SpaceSharedTest, RejectsOversizedAndDoubleStarts) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 4});
  cluster.start(make_job(1, 3, 50.0), {});
  EXPECT_FALSE(cluster.can_start(2));
  EXPECT_THROW(cluster.start(make_job(2, 2, 50.0), {}), std::logic_error);
  EXPECT_THROW(cluster.start(make_job(1, 1, 50.0), {}), std::logic_error)
      << "same id twice";
  workload::Job zero = make_job(3, 1, 50.0);
  zero.procs = 0;
  EXPECT_THROW(cluster.start(zero, {}), std::logic_error);
}

TEST(SpaceSharedTest, TracksConcurrentJobs) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 10});
  int finished = 0;
  auto count = [&](workload::JobId, sim::SimTime) { ++finished; };
  cluster.start(make_job(1, 3, 100.0), count);
  cluster.start(make_job(2, 3, 200.0), count);
  cluster.start(make_job(3, 4, 50.0), count);
  EXPECT_EQ(cluster.free_procs(), 0u);
  EXPECT_EQ(cluster.running_count(), 3u);
  simk.run(120.0);
  EXPECT_EQ(finished, 2) << "jobs 1 and 3 done by t=120";
  EXPECT_EQ(cluster.free_procs(), 7u);
  simk.run();
  EXPECT_EQ(finished, 3);
}

TEST(SpaceSharedTest, RunningJobsSortedByEstimatedFinish) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 8});
  cluster.start(make_job(1, 1, 500.0, 900.0), {});
  cluster.start(make_job(2, 1, 500.0, 300.0), {});
  const auto running = cluster.running_jobs();
  ASSERT_EQ(running.size(), 2u);
  EXPECT_EQ(running[0].id, 2u);
  EXPECT_DOUBLE_EQ(running[0].estimated_finish, 300.0);
  EXPECT_DOUBLE_EQ(running[0].actual_finish, 500.0);
}

TEST(SpaceSharedTest, EstimatedAvailabilityWalksEstimates) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 8});
  cluster.start(make_job(1, 4, 1000.0, 400.0), {});
  cluster.start(make_job(2, 4, 1000.0, 700.0), {});
  // 0 free now; 4 free (estimated) at 400, 8 at 700.
  EXPECT_DOUBLE_EQ(cluster.estimated_availability(4), 400.0);
  EXPECT_DOUBLE_EQ(cluster.estimated_availability(8), 700.0);
  EXPECT_DOUBLE_EQ(cluster.estimated_availability(0), 0.0);
  EXPECT_EQ(cluster.estimated_availability(9), sim::kTimeNever)
      << "more processors than the machine has";
}

TEST(SpaceSharedTest, OverrunJobsCountAsAvailableNow) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 4});
  // Estimate 100 but really runs 1000: after t=100 the scheduler's best
  // guess is "free now".
  cluster.start(make_job(1, 4, 1000.0, 100.0), {});
  simk.schedule_at(500.0, [&] {
    EXPECT_DOUBLE_EQ(cluster.estimated_availability(4), 500.0);
  });
  simk.run();
}

TEST(SpaceSharedTest, BusyProcSecondsAccumulates) {
  sim::Simulator simk;
  SpaceSharedCluster cluster(simk, {.node_count = 4});
  cluster.start(make_job(1, 2, 100.0), {});
  simk.run();
  EXPECT_DOUBLE_EQ(cluster.busy_proc_seconds(simk.now()), 200.0);
}

// ----------------------------------------------------------- Time-shared

TEST(TimeSharedTest, SingleTaskRunsAtFullSpeed) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 4});
  // Share 0.25, but alone on the node: work-conserving rate is 1.
  double finish = -1.0;
  cluster.start(make_job(1, 1, 400.0), {0}, 0.25,
                [&](workload::JobId, sim::SimTime t) { finish = t; });
  simk.run();
  EXPECT_NEAR(finish, 400.0, 1e-6);
}

TEST(TimeSharedTest, TwoEqualTasksShareProportionally) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 1});
  double f1 = -1, f2 = -1;
  cluster.start(make_job(1, 1, 100.0), {0}, 0.5,
                [&](workload::JobId, sim::SimTime t) { f1 = t; });
  cluster.start(make_job(2, 1, 100.0), {0}, 0.5,
                [&](workload::JobId, sim::SimTime t) { f2 = t; });
  simk.run();
  // Both at rate 0.5 until one finishes; equal work => both at t=200.
  EXPECT_NEAR(f1, 200.0, 1e-6);
  EXPECT_NEAR(f2, 200.0, 1e-6);
}

TEST(TimeSharedTest, WorkConservingRedistribution) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 1});
  double f1 = -1, f2 = -1;
  // Job 1: 100s of work, share 0.5. Job 2: 300s of work, share 0.5.
  cluster.start(make_job(1, 1, 100.0), {0}, 0.5,
                [&](workload::JobId, sim::SimTime t) { f1 = t; });
  cluster.start(make_job(2, 1, 300.0), {0}, 0.5,
                [&](workload::JobId, sim::SimTime t) { f2 = t; });
  simk.run();
  // Phase 1: both at rate 1/2. Job 1 finishes at t=200 (100/0.5).
  // Phase 2: job 2 alone at rate 1; it has 300-100=200 left => t=400.
  EXPECT_NEAR(f1, 200.0, 1e-6);
  EXPECT_NEAR(f2, 400.0, 1e-6);
}

TEST(TimeSharedTest, UnequalSharesGiveProportionalRates) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 1});
  double f1 = -1, f2 = -1;
  // Shares 0.6 / 0.2 -> rates 0.75 / 0.25.
  cluster.start(make_job(1, 1, 300.0), {0}, 0.6,
                [&](workload::JobId, sim::SimTime t) { f1 = t; });
  cluster.start(make_job(2, 1, 300.0), {0}, 0.2,
                [&](workload::JobId, sim::SimTime t) { f2 = t; });
  simk.run();
  EXPECT_NEAR(f1, 400.0, 1e-3);  // 300 / 0.75
  // Job 2: 100 work done by t=400 (rate 0.25), then alone at rate 1:
  // finishes at 400 + 200 = 600.
  EXPECT_NEAR(f2, 600.0, 1e-3);
}

TEST(TimeSharedTest, ParallelJobFinishesWithSlowestTask) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 3});
  // Load node 0 with a competing task so the parallel job's task there
  // runs slower than its siblings.
  cluster.start(make_job(1, 1, 1000.0), {0}, 0.5, {});
  double finish = -1.0;
  cluster.start(make_job(2, 2, 100.0), {0, 1}, 0.5,
                [&](workload::JobId, sim::SimTime t) { finish = t; });
  simk.run();
  // Task on node 1 runs alone (rate 1, done at t=100); task on node 0
  // shares (rate 0.5, done at t=200). Job completes at 200.
  EXPECT_NEAR(finish, 200.0, 1e-6);
  EXPECT_EQ(cluster.running_count(), 0u);
}

TEST(TimeSharedTest, CommittedShareTracksArrivalsAndDepartures) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 2});
  cluster.start(make_job(1, 1, 100.0), {0}, 0.3, {});
  cluster.start(make_job(2, 1, 100.0), {0}, 0.4, {});
  EXPECT_NEAR(cluster.committed_share(0), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(cluster.committed_share(1), 0.0);
  simk.run();
  EXPECT_NEAR(cluster.committed_share(0), 0.0, 1e-9);
}

TEST(TimeSharedTest, EnforcesPhysicalPreconditions) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 2});
  cluster.start(make_job(1, 1, 100.0), {0}, 0.8, {});
  EXPECT_THROW(cluster.start(make_job(2, 1, 100.0), {0}, 0.3, {}),
               std::logic_error)
      << "share capacity exceeded";
  EXPECT_THROW(cluster.start(make_job(3, 2, 100.0), {1, 1}, 0.1, {}),
               std::logic_error)
      << "duplicate node";
  EXPECT_THROW(cluster.start(make_job(4, 2, 100.0), {1}, 0.1, {}),
               std::logic_error)
      << "node list size mismatch";
  EXPECT_THROW(cluster.start(make_job(5, 1, 100.0), {5}, 0.1, {}),
               std::logic_error)
      << "bad node id";
  EXPECT_THROW(cluster.start(make_job(6, 1, 100.0), {1}, 1.5, {}),
               std::logic_error)
      << "share > 1";
  EXPECT_THROW(cluster.start(make_job(1, 1, 100.0), {1}, 0.1, {}),
               std::logic_error)
      << "duplicate job id";
}

TEST(TimeSharedTest, NodeViewIntegratesToNow) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 1});
  cluster.start(make_job(1, 1, 1000.0, 500.0), {0}, 0.5, {});
  simk.schedule_at(300.0, [&] {
    const NodeView view = cluster.node_view(0);
    ASSERT_EQ(view.tasks.size(), 1u);
    EXPECT_NEAR(view.tasks[0].done_work, 300.0, 1e-9)
        << "alone on the node => rate 1";
    EXPECT_FALSE(view.tasks[0].overran_estimate());
  });
  simk.schedule_at(600.0, [&] {
    const NodeView view = cluster.node_view(0);
    ASSERT_EQ(view.tasks.size(), 1u);
    EXPECT_TRUE(view.tasks[0].overran_estimate())
        << "600s done > 500s estimated";
  });
  simk.run();
}

TEST(TimeSharedTest, BusyProcSecondsIsWorkConserving) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 2});
  cluster.start(make_job(1, 1, 50.0), {0}, 0.5, {});
  cluster.start(make_job(2, 1, 50.0), {0}, 0.5, {});
  simk.run();
  // Node 0 busy from 0 to 100 (both tasks at rate .5, 100 proc-seconds).
  EXPECT_NEAR(cluster.busy_proc_seconds(), 100.0, 1e-6);
}

// Property sweep: with total share <= 1 and accurate estimates, every job
// admitted with share = estimate/deadline finishes within its deadline.
class ProportionalShareDeadlineSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProportionalShareDeadlineSweep, AdmittedJobsMeetDeadlines) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 4});
  sim::Rng rng(GetParam());
  struct Expectation {
    double deadline;
    double finish = -1.0;
  };
  std::vector<std::shared_ptr<Expectation>> expectations;

  for (std::uint32_t i = 1; i <= 60; ++i) {
    const double submit = rng.uniform(0.0, 2000.0);
    simk.schedule_at(submit, [&cluster, &rng, &expectations, &simk, i] {
      workload::Job job = make_job(i, 1, rng.uniform(50.0, 500.0), -1.0,
                                   rng.uniform(1.5, 10.0));
      job.submit_time = simk.now();
      const double share = job.estimated_runtime / job.deadline_duration;
      // Libra admission rule on node (i % 4).
      const NodeId node = i % 4;
      if (cluster.committed_share(node) + share >
          1.0 + TimeSharedCluster::kShareEpsilon) {
        return;  // rejected
      }
      auto expectation = std::make_shared<Expectation>();
      expectation->deadline = job.absolute_deadline();
      expectations.push_back(expectation);
      cluster.start(job, {node}, share,
                    [expectation](workload::JobId, sim::SimTime t) {
                      expectation->finish = t;
                    });
    });
  }
  simk.run();
  ASSERT_FALSE(expectations.empty());
  for (const auto& expectation : expectations) {
    ASSERT_GT(expectation->finish, 0.0) << "every admitted job finishes";
    EXPECT_LE(expectation->finish, expectation->deadline + 1e-6)
        << "guaranteed share implies deadline met with accurate estimates";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProportionalShareDeadlineSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Work conservation under a random arrival/cancellation mix: the
// integrator must deliver exactly the work of completed tasks plus the
// partial progress of cancelled ones — no work invented or lost.
class WorkConservationSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WorkConservationSweep, DeliveredWorkBalancesExactly) {
  sim::Simulator simk;
  TimeSharedCluster cluster(simk, {.node_count = 2});
  sim::Rng rng(GetParam());

  double completed_work = 0.0;
  std::vector<workload::JobId> cancellable;

  for (std::uint32_t i = 1; i <= 40; ++i) {
    const double submit = rng.uniform(0.0, 1000.0);
    simk.schedule_at(submit, [&, i] {
      workload::Job job = make_job(i, 1, rng.uniform(20.0, 200.0));
      const double share = rng.uniform(0.05, 0.3);
      const NodeId node = i % 2;
      if (cluster.committed_share(node) + share >
          1.0 + TimeSharedCluster::kShareEpsilon) {
        return;
      }
      cancellable.push_back(i);
      const double work = job.actual_runtime;
      cluster.start(job, {node}, share,
                    [&completed_work, work, &cancellable, i](
                        workload::JobId, sim::SimTime) {
                      completed_work += work;
                      std::erase(cancellable, i);
                    });
    });
    // Random cancellations interleaved with the arrivals.
    if (i % 7 == 0) {
      simk.schedule_at(rng.uniform(200.0, 1200.0), [&] {
        if (!cancellable.empty()) {
          cluster.cancel(cancellable.front());
          cancellable.erase(cancellable.begin());
        }
      });
    }
  }
  simk.run();
  // Cancelled tasks delivered less than their full work; completed ones
  // exactly their work. busy_proc_seconds must sit between the completed
  // total and completed + sum of cancelled runtimes.
  const double delivered = cluster.busy_proc_seconds();
  EXPECT_GE(delivered, completed_work - 1e-6);
  EXPECT_EQ(cluster.running_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkConservationSweep,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace utilrisk::cluster
