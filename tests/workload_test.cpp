// Tests for the workload substrate: SWF parsing, the synthetic SDSC SP2
// generator, QoS synthesis and the experiment knobs.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "workload/qos.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic_sdsc.hpp"
#include "workload/trace_stats.hpp"
#include "workload/workload.hpp"

namespace utilrisk::workload {
namespace {

// ----------------------------------------------------------------------- SWF

TEST(SwfTest, ParsesWellFormedLines) {
  std::istringstream in(
      "; SDSC SP2 test header\n"
      "1 0 10 3600 8 -1 -1 8 7200 -1 1 3 4 -1 1 -1 -1 -1\n"
      "2 100 0 600 1 -1 -1 1 900 -1 1 3 4 -1 1 -1 -1 -1\n");
  const SwfParseResult result = parse_swf(in);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.header.size(), 1u);
  EXPECT_TRUE(result.skipped.empty());
  EXPECT_DOUBLE_EQ(result.jobs[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].actual_runtime, 3600.0);
  EXPECT_EQ(result.jobs[0].procs, 8u);
  EXPECT_DOUBLE_EQ(result.jobs[0].estimated_runtime, 7200.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].submit_time, 100.0);
}

TEST(SwfTest, SkipsMalformedAndFilteredLines) {
  std::istringstream in(
      "garbage line\n"
      "1 0 10 3600 8 -1 -1 8 7200 -1 0 3 4 -1 1 -1 -1 -1\n"   // status 0
      "2 0 10 -1 8 -1 -1 8 7200 -1 1 3 4 -1 1 -1 -1 -1\n"     // degenerate
      "3 50 10 600 4 -1 -1 4 900 -1 1 3 4 -1 1 -1 -1 -1\n");  // good
  const SwfParseResult result = parse_swf(in);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.skipped.size(), 3u);
  EXPECT_DOUBLE_EQ(result.jobs[0].submit_time, 0.0)
      << "rebase must shift the first kept job to t=0";
}

TEST(SwfTest, KeepLastSelectsTail) {
  std::ostringstream trace;
  for (int i = 1; i <= 10; ++i) {
    trace << i << ' ' << i * 100 << " 0 600 1 -1 -1 1 900 -1 1 -1 -1 -1 1"
          << " -1 -1 -1\n";
  }
  std::istringstream in(trace.str());
  SwfLoadOptions options;
  options.keep_last = 3;
  const SwfParseResult result = parse_swf(in, options);
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(result.jobs[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[2].submit_time, 200.0);
  EXPECT_EQ(result.jobs[0].id, 1u) << "ids are re-assigned after the cut";
}

TEST(SwfTest, FallsBackToAllocatedProcsAndRuntimeEstimate) {
  std::istringstream in(
      "1 0 10 3600 16 -1 -1 -1 -1 -1 1 -1 -1 -1 1 -1 -1 -1\n");
  const SwfParseResult result = parse_swf(in);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].procs, 16u);
  EXPECT_DOUBLE_EQ(result.jobs[0].estimated_runtime, 3600.0);
}

TEST(SwfTest, RoundTripsThroughSaveAndParse) {
  const SyntheticSdscConfig config{.job_count = 50};
  const std::vector<Job> jobs = generate_synthetic_sdsc(config);
  std::ostringstream out;
  save_swf(out, jobs, {"synthetic test trace"});
  std::istringstream in(out.str());
  const SwfParseResult parsed = parse_swf(in);
  ASSERT_EQ(parsed.jobs.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(parsed.jobs[i].submit_time, jobs[i].submit_time, 1e-3);
    EXPECT_NEAR(parsed.jobs[i].actual_runtime, jobs[i].actual_runtime, 1e-3);
    EXPECT_EQ(parsed.jobs[i].procs, jobs[i].procs);
  }
}

TEST(SwfSidecarTest, QosRoundTripsThroughTheSidecar) {
  std::vector<Job> jobs =
      generate_synthetic_sdsc(SyntheticSdscConfig{.job_count = 100});
  assign_qos(jobs, QosConfig{});

  std::ostringstream sidecar;
  save_qos_sidecar(sidecar, jobs);

  std::vector<Job> stripped = jobs;
  for (Job& job : stripped) {
    job.deadline_duration = 0.0;
    job.budget = 0.0;
    job.penalty_rate = 0.0;
    job.urgency = Urgency::Low;
  }
  std::istringstream in(sidecar.str());
  EXPECT_EQ(load_qos_sidecar(in, stripped), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(stripped[i].deadline_duration, jobs[i].deadline_duration,
                1e-6);
    EXPECT_NEAR(stripped[i].budget, jobs[i].budget, 1e-6);
    EXPECT_NEAR(stripped[i].penalty_rate, jobs[i].penalty_rate, 1e-9);
    EXPECT_EQ(stripped[i].urgency, jobs[i].urgency);
  }
}

TEST(SwfSidecarTest, RejectsMalformedRows) {
  std::vector<Job> jobs(1);
  jobs[0].id = 1;
  {
    std::istringstream in("id,deadline_duration,budget,penalty_rate,urgency\n"
                          "1,100.0,50.0\n");
    EXPECT_THROW((void)load_qos_sidecar(in, jobs), std::runtime_error)
        << "missing columns";
  }
  {
    std::istringstream in("9,100.0,50.0,1.0,low\n");
    EXPECT_THROW((void)load_qos_sidecar(in, jobs), std::runtime_error)
        << "unknown job id";
  }
  {
    std::istringstream in("1,100.0,50.0,1.0,medium\n");
    EXPECT_THROW((void)load_qos_sidecar(in, jobs), std::runtime_error)
        << "unknown urgency";
  }
  {
    std::istringstream in("1,-5.0,50.0,1.0,low\n");
    EXPECT_THROW((void)load_qos_sidecar(in, jobs), std::runtime_error)
        << "non-positive deadline";
  }
}

TEST(SwfSidecarTest, PartialSidecarUpdatesOnlyListedJobs) {
  std::vector<Job> jobs(2);
  jobs[0].id = 1;
  jobs[1].id = 2;
  jobs[1].budget = 777.0;
  std::istringstream in("1,100.0,50.0,2.5,high\n");
  EXPECT_EQ(load_qos_sidecar(in, jobs), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].budget, 50.0);
  EXPECT_EQ(jobs[0].urgency, Urgency::High);
  EXPECT_DOUBLE_EQ(jobs[1].budget, 777.0) << "untouched";
}

// ------------------------------------------------------------ Synthetic SDSC

class SyntheticTraceTest : public ::testing::Test {
 protected:
  static const std::vector<Job>& trace() {
    static const std::vector<Job> jobs =
        generate_synthetic_sdsc(SyntheticSdscConfig{});
    return jobs;
  }
};

TEST_F(SyntheticTraceTest, MatchesPublishedSubsetStatistics) {
  const TraceStats stats = compute_trace_stats(trace(), 128);
  EXPECT_EQ(stats.job_count, 5000u);
  // Published figures: mean inter-arrival 1969 s, mean runtime 8671 s,
  // mean size ~17 PEs. Allow 10 % sampling slack.
  EXPECT_NEAR(stats.mean_interarrival, 1969.0, 197.0);
  EXPECT_NEAR(stats.mean_runtime, 8671.0, 870.0);
  EXPECT_NEAR(stats.mean_procs, 17.0, 2.5);
  EXPECT_LE(stats.max_procs, 128u);
  EXPECT_LE(stats.max_runtime, 18.0 * 3600.0 + 1.0);
}

TEST_F(SyntheticTraceTest, EstimateMixMatchesTrace) {
  const TraceStats stats = compute_trace_stats(trace(), 128);
  // 92 % over- / 8 % under-estimates, +/- 2 points of sampling noise.
  EXPECT_NEAR(stats.overestimate_fraction, 0.92, 0.02);
  EXPECT_NEAR(stats.underestimate_fraction, 0.08, 0.02);
}

TEST_F(SyntheticTraceTest, SubmissionOrderAndIds) {
  const auto& jobs = trace();
  EXPECT_DOUBLE_EQ(jobs.front().submit_time, 0.0);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
    EXPECT_EQ(jobs[i].id, jobs[i - 1].id + 1);
  }
}

TEST_F(SyntheticTraceTest, DeterministicInSeed) {
  const std::vector<Job> again =
      generate_synthetic_sdsc(SyntheticSdscConfig{});
  ASSERT_EQ(again.size(), trace().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].submit_time, trace()[i].submit_time);
    EXPECT_DOUBLE_EQ(again[i].actual_runtime, trace()[i].actual_runtime);
    EXPECT_EQ(again[i].procs, trace()[i].procs);
  }
}

TEST_F(SyntheticTraceTest, DifferentSeedsProduceDifferentTraces) {
  SyntheticSdscConfig config;
  config.seed = 43;
  const std::vector<Job> other = generate_synthetic_sdsc(config);
  bool any_different = false;
  for (std::size_t i = 0; i < other.size(); ++i) {
    if (other[i].actual_runtime != trace()[i].actual_runtime) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(SyntheticTraceConfigTest, RejectsDegenerateConfigs) {
  SyntheticSdscConfig config;
  config.job_count = 0;
  EXPECT_THROW((void)generate_synthetic_sdsc(config), std::invalid_argument);
  config = {};
  config.mean_runtime = -1.0;
  EXPECT_THROW((void)generate_synthetic_sdsc(config), std::invalid_argument);
  config = {};
  config.overestimate_fraction = 1.5;
  EXPECT_THROW((void)generate_synthetic_sdsc(config), std::invalid_argument);
}

TEST(SyntheticTraceConfigTest, OverestimateFractionKnobIsHonoured) {
  SyntheticSdscConfig config;
  config.job_count = 2000;
  config.overestimate_fraction = 0.5;
  const TraceStats stats =
      compute_trace_stats(generate_synthetic_sdsc(config), 128);
  EXPECT_NEAR(stats.overestimate_fraction, 0.5, 0.04);
}

// ------------------------------------------------------------------------ QoS

class QosTest : public ::testing::Test {
 protected:
  std::vector<Job> jobs_ = generate_synthetic_sdsc(
      SyntheticSdscConfig{.job_count = 2000});
};

TEST_F(QosTest, AssignsPositiveTermsToEveryJob) {
  assign_qos(jobs_, QosConfig{});
  for (const Job& job : jobs_) {
    EXPECT_GT(job.deadline_duration, 0.0);
    EXPECT_GT(job.budget, 0.0);
    EXPECT_GT(job.penalty_rate, 0.0);
    EXPECT_GE(job.deadline_factor(), 1.05 - 1e-9)
        << "deadline floor keeps jobs feasible";
  }
}

TEST_F(QosTest, ValidateSlaTermsRejectsInvalidTerms) {
  assign_qos(jobs_, QosConfig{});
  validate_sla_terms(jobs_);  // synthesised terms pass

  std::vector<Job> bad = jobs_;
  bad[3].penalty_rate = -0.5;  // would reward lateness (eqn 9)
  EXPECT_THROW(validate_sla_terms(bad), std::invalid_argument);

  bad = jobs_;
  bad[7].budget = -100.0;  // would invert profitability
  EXPECT_THROW(validate_sla_terms(bad), std::invalid_argument);

  bad = jobs_;
  bad[0].deadline_duration = 0.0;
  EXPECT_THROW(validate_sla_terms(bad), std::invalid_argument);

  bad = jobs_;
  bad[1].budget = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate_sla_terms(bad), std::invalid_argument);

  bad = jobs_;
  bad[2].penalty_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_sla_terms(bad), std::invalid_argument);
}

TEST_F(QosTest, ValidateSlaTermsNamesTheOffendingJob) {
  assign_qos(jobs_, QosConfig{});
  jobs_[5].penalty_rate = -1.0;
  try {
    validate_sla_terms(jobs_);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(std::to_string(jobs_[5].id)),
              std::string::npos)
        << error.what();
  }
}

TEST_F(QosTest, UrgencyMixMatchesPercentage) {
  QosConfig config;
  config.high_urgency_percent = 30.0;
  assign_qos(jobs_, config);
  std::size_t high = 0;
  for (const Job& job : jobs_) {
    if (job.urgency == Urgency::High) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / jobs_.size(), 0.30, 0.03);
}

TEST_F(QosTest, HighUrgencyJobsHaveTighterDeadlinesAndBiggerBudgets) {
  QosConfig config;
  config.high_urgency_percent = 50.0;
  config.deadline.bias = 1.0;  // isolate the class effect from the bias
  config.budget.bias = 1.0;
  config.penalty.bias = 1.0;
  assign_qos(jobs_, config);

  double d_high = 0, d_low = 0, b_high = 0, b_low = 0;
  std::size_t n_high = 0, n_low = 0;
  for (const Job& job : jobs_) {
    const double d_factor = job.deadline_factor();
    const double b_factor = job.budget / job.actual_runtime;
    if (job.urgency == Urgency::High) {
      d_high += d_factor;
      b_high += b_factor;
      ++n_high;
    } else {
      d_low += d_factor;
      b_low += b_factor;
      ++n_low;
    }
  }
  ASSERT_GT(n_high, 100u);
  ASSERT_GT(n_low, 100u);
  EXPECT_LT(d_high / n_high, d_low / n_low)
      << "high urgency = tight deadlines";
  EXPECT_GT(b_high / n_high, b_low / n_low) << "high urgency = big budgets";
  // Class means should track the configured 4x ratio.
  EXPECT_NEAR((d_low / n_low) / (d_high / n_high), 4.0, 0.8);
  EXPECT_NEAR((b_high / n_high) / (b_low / n_low), 4.0, 0.8);
}

TEST_F(QosTest, BiasPenalisesLongJobs) {
  QosConfig config;
  config.deadline.bias = 4.0;
  config.high_urgency_percent = 0.0;  // single class isolates the bias
  assign_qos(jobs_, config);

  double mean_runtime = 0.0;
  for (const Job& job : jobs_) mean_runtime += job.actual_runtime;
  mean_runtime /= static_cast<double>(jobs_.size());

  double f_long = 0, f_short = 0;
  std::size_t n_long = 0, n_short = 0;
  for (const Job& job : jobs_) {
    if (job.actual_runtime > mean_runtime) {
      f_long += job.deadline_factor();
      ++n_long;
    } else {
      f_short += job.deadline_factor();
      ++n_short;
    }
  }
  EXPECT_LT(f_long / n_long, f_short / n_short);
}

TEST_F(QosTest, PenaltyRateFollowsTheDocumentedG) {
  // g(tr) = tr * base_price / 3600 (qos.hpp): with bias off and a single
  // class, the mean of pr / (tr/3600) must equal the class factor mean.
  QosConfig config;
  config.high_urgency_percent = 0.0;
  config.penalty.bias = 1.0;
  config.penalty.low_value_mean = 4.0;
  assign_qos(jobs_, config);
  double mean_factor = 0.0;
  for (const Job& job : jobs_) {
    mean_factor += job.penalty_rate / (job.actual_runtime / 3600.0);
  }
  mean_factor /= static_cast<double>(jobs_.size());
  EXPECT_NEAR(mean_factor, 4.0, 0.2);
}

TEST_F(QosTest, BudgetScalesWithBasePrice) {
  QosConfig cheap;
  cheap.base_price = 1.0;
  QosConfig pricey;
  pricey.base_price = 3.0;
  std::vector<Job> a = jobs_;
  std::vector<Job> b = jobs_;
  assign_qos(a, cheap);
  assign_qos(b, pricey);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(b[i].budget, 3.0 * a[i].budget, 1e-6 * b[i].budget);
    ASSERT_NEAR(b[i].penalty_rate, 3.0 * a[i].penalty_rate,
                1e-6 * b[i].penalty_rate);
    ASSERT_DOUBLE_EQ(b[i].deadline_duration, a[i].deadline_duration)
        << "deadlines are price-independent";
  }
}

TEST_F(QosTest, DeterministicInSeed) {
  std::vector<Job> copy = jobs_;
  assign_qos(jobs_, QosConfig{});
  assign_qos(copy, QosConfig{});
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs_[i].deadline_duration, copy[i].deadline_duration);
    EXPECT_DOUBLE_EQ(jobs_[i].budget, copy[i].budget);
    EXPECT_DOUBLE_EQ(jobs_[i].penalty_rate, copy[i].penalty_rate);
  }
}

TEST_F(QosTest, ClassMeansFollowTheParameterSemantics) {
  QosParameterConfig p;
  p.low_value_mean = 3.0;
  p.high_low_ratio = 5.0;
  const ClassMeans d = deadline_class_means(p);
  EXPECT_DOUBLE_EQ(d.high_urgency_mean, 3.0);
  EXPECT_DOUBLE_EQ(d.low_urgency_mean, 15.0);
  const ClassMeans m = money_class_means(p);
  EXPECT_DOUBLE_EQ(m.high_urgency_mean, 15.0);
  EXPECT_DOUBLE_EQ(m.low_urgency_mean, 3.0);
}

TEST_F(QosTest, RejectsInvalidConfig) {
  QosConfig config;
  config.high_urgency_percent = 120.0;
  EXPECT_THROW(assign_qos(jobs_, config), std::invalid_argument);
  config = {};
  config.deadline.bias = 0.5;
  EXPECT_THROW(assign_qos(jobs_, config), std::invalid_argument);
  config = {};
  config.budget.high_low_ratio = 0.5;
  EXPECT_THROW(assign_qos(jobs_, config), std::invalid_argument);
}

// ------------------------------------------------------------ Workload knobs

TEST(WorkloadKnobsTest, ArrivalDelayFactorScalesGaps) {
  std::vector<Job> jobs(3);
  jobs[0].submit_time = 0.0;
  jobs[1].submit_time = 600.0;
  jobs[2].submit_time = 1000.0;
  apply_arrival_delay_factor(jobs, 0.1);
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].submit_time, 60.0);
  EXPECT_DOUBLE_EQ(jobs[2].submit_time, 100.0);
}

TEST(WorkloadKnobsTest, ArrivalDelayFactorRejectsNonPositive) {
  std::vector<Job> jobs(2);
  EXPECT_THROW(apply_arrival_delay_factor(jobs, 0.0), std::invalid_argument);
  EXPECT_THROW(apply_arrival_delay_factor(jobs, -1.0), std::invalid_argument);
}

TEST(WorkloadKnobsTest, InaccuracyBlendsEstimates) {
  std::vector<Job> jobs(1);
  jobs[0].actual_runtime = 1000.0;
  jobs[0].estimated_runtime = 3000.0;

  std::vector<Job> at0 = jobs;
  apply_estimate_inaccuracy(at0, 0.0);
  EXPECT_DOUBLE_EQ(at0[0].estimated_runtime, 1000.0) << "Set A: accurate";

  std::vector<Job> at50 = jobs;
  apply_estimate_inaccuracy(at50, 50.0);
  EXPECT_DOUBLE_EQ(at50[0].estimated_runtime, 2000.0);

  std::vector<Job> at100 = jobs;
  apply_estimate_inaccuracy(at100, 100.0);
  EXPECT_DOUBLE_EQ(at100[0].estimated_runtime, 3000.0) << "Set B: trace";
}

TEST(WorkloadKnobsTest, InaccuracyRejectsOutOfRange) {
  std::vector<Job> jobs(1);
  EXPECT_THROW(apply_estimate_inaccuracy(jobs, -1.0), std::invalid_argument);
  EXPECT_THROW(apply_estimate_inaccuracy(jobs, 101.0), std::invalid_argument);
}

TEST(WorkloadBuilderTest, BuildComposesAllKnobs) {
  SyntheticSdscConfig trace;
  trace.job_count = 500;
  const WorkloadBuilder builder(trace);
  const std::vector<Job> jobs = builder.build(QosConfig{}, 0.5, 0.0);
  ASSERT_EQ(jobs.size(), 500u);
  for (const Job& job : jobs) {
    EXPECT_GT(job.deadline_duration, 0.0);
    EXPECT_DOUBLE_EQ(job.estimated_runtime, job.actual_runtime)
        << "0% inaccuracy means perfectly accurate estimates";
  }
  // Arrivals compressed 2x relative to the base trace.
  EXPECT_NEAR(jobs.back().submit_time,
              builder.base_trace().back().submit_time * 0.5, 1e-6);
}

TEST(WorkloadBuilderTest, BaseTraceIsInvariantAcrossBuilds) {
  SyntheticSdscConfig trace;
  trace.job_count = 200;
  const WorkloadBuilder builder(trace);
  (void)builder.build(QosConfig{}, 0.1, 100.0);
  const std::vector<Job> second = builder.build(QosConfig{}, 1.0, 0.0);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_DOUBLE_EQ(second[i].submit_time,
                     builder.base_trace()[i].submit_time);
  }
}

class ArrivalDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(ArrivalDelaySweep, MeanInterarrivalScalesLinearly) {
  SyntheticSdscConfig trace;
  trace.job_count = 1000;
  const WorkloadBuilder builder(trace);
  const double factor = GetParam();
  const std::vector<Job> jobs = builder.build(QosConfig{}, factor, 0.0);
  const TraceStats base = compute_trace_stats(builder.base_trace(), 128);
  const TraceStats scaled = compute_trace_stats(jobs, 128);
  EXPECT_NEAR(scaled.mean_interarrival, base.mean_interarrival * factor,
              base.mean_interarrival * factor * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(TableVI, ArrivalDelaySweep,
                         ::testing::Values(0.02, 0.10, 0.25, 0.50, 0.75,
                                           1.00));

}  // namespace
}  // namespace utilrisk::workload
