// Unit tests for the discrete-event kernel: event ordering, cancellation,
// clock semantics, RNG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "sim/distributions.hpp"
#include "sim/entity.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_log.hpp"

namespace utilrisk::sim {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  while (auto rec = queue.pop()) rec->action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFifoBySchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto rec = queue.pop()) rec->action();
  std::vector<int> expected(10);
  for (int i = 0; i < 10; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  auto h1 = queue.push(1.0, [] {});
  auto h2 = queue.push(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(h1.cancel());
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_FALSE(h1.cancel()) << "double cancel must be a no-op";
  EXPECT_TRUE(h2.pending());
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue queue;
  std::vector<int> order;
  auto h = queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  h.cancel();
  while (auto rec = queue.pop()) rec->action();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, NextTimeSkipsCancelledHead) {
  EventQueue queue;
  auto h = queue.push(1.0, [] {});
  queue.push(7.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
  h.cancel();
  EXPECT_DOUBLE_EQ(queue.next_time(), 7.0);
}

TEST(EventQueueTest, RejectsNonFiniteTimeAndEmptyAction) {
  EventQueue queue;
  EXPECT_THROW(queue.push(kTimeNever, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.push(1.0, EventAction{}), std::invalid_argument);
}

TEST(EventQueueTest, HandleOutlivesQueueSafely) {
  EventHandle handle;
  {
    EventQueue queue;
    handle = queue.push(1.0, [] {});
  }
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(EventQueueTest, StaleHandleIgnoresRecycledSlot) {
  // After an event is popped its slot returns to the free list; a later
  // push reuses it with a bumped generation, so the old handle must see
  // neither the new event's time nor be able to cancel it.
  EventQueue queue;
  auto stale = queue.push(1.0, [] {});
  auto rec = queue.pop();
  ASSERT_TRUE(rec.has_value());
  auto fresh = queue.push(9.0, [] {});
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel()) << "stale handle must not cancel the reused slot";
  EXPECT_TRUE(fresh.pending());
  EXPECT_DOUBLE_EQ(queue.next_time(), 9.0);
}

TEST(EventQueueTest, StressManyRandomEvents) {
  EventQueue queue;
  Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    queue.push(t, [] {});
  }
  double prev = -1.0;
  while (auto rec = queue.pop()) {
    EXPECT_GE(rec->time, prev);
    prev = rec->time;
  }
}

// ----------------------------------------------------------------- Simulator

TEST(SimulatorTest, RunsToQuiescence) {
  Simulator simk;
  int fired = 0;
  simk.schedule_at(10.0, [&] { ++fired; });
  simk.schedule_at(20.0, [&] { ++fired; });
  EXPECT_EQ(simk.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(simk.now(), 20.0);
}

TEST(SimulatorTest, ClockAdvancesMonotonically) {
  Simulator simk;
  std::vector<double> observed;
  for (double t : {5.0, 1.0, 3.0, 1.0}) {
    simk.schedule_at(t, [&simk, &observed] { observed.push_back(simk.now()); });
  }
  simk.run();
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_EQ(observed.size(), 4u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simk;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) simk.schedule_in(1.0, next);
  };
  simk.schedule_at(0.0, next);
  simk.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(simk.now(), 4.0);
}

TEST(SimulatorTest, RejectsSchedulingInThePast) {
  Simulator simk;
  simk.schedule_at(10.0, [&] {
    EXPECT_THROW(simk.schedule_at(5.0, [] {}), SchedulingError);
  });
  simk.run();
}

TEST(SimulatorTest, HorizonStopsAndAdvancesClock) {
  Simulator simk;
  int fired = 0;
  simk.schedule_at(10.0, [&] { ++fired; });
  simk.schedule_at(100.0, [&] { ++fired; });
  EXPECT_EQ(simk.run(50.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(simk.now(), 50.0);
  EXPECT_EQ(simk.pending_events(), 1u);
  simk.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopRequestHaltsRun) {
  Simulator simk;
  int fired = 0;
  simk.schedule_at(1.0, [&] {
    ++fired;
    simk.stop();
  });
  simk.schedule_at(2.0, [&] { ++fired; });
  simk.run();
  EXPECT_EQ(fired, 1);
  simk.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator simk;
  int fired = 0;
  auto handle = simk.schedule_at(1.0, [&] { ++fired; });
  simk.schedule_at(0.5, [&] { handle.cancel(); });
  simk.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, NegativeDelaySlackSnapsToNow) {
  Simulator simk;
  int fired = 0;
  simk.schedule_at(1.0, [&] {
    // Tiny negative delays from floating-point cancellation must not throw.
    simk.schedule_in(-1e-9, [&] { ++fired; });
  });
  simk.run();
  EXPECT_EQ(fired, 1);
}

// ----------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_int(0, 5)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / 6, kDraws / 60);
  }
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(5, 1), std::invalid_argument);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentConsumption) {
  Rng parent1(77);
  Rng parent2(77);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  // Children seeded identically regardless of later parent draws.
  (void)parent1();
  EXPECT_EQ(child1(), child2());
}

// --------------------------------------------------------------- Entity/Log

TEST(EntityTest, SchedulingSugarBindsToSimulator) {
  class Pinger : public Entity {
   public:
    explicit Pinger(Simulator& simk) : Entity(simk, "pinger") {}
    void ping_at(SimTime t) {
      at(t, [this] { last_ping = now(); });
    }
    void ping_after(SimTime d) {
      after(d, [this] { last_ping = now(); });
    }
    SimTime last_ping = -1.0;
  };
  Simulator simk;
  Pinger pinger(simk);
  EXPECT_EQ(pinger.name(), "pinger");
  pinger.ping_at(5.0);
  simk.run();
  EXPECT_DOUBLE_EQ(pinger.last_ping, 5.0);
  pinger.ping_after(3.0);
  simk.run();
  EXPECT_DOUBLE_EQ(pinger.last_ping, 8.0);
}

TEST(LoggerTest, LevelsGateOutput) {
  Logger log;
  std::ostringstream sink;
  log.set_sink(&sink);
  log.set_level(LogLevel::Info);
  EXPECT_TRUE(log.enabled(LogLevel::Error));
  EXPECT_TRUE(log.enabled(LogLevel::Info));
  EXPECT_FALSE(log.enabled(LogLevel::Debug));

  UTILRISK_LOG_TO(log, LogLevel::Info, 1.5, "unit", "hello " << 42);
  UTILRISK_LOG_TO(log, LogLevel::Debug, 2.0, "unit", "suppressed");

  const std::string text = sink.str();
  EXPECT_NE(text.find("[INF] t=1.5 unit: hello 42"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("suppressed"), std::string::npos);
}

TEST(LoggerTest, SimulatorOwnsItsLogger) {
  Simulator a;
  Simulator b;
  std::ostringstream sink_a;
  a.logger().set_sink(&sink_a);
  a.logger().set_level(LogLevel::Debug);
  // b stays at the default (Off); levelling a must not affect b.
  EXPECT_FALSE(b.logger().enabled(LogLevel::Error));
  UTILRISK_LOG_TO(a.logger(), LogLevel::Debug, 0.0, "kernel", "visible");
  UTILRISK_LOG_TO(b.logger(), LogLevel::Debug, 0.0, "kernel", "silent");
  EXPECT_NE(sink_a.str().find("visible"), std::string::npos);
  EXPECT_EQ(sink_a.str().find("silent"), std::string::npos);
}

TEST(LoggerTest, ParseLogLevelRoundTrips) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_STREQ(to_string(LogLevel::Debug), "debug");
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(TraceLogTest, DeprecatedShimStillForwards) {
  auto& log = TraceLog::instance();
  std::ostringstream sink;
  log.set_sink(&sink);
  log.set_level(LogLevel::Info);
  UTILRISK_LOG(LogLevel::Info, 1.5, "unit", "hello " << 42);
  log.set_level(LogLevel::Off);
  log.set_sink(&std::cerr);
  EXPECT_NE(sink.str().find("[INF] t=1.5 unit: hello 42"), std::string::npos);
}
#pragma GCC diagnostic pop

// --------------------------------------------------------------- RunningStats

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_EQ(stats.count(), 4u);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

// ------------------------------------------------------------- Distributions

TEST(DistributionsTest, ExponentialMeanConverges) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_exponential(rng, 100.0));
  EXPECT_NEAR(stats.mean(), 100.0, 2.0);
}

TEST(DistributionsTest, NormalMeanAndStddevConverge) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_normal(rng, 10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(DistributionsTest, TruncatedNormalRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double x = sample_truncated_normal(rng, 0.0, 10.0, -1.0, 1.0);
    ASSERT_GE(x, -1.0);
    ASSERT_LE(x, 1.0);
  }
}

TEST(DistributionsTest, LognormalMatchesTargetMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(sample_lognormal_mean_cv(rng, 50.0, 1.0));
  }
  EXPECT_NEAR(stats.mean(), 50.0, 1.5);
  EXPECT_NEAR(stats.stddev() / stats.mean(), 1.0, 0.1);
}

TEST(DistributionsTest, DiscreteFollowsWeights) {
  Rng rng(12);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[sample_discrete(rng, weights)];
  EXPECT_NEAR(counts[0], kDraws * 0.1, kDraws * 0.02);
  EXPECT_NEAR(counts[1], kDraws * 0.3, kDraws * 0.02);
  EXPECT_NEAR(counts[2], kDraws * 0.6, kDraws * 0.02);
}

TEST(DistributionsTest, DiscreteRejectsDegenerateWeights) {
  Rng rng(1);
  EXPECT_THROW((void)sample_discrete(rng, {}), std::invalid_argument);
  EXPECT_THROW((void)sample_discrete(rng, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)sample_discrete(rng, {-1.0, 1.0}), std::invalid_argument);
}

TEST(DistributionsTest, JobSizeWithinMachine) {
  Rng rng(14);
  for (int i = 0; i < 5000; ++i) {
    const auto size = sample_job_size(rng, 128);
    ASSERT_GE(size, 1u);
    ASSERT_LE(size, 128u);
  }
}

class ExponentialMeanSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanSweep, MeanTracksParameter) {
  Rng rng(21);
  RunningStats stats;
  const double mean = GetParam();
  for (int i = 0; i < 30000; ++i) stats.add(sample_exponential(rng, mean));
  EXPECT_NEAR(stats.mean() / mean, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanSweep,
                         ::testing::Values(0.1, 1.0, 10.0, 1969.0, 1e6));

}  // namespace
}  // namespace utilrisk::sim
