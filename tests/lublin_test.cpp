// Tests for the gamma sampler and the Lublin-Feitelson-style workload
// generator (the robustness-check alternative to the SDSC generator).
#include <gtest/gtest.h>

#include "sim/distributions.hpp"
#include "workload/synthetic_lublin.hpp"
#include "workload/trace_stats.hpp"

namespace utilrisk::workload {
namespace {

// ----------------------------------------------------------------- Gamma

TEST(GammaTest, MeanAndVarianceConverge) {
  sim::Rng rng(17);
  sim::RunningStats stats;
  const double shape = 3.0;
  const double scale = 50.0;
  for (int i = 0; i < 100000; ++i) {
    stats.add(sim::sample_gamma(rng, shape, scale));
  }
  EXPECT_NEAR(stats.mean(), shape * scale, 2.0);
  EXPECT_NEAR(stats.variance(), shape * scale * scale, 200.0);
}

TEST(GammaTest, SubUnitShapeBoostWorks) {
  sim::Rng rng(18);
  sim::RunningStats stats;
  const double shape = 0.5;
  const double scale = 100.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = sim::sample_gamma(rng, shape, scale);
    ASSERT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), shape * scale, 1.5);
}

TEST(GammaTest, ShapeOneIsExponential) {
  sim::Rng rng(19);
  sim::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(sim::sample_gamma(rng, 1.0, 200.0));
  }
  EXPECT_NEAR(stats.mean(), 200.0, 4.0);
  EXPECT_NEAR(stats.stddev(), 200.0, 8.0) << "exponential: stddev == mean";
}

TEST(GammaTest, RejectsNonPositiveParameters) {
  sim::Rng rng(1);
  EXPECT_THROW((void)sim::sample_gamma(rng, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)sim::sample_gamma(rng, 1.0, -1.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Lublin

class LublinTraceTest : public ::testing::Test {
 protected:
  static const std::vector<Job>& trace() {
    static const std::vector<Job> jobs =
        generate_synthetic_lublin(SyntheticLublinConfig{});
    return jobs;
  }
};

TEST_F(LublinTraceTest, MeanInterarrivalHitsTarget) {
  const TraceStats stats = compute_trace_stats(trace(), 128);
  EXPECT_NEAR(stats.mean_interarrival, 1969.0, 250.0);
}

TEST_F(LublinTraceTest, SerialFractionIsRespected) {
  std::size_t serial = 0;
  for (const Job& job : trace()) {
    if (job.procs == 1) ++serial;
  }
  EXPECT_NEAR(static_cast<double>(serial) / trace().size(), 0.24, 0.03);
}

TEST_F(LublinTraceTest, SizesWithinMachineAndPowerOfTwoHeavy) {
  std::size_t p2 = 0;
  for (const Job& job : trace()) {
    ASSERT_GE(job.procs, 1u);
    ASSERT_LE(job.procs, 128u);
    if ((job.procs & (job.procs - 1)) == 0) ++p2;
  }
  EXPECT_GT(static_cast<double>(p2) / trace().size(), 0.6)
      << "power-of-two sizes dominate";
}

TEST_F(LublinTraceTest, RuntimesAreHyperGammaLike) {
  const TraceStats stats = compute_trace_stats(trace(), 128);
  EXPECT_GE(stats.mean_runtime, 2000.0);
  EXPECT_LE(stats.mean_runtime, 12000.0);
  EXPECT_LE(stats.max_runtime, 18.0 * 3600.0 + 1.0);
  // Wide jobs run longer on average (the size/runtime correlation).
  double narrow = 0.0, wide = 0.0;
  std::size_t n_narrow = 0, n_wide = 0;
  for (const Job& job : trace()) {
    if (job.procs <= 2) {
      narrow += job.actual_runtime;
      ++n_narrow;
    } else if (job.procs >= 32) {
      wide += job.actual_runtime;
      ++n_wide;
    }
  }
  ASSERT_GT(n_narrow, 100u);
  ASSERT_GT(n_wide, 100u);
  EXPECT_GT(wide / n_wide, narrow / n_narrow);
}

TEST_F(LublinTraceTest, EstimateMixMatchesConfig) {
  const TraceStats stats = compute_trace_stats(trace(), 128);
  EXPECT_NEAR(stats.overestimate_fraction, 0.92, 0.02);
}

TEST_F(LublinTraceTest, DeterministicAndSeedSensitive) {
  const auto again = generate_synthetic_lublin(SyntheticLublinConfig{});
  ASSERT_EQ(again.size(), trace().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    ASSERT_DOUBLE_EQ(again[i].submit_time, trace()[i].submit_time);
    ASSERT_EQ(again[i].procs, trace()[i].procs);
  }
  SyntheticLublinConfig other;
  other.seed = 7;
  const auto different = generate_synthetic_lublin(other);
  bool any = false;
  for (std::size_t i = 0; i < different.size(); ++i) {
    if (different[i].actual_runtime != trace()[i].actual_runtime) {
      any = true;
      break;
    }
  }
  EXPECT_TRUE(any);
}

TEST(LublinConfigTest, RejectsDegenerateConfigs) {
  SyntheticLublinConfig config;
  config.job_count = 0;
  EXPECT_THROW((void)generate_synthetic_lublin(config),
               std::invalid_argument);
  config = {};
  config.arrival_shape = 0.0;
  EXPECT_THROW((void)generate_synthetic_lublin(config),
               std::invalid_argument);
  config = {};
  config.serial_fraction = 1.5;
  EXPECT_THROW((void)generate_synthetic_lublin(config),
               std::invalid_argument);
}

TEST(LublinConfigTest, BurstierThanPoisson) {
  // Gamma shape < 1 gives inter-arrival CV > 1 (burstier than Poisson);
  // verify through the realised gaps.
  SyntheticLublinConfig config;
  config.job_count = 4000;
  const auto jobs = generate_synthetic_lublin(config);
  sim::RunningStats gaps;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    gaps.add(jobs[i].submit_time - jobs[i - 1].submit_time);
  }
  EXPECT_GT(gaps.stddev() / gaps.mean(), 1.1);
}

}  // namespace
}  // namespace utilrisk::workload
