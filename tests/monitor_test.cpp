// Tests for the service monitor: sampling cadence, rolling counters and
// CSV output.
#include <gtest/gtest.h>

#include <sstream>

#include "service/computing_service.hpp"
#include "service/monitor.hpp"
#include "workload/workload.hpp"

namespace utilrisk::service {
namespace {

workload::Job make_job(workload::JobId id, double submit, std::uint32_t procs,
                       double runtime, double deadline_factor,
                       double budget) {
  workload::Job job;
  job.id = id;
  job.submit_time = submit;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = runtime;
  job.deadline_duration = runtime * deadline_factor;
  job.budget = budget;
  job.penalty_rate = 1.0;
  return job;
}

struct MonitoredRun {
  sim::Simulator simk;
  policy::PolicyContext context;
  std::unique_ptr<ComputingService> service;
  std::unique_ptr<ServiceMonitor> monitor;

  MonitoredRun(const std::vector<workload::Job>& jobs, sim::SimTime period,
               sim::SimTime horizon) {
    context.simulator = &simk;
    context.machine.node_count = 8;
    context.model = economy::EconomicModel::BidBased;
    service = std::make_unique<ComputingService>(
        simk, policy::PolicyKind::FcfsBf, context);
    monitor = std::make_unique<ServiceMonitor>(simk, *service, period,
                                               horizon);
    service->submit_all(jobs);
    simk.run();
  }
};

TEST(ServiceMonitorTest, SamplesAtTheConfiguredCadence) {
  MonitoredRun run({make_job(1, 0.0, 4, 1000.0, 5.0, 1000.0)},
                   /*period=*/100.0, /*horizon=*/1000.0);
  ASSERT_EQ(run.monitor->samples().size(), 10u);
  for (std::size_t i = 0; i < run.monitor->samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(run.monitor->samples()[i].time,
                     100.0 * static_cast<double>(i + 1));
  }
}

TEST(ServiceMonitorTest, TracksLifecycleTransitions) {
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 8, 500.0, 5.0, 1000.0),
      make_job(2, 10.0, 8, 500.0, 5.0, 1000.0),
  };
  MonitoredRun run(jobs, 250.0, 1500.0);
  const auto& samples = run.monitor->samples();
  // The service quiesces at t=1000 (job 2 finishes); the monitor takes
  // its final sample at t=1000 and stands down instead of ticking on to
  // the 1500 horizon.
  ASSERT_EQ(samples.size(), 4u);

  // t=250: job 1 running, job 2 still queued — both unsettled.
  EXPECT_EQ(samples[0].submitted, 2u);
  EXPECT_EQ(samples[0].in_flight, 2u);
  EXPECT_EQ(samples[0].accepted, 0u);
  EXPECT_EQ(samples[0].fulfilled, 0u);

  // t=750: job 1 done (t=500), job 2 running (500..1000).
  EXPECT_EQ(samples[2].fulfilled, 1u);
  EXPECT_EQ(samples[2].in_flight, 1u);

  // t=1000 (final sample, at quiescence): both done.
  EXPECT_EQ(samples[3].fulfilled, 2u);
  EXPECT_EQ(samples[3].in_flight, 0u);
  EXPECT_DOUBLE_EQ(samples[3].utility_to_date, 2000.0);
  EXPECT_GT(samples[3].utilization, 0.0);
  EXPECT_LE(samples[3].utilization, 1.0);
  EXPECT_FALSE(run.monitor->armed());
}

TEST(ServiceMonitorTest, UtilityAndObjectivesAreRolling) {
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 8, 400.0, 5.0, 700.0),
      make_job(2, 1.0, 8, 400.0, 5.0, 900.0),
  };
  MonitoredRun run(jobs, 450.0, 1350.0);
  const auto& samples = run.monitor->samples();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].utility_to_date, 700.0) << "job 1 settled";
  EXPECT_DOUBLE_EQ(samples[1].utility_to_date, 1600.0);
  EXPECT_GT(samples[1].objectives.sla, 0.0);
}

TEST(ServiceMonitorTest, CsvHasHeaderAndOneRowPerSample) {
  MonitoredRun run({make_job(1, 0.0, 2, 300.0, 5.0, 500.0)}, 100.0, 500.0);
  std::ostringstream out;
  run.monitor->write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t rows = 0;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("utilization"), std::string::npos);
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, run.monitor->samples().size());
}

TEST(ServiceMonitorTest, StandsDownWhenTheEventSetDrainsEarly) {
  // One short job, generous horizon: the run quiesces at t=300, and the
  // monitor must not keep the queue alive for another 97 ticks.
  MonitoredRun run({make_job(1, 0.0, 2, 300.0, 5.0, 500.0)},
                   /*period=*/100.0, /*horizon=*/10000.0);
  EXPECT_EQ(run.monitor->samples().size(), 3u);
  EXPECT_DOUBLE_EQ(run.simk.now(), 300.0);
  EXPECT_EQ(run.simk.pending_events(), 0u);
  EXPECT_FALSE(run.monitor->armed());
}

TEST(ServiceMonitorTest, StopCancelsThePendingTick) {
  sim::Simulator simk;
  policy::PolicyContext context;
  context.simulator = &simk;
  ComputingService service(simk, policy::PolicyKind::FcfsBf, context);
  ServiceMonitor monitor(simk, service, 50.0, 1000.0);
  EXPECT_TRUE(monitor.armed());
  EXPECT_EQ(simk.pending_events(), 1u);
  monitor.stop();
  EXPECT_FALSE(monitor.armed());
  EXPECT_EQ(simk.pending_events(), 0u);
  simk.run();  // nothing left: returns immediately at t=0
  EXPECT_DOUBLE_EQ(simk.now(), 0.0);
  EXPECT_TRUE(monitor.samples().empty());
}

TEST(ServiceMonitorTest, ValidatesParameters) {
  sim::Simulator simk;
  policy::PolicyContext context;
  context.simulator = &simk;
  ComputingService service(simk, policy::PolicyKind::Libra, context);
  EXPECT_THROW(ServiceMonitor(simk, service, 0.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(ServiceMonitor(simk, service, 10.0, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace utilrisk::service
