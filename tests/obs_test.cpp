// Tests for the observability layer: metric primitives under concurrent
// update, histogram bucket edges, manifest round-trips and the progress
// reporter's drain/shutdown behaviour. The concurrency tests here are the
// ones the TSan CI job exercises with 8 threads.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace utilrisk::obs {
namespace {

// --- metric primitives ---------------------------------------------------

TEST(ObsMetricsTest, CounterConcurrentIncrementsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(41.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 42.0);
  gauge.add(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 40.0);
}

TEST(ObsMetricsTest, GaugeConcurrentAddsAreLossless) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  // All addends are small integers, so the double accumulation is exact.
  EXPECT_DOUBLE_EQ(gauge.value(), 80000.0);
}

TEST(ObsMetricsTest, HistogramBucketEdgesAreInclusiveUpper) {
  Histogram hist({1.0, 2.0, 4.0});
  // Bucket i counts bounds[i-1] < v <= bounds[i]; values on a bound land
  // in that bound's bucket, values past the last bound overflow.
  hist.observe(0.5);   // bucket 0
  hist.observe(1.0);   // bucket 0 (edge: v <= 1.0)
  hist.observe(1.5);   // bucket 1
  hist.observe(2.0);   // bucket 1 (edge)
  hist.observe(4.0);   // bucket 2 (edge)
  hist.observe(4.1);   // overflow
  hist.observe(100.0); // overflow
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 2u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 2u);
  EXPECT_EQ(hist.count(), 7u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 + 100.0);
}

TEST(ObsMetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetricsTest, HistogramConcurrentObservesAreLossless) {
  Histogram hist({10.0, 20.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(t % 2 == 0 ? 5.0 : 15.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_EQ(hist.bucket_count(0), 4u * kPerThread);
  EXPECT_EQ(hist.bucket_count(1), 4u * kPerThread);
  EXPECT_EQ(hist.bucket_count(2), 0u);
}

// --- registry ------------------------------------------------------------

TEST(ObsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  // Second registration with different bounds gets the existing histogram.
  Histogram& h2 = registry.histogram("h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(ObsRegistryTest, OrNullHelpersGateOnRegistryAndEnabledFlag) {
  EXPECT_EQ(counter_or_null(nullptr, "c"), nullptr);
  EXPECT_EQ(gauge_or_null(nullptr, "g"), nullptr);
  EXPECT_EQ(histogram_or_null(nullptr, "h", {1.0}), nullptr);

  MetricsRegistry disabled(false);
  EXPECT_EQ(counter_or_null(&disabled, "c"), nullptr);
  EXPECT_EQ(gauge_or_null(&disabled, "g"), nullptr);
  EXPECT_EQ(histogram_or_null(&disabled, "h", {1.0}), nullptr);
  EXPECT_TRUE(disabled.snapshot().empty()) << "gated lookups register nothing";

  MetricsRegistry enabled(true);
  Counter* c = counter_or_null(&enabled, "c");
  ASSERT_NE(c, nullptr);
  c->inc(3);
  EXPECT_EQ(enabled.snapshot().counter("c"), 3u);
}

TEST(ObsRegistryTest, ConcurrentRegistrationAndUpdate) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread races registration of the same names, then updates.
      Counter& c = registry.counter("shared");
      Gauge& g = registry.gauge("depth");
      Histogram& h = registry.histogram("lat", {0.5, 1.0});
      for (int i = 0; i < 1000; ++i) {
        c.inc();
        g.set(static_cast<double>(i));
        h.observe(0.25);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MetricSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("shared"), 8000u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 8000u);
  EXPECT_EQ(snap.histograms[0].buckets[0], 8000u);
}

TEST(ObsRegistryTest, SnapshotJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter("events").inc(12345);
  registry.gauge("queue_depth").set(7.5);
  Histogram& h = registry.histogram("wall", {0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(5.0);
  h.observe(50.0);

  MetricSnapshot before = registry.snapshot();
  MetricSnapshot after =
      MetricSnapshot::from_json(json::parse(before.to_json().dump_string()));
  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.gauges, before.gauges);
  ASSERT_EQ(after.histograms.size(), 1u);
  EXPECT_EQ(after.histograms[0].name, "wall");
  EXPECT_EQ(after.histograms[0].upper_bounds, before.histograms[0].upper_bounds);
  EXPECT_EQ(after.histograms[0].buckets, before.histograms[0].buckets);
  EXPECT_EQ(after.histograms[0].count, 3u);
  EXPECT_DOUBLE_EQ(after.histograms[0].sum, 55.05);
}

// --- manifests -----------------------------------------------------------

RunManifest sample_manifest() {
  RunManifest manifest;
  manifest.command = "sweep";
  manifest.argv = {"sweep", "--jobs", "80", "--workers", "2"};
  manifest.git_describe = "abc1234";
  manifest.started_at_utc = "2026-08-06T12:00:00Z";
  manifest.wall_seconds = 1.25;
  manifest.config = {{"jobs", "80"}, {"workers", "2"}, {"log-level", "off"}};
  manifest.seeds = {42, 4357};
  manifest.stats = {{"simulations", 305.0}, {"events", 110436.0}};
  MetricsRegistry registry;
  registry.counter("sim.events_dispatched").inc(110436);
  registry.histogram("exp.run_wall_seconds", {0.01, 0.1}).observe(0.02);
  manifest.metrics = registry.snapshot();
  return manifest;
}

TEST(ObsManifestTest, RoundTripsThroughText) {
  RunManifest before = sample_manifest();
  std::ostringstream out;
  before.write(out);
  RunManifest after = RunManifest::parse(out.str());
  EXPECT_EQ(after.tool, before.tool);
  EXPECT_EQ(after.schema, "utilrisk.run_manifest/1");
  EXPECT_EQ(after.command, before.command);
  EXPECT_EQ(after.argv, before.argv);
  EXPECT_EQ(after.git_describe, before.git_describe);
  EXPECT_EQ(after.started_at_utc, before.started_at_utc);
  EXPECT_DOUBLE_EQ(after.wall_seconds, before.wall_seconds);
  EXPECT_EQ(after.config, before.config);
  EXPECT_EQ(after.seeds, before.seeds);
  EXPECT_EQ(after.stats, before.stats);
  EXPECT_EQ(after.metrics.counter("sim.events_dispatched"), 110436u);
  ASSERT_EQ(after.metrics.histograms.size(), 1u);
  EXPECT_EQ(after.metrics.histograms[0].count, 1u);
}

TEST(ObsManifestTest, WriteAndReadBackFromDisk) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("utilrisk_obs_test_" + std::to_string(::getpid()));
  const std::string path = write_manifest(sample_manifest(), dir.string());
  EXPECT_EQ(fs::path(path).filename().string(),
            manifest_filename("sweep"));
  RunManifest loaded = read_manifest(path);
  EXPECT_EQ(loaded.command, "sweep");
  EXPECT_EQ(loaded.seeds, (std::vector<std::uint64_t>{42, 4357}));
  fs::remove_all(dir);
}

TEST(ObsManifestTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(RunManifest::parse("not json"), json::ParseError);
  EXPECT_THROW(RunManifest::parse("[1, 2]"), std::runtime_error);
}

// --- progress reporter ---------------------------------------------------

TEST(ObsProgressTest, CountsWorkAndPrintsFinalLine) {
  std::ostringstream sink;
  ProgressReporter reporter(
      {.interval_seconds = 3600.0, .sink = &sink, .label = "sweep"});
  reporter.begin(10, 2);
  for (int i = 0; i < 10; ++i) reporter.note_done();
  reporter.end();
  EXPECT_EQ(reporter.completed(), 10u);
  EXPECT_EQ(reporter.lines_printed(), 1u) << "final line only";
  EXPECT_NE(sink.str().find("[sweep] 10/10"), std::string::npos) << sink.str();
  EXPECT_NE(sink.str().find("100%"), std::string::npos) << sink.str();
}

TEST(ObsProgressTest, EndReturnsPromptlyDespiteLongInterval) {
  // Drain behaviour: a one-hour tick interval must not delay end() — the
  // reporter thread is stop-token woken, not slept through.
  std::ostringstream sink;
  ProgressReporter reporter({.interval_seconds = 3600.0, .sink = &sink});
  reporter.begin(1);
  reporter.note_done();
  const auto start = std::chrono::steady_clock::now();
  reporter.end();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(ObsProgressTest, EndIsIdempotentAndDestructionIsSafe) {
  std::ostringstream sink;
  {
    ProgressReporter reporter({.interval_seconds = 3600.0, .sink = &sink});
    reporter.begin(3);
    reporter.note_done(3);
    reporter.end();
    reporter.end();  // second end(): no second final line, no hang
    EXPECT_EQ(reporter.lines_printed(), 1u);
  }  // destructor after end(): no double join
  EXPECT_EQ(sink.str().find("3/3", sink.str().find("3/3") + 1),
            std::string::npos)
      << "exactly one final line: " << sink.str();
}

TEST(ObsProgressTest, NonPositiveIntervalDisablesReporting) {
  std::ostringstream sink;
  ProgressReporter reporter({.interval_seconds = 0.0, .sink = &sink});
  reporter.begin(5);
  reporter.note_done(5);
  reporter.end();
  EXPECT_EQ(reporter.completed(), 5u) << "counting still works";
  EXPECT_EQ(reporter.lines_printed(), 0u);
  EXPECT_TRUE(sink.str().empty());
}

TEST(ObsProgressTest, PeriodicLinesAppearWhileRunning) {
  std::ostringstream sink;
  ProgressReporter reporter({.interval_seconds = 0.05, .sink = &sink});
  reporter.begin(100, 4);
  reporter.note_done(25);
  // Give the reporter thread a couple of tick intervals.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  reporter.end();
  EXPECT_GE(reporter.lines_printed(), 2u) << sink.str();
  EXPECT_NE(sink.str().find("25/100"), std::string::npos) << sink.str();
}

TEST(ObsProgressTest, ConcurrentNoteDoneIsLossless) {
  std::ostringstream sink;
  ProgressReporter reporter({.interval_seconds = 0.01, .sink = &sink});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  reporter.begin(kThreads * kPerThread, kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reporter] {
      for (int i = 0; i < kPerThread; ++i) reporter.note_done();
    });
  }
  for (auto& thread : threads) thread.join();
  reporter.end();
  EXPECT_EQ(reporter.completed(), kThreads * kPerThread);
}

}  // namespace
}  // namespace utilrisk::obs
