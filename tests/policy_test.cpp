// Behavioural tests of the seven resource-management policies, driven
// through a recording PolicyHost.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "policy/factory.hpp"
#include "policy/first_reward.hpp"
#include "policy/libra.hpp"
#include "policy/libra_dollar.hpp"
#include "policy/libra_riskd.hpp"
#include "policy/queue_policy.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace utilrisk::policy {
namespace {

/// Records every lifecycle notification with its timestamp.
class RecordingHost : public PolicyHost {
 public:
  struct Event {
    enum Kind { Accepted, Rejected, Started, Finished } kind;
    workload::JobId job;
    sim::SimTime time;
    economy::Money quoted;
  };

  explicit RecordingHost(sim::Simulator& simulator)
      : simulator_(&simulator) {}

  void notify_accepted(const workload::Job& job,
                       economy::Money quoted) override {
    events_.push_back({Event::Accepted, job.id, simulator_->now(), quoted});
  }
  void notify_rejected(const workload::Job& job) override {
    events_.push_back({Event::Rejected, job.id, simulator_->now(), 0.0});
  }
  void notify_started(const workload::Job& job) override {
    events_.push_back({Event::Started, job.id, simulator_->now(), 0.0});
  }
  void notify_finished(const workload::Job& job,
                       sim::SimTime finish) override {
    events_.push_back({Event::Finished, job.id, finish, 0.0});
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  [[nodiscard]] std::vector<workload::JobId> ids_of(
      Event::Kind kind) const {
    std::vector<workload::JobId> ids;
    for (const Event& event : events_) {
      if (event.kind == kind) ids.push_back(event.job);
    }
    return ids;
  }

  [[nodiscard]] const Event* find(Event::Kind kind,
                                  workload::JobId job) const {
    for (const Event& event : events_) {
      if (event.kind == kind && event.job == job) return &event;
    }
    return nullptr;
  }

 private:
  sim::Simulator* simulator_;
  std::vector<Event> events_;
};

using Event = RecordingHost::Event;

workload::Job make_job(workload::JobId id, double submit, std::uint32_t procs,
                       double runtime, double deadline_factor = 8.0,
                       double budget_factor = 100.0) {
  workload::Job job;
  job.id = id;
  job.submit_time = submit;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = runtime;
  job.deadline_duration = runtime * deadline_factor;
  job.budget = runtime * budget_factor;
  job.penalty_rate = 1.0;
  return job;
}

/// Drives a policy with a fixed job list and returns the host record.
struct Harness {
  sim::Simulator simk;
  RecordingHost host{simk};
  PolicyContext context;
  std::unique_ptr<Policy> policy;

  explicit Harness(PolicyKind kind,
                   economy::EconomicModel model =
                       economy::EconomicModel::BidBased,
                   std::uint32_t nodes = 8,
                   FirstRewardParams first_reward = {}) {
    context.simulator = &simk;
    context.machine.node_count = nodes;
    context.model = model;
    context.first_reward = first_reward;
    policy = make_policy(kind, context, host);
  }

  void run(const std::vector<workload::Job>& jobs) {
    for (const workload::Job& job : jobs) {
      simk.schedule_at(job.submit_time,
                       [this, job] { policy->on_submit(job); });
    }
    simk.run();
  }
};

// --------------------------------------------------------------- Factory

TEST(FactoryTest, NamesRoundTrip) {
  for (PolicyKind kind : all_policy_kinds()) {
    EXPECT_EQ(parse_policy_kind(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_policy_kind("RoundRobin"), std::invalid_argument);
}

TEST(FactoryTest, TableVSetsPerModel) {
  const auto commodity =
      policies_for_model(economy::EconomicModel::CommodityMarket);
  EXPECT_EQ(commodity.size(), 5u);
  const auto bid = policies_for_model(economy::EconomicModel::BidBased);
  EXPECT_EQ(bid.size(), 5u);
  // Libra+$ commodity-only; LibraRiskD and FirstReward bid-only (Table V).
  auto contains = [](const std::vector<PolicyKind>& set, PolicyKind kind) {
    for (auto k : set) {
      if (k == kind) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(commodity, PolicyKind::LibraDollar));
  EXPECT_FALSE(contains(bid, PolicyKind::LibraDollar));
  EXPECT_TRUE(contains(bid, PolicyKind::LibraRiskD));
  EXPECT_TRUE(contains(bid, PolicyKind::FirstReward));
  EXPECT_TRUE(contains(commodity, PolicyKind::SjfBf));
  EXPECT_FALSE(contains(bid, PolicyKind::SjfBf));
}

TEST(FactoryTest, InstantiatesEveryPolicy) {
  sim::Simulator simk;
  RecordingHost host(simk);
  PolicyContext context;
  context.simulator = &simk;
  for (PolicyKind kind : all_policy_kinds()) {
    const auto policy = make_policy(kind, context, host);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(FactoryTest, PolicyRejectsNullSimulator) {
  sim::Simulator simk;
  RecordingHost host(simk);
  PolicyContext context;  // simulator left null
  EXPECT_THROW((void)make_policy(PolicyKind::Libra, context, host),
               std::invalid_argument);
}

// --------------------------------------------------------- Queue policies

TEST(QueuePolicyTest, FcfsStartsInArrivalOrder) {
  Harness h(PolicyKind::FcfsBf);
  // Each job needs the whole machine: strictly sequential.
  h.run({make_job(1, 0.0, 8, 100.0, 50.0), make_job(2, 1.0, 8, 100.0, 50.0),
         make_job(3, 2.0, 8, 100.0, 50.0)});
  EXPECT_EQ(h.host.ids_of(Event::Started),
            (std::vector<workload::JobId>{1, 2, 3}));
  EXPECT_EQ(h.host.ids_of(Event::Rejected).size(), 0u);
}

TEST(QueuePolicyTest, SjfPicksShortestEstimateFirst) {
  Harness h(PolicyKind::SjfBf);
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 8, 100.0, 50.0),  // running first (arrived alone)
      make_job(2, 1.0, 8, 500.0, 50.0),
      make_job(3, 2.0, 8, 50.0, 50.0),
  };
  h.run(jobs);
  // Job 1 starts immediately; at its completion SJF picks 3 before 2.
  EXPECT_EQ(h.host.ids_of(Event::Started),
            (std::vector<workload::JobId>{1, 3, 2}));
}

TEST(QueuePolicyTest, EdfPicksEarliestDeadlineFirst) {
  Harness h(PolicyKind::EdfBf);
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 8, 100.0, 50.0),
      make_job(2, 1.0, 8, 100.0, 50.0),   // deadline 801
      make_job(3, 2.0, 8, 100.0, 20.0),   // deadline 2002 -> wait, smaller factor = earlier
  };
  jobs[1].deadline_duration = 5000.0;
  jobs[2].deadline_duration = 1000.0;
  h.run(jobs);
  EXPECT_EQ(h.host.ids_of(Event::Started),
            (std::vector<workload::JobId>{1, 3, 2}));
}

TEST(QueuePolicyTest, EasyBackfillLetsSmallJobsJumpAhead) {
  Harness h(PolicyKind::FcfsBf);
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 6, 1000.0, 50.0),  // leaves 2 procs free
      make_job(2, 1.0, 8, 1000.0, 50.0),  // head: must wait for all 8
      make_job(3, 2.0, 2, 500.0, 50.0),   // fits the hole, ends before 1000
  };
  h.run(jobs);
  const auto* started3 = h.host.find(Event::Started, 3);
  ASSERT_NE(started3, nullptr);
  EXPECT_DOUBLE_EQ(started3->time, 2.0) << "backfilled immediately";
  const auto* started2 = h.host.find(Event::Started, 2);
  ASSERT_NE(started2, nullptr);
  EXPECT_DOUBLE_EQ(started2->time, 1000.0)
      << "head job not delayed by the backfill";
}

TEST(QueuePolicyTest, BackfillNeverDelaysTheHeadJob) {
  Harness h(PolicyKind::FcfsBf);
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 6, 1000.0, 50.0),
      make_job(2, 1.0, 8, 1000.0, 50.0),  // head, shadow time t=1000
      make_job(3, 2.0, 2, 2000.0, 50.0),  // would overrun the shadow
  };
  h.run(jobs);
  const auto* started2 = h.host.find(Event::Started, 2);
  const auto* started3 = h.host.find(Event::Started, 3);
  ASSERT_NE(started2, nullptr);
  ASSERT_NE(started3, nullptr);
  EXPECT_DOUBLE_EQ(started2->time, 1000.0);
  EXPECT_GT(started3->time, started2->time);
}

TEST(QueuePolicyTest, GenerousAdmissionRejectsOnlyWhenHopeless) {
  Harness h(PolicyKind::FcfsBf);
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 8, 1000.0, 50.0),
      // Deadline factor 1.2: by t=1000 the queue wait alone exceeds the
      // slack (deadline 120+... ) -> rejected at examination time, not at
      // submission.
      make_job(2, 1.0, 8, 100.0, 1.2),
  };
  h.run(jobs);
  const auto* rejected = h.host.find(Event::Rejected, 2);
  ASSERT_NE(rejected, nullptr);
  EXPECT_GT(rejected->time, 1.0)
      << "generous admission rejects at dispatch, not submission";
  EXPECT_EQ(h.host.ids_of(Event::Started),
            (std::vector<workload::JobId>{1}));
}

TEST(QueuePolicyTest, ViableQueuedJobSurvivesGenerousAdmission) {
  Harness h(PolicyKind::FcfsBf);
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 8, 1000.0, 50.0),
      make_job(2, 1.0, 8, 100.0, 15.0),  // deadline 1501 > 1000+100
  };
  h.run(jobs);
  const auto* finished = h.host.find(Event::Finished, 2);
  ASSERT_NE(finished, nullptr);
  EXPECT_DOUBLE_EQ(finished->time, 1100.0);
}

TEST(QueuePolicyTest, RejectsJobsLargerThanTheMachine) {
  Harness h(PolicyKind::FcfsBf);
  h.run({make_job(1, 0.0, 9, 100.0)});
  EXPECT_EQ(h.host.ids_of(Event::Rejected),
            (std::vector<workload::JobId>{1}));
}

TEST(QueuePolicyTest, CommodityBudgetRejection) {
  Harness h(PolicyKind::FcfsBf, economy::EconomicModel::CommodityMarket);
  workload::Job job = make_job(1, 0.0, 4, 100.0);
  job.budget = 50.0;  // flat quote = $100 > budget
  h.run({job});
  EXPECT_EQ(h.host.ids_of(Event::Rejected),
            (std::vector<workload::JobId>{1}));
  workload::Job affordable = make_job(2, 0.0, 4, 100.0);
  affordable.budget = 100.0;
  Harness h2(PolicyKind::FcfsBf, economy::EconomicModel::CommodityMarket);
  h2.run({affordable});
  const auto* accepted = h2.host.find(Event::Accepted, 2);
  ASSERT_NE(accepted, nullptr);
  EXPECT_DOUBLE_EQ(accepted->quoted, 100.0);
}

// ------------------------------------------------------------------ Libra

TEST(LibraTest, AcceptsImmediatelyWithZeroWait) {
  Harness h(PolicyKind::Libra);
  h.run({make_job(1, 5.0, 4, 100.0)});
  const auto* accepted = h.host.find(Event::Accepted, 1);
  const auto* started = h.host.find(Event::Started, 1);
  ASSERT_NE(accepted, nullptr);
  ASSERT_NE(started, nullptr);
  EXPECT_DOUBLE_EQ(accepted->time, 5.0);
  EXPECT_DOUBLE_EQ(started->time, 5.0) << "time-shared: wait is zero";
  const auto* finished = h.host.find(Event::Finished, 1);
  ASSERT_NE(finished, nullptr);
  EXPECT_NEAR(finished->time, 105.0, 1e-6) << "alone: runs at full rate";
}

TEST(LibraTest, RejectsInfeasibleShare) {
  Harness h(PolicyKind::Libra);
  workload::Job job = make_job(1, 0.0, 1, 100.0);
  job.estimated_runtime = 200.0;
  job.deadline_duration = 100.0;  // share = 2 > 1
  h.run({job});
  EXPECT_EQ(h.host.ids_of(Event::Rejected),
            (std::vector<workload::JobId>{1}));
}

TEST(LibraTest, RejectsWhenNoNodeHasCapacity) {
  Harness h(PolicyKind::Libra, economy::EconomicModel::BidBased, 2);
  // Two jobs with share 0.6 fill both nodes past the point where a third
  // 0.6-share job fits anywhere.
  std::vector<workload::Job> jobs;
  for (workload::JobId id = 1; id <= 3; ++id) {
    workload::Job job = make_job(id, 0.0, 2, 600.0);
    job.deadline_duration = 1000.0;  // share 0.6
    jobs.push_back(job);
  }
  h.run(jobs);
  EXPECT_EQ(h.host.ids_of(Event::Accepted).size(), 1u);
  EXPECT_EQ(h.host.ids_of(Event::Rejected).size(), 2u);
}

TEST(LibraTest, BestFitSaturatesLoadedNodes) {
  sim::Simulator simk;
  RecordingHost host(simk);
  PolicyContext context;
  context.simulator = &simk;
  context.machine.node_count = 4;
  LibraPolicy policy(context, host);

  // First job occupies one node with share 0.5.
  workload::Job first = make_job(1, 0.0, 1, 500.0);
  first.deadline_duration = 1000.0;
  // Second job (share 0.3) must be placed on the SAME node (best fit).
  workload::Job second = make_job(2, 0.0, 1, 300.0);
  second.deadline_duration = 1000.0;
  simk.schedule_at(0.0, [&] {
    policy.on_submit(first);
    policy.on_submit(second);
    const auto& cluster = policy.executor();
    int loaded_nodes = 0;
    for (cluster::NodeId n = 0; n < cluster.node_count(); ++n) {
      if (cluster.committed_share(n) > 0.0) ++loaded_nodes;
    }
    EXPECT_EQ(loaded_nodes, 1) << "best fit stacks, not spreads";
    EXPECT_NEAR(cluster.committed_share(0), 0.8, 1e-12);
  });
  simk.run();
}

TEST(LibraTest, CommodityQuoteAndBudgetGate) {
  Harness h(PolicyKind::Libra, economy::EconomicModel::CommodityMarket);
  workload::Job job = make_job(1, 0.0, 2, 1000.0, 4.0);
  job.budget = 2000.0;
  h.run({job});
  const auto* accepted = h.host.find(Event::Accepted, 1);
  ASSERT_NE(accepted, nullptr);
  // gamma*tr + delta*tr/d = 1000 + 1000/4000.
  EXPECT_NEAR(accepted->quoted, 1000.25, 1e-9);

  Harness h2(PolicyKind::Libra, economy::EconomicModel::CommodityMarket);
  workload::Job poor = make_job(2, 0.0, 2, 1000.0, 4.0);
  poor.budget = 900.0;  // below the quote
  h2.run({poor});
  EXPECT_EQ(h2.host.ids_of(Event::Rejected),
            (std::vector<workload::JobId>{2}));
}

// ---------------------------------------------------------------- Libra+$

TEST(LibraDollarTest, PriceRisesWithClusterLoad) {
  auto quote_with_preload = [](int preload_jobs) {
    sim::Simulator simk;
    RecordingHost host(simk);
    PolicyContext context;
    context.simulator = &simk;
    context.machine.node_count = 2;
    context.model = economy::EconomicModel::CommodityMarket;
    LibraDollarPolicy policy(context, host);
    simk.schedule_at(0.0, [&] {
      for (int i = 0; i < preload_jobs; ++i) {
        workload::Job filler = make_job(100 + i, 0.0, 2, 300.0);
        filler.deadline_duration = 1000.0;  // share 0.3 on both nodes
        policy.on_submit(filler);
      }
      workload::Job probe = make_job(1, 0.0, 2, 100.0);
      probe.deadline_duration = 1000.0;
      policy.on_submit(probe);
    });
    simk.run();
    const Event* accepted = host.find(Event::Accepted, 1);
    return accepted != nullptr ? accepted->quoted : economy::kUnaffordable;
  };
  const economy::Money idle = quote_with_preload(0);
  const economy::Money busy = quote_with_preload(2);
  EXPECT_GT(busy, idle) << "dynamic pricing charges more under load";
  EXPECT_GT(idle, 100.0) << "alpha*PBase alone would be $100";
}

TEST(LibraDollarTest, PricesOutLowBudgetJobsUnderLoad) {
  Harness h(PolicyKind::LibraDollar, economy::EconomicModel::CommodityMarket,
            2);
  std::vector<workload::Job> jobs;
  for (workload::JobId id = 1; id <= 4; ++id) {
    workload::Job job = make_job(id, 0.0, 2, 300.0);
    job.deadline_duration = 1000.0;
    job.budget = 450.0;  // covers the idle price (~$429) but not loaded ones
    jobs.push_back(job);
  }
  h.run(jobs);
  // Libra (flat-ish pricing) would accept 3 (shares 3 x 0.3 <= 1);
  // Libra+$'s rising price rejects earlier.
  EXPECT_LT(h.host.ids_of(Event::Accepted).size(), 3u);
  EXPECT_GE(h.host.ids_of(Event::Accepted).size(), 1u);
}

// -------------------------------------------------------------- LibraRiskD

TEST(LibraRiskDTest, MatchesLibraWhenEstimatesAreAccurate) {
  std::vector<workload::Job> jobs;
  sim::Rng rng(33);
  for (workload::JobId id = 1; id <= 40; ++id) {
    workload::Job job =
        make_job(id, rng.uniform(0.0, 3000.0), 1 + id % 4,
                 rng.uniform(50.0, 400.0), rng.uniform(1.5, 6.0));
    jobs.push_back(job);
  }
  Harness libra(PolicyKind::Libra);
  libra.run(jobs);
  Harness riskd(PolicyKind::LibraRiskD);
  riskd.run(jobs);
  EXPECT_EQ(libra.host.ids_of(Event::Accepted),
            riskd.host.ids_of(Event::Accepted))
      << "zero risk everywhere when estimates are exact (paper Set A)";
}

TEST(LibraRiskDTest, AvoidsNodesWithOverrunTasks) {
  auto run_policy = [](PolicyKind kind) {
    Harness h(kind, economy::EconomicModel::BidBased, 1);
    // Job 1 under-estimates: estimate 100, really 10000. After t=100 it
    // has overrun; nominal share stays 0.2.
    workload::Job liar = make_job(1, 0.0, 1, 10000.0);
    liar.estimated_runtime = 100.0;
    liar.deadline_duration = 500.0;  // share 0.2
    // Job 2 arrives at t=200 needing share 0.5.
    workload::Job honest = make_job(2, 200.0, 1, 500.0);
    honest.deadline_duration = 1000.0;
    h.run({liar, honest});
    return h.host.ids_of(Event::Accepted).size();
  };
  EXPECT_EQ(run_policy(PolicyKind::Libra), 2u)
      << "Libra trusts the stale share bookkeeping";
  EXPECT_EQ(run_policy(PolicyKind::LibraRiskD), 1u)
      << "LibraRiskD sees the overrun and refuses the node";
}

TEST(LibraRiskDTest, AcceptsOnCleanNodes) {
  Harness h(PolicyKind::LibraRiskD, economy::EconomicModel::BidBased, 2);
  workload::Job liar = make_job(1, 0.0, 1, 10000.0);
  liar.estimated_runtime = 100.0;
  liar.deadline_duration = 500.0;
  workload::Job honest = make_job(2, 200.0, 1, 500.0);
  honest.deadline_duration = 1000.0;
  h.run({liar, honest});
  // Node 1 is clean: job 2 is accepted there.
  EXPECT_EQ(h.host.ids_of(Event::Accepted).size(), 2u);
}

// ------------------------------------------------------------- FirstReward

TEST(FirstRewardTest, FormulasMatchTheDefinition) {
  sim::Simulator simk;
  RecordingHost host(simk);
  PolicyContext context;
  context.simulator = &simk;
  context.machine.node_count = 8;
  FirstRewardPolicy policy(context, host);

  workload::Job job = make_job(1, 0.0, 1, 3600.0);  // 1 hour
  job.budget = 1010.0;
  job.penalty_rate = 2.0;
  // PV = b / (1 + 0.01 * 1h) = 1010 / 1.01 = 1000.
  EXPECT_NEAR(policy.present_value(job), 1000.0, 1e-9);
  // No other accepted jobs: cost 0, slack = PV / pr = 500.
  EXPECT_NEAR(policy.opportunity_cost(job), 0.0, 1e-12);
  EXPECT_NEAR(policy.slack(job), 500.0, 1e-9);
  // alpha = 1: reward = PV / RPT.
  EXPECT_NEAR(policy.reward(job), 1000.0 / 3600.0, 1e-9);
}

TEST(FirstRewardTest, SlackThresholdGatesAdmission) {
  FirstRewardParams params;
  params.slack_threshold = 25.0;
  Harness h(PolicyKind::FirstReward, economy::EconomicModel::BidBased, 8,
            params);
  workload::Job rich = make_job(1, 0.0, 1, 3600.0);
  rich.budget = 1000.0;
  rich.penalty_rate = 2.0;  // slack ~ 495 >= 25
  workload::Job risky = make_job(2, 0.0, 1, 3600.0);
  risky.budget = 40.0;
  risky.penalty_rate = 2.0;  // slack ~ 19.8 < 25
  h.run({rich, risky});
  EXPECT_EQ(h.host.ids_of(Event::Accepted),
            (std::vector<workload::JobId>{1}));
  EXPECT_EQ(h.host.ids_of(Event::Rejected),
            (std::vector<workload::JobId>{2}));
}

TEST(FirstRewardTest, OpportunityCostGrowsWithAcceptedSet) {
  sim::Simulator simk;
  RecordingHost host(simk);
  PolicyContext context;
  context.simulator = &simk;
  context.machine.node_count = 8;
  FirstRewardPolicy policy(context, host);
  workload::Job probe = make_job(99, 0.0, 1, 1000.0);
  probe.penalty_rate = 1.0;
  simk.schedule_at(0.0, [&] {
    const double cost_before = policy.opportunity_cost(probe);
    workload::Job other = make_job(1, 0.0, 1, 1000.0);
    other.budget = 1e6;
    other.penalty_rate = 3.0;
    policy.on_submit(other);
    const double cost_after = policy.opportunity_cost(probe);
    EXPECT_DOUBLE_EQ(cost_before, 0.0);
    // cost = sum pr_j * RPT_i = 3.0 * 1000.
    EXPECT_DOUBLE_EQ(cost_after, 3000.0);
  });
  simk.run();
}

TEST(FirstRewardTest, DelaysAcceptedJobsForHigherReward) {
  Harness h(PolicyKind::FirstReward);
  // Machine-filling job runs first; two more accepted while it runs.
  workload::Job filler = make_job(1, 0.0, 8, 1000.0);
  filler.budget = 10000.0;
  workload::Job cheap = make_job(2, 1.0, 8, 1000.0);
  cheap.budget = 5000.0;  // big enough to pass the slack admission
  workload::Job lucrative = make_job(3, 2.0, 8, 1000.0);
  lucrative.budget = 50000.0;
  h.run({filler, cheap, lucrative});
  // Reward ranks the later-arriving lucrative job above the cheap one.
  EXPECT_EQ(h.host.ids_of(Event::Started),
            (std::vector<workload::JobId>{1, 3, 2}));
}

TEST(FirstRewardTest, NoBackfillBlocksOnHeadJob) {
  Harness h(PolicyKind::FirstReward);
  // 6-proc job running; head needs 8 and blocks; a 2-proc job behind it
  // could backfill but FirstReward does not.
  workload::Job running = make_job(1, 0.0, 6, 1000.0);
  running.budget = 1e5;
  workload::Job head = make_job(2, 1.0, 8, 1000.0);
  head.budget = 9e5;  // top reward, keeps queue head
  workload::Job small = make_job(3, 2.0, 2, 100.0);
  small.budget = 10000.0;  // accepted, but must still wait behind the head
  h.run({running, head, small});
  const auto* started_small = h.host.find(Event::Started, 3);
  const auto* started_head = h.host.find(Event::Started, 2);
  ASSERT_NE(started_small, nullptr);
  ASSERT_NE(started_head, nullptr);
  EXPECT_GT(started_small->time, started_head->time)
      << "no backfilling: the small job waits behind the blocked head";
}

TEST(FirstRewardTest, ZeroPenaltyJobsHaveInfiniteSlack) {
  FirstRewardParams params;
  params.slack_threshold = 1e12;
  Harness h(PolicyKind::FirstReward, economy::EconomicModel::BidBased, 8,
            params);
  workload::Job job = make_job(1, 0.0, 1, 100.0);
  job.penalty_rate = 0.0;
  h.run({job});
  EXPECT_EQ(h.host.ids_of(Event::Accepted),
            (std::vector<workload::JobId>{1}))
      << "a job that can never incur penalties is always safe to accept";
}

}  // namespace
}  // namespace utilrisk::policy
