// Tests for the commercial computing service layer: SLA lifecycle
// accounting, utility settlement under both economic models, and the
// one-shot simulate() runner.
#include <gtest/gtest.h>

#include <cctype>

#include "service/computing_service.hpp"
#include "workload/workload.hpp"

namespace utilrisk::service {
namespace {

workload::Job make_job(workload::JobId id, double submit, std::uint32_t procs,
                       double runtime, double deadline_factor,
                       double budget, double penalty_rate = 1.0) {
  workload::Job job;
  job.id = id;
  job.submit_time = submit;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = runtime;
  job.deadline_duration = runtime * deadline_factor;
  job.budget = budget;
  job.penalty_rate = penalty_rate;
  return job;
}

// --------------------------------------------------------- MetricsCollector

TEST(MetricsCollectorTest, LifecycleProducesObjectiveInputs) {
  MetricsCollector metrics;
  const workload::Job a = make_job(1, 0.0, 1, 100.0, 5.0, 1000.0);
  const workload::Job b = make_job(2, 10.0, 1, 100.0, 5.0, 500.0);
  const workload::Job c = make_job(3, 20.0, 1, 100.0, 5.0, 700.0);

  metrics.record_submitted(a, 0.0);
  metrics.record_submitted(b, 10.0);
  metrics.record_submitted(c, 20.0);

  metrics.record_rejected(3, 20.0);

  metrics.record_accepted(1, 0.0, 100.0);
  metrics.record_started(1, 30.0);
  metrics.record_finished(1, 130.0, 100.0);  // within deadline 500

  metrics.record_accepted(2, 10.0, 80.0);
  metrics.record_started(2, 10.0);
  metrics.record_finished(2, 600.0, 80.0);  // deadline 510: violated

  const core::ObjectiveInputs in = metrics.objective_inputs();
  EXPECT_EQ(in.submitted, 3u);
  EXPECT_EQ(in.accepted, 2u);
  EXPECT_EQ(in.fulfilled, 1u);
  EXPECT_DOUBLE_EQ(in.wait_sum_fulfilled, 30.0);
  EXPECT_DOUBLE_EQ(in.total_budget, 2200.0);
  EXPECT_DOUBLE_EQ(in.total_utility, 180.0);
  EXPECT_EQ(metrics.unfinished_count(), 0u);

  EXPECT_EQ(metrics.record(1).outcome, workload::JobOutcome::FulfilledSLA);
  EXPECT_EQ(metrics.record(2).outcome, workload::JobOutcome::ViolatedSLA);
  EXPECT_EQ(metrics.record(3).outcome, workload::JobOutcome::Rejected);
  EXPECT_DOUBLE_EQ(metrics.record(2).deadline_delay(), 90.0);
}

TEST(MetricsCollectorTest, GuardsAgainstProtocolViolations) {
  MetricsCollector metrics;
  const workload::Job a = make_job(1, 0.0, 1, 100.0, 5.0, 1000.0);
  metrics.record_submitted(a, 0.0);
  EXPECT_THROW(metrics.record_submitted(a, 1.0), std::logic_error);
  EXPECT_THROW(metrics.record_accepted(9, 0.0, 0.0), std::logic_error);
  EXPECT_THROW(metrics.record_finished(9, 0.0, 0.0), std::logic_error);
  EXPECT_THROW((void)metrics.record(9), std::out_of_range);
}

TEST(MetricsCollectorTest, UnfinishedTracksAcceptedNotFinished) {
  MetricsCollector metrics;
  const workload::Job a = make_job(1, 0.0, 1, 100.0, 5.0, 1000.0);
  metrics.record_submitted(a, 0.0);
  metrics.record_accepted(1, 0.0, 10.0);
  EXPECT_EQ(metrics.unfinished_count(), 1u);
  metrics.record_finished(1, 50.0, 10.0);
  EXPECT_EQ(metrics.unfinished_count(), 0u);
}

// ------------------------------------------------------------- simulate()

TEST(SimulateTest, CommodityUtilityIsTheQuote) {
  // One job under FCFS-BF: quote = estimate * $1/s, earned in full even
  // though nothing is late.
  const auto report = simulate({make_job(1, 0.0, 2, 100.0, 5.0, 1000.0)},
                               policy::PolicyKind::FcfsBf,
                               economy::EconomicModel::CommodityMarket);
  EXPECT_EQ(report.inputs.fulfilled, 1u);
  EXPECT_DOUBLE_EQ(report.inputs.total_utility, 100.0);
  EXPECT_DOUBLE_EQ(report.objectives.profitability, 10.0);
}

TEST(SimulateTest, CommodityChargesQuoteEvenWhenLate) {
  // With accurate estimates the generous admission control would never
  // start a doomed job, so the late job must be an under-estimator: the
  // scheduler believes 40 s (fits the deadline), reality is 100 s.
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 4, 1000.0, 50.0, 10000.0),
      make_job(2, 1.0, 4, 100.0, 50.0, 10000.0),
  };
  jobs[1].estimated_runtime = 40.0;
  jobs[1].deadline_duration = 1050.0;  // absolute 1051; starts at 1000
  const auto report =
      simulate(jobs, policy::PolicyKind::FcfsBf,
               economy::EconomicModel::CommodityMarket,
               {.node_count = 4});
  EXPECT_EQ(report.inputs.accepted, 2u);
  EXPECT_EQ(report.inputs.fulfilled, 1u) << "job 2 finishes at 1100 > 1051";
  // Quotes use estimates: 1000 + 40; the violated SLA still pays in full
  // (no penalty in the commodity model, §5.1).
  EXPECT_DOUBLE_EQ(report.inputs.total_utility, 1040.0);
}

TEST(SimulateTest, BidUtilityPaysBidOnTimeAndPenalisesDelay) {
  // Job 2 under-estimates (40 s believed, 100 s real): admitted at t=1000
  // because 1040 <= deadline 1046, but really finishes at 1100 — delay
  // (1100 - 1) - 1045 = 54 s at $2/s.
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 4, 1000.0, 50.0, 5000.0, 2.0),
      make_job(2, 1.0, 4, 100.0, 50.0, 3000.0, 2.0),
  };
  jobs[1].estimated_runtime = 40.0;
  jobs[1].deadline_duration = 1045.0;
  const auto report = simulate(jobs, policy::PolicyKind::FcfsBf,
                               economy::EconomicModel::BidBased,
                               {.node_count = 4});
  EXPECT_EQ(report.inputs.fulfilled, 1u);
  EXPECT_NEAR(report.inputs.total_utility, 5000.0 + 3000.0 - 54.0 * 2.0,
              1e-6);
}

TEST(SimulateTest, RecordsAreInSubmissionOrder) {
  std::vector<workload::Job> jobs;
  for (workload::JobId id = 1; id <= 20; ++id) {
    jobs.push_back(make_job(id, id * 10.0, 1, 50.0, 5.0, 100.0));
  }
  const auto report = simulate(jobs, policy::PolicyKind::Libra,
                               economy::EconomicModel::BidBased);
  ASSERT_EQ(report.records.size(), 20u);
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    EXPECT_EQ(report.records[i].job.id, i + 1);
  }
}

TEST(SimulateTest, DeterministicAcrossRuns) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 300;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  const auto a = simulate(jobs, policy::PolicyKind::LibraRiskD,
                          economy::EconomicModel::BidBased);
  const auto b = simulate(jobs, policy::PolicyKind::LibraRiskD,
                          economy::EconomicModel::BidBased);
  EXPECT_EQ(a.inputs.accepted, b.inputs.accepted);
  EXPECT_EQ(a.inputs.fulfilled, b.inputs.fulfilled);
  EXPECT_DOUBLE_EQ(a.inputs.total_utility, b.inputs.total_utility);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
}

// Integration sweep: invariants that must hold for every policy x model on
// a non-trivial workload.
struct PolicyModelCase {
  policy::PolicyKind kind;
  economy::EconomicModel model;
};

class PolicyModelInvariants
    : public ::testing::TestWithParam<PolicyModelCase> {};

TEST_P(PolicyModelInvariants, CountsAndMoneyAreConsistent) {
  const auto [kind, model] = GetParam();
  workload::SyntheticSdscConfig trace;
  trace.job_count = 400;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);

  const auto report = simulate(jobs, kind, model);

  EXPECT_EQ(report.inputs.submitted, 400u);
  EXPECT_LE(report.inputs.fulfilled, report.inputs.accepted);
  EXPECT_LE(report.inputs.accepted, report.inputs.submitted);
  EXPECT_GE(report.objectives.wait, 0.0);
  EXPECT_GE(report.objectives.sla, 0.0);
  EXPECT_LE(report.objectives.sla, 100.0);
  EXPECT_LE(report.objectives.reliability, 100.0);

  std::size_t rejected = 0;
  for (const SlaRecord& record : report.records) {
    switch (record.outcome) {
      case workload::JobOutcome::Rejected:
        ++rejected;
        EXPECT_DOUBLE_EQ(record.utility, 0.0);
        break;
      case workload::JobOutcome::FulfilledSLA:
        EXPECT_LE(record.finish_time, record.job.submit_time +
                                          record.job.deadline_duration +
                                          sim::kTimeEpsilon);
        EXPECT_GE(record.start_time, record.submit_time - sim::kTimeEpsilon);
        if (model == economy::EconomicModel::BidBased) {
          EXPECT_NEAR(record.utility, record.job.budget, 1e-9)
              << "on-time bid job earns the full bid";
        }
        break;
      case workload::JobOutcome::ViolatedSLA:
        EXPECT_GT(record.finish_time, record.job.submit_time +
                                          record.job.deadline_duration);
        if (model == economy::EconomicModel::BidBased) {
          EXPECT_LT(record.utility, record.job.budget);
        }
        break;
      case workload::JobOutcome::TerminatedSLA:
        ADD_FAILURE() << "job " << record.job.id
                      << " terminated without the ablation flag";
        break;
      case workload::JobOutcome::FailedOutage:
        ADD_FAILURE() << "job " << record.job.id
                      << " failed by outage with injection disabled";
        break;
      case workload::JobOutcome::Unfinished:
        ADD_FAILURE() << "job " << record.job.id << " never finished";
        break;
    }
    if (model == economy::EconomicModel::CommodityMarket &&
        record.accepted()) {
      EXPECT_LE(record.utility, record.job.budget + 1e-9)
          << "commodity charge is capped by the budget check";
    }
  }
  EXPECT_EQ(rejected, report.inputs.submitted - report.inputs.accepted);
}

INSTANTIATE_TEST_SUITE_P(
    TableV, PolicyModelInvariants,
    ::testing::Values(
        PolicyModelCase{policy::PolicyKind::FcfsBf,
                        economy::EconomicModel::CommodityMarket},
        PolicyModelCase{policy::PolicyKind::SjfBf,
                        economy::EconomicModel::CommodityMarket},
        PolicyModelCase{policy::PolicyKind::EdfBf,
                        economy::EconomicModel::CommodityMarket},
        PolicyModelCase{policy::PolicyKind::Libra,
                        economy::EconomicModel::CommodityMarket},
        PolicyModelCase{policy::PolicyKind::LibraDollar,
                        economy::EconomicModel::CommodityMarket},
        PolicyModelCase{policy::PolicyKind::FcfsBf,
                        economy::EconomicModel::BidBased},
        PolicyModelCase{policy::PolicyKind::EdfBf,
                        economy::EconomicModel::BidBased},
        PolicyModelCase{policy::PolicyKind::FirstReward,
                        economy::EconomicModel::BidBased},
        PolicyModelCase{policy::PolicyKind::Libra,
                        economy::EconomicModel::BidBased},
        PolicyModelCase{policy::PolicyKind::LibraRiskD,
                        economy::EconomicModel::BidBased}),
    [](const ::testing::TestParamInfo<PolicyModelCase>& info) {
      std::string name = std::string(policy::to_string(info.param.kind)) +
                         "_" + economy::to_string(info.param.model);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Behavioural cross-checks from the paper's §6 narrative on a mid-size
// workload with the trace's own (inaccurate) estimates.
TEST(PaperNarrativeTest, LibraFamilyHasZeroWait) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 400;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  for (auto kind : {policy::PolicyKind::Libra, policy::PolicyKind::LibraDollar,
                    policy::PolicyKind::LibraRiskD}) {
    const auto report =
        simulate(jobs, kind, economy::EconomicModel::CommodityMarket);
    EXPECT_DOUBLE_EQ(report.objectives.wait, 0.0)
        << policy::to_string(kind)
        << " examines jobs at submission and starts them immediately";
  }
}

TEST(PaperNarrativeTest, LibraRiskDHandlesInaccurateEstimatesBetter) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 1500;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  const auto libra =
      simulate(jobs, policy::PolicyKind::Libra,
               economy::EconomicModel::BidBased);
  const auto riskd =
      simulate(jobs, policy::PolicyKind::LibraRiskD,
               economy::EconomicModel::BidBased);
  EXPECT_GE(riskd.objectives.reliability, libra.objectives.reliability)
      << "zero-risk node selection absorbs under-estimates";
  EXPECT_GT(riskd.objectives.profitability, libra.objectives.profitability)
      << "fewer penalty payouts under inaccurate estimates";
}

TEST(PaperNarrativeTest, FirstRewardIsRiskAverse) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 800;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  const auto first_reward = simulate(jobs, policy::PolicyKind::FirstReward,
                                     economy::EconomicModel::BidBased);
  const auto edf = simulate(jobs, policy::PolicyKind::EdfBf,
                            economy::EconomicModel::BidBased);
  EXPECT_LT(first_reward.objectives.sla, edf.objectives.sla)
      << "unbounded penalties make FirstReward accept far fewer jobs";
}

TEST(PaperNarrativeTest, GenerousAdmissionKeepsBackfillReliabilityNearIdeal) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 800;
  const workload::WorkloadBuilder builder(trace);
  // Set A: accurate estimates -> reliability is exactly 100%.
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 0.0);
  for (auto kind : {policy::PolicyKind::FcfsBf, policy::PolicyKind::EdfBf,
                    policy::PolicyKind::SjfBf}) {
    const auto report =
        simulate(jobs, kind, economy::EconomicModel::CommodityMarket);
    EXPECT_DOUBLE_EQ(report.objectives.reliability, 100.0)
        << policy::to_string(kind);
  }
}

}  // namespace
}  // namespace utilrisk::service
