// Tests for the online risk advisor (src/advise): streaming Welford
// estimators against a batch reference, exact window eviction, and the
// determinism of the advisor engine's evaluations and read-only queries.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "advise/advisor_engine.hpp"
#include "advise/estimator.hpp"
#include "core/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/qos.hpp"

namespace utilrisk::advise {
namespace {

/// SplitMix64 — a seeded sample stream without <random> (whose
/// distributions are implementation-defined).
class SampleRng {
 public:
  explicit SampleRng(std::uint64_t seed) : state_(seed) {}

  double next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    // Uniform in [0, 1000) with a heavy-ish spread so cancellation in
    // the downdate would show up.
    return static_cast<double>(z >> 11) /
           static_cast<double>(1ull << 53) * 1000.0;
  }

 private:
  std::uint64_t state_;
};

/// Batch (two-pass) mean/population-variance reference.
struct BatchStats {
  double mean = 0.0;
  double variance = 0.0;
};

BatchStats batch_reference(const std::vector<double>& samples) {
  BatchStats stats;
  if (samples.empty()) return stats;
  double sum = 0.0;
  for (double x : samples) sum += x;
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return stats;
  double m2 = 0.0;
  for (double x : samples) m2 += (x - stats.mean) * (x - stats.mean);
  stats.variance = m2 / static_cast<double>(samples.size());
  return stats;
}

TEST(RollingWelfordTest, MatchesBatchReferenceUnbounded) {
  RollingWelford welford(/*capacity=*/0);
  SampleRng rng(42);
  std::vector<double> seen;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next();
    seen.push_back(x);
    welford.push(x);
    const BatchStats reference = batch_reference(seen);
    ASSERT_NEAR(welford.mean(), reference.mean, 1e-9 * (1.0 + reference.mean))
        << "after sample " << i;
    ASSERT_NEAR(welford.variance(), reference.variance,
                1e-7 * (1.0 + reference.variance))
        << "after sample " << i;
  }
  EXPECT_EQ(welford.count(), 500u);
}

TEST(RollingWelfordTest, WindowEvictionIsExact) {
  constexpr std::size_t kWindow = 16;
  RollingWelford welford(kWindow);
  SampleRng rng(7);
  std::vector<double> seen;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next();
    seen.push_back(x);
    welford.push(x);
    const std::size_t have = std::min(seen.size(), kWindow);
    const std::vector<double> window(seen.end() - static_cast<long>(have),
                                     seen.end());
    const BatchStats reference = batch_reference(window);
    ASSERT_EQ(welford.count(), have);
    ASSERT_NEAR(welford.mean(), reference.mean, 1e-9 * (1.0 + reference.mean))
        << "after sample " << i;
    ASSERT_NEAR(welford.variance(), reference.variance,
                1e-6 * (1.0 + reference.variance))
        << "the downdate must keep the windowed variance exact, sample "
        << i;
  }
}

TEST(RollingWelfordTest, DegenerateCountsAndReset) {
  RollingWelford welford(8);
  EXPECT_TRUE(welford.empty());
  EXPECT_EQ(welford.mean(), 0.0);
  EXPECT_EQ(welford.variance(), 0.0);

  welford.push(3.5);
  EXPECT_EQ(welford.count(), 1u);
  EXPECT_DOUBLE_EQ(welford.mean(), 3.5);
  EXPECT_EQ(welford.variance(), 0.0) << "a single sample has no spread";

  welford.reset();
  EXPECT_TRUE(welford.empty());
  EXPECT_EQ(welford.capacity(), 8u);
  welford.push(1.0);
  welford.push(2.0);
  EXPECT_DOUBLE_EQ(welford.mean(), 1.5);
  EXPECT_NEAR(welford.variance(), 0.25, 1e-12);
}

TEST(RollingWelfordTest, ConstantStreamHasZeroVariance) {
  RollingWelford welford(4);
  for (int i = 0; i < 50; ++i) welford.push(123.456);
  EXPECT_DOUBLE_EQ(welford.mean(), 123.456);
  // The downdate clamps M2 at zero, so rounding noise cannot surface as
  // a (negative or tiny positive) phantom variance.
  EXPECT_EQ(welford.variance(), 0.0);
  EXPECT_EQ(welford.stddev(), 0.0);
}

TEST(EstimatorTest, ObjectiveEstimatorsShareTheWindowCapacity) {
  ObjectiveEstimators estimators = make_objective_estimators(32);
  for (RollingWelford& welford : estimators) {
    EXPECT_EQ(welford.capacity(), 32u);
    EXPECT_TRUE(welford.empty());
  }
}

// ----------------------------------------------------------- advisor engine

/// A QoS-assigned job window plus the per-decision live objective values
/// a serve engine would feed observe() — deterministic in the seed.
struct ObservedStream {
  std::vector<workload::Job> jobs;
  std::vector<core::ObjectiveValues> live;
};

ObservedStream make_observed_stream(std::size_t count, std::uint64_t seed) {
  ObservedStream stream;
  stream.jobs = workload::generate_jobs(
      "sdsc:jobs=" + std::to_string(count) + ",seed=" + std::to_string(seed));
  workload::assign_qos(stream.jobs, workload::QosConfig{});
  core::ObjectiveInputs inputs;
  for (const workload::Job& job : stream.jobs) {
    inputs.submitted += 1;
    inputs.accepted += 1;
    inputs.fulfilled += 1;
    inputs.wait_sum_fulfilled += 0.25 * job.actual_runtime;
    inputs.total_utility += 0.8 * job.budget;
    inputs.total_budget += job.budget;
    stream.live.push_back(core::compute_objectives(inputs));
  }
  return stream;
}

OnlineAdvisorConfig small_config() {
  OnlineAdvisorConfig config;
  config.advise_every = 16;
  config.window = 16;
  return config;
}

TEST(AdvisorEngineTest, SwitchPointsFireOnThePerKeyCadence) {
  AdvisorEngine engine(small_config(), ShadowContext{},
                       policy::PolicyKind::Libra);
  const ObservedStream stream = make_observed_stream(40, 3);
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    engine.observe(1, stream.jobs[i], stream.live[i]);
    const std::uint64_t decided = i + 1;
    EXPECT_EQ(engine.at_switch_point(1), decided % 16 == 0)
        << "decided=" << decided;
    // A different key has its own counter, untouched by key 1's stream.
    EXPECT_FALSE(engine.at_switch_point(2));
  }
}

TEST(AdvisorEngineTest, EvaluateIsDeterministicAcrossRuns) {
  const ObservedStream stream = make_observed_stream(32, 11);
  std::vector<Evaluation> evaluations[2];
  for (auto& run : evaluations) {
    AdvisorEngine engine(small_config(), ShadowContext{},
                         policy::PolicyKind::Libra);
    for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
      engine.observe(5, stream.jobs[i], stream.live[i]);
      if (engine.at_switch_point(5)) run.push_back(engine.evaluate(5));
    }
  }
  ASSERT_EQ(evaluations[0].size(), 2u) << "32 observes at cadence 16";
  ASSERT_EQ(evaluations[0].size(), evaluations[1].size());
  for (std::size_t e = 0; e < evaluations[0].size(); ++e) {
    const Evaluation& a = evaluations[0][e];
    const Evaluation& b = evaluations[1][e];
    EXPECT_EQ(a.recommended, b.recommended);
    ASSERT_EQ(a.ranked.size(), b.ranked.size());
    ASSERT_FALSE(a.ranked.empty());
    for (std::size_t r = 0; r < a.ranked.size(); ++r) {
      EXPECT_EQ(a.ranked[r].policy, b.ranked[r].policy);
      // Bit-identical, not approximately equal: the decision digest
      // depends on it.
      EXPECT_EQ(a.ranked[r].score, b.ranked[r].score);
      EXPECT_EQ(a.ranked[r].volatility, b.ranked[r].volatility);
    }
  }
}

TEST(AdvisorEngineTest, RankedOrderIsScoreThenVolatilityThenName) {
  const ObservedStream stream = make_observed_stream(32, 19);
  AdvisorEngine engine(small_config(), ShadowContext{},
                       policy::PolicyKind::Libra);
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    engine.observe(9, stream.jobs[i], stream.live[i]);
  }
  const Evaluation evaluation = engine.evaluate(9);
  ASSERT_GE(evaluation.ranked.size(), 2u);
  for (std::size_t i = 1; i < evaluation.ranked.size(); ++i) {
    const RankedPolicy& prev = evaluation.ranked[i - 1];
    const RankedPolicy& next = evaluation.ranked[i];
    const bool ordered =
        prev.score > next.score ||
        (prev.score == next.score &&
         (prev.volatility < next.volatility ||
          (prev.volatility == next.volatility && prev.policy < next.policy)));
    EXPECT_TRUE(ordered) << "rank " << i << ": " << prev.policy << " vs "
                         << next.policy;
  }
  EXPECT_EQ(evaluation.ranked.front().policy,
            policy::to_string(evaluation.recommended));
}

TEST(AdvisorEngineTest, QueryIsReadOnlyAndDeterministic) {
  const ObservedStream stream = make_observed_stream(32, 23);
  const std::array<double, 4> weights = {0.25, 0.25, 0.25, 0.25};

  AdvisorEngine queried(small_config(), ShadowContext{},
                        policy::PolicyKind::Libra);
  AdvisorEngine control(small_config(), ShadowContext{},
                        policy::PolicyKind::Libra);
  std::uint64_t first_digest = 0;
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    queried.observe(4, stream.jobs[i], stream.live[i]);
    control.observe(4, stream.jobs[i], stream.live[i]);
    // Hammer the queried engine with advise reads between observations.
    const Snapshot snapshot = queried.query(4, weights, 0.5);
    EXPECT_EQ(snapshot.decided, i + 1);
    if (i + 1 == stream.jobs.size()) first_digest = snapshot.digest;
  }
  // Identical histories answer with identical digests, and the query
  // traffic must not have perturbed the evaluation.
  EXPECT_EQ(control.query(4, weights, 0.5).digest, first_digest);
  const Evaluation a = queried.evaluate(4);
  const Evaluation b = control.evaluate(4);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t r = 0; r < a.ranked.size(); ++r) {
    EXPECT_EQ(a.ranked[r].policy, b.ranked[r].policy);
    EXPECT_EQ(a.ranked[r].score, b.ranked[r].score);
  }
}

TEST(AdvisorEngineTest, QueryValidatesCallerPreferences) {
  AdvisorEngine engine(small_config(), ShadowContext{},
                       policy::PolicyKind::Libra);
  const std::array<double, 4> bad_sum = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW((void)engine.query(1, bad_sum, 0.5), std::invalid_argument);
  const std::array<double, 4> negative = {-0.25, 0.5, 0.5, 0.25};
  EXPECT_THROW((void)engine.query(1, negative, 0.5), std::invalid_argument);
  const std::array<double, 4> ok = {0.25, 0.25, 0.25, 0.25};
  EXPECT_THROW((void)engine.query(1, ok, -1.0), std::invalid_argument);
}

TEST(OnlineAdvisorConfigTest, ValidateRejectsBadKnobs) {
  OnlineAdvisorConfig config;
  config.window = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument)
      << "a one-job window cannot carry a variance";
  config.window = 64;
  config.scoring.objective_weights = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.scoring.objective_weights = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.effective_every(), 1024u)
      << "auto mode defaults the cadence when advise_every is 0";
  config.advise_every = 96;
  EXPECT_EQ(config.effective_every(), 96u);
}

}  // namespace
}  // namespace utilrisk::advise
