// Headline-claim regression tests: the qualitative results of the paper's
// §6/§7 (as recorded in EXPERIMENTS.md) must keep holding on a reduced
// sweep. These are the end-to-end guards for the whole pipeline — if a
// policy, pricing, or analysis change flips a headline, these fail.
//
// The sweeps run at 1000 jobs (vs 5000 in the benches) to stay fast while
// keeping the between-policy gaps comfortably above seed noise
// (bench_robustness_seeds quantifies both).
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/figures.hpp"

namespace utilrisk::exp {
namespace {

class NarrativeTest : public ::testing::Test {
 protected:
  static const SweepResult& sweep(economy::EconomicModel model,
                                  ExperimentSet set) {
    static std::map<std::string, SweepResult> cache;
    static ResultStore store;  // shared across the four sweeps
    const std::string key =
        std::string(economy::to_string(model)) + to_string(set);
    auto it = cache.find(key);
    if (it == cache.end()) {
      ExperimentConfig config;
      config.model = model;
      config.set = set;
      config.trace.job_count = 1000;
      ExperimentRunner runner(config, &store);
      it = cache.emplace(key, runner.run_sweep()).first;
    }
    return it->second;
  }

  static const core::PolicySeries& series_of(const core::RiskPlot& plot,
                                             const std::string& policy) {
    for (const core::PolicySeries& series : plot.series) {
      if (series.policy == policy) return series;
    }
    throw std::logic_error("no such policy in plot: " + policy);
  }

  static double mean_performance(const core::PolicySeries& series) {
    double sum = 0.0;
    for (const core::RiskPoint& p : series.points) sum += p.performance;
    return sum / static_cast<double>(series.points.size());
  }
};

TEST_F(NarrativeTest, LibraFamilyHoldsTheIdealWaitPoint) {
  for (auto model : {economy::EconomicModel::CommodityMarket,
                     economy::EconomicModel::BidBased}) {
    for (auto set : {ExperimentSet::A, ExperimentSet::B}) {
      const auto plot =
          separate_plot(sweep(model, set), core::Objective::Wait, "wait");
      const auto& libra = series_of(plot, "Libra");
      for (const core::RiskPoint& point : libra.points) {
        EXPECT_DOUBLE_EQ(point.performance, 1.0);
        EXPECT_DOUBLE_EQ(point.volatility, 0.0);
      }
    }
  }
}

TEST_F(NarrativeTest, LibraDollarLeadsCommodityProfitabilityInBothSets) {
  for (auto set : {ExperimentSet::A, ExperimentSet::B}) {
    const auto plot =
        separate_plot(sweep(economy::EconomicModel::CommodityMarket, set),
                      core::Objective::Profitability, "profitability");
    const double dollar = mean_performance(series_of(plot, "Libra+$"));
    for (const core::PolicySeries& series : plot.series) {
      if (series.policy == "Libra+$") continue;
      EXPECT_GT(dollar, mean_performance(series))
          << "Set " << to_string(set) << ": Libra+$ vs " << series.policy;
    }
  }
}

TEST_F(NarrativeTest, LibraDollarAcceptsFewerJobsThanLibra) {
  for (auto set : {ExperimentSet::A, ExperimentSet::B}) {
    const auto plot =
        separate_plot(sweep(economy::EconomicModel::CommodityMarket, set),
                      core::Objective::Sla, "SLA");
    EXPECT_LT(mean_performance(series_of(plot, "Libra+$")),
              mean_performance(series_of(plot, "Libra")));
  }
}

TEST_F(NarrativeTest, BackfillReliabilityIsNearIdeal) {
  for (auto model : {economy::EconomicModel::CommodityMarket,
                     economy::EconomicModel::BidBased}) {
    for (auto set : {ExperimentSet::A, ExperimentSet::B}) {
      const auto plot = separate_plot(
          sweep(model, set), core::Objective::Reliability, "reliability");
      for (const char* policy : {"FCFS-BF", "EDF-BF"}) {
        EXPECT_GT(mean_performance(series_of(plot, policy)), 0.99)
            << economy::to_string(model) << " Set " << to_string(set);
      }
    }
  }
}

TEST_F(NarrativeTest, InaccurateEstimatesHurtLibraReliability) {
  const auto plot_a =
      separate_plot(sweep(economy::EconomicModel::CommodityMarket,
                          ExperimentSet::A),
                    core::Objective::Reliability, "rel");
  const auto plot_b =
      separate_plot(sweep(economy::EconomicModel::CommodityMarket,
                          ExperimentSet::B),
                    core::Objective::Reliability, "rel");
  EXPECT_GT(mean_performance(series_of(plot_a, "Libra")),
            mean_performance(series_of(plot_b, "Libra")))
      << "Set B's over/under-estimates break Libra's guarantees";
}

TEST_F(NarrativeTest, FirstRewardIsRiskAverseOnSlaButConsistent) {
  for (auto set : {ExperimentSet::A, ExperimentSet::B}) {
    const auto plot = separate_plot(
        sweep(economy::EconomicModel::BidBased, set), core::Objective::Sla,
        "SLA");
    const auto& first_reward = series_of(plot, "FirstReward");
    // Worst mean SLA performance...
    for (const core::PolicySeries& series : plot.series) {
      if (series.policy == "FirstReward") continue;
      EXPECT_LT(mean_performance(first_reward), mean_performance(series));
    }
    // ...but the tightest volatility spread (paper: "best volatility").
    const auto stats = core::compute_rank_stats(first_reward);
    for (const core::PolicySeries& series : plot.series) {
      if (series.policy == "FirstReward") continue;
      EXPECT_LE(stats.volatility_difference(),
                core::compute_rank_stats(series).volatility_difference() +
                    0.05);
    }
  }
}

TEST_F(NarrativeTest, LibraRiskDEqualsLibraInSetA) {
  const auto& result = sweep(economy::EconomicModel::BidBased,
                             ExperimentSet::A);
  std::size_t libra = result.policy_count(), riskd = result.policy_count();
  for (std::size_t p = 0; p < result.policy_count(); ++p) {
    if (result.policies[p] == policy::PolicyKind::Libra) libra = p;
    if (result.policies[p] == policy::PolicyKind::LibraRiskD) riskd = p;
  }
  ASSERT_LT(libra, result.policy_count());
  ASSERT_LT(riskd, result.policy_count());
  for (std::size_t s = 0; s < result.scenario_count(); ++s) {
    // The inaccuracy scenario sweeps estimates up to 100% inaccurate even
    // in Set A — the paper's "single point deviation" where the two
    // policies legitimately differ.
    if (result.scenario_names[s] == "inaccuracy") continue;
    for (core::Objective objective : core::kAllObjectives) {
      const auto o = static_cast<std::size_t>(objective);
      EXPECT_NEAR(result.separate[s][libra][o].performance,
                  result.separate[s][riskd][o].performance, 1e-9)
          << "scenario " << result.scenario_names[s];
    }
  }
}

TEST_F(NarrativeTest, LibraRiskDWinsIntegratedBidSetB) {
  const std::vector<core::Objective> all(core::kAllObjectives.begin(),
                                         core::kAllObjectives.end());
  const auto plot = integrated_plot(
      sweep(economy::EconomicModel::BidBased, ExperimentSet::B), all,
      "all");
  const auto ranked =
      core::rank_policies(plot.series, core::RankBy::BestPerformance);
  // The paper's headline: LibraRiskD handles inaccurate estimates best.
  // Our Libra's softer collapse keeps it adjacent, so accept first-or-
  // second-with-LibraRiskD-above-Libra as the stable relation.
  std::size_t pos_riskd = ranked.size(), pos_libra = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].policy == "LibraRiskD") pos_riskd = i;
    if (ranked[i].policy == "Libra") pos_libra = i;
  }
  EXPECT_LE(pos_riskd, 1u);
  EXPECT_LT(pos_riskd, pos_libra);
}

TEST_F(NarrativeTest, RawSweepCsvExports) {
  const auto& result =
      sweep(economy::EconomicModel::BidBased, ExperimentSet::B);
  std::ostringstream out;
  write_sweep_csv(out, result);
  std::istringstream in(out.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 1u + result.scenario_count() * 4u *
                      result.policy_count() * kValuesPerScenario);
}

}  // namespace
}  // namespace utilrisk::exp
