// Tests for the fault-injection and recovery subsystem: recovery-knob
// arithmetic, the seeded injector, executor down/up invariants, the
// disabled-path bit-identity guarantee, and the service-level SLA
// accounting under outages and bounded retries.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/space_shared.hpp"
#include "cluster/time_shared.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "service/computing_service.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace utilrisk {
namespace {

workload::Job make_job(workload::JobId id, double submit, std::uint32_t procs,
                       double runtime, double deadline_factor,
                       double budget, double penalty_rate = 1.0) {
  workload::Job job;
  job.id = id;
  job.submit_time = submit;
  job.procs = procs;
  job.actual_runtime = runtime;
  job.estimated_runtime = runtime;
  job.deadline_duration = runtime * deadline_factor;
  job.budget = budget;
  job.penalty_rate = penalty_rate;
  return job;
}

std::vector<workload::Job> sdsc_jobs(std::uint32_t count) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = count;
  const workload::WorkloadBuilder builder(trace);
  return builder.build(workload::QosConfig{}, 0.25, 100.0);
}

// ------------------------------------------------------- Config/recovery

TEST(FailureConfigTest, DefaultIsDisabled) {
  const cluster::FailureConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(config.validate());
}

TEST(FailureConfigTest, ValidateRejectsNonsense) {
  cluster::FailureConfig config;
  config.mtbf_seconds = 3600.0;
  EXPECT_NO_THROW(config.validate());

  config.mttr_seconds = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.mttr_seconds = 3600.0;

  config.correlated_fraction = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.correlated_fraction = 0.0;

  config.distribution = cluster::FailureDistribution::Weibull;
  config.weibull_shape = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(RecoveryParamsTest, ValidateRejectsNonsense) {
  cluster::RecoveryParams recovery;
  EXPECT_NO_THROW(recovery.validate());
  recovery.backoff_factor = 0.5;
  EXPECT_THROW(recovery.validate(), std::invalid_argument);
  recovery.backoff_factor = 2.0;
  recovery.checkpoint_interval = -1.0;
  EXPECT_THROW(recovery.validate(), std::invalid_argument);
}

TEST(RecoveryParamsTest, CheckpointCreditIsLastBoundary) {
  cluster::RecoveryParams recovery;
  // No checkpointing: a restart loses everything.
  EXPECT_DOUBLE_EQ(recovery.checkpointed(950.0), 0.0);

  recovery.checkpoint_interval = 300.0;
  EXPECT_DOUBLE_EQ(recovery.checkpointed(0.0), 0.0);
  EXPECT_DOUBLE_EQ(recovery.checkpointed(299.0), 0.0);
  EXPECT_DOUBLE_EQ(recovery.checkpointed(300.0), 300.0);
  EXPECT_DOUBLE_EQ(recovery.checkpointed(950.0), 900.0);
}

TEST(RecoveryParamsTest, BackoffGrowsGeometrically) {
  cluster::RecoveryParams recovery;
  recovery.backoff_seconds = 60.0;
  recovery.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(recovery.backoff_for(0), 60.0);
  EXPECT_DOUBLE_EQ(recovery.backoff_for(1), 120.0);
  EXPECT_DOUBLE_EQ(recovery.backoff_for(2), 240.0);
}

// ------------------------------------------------------- FailureModel

TEST(FailureModelTest, SampleMeansTrackConfig) {
  cluster::FailureConfig config;
  config.mtbf_seconds = 1000.0;
  config.mttr_seconds = 100.0;
  const cluster::FailureModel model(config);
  sim::Rng rng(7);
  double ttf_sum = 0.0;
  double ttr_sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const double ttf = model.sample_time_to_failure(rng);
    const double ttr = model.sample_time_to_repair(rng);
    ASSERT_GT(ttf, 0.0);
    ASSERT_GT(ttr, 0.0);
    ttf_sum += ttf;
    ttr_sum += ttr;
  }
  EXPECT_NEAR(ttf_sum / draws, config.mtbf_seconds,
              0.05 * config.mtbf_seconds);
  EXPECT_NEAR(ttr_sum / draws, config.mttr_seconds,
              0.05 * config.mttr_seconds);
}

TEST(FailureModelTest, WeibullMeanMatchesMtbf) {
  cluster::FailureConfig config;
  config.mtbf_seconds = 500.0;
  config.distribution = cluster::FailureDistribution::Weibull;
  config.weibull_shape = 1.5;
  const cluster::FailureModel model(config);
  sim::Rng rng(11);
  double sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) sum += model.sample_time_to_failure(rng);
  EXPECT_NEAR(sum / draws, config.mtbf_seconds, 0.05 * config.mtbf_seconds);
}

// ------------------------------------------------------- FailureInjector

TEST(FailureInjectorTest, DisabledInjectorSchedulesNothing) {
  sim::Simulator simulator;
  cluster::MachineConfig machine;
  machine.node_count = 4;
  const cluster::FailureConfig config;  // mtbf = inf
  cluster::FailureInjector injector(simulator, machine, config);
  injector.set_callbacks([](cluster::NodeId) {}, [](cluster::NodeId) {});
  injector.arm();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_EQ(simulator.run(), 0u);
  EXPECT_EQ(injector.failures_injected(), 0u);
}

TEST(FailureInjectorTest, DeterministicFailureScheduleAcrossRuns) {
  const auto run_once = [] {
    sim::Simulator simulator;
    cluster::MachineConfig machine;
    machine.node_count = 8;
    cluster::FailureConfig config;
    config.mtbf_seconds = 1000.0;
    config.mttr_seconds = 200.0;
    config.seed = 99;
    cluster::FailureInjector injector(simulator, machine, config);
    std::vector<double> down_times;
    injector.set_callbacks(
        [&](cluster::NodeId) {
          down_times.push_back(simulator.now());
          if (down_times.size() >= 25) injector.disarm();
        },
        [](cluster::NodeId) {});
    injector.arm();
    EXPECT_TRUE(injector.armed());
    simulator.run();
    EXPECT_FALSE(injector.armed());
    EXPECT_GE(injector.failures_injected(), 25u);
    return down_times;
  };
  const std::vector<double> a = run_once();
  const std::vector<double> b = run_once();
  EXPECT_EQ(a, b);
}

TEST(FailureInjectorTest, DownCountMatchesPerNodeState) {
  sim::Simulator simulator;
  cluster::MachineConfig machine;
  machine.node_count = 8;
  cluster::FailureConfig config;
  config.mtbf_seconds = 500.0;
  config.mttr_seconds = 500.0;
  config.seed = 5;
  cluster::FailureInjector injector(simulator, machine, config);
  std::uint64_t events = 0;
  const auto check = [&](cluster::NodeId) {
    std::uint32_t down = 0;
    for (cluster::NodeId id = 0; id < machine.node_count; ++id) {
      if (injector.is_down(id)) ++down;
    }
    EXPECT_EQ(down, injector.down_count());
    if (++events >= 60) injector.disarm();
  };
  injector.set_callbacks(check, check);
  injector.arm();
  simulator.run();
  EXPECT_EQ(injector.repairs_completed() + injector.failures_injected(),
            events);
}

// ------------------------------------------------------- Executors

TEST(SpaceSharedFailureTest, CapacityStaysConsistentAcrossDownUp) {
  sim::Simulator simulator;
  cluster::MachineConfig machine;
  machine.node_count = 8;
  cluster::SpaceSharedCluster cluster(simulator, machine);

  const auto occupied = [&] {
    std::uint32_t procs = 0;
    for (const auto& info : cluster.running_jobs()) procs += info.procs;
    return procs;
  };
  const auto check_capacity = [&] {
    EXPECT_LE(cluster.free_procs(), cluster.up_procs());
    EXPECT_EQ(cluster.free_procs() + occupied(), cluster.up_procs());
  };

  int finished = 0;
  const auto on_complete = [&](workload::JobId, sim::SimTime) { ++finished; };
  cluster.start(make_job(1, 0.0, 3, 100.0, 5.0, 10.0), on_complete);
  cluster.start(make_job(2, 0.0, 2, 100.0, 5.0, 10.0), on_complete);
  check_capacity();

  // Deterministic placement: job 1 occupies nodes 0-2. Taking node 1 down
  // kills it; nodes 0 and 2 return to the free pool, node 1 does not.
  const auto kill = cluster.node_down(1);
  ASSERT_TRUE(kill.has_value());
  EXPECT_EQ(kill->job.id, 1u);
  EXPECT_GE(kill->completed_work, 0.0);
  EXPECT_FALSE(cluster.is_up(1));
  EXPECT_EQ(cluster.up_procs(), 7u);
  check_capacity();

  // A free down node changes nothing further.
  const auto no_kill = cluster.node_down(5);
  EXPECT_FALSE(no_kill.has_value());
  EXPECT_EQ(cluster.up_procs(), 6u);
  check_capacity();
  EXPECT_THROW((void)cluster.node_down(5), std::logic_error);

  // estimated_availability cannot promise more processors than are up.
  EXPECT_EQ(cluster.estimated_availability(7), sim::kTimeNever);

  cluster.node_up(1);
  cluster.node_up(5);
  EXPECT_EQ(cluster.up_procs(), 8u);
  check_capacity();
  EXPECT_THROW(cluster.node_up(5), std::logic_error);

  simulator.run();
  EXPECT_EQ(finished, 1);  // job 2 survived, job 1 was killed
  check_capacity();
}

TEST(TimeSharedFailureTest, SharesStayBoundedAcrossDownUp) {
  sim::Simulator simulator;
  cluster::MachineConfig machine;
  machine.node_count = 4;
  cluster::TimeSharedCluster cluster(simulator, machine);

  const auto check_shares = [&] {
    for (cluster::NodeId id = 0; id < machine.node_count; ++id) {
      const double share = cluster.committed_share(id);
      EXPECT_GE(share, 0.0);
      EXPECT_LE(share,
                1.0 + cluster::TimeSharedCluster::kShareEpsilon);
      if (!cluster.is_up(id)) {
        EXPECT_DOUBLE_EQ(share, 0.0);
      }
    }
  };

  int finished = 0;
  const auto on_complete = [&](workload::JobId, sim::SimTime) { ++finished; };
  cluster.start(make_job(1, 0.0, 2, 100.0, 5.0, 10.0), {0, 1}, 0.5,
                on_complete);
  cluster.start(make_job(2, 0.0, 2, 100.0, 5.0, 10.0), {1, 2}, 0.4,
                on_complete);
  cluster.start(make_job(3, 0.0, 1, 100.0, 5.0, 10.0), {3}, 0.3,
                on_complete);
  check_shares();
  EXPECT_EQ(cluster.running_count(), 3u);

  // Node 1 hosts tasks of jobs 1 and 2: both die entirely (rigid jobs),
  // releasing their shares on nodes 0 and 2 as well.
  const auto kills = cluster.node_down(1);
  ASSERT_EQ(kills.size(), 2u);
  EXPECT_EQ(kills[0].job.id, 1u);
  EXPECT_EQ(kills[1].job.id, 2u);
  for (const auto& kill : kills) EXPECT_GE(kill.completed_work, 0.0);
  EXPECT_DOUBLE_EQ(cluster.committed_share(0), 0.0);
  EXPECT_DOUBLE_EQ(cluster.committed_share(2), 0.0);
  EXPECT_EQ(cluster.running_count(), 1u);
  check_shares();

  // Starting on a down node is a physical impossibility.
  EXPECT_THROW(cluster.start(make_job(4, 0.0, 1, 10.0, 5.0, 1.0), {1}, 0.2,
                             on_complete),
               std::logic_error);
  EXPECT_THROW((void)cluster.node_down(1), std::logic_error);

  cluster.node_up(1);
  EXPECT_TRUE(cluster.is_up(1));
  cluster.start(make_job(4, 0.0, 1, 10.0, 5.0, 1.0), {1}, 0.2, on_complete);
  check_shares();

  simulator.run();
  EXPECT_EQ(finished, 2);  // job 3 and the post-repair job 4
  check_shares();
}

// ------------------------------------------------------- Disabled path

TEST(FailureServiceTest, DisabledFailureConfigIsBitIdentical) {
  const auto jobs = sdsc_jobs(250);
  const auto baseline = service::simulate(
      jobs, policy::PolicyKind::LibraRiskD, economy::EconomicModel::BidBased);

  policy::PolicyContext context;
  context.model = economy::EconomicModel::BidBased;
  // context.failure stays at its default: mtbf = inf, injector never built.
  const auto with_config = service::simulate(
      jobs, service::factory_for(policy::PolicyKind::LibraRiskD), context);

  EXPECT_EQ(baseline.events_dispatched, with_config.events_dispatched);
  EXPECT_DOUBLE_EQ(baseline.end_time, with_config.end_time);
  ASSERT_EQ(baseline.records.size(), with_config.records.size());
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    const auto& a = baseline.records[i];
    const auto& b = with_config.records[i];
    EXPECT_EQ(a.job.id, b.job.id);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_DOUBLE_EQ(a.start_time, b.start_time);
    EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
    EXPECT_DOUBLE_EQ(a.utility, b.utility);
    EXPECT_EQ(b.outage_count, 0u);
  }
}

// ------------------------------------------------------- Service + outages

policy::PolicyContext failing_context(economy::EconomicModel model,
                                      double mtbf,
                                      std::uint32_t retry_limit) {
  policy::PolicyContext context;
  context.model = model;
  context.failure.mtbf_seconds = mtbf;
  context.failure.mttr_seconds = 1800.0;
  context.failure.seed = 64023;
  context.recovery.retry_limit = retry_limit;
  context.recovery.backoff_seconds = 120.0;
  context.recovery.checkpoint_interval = 600.0;
  return context;
}

TEST(FailureServiceTest, SameFailureSeedIsDeterministic) {
  const auto jobs = sdsc_jobs(250);
  const auto context =
      failing_context(economy::EconomicModel::BidBased, 30000.0, 2);
  const auto a = service::simulate(
      jobs, service::factory_for(policy::PolicyKind::Libra), context);
  const auto b = service::simulate(
      jobs, service::factory_for(policy::PolicyKind::Libra), context);

  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.inputs.accepted, b.inputs.accepted);
  EXPECT_EQ(a.inputs.fulfilled, b.inputs.fulfilled);
  EXPECT_DOUBLE_EQ(a.inputs.total_utility, b.inputs.total_utility);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].outage_count, b.records[i].outage_count);
    EXPECT_DOUBLE_EQ(a.records[i].finish_time, b.records[i].finish_time);
    EXPECT_DOUBLE_EQ(a.records[i].utility, b.records[i].utility);
  }
}

TEST(FailureServiceTest, InvariantsHoldUnderOutagesAndRetries) {
  const auto jobs = sdsc_jobs(300);
  for (const policy::PolicyKind kind :
       policy::policies_for_model(economy::EconomicModel::BidBased)) {
    SCOPED_TRACE(policy::to_string(kind));
    const auto context =
        failing_context(economy::EconomicModel::BidBased, 50000.0, 2);
    const auto report =
        service::simulate(jobs, service::factory_for(kind), context);

    // m = accepted + rejected: every submitted SLA reached a terminal
    // outcome even with outages in flight.
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t failed = 0;
    for (const auto& record : report.records) {
      ASSERT_NE(record.outcome, workload::JobOutcome::Unfinished);
      if (record.outcome == workload::JobOutcome::Rejected) {
        ++rejected;
      } else {
        ++accepted;
        if (record.outcome == workload::JobOutcome::FailedOutage) ++failed;
      }
    }
    EXPECT_EQ(accepted + rejected, jobs.size());
    EXPECT_EQ(report.inputs.accepted, accepted);
    // n_SLA <= n <= m (eqn 3 denominators stay ordered).
    EXPECT_LE(report.inputs.fulfilled, report.inputs.accepted);
    EXPECT_LE(report.inputs.accepted, report.inputs.submitted);
    EXPECT_EQ(report.inputs.submitted, jobs.size());
    // A permanently failed job never fulfils its SLA.
    EXPECT_LE(failed, accepted - report.inputs.fulfilled);
    EXPECT_GE(report.objectives.reliability, 0.0);
    EXPECT_LE(report.objectives.reliability, 100.0);
  }
}

TEST(FailureServiceTest, ExhaustedRetriesSettleAsFailedOutage) {
  // One long job on a machine failing every ~50 seconds with no retry
  // budget: the job is killed and settles as failed-outage with a
  // bid-model penalty (negative utility past the deadline).
  std::vector<workload::Job> jobs = {
      make_job(1, 0.0, 1, 20000.0, 2.0, 100.0, 0.01)};
  auto context = failing_context(economy::EconomicModel::BidBased, 50.0, 0);
  context.failure.mttr_seconds = 10000.0;
  const auto report = service::simulate(
      jobs, service::factory_for(policy::PolicyKind::Libra), context);

  ASSERT_EQ(report.records.size(), 1u);
  const auto& record = report.records[0];
  EXPECT_EQ(record.outcome, workload::JobOutcome::FailedOutage);
  EXPECT_GE(record.outage_count, 1u);
  EXPECT_LE(record.utility, 0.0);
  EXPECT_EQ(report.inputs.fulfilled, 0u);
  EXPECT_EQ(report.inputs.accepted, 1u);
}

TEST(FailureServiceTest, ReliabilityDegradesAsMtbfShrinks) {
  const auto jobs = sdsc_jobs(300);
  const auto infinite = service::simulate(
      jobs, policy::PolicyKind::Libra, economy::EconomicModel::BidBased);
  const auto context =
      failing_context(economy::EconomicModel::BidBased, 3600.0, 2);
  const auto failing = service::simulate(
      jobs, service::factory_for(policy::PolicyKind::Libra), context);

  EXPECT_LE(failing.objectives.reliability, infinite.objectives.reliability);
  std::size_t failed = 0;
  for (const auto& record : failing.records) {
    if (record.outcome == workload::JobOutcome::FailedOutage) ++failed;
  }
  EXPECT_GT(failed, 0u);
}

// ------------------------------------------------------- Experiment layer

TEST(FailureExperimentTest, MtbfScenarioSweepsOnlyTheFailureKnob) {
  const exp::Scenario& scenario = exp::mtbf_scenario();
  EXPECT_EQ(scenario.name, "mtbf");
  EXPECT_EQ(scenario.values.size(), exp::kValuesPerScenario);
  EXPECT_TRUE(std::isinf(scenario.values.front()));

  const exp::RunSettings defaults;
  // The infinite-MTBF cell reproduces the failure-free cache key, so the
  // sweep's baseline column dedups against every existing figure bench.
  EXPECT_EQ(scenario.settings_for(defaults, 0).key_fragment(),
            defaults.key_fragment());
  // Finite cells carry a failure fragment and differ per value.
  const std::string one = scenario.settings_for(defaults, 1).key_fragment();
  const std::string two = scenario.settings_for(defaults, 2).key_fragment();
  EXPECT_NE(one, defaults.key_fragment());
  EXPECT_NE(one, two);
  EXPECT_EQ(&exp::scenario_by_name("mtbf"), &scenario);
}

TEST(FailureExperimentTest, RunOneCachesFailureCells) {
  exp::ExperimentConfig config;
  config.model = economy::EconomicModel::BidBased;
  config.set = exp::ExperimentSet::B;
  config.trace.job_count = 120;
  exp::ExperimentRunner runner(config, nullptr);

  exp::RunSettings settings = config.default_settings();
  settings.failure.mtbf_seconds = 86400.0;
  settings.recovery.retry_limit = 1;

  const auto first = runner.run_one(policy::PolicyKind::Libra, settings);
  EXPECT_EQ(runner.simulations_run(), 1u);
  const auto second = runner.run_one(policy::PolicyKind::Libra, settings);
  EXPECT_EQ(runner.simulations_run(), 1u);  // served from the result store
  for (core::Objective objective : core::kAllObjectives) {
    EXPECT_DOUBLE_EQ(first.get(objective), second.get(objective));
  }
}

}  // namespace
}  // namespace utilrisk
