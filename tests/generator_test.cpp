// Tests for the pluggable workload-generator API (workload/generator.hpp):
// spec grammar, registry round-trips, bit-identity of the legacy methods
// routed through the registry, per-method determinism, and statistical
// properties of the zipf/flash/daly generators.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "service/computing_service.hpp"
#include "sim/rng.hpp"
#include "workload/checkpoint_restart.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic_lublin.hpp"
#include "workload/synthetic_sdsc.hpp"
#include "workload/workload.hpp"
#include "workload/zipfian.hpp"

namespace {

using namespace utilrisk;
using workload::GeneratorSpec;
using workload::Job;

/// Exact (bitwise doubles) equality over every generated field.
void expect_identical(const std::vector<Job>& a, const std::vector<Job>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "job " << i;
    EXPECT_EQ(a[i].submit_time, b[i].submit_time) << "job " << i;
    EXPECT_EQ(a[i].actual_runtime, b[i].actual_runtime) << "job " << i;
    EXPECT_EQ(a[i].estimated_runtime, b[i].estimated_runtime) << "job " << i;
    EXPECT_EQ(a[i].procs, b[i].procs) << "job " << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "job " << i;
  }
}

// ----------------------------------------------------------- spec grammar

TEST(GeneratorSpec, ParsesNameOnly) {
  const GeneratorSpec spec = GeneratorSpec::parse("sdsc");
  EXPECT_EQ(spec.method, "sdsc");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "sdsc");
}

TEST(GeneratorSpec, ParsesParamsInOrderAndRoundTrips) {
  const std::string text = "zipf:tenants=1000000,theta=0.99,seed=7";
  const GeneratorSpec spec = GeneratorSpec::parse(text);
  EXPECT_EQ(spec.method, "zipf");
  ASSERT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(spec.params[0].first, "tenants");
  EXPECT_EQ(spec.params[1].second, "0.99");
  EXPECT_EQ(spec.to_string(), text);
}

TEST(GeneratorSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)GeneratorSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)GeneratorSpec::parse(":a=1"), std::invalid_argument);
  EXPECT_THROW((void)GeneratorSpec::parse("zipf:noequals"),
               std::invalid_argument);
  EXPECT_THROW((void)GeneratorSpec::parse("zipf:=3"), std::invalid_argument);
  EXPECT_THROW((void)GeneratorSpec::parse("zipf:a=1,a=2"),
               std::invalid_argument);
}

TEST(GeneratorSpec, TypedLookupsAndDefaults) {
  GeneratorSpec spec = GeneratorSpec::parse("zipf:theta=0.5,jobs=100");
  EXPECT_DOUBLE_EQ(spec.get_double("theta", 0.99), 0.5);
  EXPECT_DOUBLE_EQ(spec.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(spec.get_u32("jobs", 7), 100u);
  EXPECT_THROW((void)spec.get_u64("theta", 0), std::invalid_argument);

  // set_default never overrides an explicit key.
  spec.set_default("jobs", "999");
  spec.set_default("seed", "31");
  EXPECT_EQ(spec.get_u32("jobs", 0), 100u);
  EXPECT_EQ(spec.get_u64("seed", 0), 31u);
}

TEST(GeneratorSpec, UnknownKeysFailLoudlyAtLoad) {
  EXPECT_THROW((void)workload::generate_jobs("sdsc:jbos=100"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::generate_jobs("zipf:thetta=0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::generate_jobs("nosuchmethod:jobs=10"),
               std::invalid_argument);
}

TEST(GeneratorSpec, FormatDoubleRoundTrips) {
  for (const double value : {0.99, 1969.0, 1.0 / 3.0, 8671.125, 0.02}) {
    const std::string text = workload::format_double(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
}

// ---------------------------------------------------------------- registry

TEST(GeneratorRegistry, BuiltinsRegisteredInOrder) {
  const auto& methods = workload::registered_generators();
  ASSERT_GE(methods.size(), 7u);
  EXPECT_EQ(methods[0].name, "sdsc");
  EXPECT_EQ(methods[1].name, "lublin");
  EXPECT_EQ(methods[2].name, "swf");
  EXPECT_EQ(methods[3].name, "zipf");
  EXPECT_EQ(methods[4].name, "flash");
  EXPECT_EQ(methods[5].name, "mixshift");
  EXPECT_EQ(methods[6].name, "daly");
  for (const auto& method : methods) {
    EXPECT_FALSE(method.summary.empty()) << method.name;
    EXPECT_TRUE(static_cast<bool>(method.create)) << method.name;
  }
}

TEST(GeneratorRegistry, StreamingInterfaceMatchesBatch) {
  const GeneratorSpec spec = GeneratorSpec::parse("sdsc:jobs=50,seed=9");
  auto generator = workload::make_generator(spec);
  EXPECT_STREQ(generator->method(), "sdsc");
  std::vector<Job> streamed;
  while (auto job = generator->get_next()) streamed.push_back(*job);
  EXPECT_EQ(streamed.size(), 50u);
  expect_identical(streamed, workload::generate_jobs(spec));

  // load() resets the stream.
  generator->load(spec);
  auto first_again = generator->get_next();
  ASSERT_TRUE(first_again.has_value());
  EXPECT_EQ(first_again->id, streamed.front().id);
  EXPECT_EQ(first_again->submit_time, streamed.front().submit_time);
}

// Routing a legacy config through the registry must reproduce the direct
// generator call bit for bit — the golden-digest contract.
TEST(GeneratorRegistry, SdscSpecForIsBitIdentical) {
  workload::SyntheticSdscConfig config;
  config.job_count = 300;
  config.seed = 20260808;
  config.mean_runtime = 7000.5;
  config.diurnal_amplitude = 0.3;
  expect_identical(workload::generate_jobs(workload::spec_for(config)),
                   workload::generate_synthetic_sdsc(config));
}

TEST(GeneratorRegistry, LublinSpecForIsBitIdentical) {
  workload::SyntheticLublinConfig config;
  config.job_count = 300;
  config.seed = 77;
  config.serial_fraction = 0.31;
  expect_identical(workload::generate_jobs(workload::spec_for(config)),
                   workload::generate_synthetic_lublin(config));
}

TEST(GeneratorRegistry, WorkloadBuilderRoutesSdscThroughRegistry) {
  workload::SyntheticSdscConfig config;
  config.job_count = 200;
  const workload::WorkloadBuilder builder(config);
  expect_identical(builder.base_trace(),
                   workload::generate_synthetic_sdsc(config));
  const workload::WorkloadBuilder by_spec(workload::spec_for(config));
  expect_identical(by_spec.base_trace(), builder.base_trace());
}

// Same spec, two independent runs -> bit-identical stream, for every
// seeded method (the per-seed determinism acceptance criterion).
TEST(GeneratorRegistry, EveryMethodIsDeterministicPerSeed) {
  const std::vector<std::string> specs = {
      "sdsc:jobs=120,seed=5",
      "lublin:jobs=120,seed=5",
      "zipf:jobs=120,seed=5,tenants=10000,theta=0.9",
      "flash:jobs=120,seed=5,peak=6,start=3600,duration=3600",
      "flash:base=lublin,jobs=120,seed=5,diurnal=0.4",
      "daly:jobs=120,seed=5,interval=1800",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    expect_identical(workload::generate_jobs(spec),
                     workload::generate_jobs(spec));
  }
}

TEST(GeneratorRegistry, SeedChangesTheStream) {
  const auto a = workload::generate_jobs("zipf:jobs=100,seed=1");
  const auto b = workload::generate_jobs("zipf:jobs=100,seed=2");
  ASSERT_EQ(a.size(), b.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].actual_runtime != b[i].actual_runtime) ++differing;
  }
  EXPECT_GT(differing, a.size() / 2);
}

// ------------------------------------------------------------------- zipf

TEST(Zipfian, SamplerValidatesArguments) {
  EXPECT_THROW(workload::ZipfianSampler(0, 0.5), std::invalid_argument);
  EXPECT_THROW(workload::ZipfianSampler(10, 1.0), std::invalid_argument);
  EXPECT_THROW(workload::ZipfianSampler(10, -0.1), std::invalid_argument);
}

TEST(Zipfian, RankFrequencySlopeMatchesTheta) {
  // P(rank r) ~ (r+1)^-theta, so a log-log regression of observed
  // frequency on rank recovers -theta.
  const double theta = 0.8;
  const workload::ZipfianSampler sampler(1000, theta);
  sim::Rng rng(123);
  std::map<std::uint64_t, std::uint64_t> counts;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];

  // Regress over the well-populated head (ranks 0..49).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::uint64_t rank = 0; rank < 50; ++rank) {
    const auto it = counts.find(rank);
    ASSERT_NE(it, counts.end()) << "head rank " << rank << " never drawn";
    const double x = std::log(static_cast<double>(rank + 1));
    const double y = std::log(static_cast<double>(it->second));
    sx += x; sy += y; sxx += x * x; sxy += x * y;
    ++n;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -theta, 0.08);
}

TEST(Zipfian, ThetaZeroIsUniform) {
  const workload::ZipfianSampler sampler(100, 0.0);
  sim::Rng rng(7);
  std::vector<std::uint64_t> counts(100, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];
  // Every rank within 30% of the uniform expectation.
  for (std::uint64_t rank = 0; rank < 100; ++rank) {
    EXPECT_NEAR(static_cast<double>(counts[rank]), draws / 100.0,
                0.3 * draws / 100.0)
        << "rank " << rank;
  }
}

TEST(Zipfian, TenantIdsWithinBoundsAndSkewed) {
  const auto jobs = workload::generate_jobs(
      "zipf:jobs=2000,tenants=1000000,theta=0.99,seed=11");
  ASSERT_EQ(jobs.size(), 2000u);
  std::map<std::uint32_t, std::size_t> per_tenant;
  for (const Job& job : jobs) {
    ASSERT_GE(job.tenant, 1u);
    ASSERT_LE(job.tenant, 1000000u);
    ++per_tenant[job.tenant];
  }
  // Heavy skew: the hottest tenant (rank 1) dominates, yet the long tail
  // still surfaces many distinct tenants.
  EXPECT_GT(per_tenant[1], jobs.size() / 20);
  EXPECT_GT(per_tenant.size(), 100u);
  EXPECT_LT(per_tenant.size(), jobs.size());
}

TEST(Zipfian, LegacyMethodsLeaveTenantZero) {
  for (const Job& job : workload::generate_jobs("sdsc:jobs=50")) {
    EXPECT_EQ(job.tenant, 0u);
  }
}

// ------------------------------------------------------------------ flash

TEST(FlashCrowd, ValidatesKnobs) {
  workload::FlashCrowdParams params;
  params.peak = 0.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.period = params.duration;  // repeating window must fit its period
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.diurnal_amplitude = 1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(FlashCrowd, RateRatioInsideWindowWithinTolerance) {
  // A Poisson base stream warped by peak=8 must land ~8x the arrivals
  // per unit time inside the window.
  const double peak = 8.0;
  workload::FlashCrowdParams params;
  params.peak = peak;
  params.start = 20000.0;
  params.duration = 20000.0;

  std::vector<Job> jobs;
  sim::Rng rng(99);
  double clock = 0.0;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    Job job;
    job.id = i + 1;
    job.submit_time = clock;
    jobs.push_back(job);
    clock += -std::log(1.0 - rng.uniform01()) * 10.0;  // mean gap 10 s
  }
  workload::apply_rate_modulation(jobs, params);

  std::size_t inside = 0, before = 0;
  for (const Job& job : jobs) {
    if (job.submit_time < params.start) {
      ++before;
    } else if (job.submit_time < params.start + params.duration) {
      ++inside;
    }
  }
  const double rate_before = static_cast<double>(before) / params.start;
  const double rate_inside = static_cast<double>(inside) / params.duration;
  ASSERT_GT(before, 0u);
  ASSERT_GT(inside, 0u);
  EXPECT_NEAR(rate_inside / rate_before, peak, 0.15 * peak);
}

TEST(FlashCrowd, WarpPreservesOrderAndShapes) {
  const auto base = workload::generate_jobs("sdsc:jobs=400,seed=3");
  const auto warped = workload::generate_jobs(
      "flash:jobs=400,seed=3,peak=8,start=6000,duration=6000");
  ASSERT_EQ(base.size(), warped.size());
  EXPECT_EQ(base.front().submit_time, warped.front().submit_time);
  for (std::size_t i = 0; i < base.size(); ++i) {
    // Only submit times move; runtimes/sizes/estimates are untouched.
    EXPECT_EQ(base[i].actual_runtime, warped[i].actual_runtime);
    EXPECT_EQ(base[i].estimated_runtime, warped[i].estimated_runtime);
    EXPECT_EQ(base[i].procs, warped[i].procs);
    if (i > 0) {
      EXPECT_GE(warped[i].submit_time, warped[i - 1].submit_time);
    }
  }
}

TEST(FlashCrowd, PeakOneWithoutDiurnalIsIdentity) {
  expect_identical(
      workload::generate_jobs("flash:base=lublin,jobs=200,seed=5,peak=1"),
      workload::generate_jobs("lublin:jobs=200,seed=5"));
}

TEST(FlashCrowd, ForwardsDottedBaseKeys) {
  expect_identical(
      workload::generate_jobs(
          "flash:base=zipf,base.theta=0.5,base.tenants=500,jobs=150,seed=8,"
          "peak=1"),
      workload::generate_jobs("zipf:theta=0.5,tenants=500,jobs=150,seed=8"));
}

// ------------------------------------------------------------------- daly

TEST(Daly, OptimalIntervalMatchesClosedForm) {
  const double delta = 120.0, m = 86400.0;
  const double x = delta / (2.0 * m);
  const double expected =
      std::sqrt(2.0 * delta * m) * (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
      delta;
  EXPECT_DOUBLE_EQ(workload::daly_optimal_interval(delta, m), expected);
  // Degenerate regime: dumps cost more than the work they protect.
  EXPECT_DOUBLE_EQ(workload::daly_optimal_interval(10000.0, 3600.0), 3600.0);
  EXPECT_THROW((void)workload::daly_optimal_interval(0.0, 3600.0),
               std::invalid_argument);
}

TEST(Daly, RuntimeCarriesCheckpointOverhead) {
  workload::DalyCheckpointConfig config;
  config.job_count = 300;
  config.seed = 12;
  config.checkpoint_interval = 1800.0;
  config.checkpoint_write_seconds = 120.0;
  const auto jobs = workload::generate_daly_checkpoint(config);
  ASSERT_EQ(jobs.size(), 300u);
  for (const Job& job : jobs) {
    // runtime = solve + dumps*delta with one dump per completed interval,
    // so runtime mod (interval + delta-per-interval structure) implies
    // runtime >= solve >= min_solve and the overhead is a whole multiple
    // of delta.
    EXPECT_GE(job.actual_runtime, config.min_solve);
    EXPECT_GE(job.estimated_runtime, job.actual_runtime);
  }

  // More frequent dumps (same seed => same solve draws) => more overhead.
  workload::DalyCheckpointConfig frequent = config;
  frequent.checkpoint_interval = 600.0;
  const auto dumped_more = workload::generate_daly_checkpoint(frequent);
  double total = 0.0, total_frequent = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    total += jobs[i].actual_runtime;
    total_frequent += dumped_more[i].actual_runtime;
  }
  EXPECT_GT(total_frequent, total);
}

TEST(Daly, IntervalZeroResolvesToOptimum) {
  workload::DalyCheckpointConfig config;
  EXPECT_DOUBLE_EQ(workload::resolved_checkpoint_interval(config),
                   workload::daly_optimal_interval(
                       config.checkpoint_write_seconds, config.mtti_seconds));
  config.checkpoint_interval = 777.0;
  EXPECT_DOUBLE_EQ(workload::resolved_checkpoint_interval(config), 777.0);
}

// ------------------------------------------------- experiment integration

TEST(MixShift, SpliceKeepsPhaseABeforeTAndShiftsPhaseB) {
  const double t = 40000.0;
  const std::vector<Job> phase_a =
      workload::generate_jobs("sdsc:jobs=60,seed=5");
  const std::vector<Job> phase_b =
      workload::generate_jobs("zipf:jobs=60,seed=5,tenants=16");
  const std::vector<Job> spliced = workload::generate_jobs(
      "mixshift:a=sdsc,b=zipf,b.tenants=16,t=40000,jobs=60,seed=5");

  ASSERT_EQ(spliced.size(), 60u) << "jobs caps the spliced total";
  std::size_t cut = 0;
  while (cut < phase_a.size() && phase_a[cut].submit_time < t) ++cut;
  ASSERT_GT(cut, 0u) << "the switch time must land inside phase a";
  ASSERT_LT(cut, spliced.size()) << "and leave room for phase b";
  for (std::size_t i = 0; i < spliced.size(); ++i) {
    EXPECT_EQ(spliced[i].id, static_cast<workload::JobId>(i + 1))
        << "ids renumber 1..N across the splice";
    if (i > 0) {
      EXPECT_GE(spliced[i].submit_time, spliced[i - 1].submit_time)
          << "submission order survives the splice";
    }
    if (i < cut) {
      EXPECT_EQ(spliced[i].submit_time, phase_a[i].submit_time);
      EXPECT_EQ(spliced[i].actual_runtime, phase_a[i].actual_runtime);
      EXPECT_EQ(spliced[i].tenant, phase_a[i].tenant);
    } else {
      const Job& original = phase_b[i - cut];
      EXPECT_GE(spliced[i].submit_time, t);
      EXPECT_EQ(spliced[i].submit_time, original.submit_time + t);
      EXPECT_EQ(spliced[i].actual_runtime, original.actual_runtime);
      EXPECT_EQ(spliced[i].tenant, original.tenant)
          << "phase b keeps its tenant attribution";
    }
  }
}

TEST(MixShift, DeterministicAndSeedForwardsToBothPhases) {
  const std::string spec =
      "mixshift:a=sdsc,b=lublin,t=30000,jobs=80,seed=21";
  expect_identical(workload::generate_jobs(spec),
                   workload::generate_jobs(spec));
  // An explicit per-phase seed changes only that phase's stream.
  const std::vector<Job> reseeded = workload::generate_jobs(
      "mixshift:a=sdsc,b=lublin,b.seed=99,t=30000,jobs=80,seed=21");
  const std::vector<Job> base = workload::generate_jobs(spec);
  ASSERT_EQ(base.size(), reseeded.size());
  bool diverged = false;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i].submit_time < 30000.0) {
      EXPECT_EQ(base[i].actual_runtime, reseeded[i].actual_runtime)
          << "phase a is untouched by b.seed";
    } else if (base[i].actual_runtime != reseeded[i].actual_runtime) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "b.seed must actually reseed phase b";
}

TEST(MixShift, ComposesWithFlashOnEitherSide) {
  // A flash-crowd phase a inside the splice...
  const std::vector<Job> inner = workload::generate_jobs(
      "mixshift:a=flash,a.peak=4,a.start=3600,a.duration=3600,b=zipf,"
      "t=30000,jobs=50,seed=3");
  EXPECT_EQ(inner.size(), 50u);
  // ...and a mixshift as the base of an outer flash warp.
  const std::vector<Job> outer = workload::generate_jobs(
      "flash:base=mixshift,base.a=sdsc,base.b=zipf,base.t=30000,peak=4,"
      "jobs=50,seed=3");
  EXPECT_EQ(outer.size(), 50u);
}

TEST(MixShift, RejectsUnknownKeysAndBadSwitchTimes) {
  EXPECT_THROW((void)workload::generate_jobs("mixshift:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::generate_jobs("mixshift:c.jobs=5"),
               std::invalid_argument)
      << "only a.* and b.* forward";
  EXPECT_THROW((void)workload::generate_jobs("mixshift:t=0,jobs=10"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::generate_jobs("mixshift:t=-5,jobs=10"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::generate_jobs("mixshift:t=nope,jobs=10"),
               std::invalid_argument);
}

TEST(ExperimentWiring, RunKeyUnchangedWithoutWorkloadSpec) {
  exp::ExperimentConfig config;
  const std::string key =
      config.run_key(policy::PolicyKind::Libra, config.default_settings());
  EXPECT_EQ(key.find("wload="), std::string::npos);
}

TEST(ExperimentWiring, RunKeyIncludesWorkloadSpecs) {
  exp::ExperimentConfig config;
  config.workload = "zipf:theta=0.9";
  exp::RunSettings settings = config.default_settings();
  const std::string base_key =
      config.run_key(policy::PolicyKind::Libra, settings);
  EXPECT_NE(base_key.find(";wload=zipf:theta=0.9"), std::string::npos);

  settings.workload = "daly:interval=900";
  const std::string per_run_key =
      config.run_key(policy::PolicyKind::Libra, settings);
  EXPECT_NE(per_run_key.find(";wload=daly:interval=900"), std::string::npos);
  EXPECT_NE(per_run_key, base_key);
}

TEST(ExperimentWiring, MakeBuilderInjectsJobsAndSeed) {
  exp::ExperimentConfig config;
  config.trace.job_count = 123;
  config.trace.seed = 55;
  config.workload = "zipf:theta=0.5";
  const workload::WorkloadBuilder builder = config.make_builder();
  EXPECT_EQ(builder.base_trace().size(), 123u);
  expect_identical(
      builder.base_trace(),
      workload::generate_jobs("zipf:theta=0.5,jobs=123,seed=55"));
}

TEST(ExperimentWiring, ExtensionScenariosResolveByName) {
  EXPECT_EQ(exp::scenario_by_name("zipf").values.size(),
            exp::kValuesPerScenario);
  EXPECT_EQ(exp::scenario_by_name("flash").values.size(),
            exp::kValuesPerScenario);
  EXPECT_EQ(exp::scenario_by_name("daly").values.size(),
            exp::kValuesPerScenario);
  EXPECT_THROW((void)exp::scenario_by_name("bogus"), std::invalid_argument);

  // The extensions must not join the Table VI set.
  for (const exp::Scenario& scenario : exp::all_scenarios()) {
    EXPECT_NE(scenario.name, "zipf");
    EXPECT_NE(scenario.name, "flash");
    EXPECT_NE(scenario.name, "daly");
  }
}

TEST(ExperimentWiring, ZipfScenarioSetsWorkloadSpec) {
  const exp::Scenario& scenario = exp::scenario_by_name("zipf");
  exp::RunSettings defaults;
  const exp::RunSettings settings = scenario.settings_for(defaults, 5);
  EXPECT_EQ(settings.workload, "zipf:theta=0.99");
}

TEST(ExperimentWiring, DalyScenarioEnablesRecoveryPath) {
  const exp::Scenario& scenario = exp::scenario_by_name("daly");
  exp::RunSettings defaults;
  const exp::RunSettings settings = scenario.settings_for(defaults, 0);
  EXPECT_EQ(settings.workload, "daly:interval=900");
  EXPECT_TRUE(settings.failure.enabled());
  EXPECT_GT(settings.recovery.retry_limit, 0u);
  EXPECT_DOUBLE_EQ(settings.recovery.checkpoint_interval, 900.0);
}

TEST(ExperimentWiring, PerRunWorkloadChangesSimulatedJobs) {
  exp::ExperimentConfig config;
  config.trace.job_count = 80;
  const workload::WorkloadBuilder builder = config.make_builder();

  exp::RunSettings defaults = config.default_settings();
  const auto base_report = exp::simulate_run_report(
      config, builder, policy::PolicyKind::Libra, defaults);

  exp::RunSettings zipf = defaults;
  zipf.workload = "zipf:theta=0.9";
  const auto zipf_report = exp::simulate_run_report(
      config, builder, policy::PolicyKind::Libra, zipf);
  EXPECT_NE(base_report.digest, zipf_report.digest);

  // And deterministically: the same spec twice gives the same digest.
  const auto zipf_again = exp::simulate_run_report(
      config, builder, policy::PolicyKind::Libra, zipf);
  EXPECT_EQ(zipf_report.digest, zipf_again.digest);
}

}  // namespace
