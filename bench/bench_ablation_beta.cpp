// Ablation: Libra+$'s beta (weight of the dynamic utilisation price).
// The paper fixes beta = 0.3; this sweep shows the acceptance/revenue
// trade-off the knob controls: beta = 0 degenerates to flat alpha-pricing,
// large beta prices out most jobs.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::SyntheticSdscConfig trace;
  trace.job_count = std::min<std::uint32_t>(env.jobs, 2000);
  const workload::WorkloadBuilder builder(trace);

  for (double inaccuracy : {0.0, 100.0}) {
    const auto jobs = builder.build(workload::QosConfig{}, 0.25, inaccuracy);
    std::cout << "\nLibra+$ beta sweep (commodity model, inaccuracy "
              << inaccuracy << "%, " << trace.job_count << " jobs):\n";
    std::cout << std::left << std::setw(8) << "beta" << std::right
              << std::setw(8) << "SLA%" << std::setw(10) << "Rel%"
              << std::setw(10) << "Prof%\n";
    for (double beta : {0.0, 0.1, 0.3, 0.6, 1.0, 2.0}) {
      economy::PricingParams pricing;
      pricing.libra_dollar_beta = beta;
      const auto report = service::simulate(
          jobs, policy::PolicyKind::LibraDollar,
          economy::EconomicModel::CommodityMarket, {}, pricing);
      std::cout << std::left << std::setw(8) << beta << std::right
                << std::fixed << std::setprecision(2) << std::setw(8)
                << report.objectives.sla << std::setw(10)
                << report.objectives.reliability << std::setw(10)
                << report.objectives.profitability << '\n';
    }
  }
  return 0;
}
