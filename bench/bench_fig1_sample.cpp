// Regenerates Fig. 1 and Tables I-IV: the sample risk analysis plot, the
// per-policy aggregates, and the two ranking procedures.
#include <iostream>

#include "bench_common.hpp"
#include "core/objectives.hpp"
#include "core/sample_plot.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  std::cout << "Table I: objectives of a commercial computing service\n";
  for (core::Objective objective : core::kAllObjectives) {
    std::cout << "  " << core::to_string(objective) << "  ("
              << (objective == core::Objective::Profitability
                      ? "provider-centric"
                      : "user-centric")
              << ", "
              << (core::higher_is_better(objective) ? "higher is better"
                                                    : "lower is better")
              << ")\n";
  }

  const core::RiskPlot plot = core::sample_risk_plot();
  bench::emit_plot(env, plot, "fig1_sample");

  std::cout << "\nTable II: performance and volatility of policies\n";
  std::vector<core::PolicyRankStats> stats;
  for (const auto& series : plot.series) {
    stats.push_back(core::compute_rank_stats(series));
  }
  core::write_stats_table(std::cout, stats);

  std::cout << "\nTable III (ranking by best performance):\n";
  core::write_ranking_table(
      std::cout, core::rank_policies(plot.series, core::RankBy::BestPerformance),
      core::RankBy::BestPerformance);

  std::cout << "\nTable IV (ranking by best volatility):\n";
  core::write_ranking_table(
      std::cout, core::rank_policies(plot.series, core::RankBy::BestVolatility),
      core::RankBy::BestVolatility);
  return 0;
}
