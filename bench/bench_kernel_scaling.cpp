// Kernel scaling bench: events/sec and ns/decision vs cluster size.
//
// Runs the cluster-scaled synthetic SDSC workload (workload/scaled.hpp) at
// node counts 128 / 1k / 10k / 100k under one space-shared policy
// (FCFS-BF) and one time-shared policy (Libra), reading the kernel gauges
// (`sim.events_per_sec`, `cluster.decision_ns`) introduced with the
// indexed executors. At n=1024 it additionally measures a pre-PR-
// equivalent baseline in-process — Libra with the original full-scan
// best-fit selection on a heap-pinned event queue — and asserts the two
// implementations produce bit-identical run digests before reporting the
// speedup. A micro section re-measures raw EventQueue push/pop throughput
// next to the pre-PR numbers recorded in bench_micro_kernel's history.
//
// Writes <out>/BENCH_kernel_scaling.json. Environment knobs, on top of
// the usual REPRO_OUT / REPRO_JOBS:
//   REPRO_NODES  comma-separated node counts (default 128,1024,10240,102400);
//                CI's smoke step runs just 10240 to stay inside its wall
//                budget (the n=1024 baseline+digest check only runs when
//                1024 is in the list).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "policy/libra.hpp"
#include "service/computing_service.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/scaled.hpp"
#include "workload/workload.hpp"

namespace {

using namespace utilrisk;
using Clock = std::chrono::steady_clock;

// bench_micro_kernel's BM_EventQueuePushPop on the pre-PR heap-only
// queue, measured on the reference machine immediately before this PR
// (items/s, push-all-then-pop-all).
constexpr double kPrePrMicroItemsPerSec1024 = 9.17e6;
constexpr double kPrePrMicroItemsPerSec16384 = 5.07e6;

// Full-kernel pre-PR baseline at n=1024: the EXACT scenario below
// (scaled_sdsc_config(1024, 5000), arrival factor 0.25, BidBased), run
// against a Release build of commit df7e833 (the last pre-PR commit),
// wall-clocked around simulate() with no metrics registry, median of
// three runs alternated with the current build on the same machine. The
// pre-PR binary produced bit-identical run digests (FCFS-BF
// bf08ddb117d1715f, Libra 3faa4b3aa174b0b5), so the comparison measures
// data structures only. The current build reproduces its side of the
// comparison live (see the no-registry passes below) and verifies the
// digests still match.
constexpr const char* kPrePrCommit = "df7e833";
constexpr double kPrePrFcfsEventsPerSec1024 = 72946.0;
constexpr double kPrePrLibraEventsPerSec1024 = 478594.0;
constexpr const char* kFcfsDigest1024 = "bf08ddb117d1715f";
constexpr const char* kLibraDigest1024 = "3faa4b3aa174b0b5";

/// Libra with the pre-PR node selection: scan every node, collect the
/// eligible ones, sort by (committed share desc, id asc), truncate. The
/// share index walks nodes in exactly this order, so the simulation —
/// and its digest — must match the indexed build bit for bit; main()
/// asserts that before trusting the timing.
class NaiveLibraPolicy : public policy::LibraPolicy {
 public:
  using LibraPolicy::LibraPolicy;
  [[nodiscard]] std::string_view name() const override { return "Libra"; }

  void on_submit(const workload::Job& job) override {
    if (job.procs > cluster().node_count()) {
      host().notify_rejected(job);
      return;
    }
    const std::optional<double> share = required_share(job);
    if (!share) {
      host().notify_rejected(job);
      return;
    }
    const std::vector<cluster::NodeId> nodes = naive_select(job, *share);
    if (nodes.empty()) {
      host().notify_rejected(job);
      return;
    }
    economy::Money quoted = job.budget;
    if (model() == economy::EconomicModel::CommodityMarket) {
      quoted = quote(job, nodes, *share);
      if (quoted > job.budget) {
        host().notify_rejected(job);
        return;
      }
    }
    host().notify_accepted(job, quoted);
    host().notify_started(job);
    cluster().start(job, nodes, *share,
                    [this, job](workload::JobId, sim::SimTime finish) {
                      host().notify_finished(job, finish);
                    });
  }

 private:
  [[nodiscard]] std::vector<cluster::NodeId> naive_select(
      const workload::Job& job, double share) const {
    struct Candidate {
      double committed;
      cluster::NodeId id;
    };
    std::vector<Candidate> eligible;
    for (cluster::NodeId node = 0; node < cluster().node_count(); ++node) {
      if (node_eligible(node, job, share)) {
        eligible.push_back({cluster().committed_share(node), node});
      }
    }
    if (eligible.size() < job.procs) return {};
    std::sort(eligible.begin(), eligible.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.committed != b.committed) {
                  return a.committed > b.committed;
                }
                return a.id < b.id;
              });
    std::vector<cluster::NodeId> chosen;
    chosen.reserve(job.procs);
    for (std::uint32_t i = 0; i < job.procs; ++i) {
      chosen.push_back(eligible[i].id);
    }
    return chosen;
  }
};

struct RunResult {
  std::string policy;
  std::uint32_t nodes = 0;
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;  ///< sim.events_per_sec gauge (run() wall)
  double decision_ns = 0.0;     ///< cluster.decision_ns gauge (mean)
  double utilization = 0.0;
  std::uint64_t fulfilled = 0;
  std::string digest;
};

double find_gauge(const obs::MetricSnapshot& snap, const std::string& name) {
  for (const auto& [key, value] : snap.gauges) {
    if (key == name) return value;
  }
  return 0.0;
}

RunResult run_once(const std::vector<workload::Job>& jobs,
                   const service::PolicyFactory& factory, std::uint32_t nodes,
                   bool pin_heap, const std::string& label,
                   bool with_registry = true) {
  obs::MetricsRegistry registry;
  policy::PolicyContext context;
  context.machine.node_count = nodes;
  context.model = economy::EconomicModel::BidBased;
  context.metrics = with_registry ? &registry : nullptr;
  service::PolicyFactory wrapped = factory;
  if (pin_heap) {
    wrapped = [&factory](const policy::PolicyContext& ctx,
                         policy::PolicyHost& host) {
      ctx.simulator->pin_heap_event_queue();
      return factory(ctx, host);
    };
  }
  const auto start = Clock::now();
  const auto report = service::simulate(jobs, wrapped, context);
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  const auto snap = registry.snapshot();
  RunResult result;
  result.policy = label;
  result.nodes = nodes;
  result.jobs = jobs.size();
  result.events = report.events_dispatched;
  result.wall_s = wall;
  // With a registry the throughput comes from the kernel's own gauge
  // (events / run() wall); without one it is events / simulate() wall —
  // the same method the pre-PR baseline constants were measured with.
  result.events_per_sec = with_registry
                              ? find_gauge(snap, "sim.events_per_sec")
                              : static_cast<double>(report.events_dispatched) /
                                    (wall > 0.0 ? wall : 1e-9);
  result.decision_ns = find_gauge(snap, "cluster.decision_ns");
  result.utilization = report.utilization;
  result.fulfilled = report.inputs.fulfilled;
  result.digest = report.digest;
  return result;
}

void print_result(const RunResult& r) {
  std::printf(
      "n=%6u  %-18s  events %8llu  wall %7.3f s  %10.0f ev/s  "
      "%8.0f ns/decision  util %.3f\n",
      r.nodes, r.policy.c_str(), static_cast<unsigned long long>(r.events),
      r.wall_s, r.events_per_sec, r.decision_ns, r.utilization);
}

std::vector<std::uint32_t> node_counts_from_env() {
  std::vector<std::uint32_t> nodes;
  if (const char* raw = std::getenv("REPRO_NODES"); raw != nullptr) {
    std::string spec(raw);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok =
          spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                      : comma - pos);
      if (!tok.empty()) {
        nodes.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (nodes.empty()) nodes = {128, 1024, 10240, 102400};
  return nodes;
}

struct MicroResult {
  std::size_t n = 0;
  double heap_items_per_sec = 0.0;
  double calendar_items_per_sec = 0.0;
};

/// Raw push-all-then-pop-all EventQueue throughput, same shape as
/// bench_micro_kernel's BM_EventQueuePushPop.
MicroResult micro_queue(std::size_t n, int iters) {
  sim::Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  MicroResult result;
  result.n = n;
  for (int mode = 0; mode < 2; ++mode) {
    double seconds = 0.0;
    for (int it = -2; it < iters; ++it) {  // two warmup rounds
      sim::EventQueue queue;
      if (mode == 0) queue.force_heap_mode();
      const auto t0 = Clock::now();
      for (double t : times) queue.push(t, [] {});
      while (auto rec = queue.pop()) {
        if (rec->time < 0.0) return result;  // defeat dead-code elimination
      }
      if (it >= 0) {
        seconds += std::chrono::duration<double>(Clock::now() - t0).count();
      }
    }
    const double items_per_sec =
        static_cast<double>(n) * iters / (seconds > 0.0 ? seconds : 1e-9);
    (mode == 0 ? result.heap_items_per_sec : result.calendar_items_per_sec) =
        items_per_sec;
  }
  return result;
}

}  // namespace

int main() {
  const auto env = bench::read_env();
  const auto nodes = node_counts_from_env();

  std::vector<RunResult> scaling;
  RunResult baseline;
  RunResult fcfs_now_1024;
  RunResult libra_now_1024;
  double speedup_fcfs_1024 = 0.0;
  double speedup_libra_1024 = 0.0;
  double speedup_vs_naive_1024 = 0.0;

  for (const std::uint32_t n : nodes) {
    // Constant per-node offered load; larger clusters need more jobs to
    // reach a steady state that actually exercises the pending-event
    // population (in-flight jobs scale linearly with n).
    const std::uint32_t jobs_n = std::max<std::uint32_t>(env.jobs, n / 4);
    const workload::WorkloadBuilder builder(
        workload::scaled_sdsc_config(n, jobs_n));
    // 0.25 arrival delay factor = the Table VI sweep's heavy-load point:
    // admission runs saturated, which is the regime where decision cost
    // matters (an idle cluster admits everything in O(procs) regardless
    // of the selection structure).
    const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);

    const auto fcfs = run_once(
        jobs, service::factory_for(policy::PolicyKind::FcfsBf), n, false,
        "FCFS-BF");
    print_result(fcfs);
    scaling.push_back(fcfs);

    const auto libra = run_once(
        jobs, service::factory_for(policy::PolicyKind::Libra), n, false,
        "Libra");
    print_result(libra);
    scaling.push_back(libra);

    if (n == 1024) {
      // The pre-PR comparison point. Three extra runs:
      //  1-2. both policies without a metrics registry, matching how the
      //       pre-PR baseline constants were measured (events / simulate
      //       wall), with the digests pinned to the values the pre-PR
      //       binary produced;
      //  3.   Libra with the pre-PR node selection (full scan + sort) on
      //       a heap-pinned event queue, in-process — isolates the
      //       selection + queue share of the win and proves placement
      //       equivalence at runtime.
      fcfs_now_1024 = run_once(
          jobs, service::factory_for(policy::PolicyKind::FcfsBf), n, false,
          "FCFS-BF (no registry)", false);
      libra_now_1024 = run_once(
          jobs, service::factory_for(policy::PolicyKind::Libra), n, false,
          "Libra (no registry)", false);
      print_result(fcfs_now_1024);
      print_result(libra_now_1024);
      if (fcfs_now_1024.digest != kFcfsDigest1024 ||
          libra_now_1024.digest != kLibraDigest1024) {
        std::fprintf(stderr,
                     "FATAL: n=1024 digests (%s, %s) do not match the "
                     "pre-PR binary's (%s, %s); baseline comparison void\n",
                     fcfs_now_1024.digest.c_str(),
                     libra_now_1024.digest.c_str(), kFcfsDigest1024,
                     kLibraDigest1024);
        return 1;
      }
      speedup_fcfs_1024 =
          fcfs_now_1024.events_per_sec / kPrePrFcfsEventsPerSec1024;
      speedup_libra_1024 =
          libra_now_1024.events_per_sec / kPrePrLibraEventsPerSec1024;
      std::printf("n=1024 vs pre-PR %s:  FCFS-BF %.2fx  Libra %.2fx\n",
                  kPrePrCommit, speedup_fcfs_1024, speedup_libra_1024);

      const service::PolicyFactory naive =
          [](const policy::PolicyContext& ctx, policy::PolicyHost& host) {
            return std::make_unique<NaiveLibraPolicy>(ctx, host);
          };
      baseline = run_once(jobs, naive, n, true, "Libra(naive+heap)", false);
      print_result(baseline);
      if (baseline.digest != libra.digest) {
        std::fprintf(stderr,
                     "FATAL: naive baseline digest %s != indexed digest %s\n",
                     baseline.digest.c_str(), libra.digest.c_str());
        return 1;
      }
      if (baseline.events_per_sec > 0.0) {
        speedup_vs_naive_1024 =
            libra_now_1024.events_per_sec / baseline.events_per_sec;
        std::printf("n=1024 indexed+calendar vs naive+heap: %.2fx\n",
                    speedup_vs_naive_1024);
      }
    }
  }

  const MicroResult micro_1k = micro_queue(1024, 400);
  const MicroResult micro_16k = micro_queue(16384, 40);
  std::printf("micro n=1024  heap %.2f M/s  calendar %.2f M/s\n",
              micro_1k.heap_items_per_sec / 1e6,
              micro_1k.calendar_items_per_sec / 1e6);
  std::printf("micro n=16384 heap %.2f M/s  calendar %.2f M/s\n",
              micro_16k.heap_items_per_sec / 1e6,
              micro_16k.calendar_items_per_sec / 1e6);

  const std::string path = env.out_dir + "/BENCH_kernel_scaling.json";
  std::ofstream json(path);
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"kernel_scaling\",\n"
       << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const RunResult& r = scaling[i];
    json << "    {\"nodes\": " << r.nodes << ", \"policy\": \"" << r.policy
         << "\", \"jobs\": " << r.jobs << ", \"events\": " << r.events
         << ", \"wall_s\": " << r.wall_s
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"decision_ns\": " << r.decision_ns
         << ", \"utilization\": " << r.utilization
         << ", \"fulfilled\": " << r.fulfilled << ", \"digest\": \""
         << r.digest << "\"}" << (i + 1 < scaling.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n";
  if (!baseline.policy.empty()) {
    json << "  \"pre_pr_n1024\": {\n"
         << "    \"commit\": \"" << kPrePrCommit << "\",\n"
         << "    \"method\": \"same scenario and machine, pre-PR Release "
            "build, wall clock around simulate(), no metrics registry, "
            "median of 3 alternated runs; run digests bit-identical to "
            "the current build\",\n"
         << "    \"fcfs_bf_events_per_sec\": " << kPrePrFcfsEventsPerSec1024
         << ",\n"
         << "    \"libra_events_per_sec\": " << kPrePrLibraEventsPerSec1024
         << "\n  },\n"
         << "  \"current_n1024_same_method\": {\"fcfs_bf_events_per_sec\": "
         << fcfs_now_1024.events_per_sec << ", \"libra_events_per_sec\": "
         << libra_now_1024.events_per_sec << "},\n"
         << "  \"speedup_vs_pre_pr_n1024\": {\"fcfs_bf\": "
         << speedup_fcfs_1024 << ", \"libra\": " << speedup_libra_1024
         << "},\n"
         << "  \"baseline_naive_heap_n1024\": {\"policy\": \""
         << baseline.policy
         << "\", \"events_per_sec\": " << baseline.events_per_sec
         << ", \"wall_s\": " << baseline.wall_s << ", \"digest\": \""
         << baseline.digest << "\", \"digest_matches_indexed\": true},\n"
         << "  \"speedup_vs_naive_heap_n1024\": " << speedup_vs_naive_1024
         << ",\n";
  }
  json << "  \"micro_event_queue\": {\n"
       << "    \"pre_pr_heap_items_per_sec_n1024\": "
       << kPrePrMicroItemsPerSec1024 << ",\n"
       << "    \"pre_pr_heap_items_per_sec_n16384\": "
       << kPrePrMicroItemsPerSec16384 << ",\n"
       << "    \"heap_items_per_sec_n1024\": " << micro_1k.heap_items_per_sec
       << ",\n"
       << "    \"calendar_items_per_sec_n1024\": "
       << micro_1k.calendar_items_per_sec << ",\n"
       << "    \"heap_items_per_sec_n16384\": "
       << micro_16k.heap_items_per_sec << ",\n"
       << "    \"calendar_items_per_sec_n16384\": "
       << micro_16k.calendar_items_per_sec << "\n"
       << "  }\n"
       << "}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
