// Ablation: FirstReward's slack threshold. The paper notes "setting the
// correct slack threshold is not trivial as the ideal slack threshold
// changes depending on the workload" and settles on 25 after testing.
// This bench sweeps the threshold on the default Set B bid workload and
// on a lighter workload to show the optimum moving.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::SyntheticSdscConfig trace;
  trace.job_count = std::min<std::uint32_t>(env.jobs, 2000);
  const workload::WorkloadBuilder builder(trace);

  const double thresholds[] = {0.0, 25.0, 100.0, 500.0, 2000.0, 10000.0};
  for (double delay_factor : {0.25, 1.0}) {
    const auto jobs = builder.build(workload::QosConfig{}, delay_factor,
                                    /*inaccuracy=*/100.0);
    std::cout << "\nFirstReward slack-threshold sweep (arrival delay factor "
              << delay_factor << ", " << trace.job_count << " jobs):\n";
    std::cout << std::left << std::setw(12) << "threshold" << std::right
              << std::setw(8) << "SLA%" << std::setw(10) << "Rel%"
              << std::setw(10) << "Prof%" << std::setw(12) << "Wait(s)\n";
    for (double threshold : thresholds) {
      policy::FirstRewardParams params;
      params.slack_threshold = threshold;
      const auto report =
          service::simulate(jobs, policy::PolicyKind::FirstReward,
                            economy::EconomicModel::BidBased, {}, {}, params);
      std::cout << std::left << std::setw(12) << threshold << std::right
                << std::fixed << std::setprecision(2) << std::setw(8)
                << report.objectives.sla << std::setw(10)
                << report.objectives.reliability << std::setw(10)
                << report.objectives.profitability << std::setw(12)
                << report.objectives.wait << '\n';
    }
  }
  return 0;
}
