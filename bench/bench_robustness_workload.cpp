// Robustness check: do the paper's headline conclusions survive a change
// of workload model? Runs the bid-model policy set on (a) the
// SDSC-SP2-matched generator and (b) the Lublin-Feitelson-style generator
// at matched load, Set B estimates, and compares the conclusions:
//   - LibraRiskD >= Libra on reliability and profitability,
//   - FirstReward accepts the fewest jobs,
//   - Libra family has zero wait.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/synthetic_lublin.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();
  const std::uint32_t jobs_n = std::min<std::uint32_t>(env.jobs, 3000);

  struct NamedWorkload {
    const char* name;
    std::vector<workload::Job> jobs;
  };
  workload::SyntheticSdscConfig sdsc;
  sdsc.job_count = jobs_n;
  workload::SyntheticLublinConfig lublin;
  lublin.job_count = jobs_n;

  std::vector<NamedWorkload> workloads;
  workloads.push_back(
      {"SDSC-SP2-matched",
       workload::WorkloadBuilder(sdsc).build(workload::QosConfig{}, 0.25,
                                             100.0)});
  workloads.push_back(
      {"Lublin-Feitelson",
       workload::WorkloadBuilder(generate_synthetic_lublin(lublin))
           .build(workload::QosConfig{}, 0.25, 100.0)});

  for (const NamedWorkload& named : workloads) {
    std::cout << "\n== " << named.name << " workload (" << jobs_n
              << " jobs, bid model, Set B estimates) ==\n";
    std::cout << std::left << std::setw(14) << "policy" << std::right
              << std::setw(8) << "SLA%" << std::setw(10) << "Rel%"
              << std::setw(10) << "Prof%" << std::setw(12) << "Wait(s)"
              << std::setw(8) << "Util\n";
    double libra_rel = 0.0, libra_prof = 0.0;
    double riskd_rel = 0.0, riskd_prof = 0.0;
    for (policy::PolicyKind kind :
         policy::policies_for_model(economy::EconomicModel::BidBased)) {
      const auto report = service::simulate(named.jobs, kind,
                                            economy::EconomicModel::BidBased);
      std::cout << std::left << std::setw(14) << policy::to_string(kind)
                << std::right << std::fixed << std::setprecision(2)
                << std::setw(8) << report.objectives.sla << std::setw(10)
                << report.objectives.reliability << std::setw(10)
                << report.objectives.profitability << std::setw(12)
                << report.objectives.wait << std::setw(8)
                << report.utilization << '\n';
      if (kind == policy::PolicyKind::Libra) {
        libra_rel = report.objectives.reliability;
        libra_prof = report.objectives.profitability;
      }
      if (kind == policy::PolicyKind::LibraRiskD) {
        riskd_rel = report.objectives.reliability;
        riskd_prof = report.objectives.profitability;
      }
    }
    std::cout << "headline check: LibraRiskD vs Libra — reliability "
              << (riskd_rel >= libra_rel ? "HOLDS" : "FAILS")
              << ", profitability "
              << (riskd_prof >= libra_prof ? "HOLDS" : "FAILS") << '\n';
  }
  return 0;
}
