// Micro benchmarks of the simulator hot paths: event queue churn, the
// time-shared proportional-share integrator, and a full small simulation
// per policy.
#include <benchmark/benchmark.h>

#include <array>

#include "cluster/reservation.hpp"
#include "cluster/time_shared.hpp"
#include "core/integrated_risk.hpp"
#include "core/normalization.hpp"
#include "service/computing_service.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace {

using namespace utilrisk;

// Slab-pool event records (unique ownership + generation handles)
// replaced the per-event shared_ptr allocation; same machine, same
// build: 5.11 -> 7.85 M items/s at n=1024 and 3.42 -> 4.24 M items/s
// at n=16384.
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (double t : times) queue.push(t, [] {});
    while (auto rec = queue.pop()) benchmark::DoNotOptimize(rec->time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 10)->Arg(1 << 14);

void BM_TimeSharedChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simk;
    cluster::TimeSharedCluster cluster(simk, {.node_count = 16});
    sim::Rng rng(3);
    for (std::uint32_t i = 1; i <= 200; ++i) {
      workload::Job job;
      job.id = i;
      job.procs = 1 + static_cast<std::uint32_t>(rng.uniform_int(0, 3));
      job.actual_runtime = rng.uniform(100.0, 1000.0);
      job.estimated_runtime = job.actual_runtime;
      job.deadline_duration = job.actual_runtime * 8.0;
      job.submit_time = rng.uniform(0.0, 5000.0);
      simk.schedule_at(job.submit_time, [&cluster, job] {
        std::vector<cluster::NodeId> nodes;
        const double share =
            job.estimated_runtime / job.deadline_duration;
        for (cluster::NodeId n = 0;
             n < cluster.node_count() && nodes.size() < job.procs; ++n) {
          if (cluster.committed_share(n) + share <= 1.0) nodes.push_back(n);
        }
        if (nodes.size() == job.procs) {
          cluster.start(job, nodes, share, {});
        }
      });
    }
    simk.run();
    benchmark::DoNotOptimize(simk.events_dispatched());
  }
}
BENCHMARK(BM_TimeSharedChurn);

void BM_FullSimulation(benchmark::State& state) {
  const auto kind = static_cast<policy::PolicyKind>(state.range(0));
  workload::SyntheticSdscConfig trace;
  trace.job_count = 500;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);
  for (auto _ : state) {
    const auto report = service::simulate(
        jobs, kind, economy::EconomicModel::BidBased);
    benchmark::DoNotOptimize(report.inputs.fulfilled);
  }
  state.SetLabel(std::string(policy::to_string(kind)));
}
BENCHMARK(BM_FullSimulation)
    ->Arg(static_cast<int>(policy::PolicyKind::FcfsBf))
    ->Arg(static_cast<int>(policy::PolicyKind::EdfBf))
    ->Arg(static_cast<int>(policy::PolicyKind::Libra))
    ->Arg(static_cast<int>(policy::PolicyKind::LibraRiskD))
    ->Arg(static_cast<int>(policy::PolicyKind::FirstReward));

void BM_ReservationTimeline(benchmark::State& state) {
  const auto bookings = static_cast<int>(state.range(0));
  sim::Rng rng(11);
  std::vector<std::array<double, 3>> plan;
  for (int i = 0; i < bookings; ++i) {
    const double start = rng.uniform(0.0, 1e6);
    plan.push_back({start, start + rng.uniform(100.0, 1e4),
                    rng.uniform(0.05, 0.3)});
  }
  for (auto _ : state) {
    cluster::ReservationTimeline timeline;
    for (const auto& [start, end, share] : plan) {
      timeline.book(start, end, share);
    }
    double acc = 0.0;
    for (const auto& [start, end, share] : plan) {
      acc += timeline.max_committed(start, end);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bookings) *
                          state.iterations());
}
BENCHMARK(BM_ReservationTimeline)->Arg(100)->Arg(1000);

void BM_RiskAnalysisPipeline(benchmark::State& state) {
  // Normalise + separate + integrate for a 5-policy x 12-scenario sweep
  // worth of synthetic raw values: the analysis cost per figure.
  sim::Rng rng(13);
  std::vector<std::vector<double>> raw(5, std::vector<double>(6));
  for (auto& row : raw) {
    for (double& v : row) v = rng.uniform(0.0, 100.0);
  }
  const auto weights = core::equal_weights(4);
  for (auto _ : state) {
    double acc = 0.0;
    for (int scenario = 0; scenario < 12; ++scenario) {
      const auto norm =
          core::normalize_objective(core::Objective::Sla, raw, {});
      std::vector<core::RiskPoint> separate;
      for (const auto& row : norm) {
        separate.push_back(core::separate_risk(row));
      }
      separate.resize(4);
      acc += core::integrated_risk(separate, weights).performance;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RiskAnalysisPipeline);

}  // namespace

BENCHMARK_MAIN();
