// Ablation: flat vs variable (time-of-day) commodity pricing — §5.1
// permits both; the paper's experiments use flat. With a peak multiplier,
// jobs submitted in the 9:00-17:00 window pay more: revenue rises per
// accepted peak job, but peak jobs with modest budgets get priced out, so
// SLA falls. The sweep quantifies the trade-off per peak multiplier.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::SyntheticSdscConfig trace;
  trace.job_count = std::min<std::uint32_t>(env.jobs, 2000);
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);

  std::cout << "Flat vs variable commodity pricing (EDF-BF, "
            << trace.job_count << " jobs, peak window 9:00-17:00):\n";
  std::cout << std::left << std::setw(12) << "multiplier" << std::right
            << std::setw(8) << "SLA%" << std::setw(10) << "Rel%"
            << std::setw(10) << "Prof%" << '\n';
  for (double multiplier : {1.0, 1.25, 1.5, 2.0, 3.0}) {
    economy::PricingParams pricing;
    pricing.variable.enabled = multiplier != 1.0;
    pricing.variable.peak_multiplier = multiplier;
    const auto report = service::simulate(
        jobs, policy::PolicyKind::EdfBf,
        economy::EconomicModel::CommodityMarket, {}, pricing);
    std::cout << std::left << std::setw(12) << multiplier << std::right
              << std::fixed << std::setprecision(2) << std::setw(8)
              << report.objectives.sla << std::setw(10)
              << report.objectives.reliability << std::setw(10)
              << report.objectives.profitability << '\n';
  }
  return 0;
}
