// Regenerates Fig. 7: integrated3 risk analysis for the bid model
// (Sets A and B). See DESIGN.md's per-experiment index.
#include "bench_common.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();
  bench::emit_integrated3_figure(env, economy::EconomicModel::BidBased, "Fig.7");
  return 0;
}
