// Regenerates Table V: the policy / economic-model matrix with each
// policy's primary scheduling parameter, plus a one-run smoke summary of
// every (policy, model) cell on a small workload.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  (void)bench::read_env();

  struct Row {
    policy::PolicyKind kind;
    const char* parameter;
  };
  const Row rows[] = {
      {policy::PolicyKind::FcfsBf, "arrival time"},
      {policy::PolicyKind::SjfBf, "runtime"},
      {policy::PolicyKind::EdfBf, "deadline"},
      {policy::PolicyKind::Libra, "deadline"},
      {policy::PolicyKind::LibraDollar, "deadline"},
      {policy::PolicyKind::LibraRiskD, "deadline"},
      {policy::PolicyKind::FirstReward, "budget with penalty"},
  };

  const auto commodity =
      policy::policies_for_model(economy::EconomicModel::CommodityMarket);
  const auto bid = policy::policies_for_model(economy::EconomicModel::BidBased);
  auto in = [](const std::vector<policy::PolicyKind>& set,
               policy::PolicyKind kind) {
    for (auto k : set) {
      if (k == kind) return true;
    }
    return false;
  };

  std::cout << "Table V: policies for performance evaluation\n";
  std::cout << std::left << std::setw(14) << "Policy" << std::setw(12)
            << "Commodity" << std::setw(6) << "Bid"
            << "Primary scheduling parameter\n";
  for (const Row& row : rows) {
    std::cout << std::left << std::setw(14) << policy::to_string(row.kind)
              << std::setw(12) << (in(commodity, row.kind) ? "x" : "")
              << std::setw(6) << (in(bid, row.kind) ? "x" : "")
              << row.parameter << '\n';
  }

  // Smoke run of every cell on a 500-job workload (shows the matrix is
  // executable, not just declarative).
  workload::SyntheticSdscConfig trace;
  trace.job_count = 500;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);

  std::cout << "\n500-job smoke run (Set B defaults):\n";
  std::cout << std::left << std::setw(14) << "Policy" << std::setw(11)
            << "Model" << std::right << std::setw(8) << "SLA%" << std::setw(10)
            << "Rel%" << std::setw(10) << "Prof%" << std::setw(12)
            << "Wait(s)\n";
  for (economy::EconomicModel model :
       {economy::EconomicModel::CommodityMarket,
        economy::EconomicModel::BidBased}) {
    for (policy::PolicyKind kind : policy::policies_for_model(model)) {
      const auto report = service::simulate(jobs, kind, model);
      std::cout << std::left << std::setw(14) << policy::to_string(kind)
                << std::setw(11) << economy::to_string(model) << std::right
                << std::fixed << std::setprecision(2) << std::setw(8)
                << report.objectives.sla << std::setw(10)
                << report.objectives.reliability << std::setw(10)
                << report.objectives.profitability << std::setw(12)
                << report.objectives.wait << '\n';
    }
  }
  return 0;
}
