// Disabled-observability overhead gate.
//
// The obs contract (src/obs/metrics.hpp) promises near-zero cost when no
// registry is attached or the registry is disabled: instrumented hot paths
// carry one never-taken null branch. This bench holds that promise to a
// number. It runs an event-queue churn kernel — the sim kernel's
// schedule/dispatch loop, the hottest instrumented path in the codebase —
// in three configurations (no registry, attached-but-disabled, enabled),
// takes the min wall clock over interleaved repetitions, asserts the
// disabled overhead stays under 2 % and writes
// <out>/BENCH_obs_overhead.json so the trend is machine-readable.
//
// Honours REPRO_OBS_EVENTS (events per repetition, default 2000000) and
// REPRO_OBS_REPS (repetitions per configuration, default 7).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace utilrisk;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One self-rescheduling event chain: every dispatch schedules the next
// event, so the kernel sees a steady schedule/dispatch churn at a queue
// depth of kChains — the shape of a running simulation, without the
// service/policy layers diluting the per-event cost being measured.
struct Chain {
  sim::Simulator* simk = nullptr;
  std::uint64_t left = 0;

  void arm() {
    if (left == 0) return;
    --left;
    simk->schedule_in(1.0, [this] { arm(); });
  }
};

double run_kernel(obs::MetricsRegistry* registry, std::uint64_t events) {
  constexpr std::size_t kChains = 64;
  sim::Simulator simk;
  simk.set_metrics(registry);
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(kChains);
  for (std::size_t i = 0; i < kChains; ++i) {
    auto chain = std::make_unique<Chain>();
    chain->simk = &simk;
    chain->left = events / kChains;
    chains.push_back(std::move(chain));
  }
  const double start = now_seconds();
  for (auto& chain : chains) chain->arm();
  const std::uint64_t dispatched = simk.run();
  const double wall = now_seconds() - start;
  if (dispatched != kChains * (events / kChains)) {
    std::cerr << "FAIL: kernel dispatched " << dispatched << " events\n";
    std::exit(1);
  }
  return wall;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::strtoull(raw, nullptr, 10);
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::read_env();
  const std::uint64_t events = env_u64("REPRO_OBS_EVENTS", 2000000);
  const int reps = static_cast<int>(env_u64("REPRO_OBS_REPS", 7));

  std::cout << "obs overhead bench: " << events << " events/rep, " << reps
            << " reps per configuration\n";

  obs::MetricsRegistry disabled(false);
  obs::MetricsRegistry enabled(true);

  // Interleave the configurations within each repetition so frequency
  // scaling and cache-warming noise hits all three equally; min-of-reps
  // then discards the noisy repetitions.
  double min_none = std::numeric_limits<double>::infinity();
  double min_disabled = std::numeric_limits<double>::infinity();
  double min_enabled = std::numeric_limits<double>::infinity();
  run_kernel(nullptr, events);  // warm-up, unmeasured
  for (int rep = 0; rep < reps; ++rep) {
    min_none = std::min(min_none, run_kernel(nullptr, events));
    min_disabled = std::min(min_disabled, run_kernel(&disabled, events));
    min_enabled = std::min(min_enabled, run_kernel(&enabled, events));
  }

  const double disabled_overhead = min_disabled / min_none - 1.0;
  const double enabled_overhead = min_enabled / min_none - 1.0;
  const double events_per_second = static_cast<double>(events) / min_none;
  std::cout << "  no registry:        " << min_none << " s  ("
            << events_per_second << " events/s)\n"
            << "  attached, disabled: " << min_disabled << " s  ("
            << disabled_overhead * 100.0 << " % overhead)\n"
            << "  attached, enabled:  " << min_enabled << " s  ("
            << enabled_overhead * 100.0 << " % overhead)\n";

  const std::string path = env.out_dir + "/BENCH_obs_overhead.json";
  std::ofstream json(path);
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"obs_overhead\",\n"
       << "  \"events_per_rep\": " << events << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"no_registry_seconds\": " << min_none << ",\n"
       << "  \"disabled_registry_seconds\": " << min_disabled << ",\n"
       << "  \"enabled_registry_seconds\": " << min_enabled << ",\n"
       << "  \"disabled_overhead_fraction\": " << disabled_overhead << ",\n"
       << "  \"enabled_overhead_fraction\": " << enabled_overhead << ",\n"
       << "  \"events_per_second_baseline\": " << events_per_second << ",\n"
       << "  \"threshold_fraction\": 0.02,\n"
       << "  \"pass\": " << (disabled_overhead < 0.02 ? "true" : "false")
       << "\n}\n";
  std::cout << "[wrote " << path << "]\n";

  if (disabled_overhead >= 0.02) {
    std::cerr << "FAIL: disabled-registry overhead "
              << disabled_overhead * 100.0 << " % >= 2 %\n";
    return 1;
  }
  return 0;
}
