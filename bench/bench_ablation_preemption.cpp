// Ablation: the non-preemption assumption. §5.2: "all the policies are
// assumed to be non-preemptive ... This leads to the issue of whether the
// non-preemptive policies will be affected by the inaccuracy of runtime
// estimates." This bench lifts the assumption: with terminate-at-deadline
// the service kills any job that blows its deadline, capping the bid
// model's unbounded penalties at zero revenue for the killed job.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::SyntheticSdscConfig trace;
  trace.job_count = std::min<std::uint32_t>(env.jobs, 2000);
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25,
                                  /*inaccuracy=*/100.0);

  std::cout << "Non-preemption ablation (bid model, Set B estimates, "
            << trace.job_count << " jobs):\n";
  std::cout << std::left << std::setw(14) << "policy" << std::setw(12)
            << "mode" << std::right << std::setw(8) << "SLA%"
            << std::setw(10) << "Rel%" << std::setw(12) << "Prof%"
            << std::setw(8) << "Util\n";

  for (policy::PolicyKind kind :
       {policy::PolicyKind::FcfsBf, policy::PolicyKind::EdfBf,
        policy::PolicyKind::Libra, policy::PolicyKind::LibraRiskD}) {
    for (bool terminate : {false, true}) {
      policy::PolicyContext context;
      context.model = economy::EconomicModel::BidBased;
      context.terminate_at_deadline = terminate;
      const auto report =
          service::simulate(jobs, service::factory_for(kind), context);
      std::cout << std::left << std::setw(14) << policy::to_string(kind)
                << std::setw(12)
                << (terminate ? "kill@dline" : "run-to-end") << std::right
                << std::fixed << std::setprecision(2) << std::setw(8)
                << report.objectives.sla << std::setw(10)
                << report.objectives.reliability << std::setw(12)
                << report.objectives.profitability << std::setw(8)
                << report.utilization << '\n';
    }
  }
  std::cout << "\nKilling at the deadline trades finished-late work for\n"
               "capped penalties and freed capacity: profitability rises\n"
               "for penalty-exposed policies (Libra under inaccurate\n"
               "estimates), while SLA/reliability stay unchanged by\n"
               "definition (a killed job was already violating).\n";
  return 0;
}
