// Robustness: the paper's risk analysis under increasing node-failure
// rates. Runs the bid-model policy matrix over the MTBF sweep scenario
// (infinite MTBF — the failure-free baseline — down to one failure per
// node-hour) with bounded retries, then regenerates the separate risk
// plots for reliability and SLA plus the integrated four-objective plot.
// Reliability (eqn 3) is the objective outages attack directly: failed
// jobs stay accepted but never fulfil, so n_SLA/n falls as MTBF shrinks.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();
  exp::ResultStore store = bench::make_store(env);
  const exp::ExperimentConfig config = bench::make_config(
      env, economy::EconomicModel::BidBased, exp::ExperimentSet::B);
  exp::ExperimentRunner runner(config, &store);

  exp::RunSettings defaults = config.default_settings();
  // Recovery posture of the sweep: two retries with 5-minute exponential
  // backoff, hourly repairs. The infinite-MTBF cell leaves defaults
  // untouched (FailureConfig::enabled() false), so it reuses the cache
  // entries of the failure-free figure benches.
  defaults.failure.mttr_seconds = 3600.0;
  defaults.recovery.retry_limit = 2;
  defaults.recovery.backoff_seconds = 300.0;

  const std::vector<policy::PolicyKind> policies =
      policy::policies_for_model(economy::EconomicModel::BidBased);
  const exp::Scenario& scenario = exp::mtbf_scenario();
  const exp::SweepResult sweep =
      runner.run_scenarios({scenario}, defaults, policies);
  std::cout << "[" << runner.simulations_run() << " simulations]\n\n";

  // Raw reliability per MTBF cell: the eqn-3 degradation, unnormalised.
  std::cout << "Reliability (%) vs per-node MTBF (bid model, Set B, "
            << config.trace.job_count << " jobs):\n";
  std::cout << std::left << std::setw(14) << "policy" << std::right;
  for (double mtbf : scenario.values) {
    std::ostringstream head;
    if (std::isinf(mtbf)) {
      head << "inf";
    } else {
      head << mtbf / 3600.0 << "h";
    }
    std::cout << std::setw(10) << head.str();
  }
  std::cout << '\n';
  const auto r = static_cast<std::size_t>(core::Objective::Reliability);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::cout << std::left << std::setw(14)
              << policy::to_string(policies[p]) << std::right
              << std::fixed << std::setprecision(1);
    for (std::size_t v = 0; v < scenario.values.size(); ++v) {
      std::cout << std::setw(10) << sweep.raw[0][r][p][v];
    }
    std::cout << '\n';
  }
  std::cout << '\n';

  bench::emit_plot(
      env,
      exp::separate_plot(sweep, core::Objective::Reliability,
                         "separate risk under failures: reliability"),
      "robustness_failures_reliability");
  bench::emit_plot(env,
                   exp::separate_plot(sweep, core::Objective::Sla,
                                      "separate risk under failures: SLA"),
                   "robustness_failures_sla");
  const std::vector<core::Objective> all(core::kAllObjectives.begin(),
                                         core::kAllObjectives.end());
  bench::emit_plot(
      env,
      exp::integrated_plot(sweep, all,
                           "integrated risk under failures: all objectives"),
      "robustness_failures_integrated");
  return 0;
}
