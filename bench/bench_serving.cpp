// Serving-path throughput/latency bench for `utilrisk serve`.
//
// Boots an in-process admission engine + TCP-loopback server, drives it
// with the seeded closed-loop load generator (the determinism-friendly
// mode: one request in flight, so decisions replay bit-identically), and
// writes <out>/BENCH_serving.json with throughput and p50/p95/p99
// round-trip latency. A second same-seed pass against a fresh engine must
// reproduce the decision digest — the bench fails on any divergence, on
// dropped responses, or on a client/server digest mismatch, so it doubles
// as an end-to-end regression gate for the serving layer.
//
// Honours REPRO_REQUESTS (requests per pass, default 5000) and REPRO_OUT
// (artefact directory, default ./bench_out).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using namespace utilrisk;

struct Pass {
  serve::LoadgenReport report;
  serve::EngineStats engine;
};

Pass run_pass(std::size_t requests, std::uint64_t seed) {
  serve::EngineConfig engine_config;
  serve::AdmissionEngine engine(engine_config);
  engine.start();

  serve::ServerConfig server_config;
  server_config.tcp_port = 0;  // ephemeral loopback port
  serve::Server server(server_config, engine);
  server.start();

  serve::LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = requests;
  load.seed = seed;

  Pass pass;
  pass.report = serve::run_loadgen(load);
  pass.engine = server.stop_and_drain();
  return pass;
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::read_env();
  std::size_t requests = 5000;
  if (const char* raw = std::getenv("REPRO_REQUESTS"); raw != nullptr) {
    requests = static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
  }
  constexpr std::uint64_t kSeed = 42;

  std::cout << "serving bench: " << requests
            << " closed-loop requests, seed " << kSeed << "\n";
  run_pass(std::min<std::size_t>(requests, 500), kSeed);  // warm-up

  const Pass first = run_pass(requests, kSeed);
  const Pass second = run_pass(requests, kSeed);

  const serve::LoadgenReport& r = first.report;
  std::cout << "  responses:  " << r.responses << " of " << r.sent
            << " (accepted " << r.accepted << ", rejected " << r.rejected
            << ")\n"
            << "  throughput: " << r.throughput_rps << " responses/s\n"
            << "  latency:    p50 " << r.latency.p50_ms << " ms, p95 "
            << r.latency.p95_ms << " ms, p99 " << r.latency.p99_ms
            << " ms\n"
            << "  digest:     " << r.decision_digest << "\n";

  bool pass = true;
  if (r.dropped != 0 || second.report.dropped != 0) {
    std::cerr << "FAIL: dropped responses (" << r.dropped << ", "
              << second.report.dropped << ")\n";
    pass = false;
  }
  if (r.decision_digest != first.engine.decision_digest) {
    std::cerr << "FAIL: client digest " << r.decision_digest
              << " != server digest " << first.engine.decision_digest
              << "\n";
    pass = false;
  }
  if (r.decision_digest != second.report.decision_digest) {
    std::cerr << "FAIL: same-seed passes diverged: " << r.decision_digest
              << " vs " << second.report.decision_digest << "\n";
    pass = false;
  }

  const std::string path = env.out_dir + "/BENCH_serving.json";
  std::ofstream json(path);
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"serving\",\n"
       << "  \"mode\": \"closed_loop\",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"seed\": " << kSeed << ",\n"
       << "  \"responses\": " << r.responses << ",\n"
       << "  \"accepted\": " << r.accepted << ",\n"
       << "  \"rejected\": " << r.rejected << ",\n"
       << "  \"busy\": " << r.busy << ",\n"
       << "  \"dropped\": " << r.dropped << ",\n"
       << "  \"wall_seconds\": " << r.wall_seconds << ",\n"
       << "  \"throughput_rps\": " << r.throughput_rps << ",\n"
       << "  \"latency_p50_ms\": " << r.latency.p50_ms << ",\n"
       << "  \"latency_p95_ms\": " << r.latency.p95_ms << ",\n"
       << "  \"latency_p99_ms\": " << r.latency.p99_ms << ",\n"
       << "  \"latency_mean_ms\": " << r.latency.mean_ms << ",\n"
       << "  \"latency_max_ms\": " << r.latency.max_ms << ",\n"
       << "  \"decision_digest\": \"" << r.decision_digest << "\",\n"
       << "  \"digest_reproduced\": "
       << (r.decision_digest == second.report.decision_digest ? "true"
                                                              : "false")
       << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "[wrote " << path << "]\n";

  return pass ? 0 : 1;
}
