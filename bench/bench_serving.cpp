// Serving-path throughput/latency bench for `utilrisk serve`.
//
// Boots an in-process admission engine + TCP-loopback server, drives it
// with the seeded closed-loop load generator (the determinism-friendly
// mode: one request in flight, so decisions replay bit-identically), and
// writes <out>/BENCH_serving.json with throughput and p50/p95/p99
// round-trip latency. A second same-seed pass against a fresh engine must
// reproduce the decision digest — the bench fails on any divergence, on
// dropped responses, or on a client/server digest mismatch, so it doubles
// as an end-to-end regression gate for the serving layer.
//
// Two robustness measurements ride along:
//  - journal overhead: the same request stream driven straight into the
//    engine (queue kept full, so ticks batch up to max_batch and the
//    per-tick fsync amortises — closed-loop traffic with one request in
//    flight would fsync per request and measure the disk, not the
//    journal) with the write-ahead journal on (fsync=batch) vs off. The
//    decision digest must be identical in both modes and equal to the
//    closed-loop server digest (batch invariance); the throughput cost is
//    reported as journal.overhead_percent (budget: <= 15%,
//    docs/SERVING.md).
//  - shed rate under 2x overload: an open-loop stream at twice the
//    measured closed-loop throughput with a tight decision budget
//    (`deadline_ms`); the report records what fraction of requests the
//    engine shed instead of deciding late.
//  - online advisor under a mix shift: --advise-auto vs the static
//    default policy over a traffic mix that changes mid-run. Gates: < 5%
//    admission-throughput overhead, bit-identical digests across
//    advise-auto passes, and the advisor's recommendation beating the
//    static default on the mean - lambda * sigma risk-adjusted score.
//
// Honours REPRO_REQUESTS (requests per pass, default 5000) and REPRO_OUT
// (artefact directory, default ./bench_out).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "advise/advisor_engine.hpp"
#include "bench_common.hpp"
#include "core/objectives.hpp"
#include "policy/factory.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"

namespace {

using namespace utilrisk;

struct Pass {
  serve::LoadgenReport report;
  serve::EngineStats engine;
  serve::JournalStats journal;
};

struct PassOptions {
  std::string journal_dir;  ///< empty = journaling off
  serve::FsyncPolicy fsync = serve::FsyncPolicy::Batch;
  bool open_loop = false;
  double rate = 0.0;         ///< open-loop only
  double deadline_ms = 0.0;  ///< decision budget stamped on requests
  /// Online advisor knobs (default: scheduled evaluations off).
  advise::OnlineAdvisorConfig advisor;
};

Pass run_pass(std::size_t requests, std::uint64_t seed,
              const PassOptions& options = {}) {
  serve::EngineConfig engine_config;
  engine_config.journal_dir = options.journal_dir;
  engine_config.fsync = options.fsync;
  serve::AdmissionEngine engine(engine_config);
  engine.start();

  serve::ServerConfig server_config;
  server_config.tcp_port = 0;  // ephemeral loopback port
  serve::Server server(server_config, engine);
  server.start();

  serve::LoadgenConfig load;
  load.tcp_port = server.bound_port();
  load.requests = requests;
  load.seed = seed;
  load.open_loop = options.open_loop;
  if (options.rate > 0.0) load.rate = options.rate;
  load.deadline_ms = options.deadline_ms;

  Pass pass;
  pass.report = serve::run_loadgen(load);
  pass.engine = server.stop_and_drain();
  pass.journal = engine.journal_stats();
  return pass;
}

struct EnginePass {
  serve::EngineStats stats;
  serve::JournalStats journal;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
};

// Drives the engine directly (no sockets): submissions spin-retry until
// accepted, so the bounded queue stays full and ticks coalesce batches of
// up to max_batch — the traffic shape where batch fsync amortises.
EnginePass run_engine_pass(const std::vector<serve::Request>& stream,
                           const PassOptions& options) {
  serve::EngineConfig config;
  config.journal_dir = options.journal_dir;
  config.fsync = options.fsync;
  config.advisor = options.advisor;
  serve::AdmissionEngine engine(config);
  engine.start();

  const auto start = std::chrono::steady_clock::now();
  for (const serve::Request& request : stream) {
    while (!engine.submit(request, [](const serve::Response&) {})) {
      std::this_thread::yield();
    }
  }
  EnginePass pass;
  pass.stats = engine.drain();
  pass.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  pass.journal = engine.journal_stats();
  pass.throughput_rps =
      pass.wall_seconds > 0.0
          ? static_cast<double>(stream.size()) / pass.wall_seconds
          : 0.0;
  return pass;
}

struct ShardPass {
  std::size_t shards = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  std::string digest;
};

// Drives a sharded engine directly with a multi-tenant stream (same
// spin-submit shape as run_engine_pass): one submitter, N decision
// threads, so aggregate throughput scales with shard count when decision
// work dominates.
ShardPass run_shard_pass(const std::vector<serve::Request>& stream,
                         std::size_t shards) {
  serve::ShardedEngineConfig config;
  config.shards = shards;
  serve::ShardedEngine engine(config);
  engine.start();

  const auto start = std::chrono::steady_clock::now();
  for (const serve::Request& request : stream) {
    while (!engine.submit(request, [](const serve::Response&) {})) {
      std::this_thread::yield();
    }
  }
  const serve::EngineStats stats = engine.drain();
  ShardPass pass;
  pass.shards = shards;
  pass.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  pass.throughput_rps =
      pass.wall_seconds > 0.0
          ? static_cast<double>(stream.size()) / pass.wall_seconds
          : 0.0;
  pass.digest = stats.decision_digest;
  return pass;
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::read_env();
  std::size_t requests = 5000;
  if (const char* raw = std::getenv("REPRO_REQUESTS"); raw != nullptr) {
    requests = static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
  }
  constexpr std::uint64_t kSeed = 42;

  std::cout << "serving bench: " << requests
            << " closed-loop requests, seed " << kSeed << "\n";
  run_pass(std::min<std::size_t>(requests, 500), kSeed);  // warm-up

  const Pass first = run_pass(requests, kSeed);
  const Pass second = run_pass(requests, kSeed);

  const serve::LoadgenReport& r = first.report;
  std::cout << "  responses:  " << r.responses << " of " << r.sent
            << " (accepted " << r.accepted << ", rejected " << r.rejected
            << ")\n"
            << "  throughput: " << r.throughput_rps << " responses/s\n"
            << "  latency:    p50 " << r.latency.p50_ms << " ms, p95 "
            << r.latency.p95_ms << " ms, p99 " << r.latency.p99_ms
            << " ms\n"
            << "  digest:     " << r.decision_digest << "\n";

  bool pass = true;
  if (r.dropped != 0 || second.report.dropped != 0) {
    std::cerr << "FAIL: dropped responses (" << r.dropped << ", "
              << second.report.dropped << ")\n";
    pass = false;
  }
  if (r.decision_digest != first.engine.decision_digest) {
    std::cerr << "FAIL: client digest " << r.decision_digest
              << " != server digest " << first.engine.decision_digest
              << "\n";
    pass = false;
  }
  if (r.decision_digest != second.report.decision_digest) {
    std::cerr << "FAIL: same-seed passes diverged: " << r.decision_digest
              << " vs " << second.report.decision_digest << "\n";
    pass = false;
  }

  // --- journal overhead: same stream, batched traffic, journal on/off ----
  serve::LoadgenConfig stream_config;
  stream_config.requests = requests;
  stream_config.seed = kSeed;
  const std::vector<serve::Request> stream =
      serve::make_request_stream(stream_config);

  const std::string journal_dir = env.out_dir + "/bench_journal";
  std::filesystem::remove_all(journal_dir);
  const EnginePass direct_off = run_engine_pass(stream, PassOptions{});
  PassOptions journal_options;
  journal_options.journal_dir = journal_dir;
  journal_options.fsync = serve::FsyncPolicy::Batch;
  const EnginePass direct_on = run_engine_pass(stream, journal_options);
  const double journal_rps = direct_on.throughput_rps;
  const double overhead_percent =
      direct_off.throughput_rps > 0.0
          ? std::max(0.0, (direct_off.throughput_rps - journal_rps) /
                              direct_off.throughput_rps * 100.0)
          : 0.0;
  std::cout << "  journal:    off " << direct_off.throughput_rps
            << " dec/s, on " << journal_rps << " dec/s ("
            << overhead_percent << "% overhead, "
            << direct_on.journal.ticks << " ticks, "
            << direct_on.journal.fsyncs << " fsyncs, "
            << direct_on.journal.bytes << " bytes)\n";
  if (direct_on.stats.decision_digest != direct_off.stats.decision_digest) {
    std::cerr << "FAIL: journaling changed the decision digest: "
              << direct_on.stats.decision_digest << " vs "
              << direct_off.stats.decision_digest << "\n";
    pass = false;
  }
  if (direct_off.stats.decision_digest != r.decision_digest) {
    std::cerr << "FAIL: batch invariance broke: direct digest "
              << direct_off.stats.decision_digest << " != closed-loop "
              << r.decision_digest << "\n";
    pass = false;
  }
  std::filesystem::remove_all(journal_dir);

  // --- shed rate under 2x overload ---------------------------------------
  // Open loop at twice the engine's measured decision capacity (the
  // direct-drive pass above — closed-loop throughput is latency-bound and
  // badly underestimates it) with a 10 ms decision budget: requests the
  // engine cannot decide in time are shed, not decided late. Wall-clock,
  // so the digest is not comparable here — this pass measures degradation
  // behaviour, not determinism.
  PassOptions overload_options;
  overload_options.open_loop = true;
  overload_options.rate = std::max(200.0, 2.0 * direct_off.throughput_rps);
  overload_options.deadline_ms = 10.0;
  const Pass overload = run_pass(requests, kSeed, overload_options);
  const serve::LoadgenReport& o = overload.report;
  const double answered =
      static_cast<double>(o.responses) > 0.0
          ? static_cast<double>(o.responses)
          : 1.0;
  const double shed_percent = static_cast<double>(o.shed) / answered * 100.0;
  const double turned_away_percent =
      static_cast<double>(o.shed + o.busy) / answered * 100.0;
  std::cout << "  overload:   " << overload_options.rate
            << " req/s offered -> shed " << o.shed << ", busy " << o.busy
            << " of " << o.responses << " answered (" << turned_away_percent
            << "% turned away)\n";
  if (o.responses + o.dropped < o.sent) {
    std::cerr << "FAIL: overload pass lost track of "
              << (o.sent - o.responses - o.dropped) << " requests\n";
    pass = false;
  }

  // --- shard-count sweep --------------------------------------------------
  // A Zipf multi-tenant stream across --shards 1/2/4. Two gates: the
  // merged decision digest must be identical at every shard count (the
  // order-independent merge contract, always asserted), and 4 shards must
  // deliver >= 1.7x the 1-shard aggregate throughput — asserted only on
  // machines with >= 4 hardware threads (a 1-core CI runner cannot scale
  // anything; the JSON records whether the gate was armed).
  serve::LoadgenConfig shard_stream_config;
  shard_stream_config.requests = requests;
  shard_stream_config.seed = kSeed;
  shard_stream_config.workload = "zipf:tenants=64,theta=0.9";
  const std::vector<serve::Request> tenant_stream =
      serve::make_request_stream(shard_stream_config);

  (void)run_shard_pass(tenant_stream, 4);  // warm-up
  std::vector<ShardPass> sweep;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    sweep.push_back(run_shard_pass(tenant_stream, shards));
    std::cout << "  shards " << shards << ":   "
              << sweep.back().throughput_rps << " dec/s (digest "
              << sweep.back().digest << ")\n";
  }
  bool shard_digest_invariant = true;
  for (const ShardPass& shard_pass : sweep) {
    if (shard_pass.digest != sweep.front().digest) {
      shard_digest_invariant = false;
    }
  }
  if (!shard_digest_invariant) {
    std::cerr << "FAIL: merged digest varies with shard count\n";
    pass = false;
  }
  const double speedup_4x = sweep.front().throughput_rps > 0.0
                                ? sweep.back().throughput_rps /
                                      sweep.front().throughput_rps
                                : 0.0;
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool speedup_gate_armed = hardware_threads >= 4;
  std::cout << "  scaling:    4 shards = " << speedup_4x << "x of 1 shard ("
            << hardware_threads << " hardware threads, gate "
            << (speedup_gate_armed ? "armed" : "skipped") << ")\n";
  if (speedup_gate_armed && speedup_4x < 1.7) {
    std::cerr << "FAIL: 4-shard speedup " << speedup_4x
              << "x below the 1.7x floor\n";
    pass = false;
  }

  // --- online advisor under a mix shift ----------------------------------
  // The advisor's home turf: a 4-tenant Zipf mix that starts on a
  // heavy-runtime / dense-arrival profile and shifts to the default Zipf
  // profile at t=40000 on the virtual clock — a mix the static default
  // policy is no longer the best risk-adjusted answer for.
  // Three measurements, three gates:
  //  - admission-throughput overhead of --advise-auto (rolling-window
  //    observation + scheduled shadow evaluations + live switching) vs the
  //    static default policy, budget < 5% (docs/ADVISOR.md). Best-of-3 per
  //    mode: spin-submit throughput jitters more than the budget.
  //  - determinism: all advise-auto passes must agree on the decision
  //    digest (switch events fold in, so it legitimately differs from the
  //    static pass's digest — that difference is not comparable here).
  //  - risk-adjusted advantage: an offline advisor replays the same job
  //    stream and scores every candidate policy with mean - lambda * sigma
  //    under the operator's preferences; the recommendation must beat the
  //    static default — the reason to run the advisor at all.
  //
  // The operator here is profit-focused (the weights lean on objective 4),
  // which is where the static default Libra — the best all-rounder under
  // equal weights — stops being the right answer and the advisor earns
  // its keep by moving the serving path to Libra+$.
  serve::LoadgenConfig mix_config;
  mix_config.requests = requests;
  mix_config.seed = kSeed;
  mix_config.workload =
      "zipf:tenants=4,theta=0.6,mean_runtime=14000,mean_interarrival=120";
  mix_config.mix_shift = "40000:zipf:tenants=4,theta=0.6";
  const std::vector<serve::Request> mix_stream =
      serve::make_request_stream(mix_config);
  const std::array<double, 4> operator_weights = {0.05, 0.15, 0.1, 0.7};
  constexpr double kRiskAversion = 0.5;

  const PassOptions static_options;
  PassOptions advised_options;
  advised_options.advisor.auto_switch = true;
  advised_options.advisor.advise_every = 1024;
  advised_options.advisor.window = 16;
  advised_options.advisor.scoring.objective_weights = operator_weights;
  advised_options.advisor.scoring.risk_aversion = kRiskAversion;

  (void)run_engine_pass(mix_stream, static_options);  // warm-up
  double static_rps = 0.0;
  for (int i = 0; i < 3; ++i) {
    static_rps = std::max(
        static_rps, run_engine_pass(mix_stream, static_options).throughput_rps);
  }
  double advised_rps = 0.0;
  EnginePass advised;
  bool advise_digest_reproduced = true;
  std::string advised_digest;
  for (int i = 0; i < 3; ++i) {
    advised = run_engine_pass(mix_stream, advised_options);
    advised_rps = std::max(advised_rps, advised.throughput_rps);
    if (advised_digest.empty()) {
      advised_digest = advised.stats.decision_digest;
    } else if (advised.stats.decision_digest != advised_digest) {
      advise_digest_reproduced = false;
    }
  }
  const double advise_overhead_percent =
      static_rps > 0.0
          ? std::max(0.0, (static_rps - advised_rps) / static_rps * 100.0)
          : 0.0;
  std::cout << "  advise:     static " << static_rps << " dec/s, auto "
            << advised_rps << " dec/s (" << advise_overhead_percent
            << "% overhead, " << advised.stats.advisor_evaluations
            << " evaluations, " << advised.stats.policy_switches
            << " switches, digest " << advised_digest << ")\n";
  if (advised.stats.advisor_evaluations == 0) {
    std::cerr << "FAIL: advise-auto pass never reached a switch point — "
                 "the overhead measurement is vacuous\n";
    pass = false;
  }
  if (!advise_digest_reproduced) {
    std::cerr << "FAIL: advise-auto passes diverged on the decision digest\n";
    pass = false;
  }
  if (advise_overhead_percent >= 5.0) {
    std::cerr << "FAIL: advise-auto overhead " << advise_overhead_percent
              << "% breaches the 5% budget\n";
    pass = false;
  }

  // Offline verdict: replay the stream's jobs through a scratch advisor
  // (same knobs, same shadow world as the engine's defaults) and read the
  // final ranking under the operator's preferences. The live objective
  // feed mirrors the estimator contract — cumulative inputs after each
  // admission.
  advise::OnlineAdvisorConfig offline_config = advised_options.advisor;
  offline_config.auto_switch = false;  // read the ranking, don't act on it
  advise::AdvisorEngine offline(offline_config, advise::ShadowContext{},
                                policy::PolicyKind::Libra);
  core::ObjectiveInputs offline_inputs;
  std::uint64_t next_job_id = 1;
  for (const serve::Request& request : mix_stream) {
    const workload::Job job =
        serve::to_job(request, next_job_id++, request.submit_time);
    offline_inputs.submitted += 1;
    offline_inputs.accepted += 1;
    offline_inputs.fulfilled += 1;
    offline_inputs.wait_sum_fulfilled += 0.25 * job.actual_runtime;
    offline_inputs.total_utility += 0.8 * job.budget;
    offline_inputs.total_budget += job.budget;
    offline.observe(1, job, core::compute_objectives(offline_inputs));
    if (offline.at_switch_point(1)) (void)offline.evaluate(1);
  }
  const advise::Snapshot verdict =
      offline.query(1, operator_weights, kRiskAversion);
  const std::string static_policy{
      policy::to_string(policy::PolicyKind::Libra)};
  double recommended_score = 0.0;
  double static_score = 0.0;
  for (const advise::RankedPolicy& entry : verdict.ranked) {
    if (entry.policy == verdict.recommended) recommended_score = entry.score;
    if (entry.policy == static_policy) static_score = entry.score;
  }
  const bool advisor_beats_static =
      !verdict.ranked.empty() && verdict.recommended != static_policy &&
      recommended_score > static_score;
  std::cout << "  verdict:    recommended " << verdict.recommended
            << " (score " << recommended_score << ") vs static "
            << static_policy << " (score " << static_score << ")\n";
  if (!advisor_beats_static) {
    std::cerr << "FAIL: the advisor's recommendation does not beat the "
                 "static default on risk-adjusted score\n";
    pass = false;
  }

  const std::string path = env.out_dir + "/BENCH_serving.json";
  std::ofstream json(path);
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"serving\",\n"
       << "  \"mode\": \"closed_loop\",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"seed\": " << kSeed << ",\n"
       << "  \"responses\": " << r.responses << ",\n"
       << "  \"accepted\": " << r.accepted << ",\n"
       << "  \"rejected\": " << r.rejected << ",\n"
       << "  \"busy\": " << r.busy << ",\n"
       << "  \"dropped\": " << r.dropped << ",\n"
       << "  \"wall_seconds\": " << r.wall_seconds << ",\n"
       << "  \"throughput_rps\": " << r.throughput_rps << ",\n"
       << "  \"latency_p50_ms\": " << r.latency.p50_ms << ",\n"
       << "  \"latency_p95_ms\": " << r.latency.p95_ms << ",\n"
       << "  \"latency_p99_ms\": " << r.latency.p99_ms << ",\n"
       << "  \"latency_mean_ms\": " << r.latency.mean_ms << ",\n"
       << "  \"latency_max_ms\": " << r.latency.max_ms << ",\n"
       << "  \"decision_digest\": \"" << r.decision_digest << "\",\n"
       << "  \"digest_reproduced\": "
       << (r.decision_digest == second.report.decision_digest ? "true"
                                                              : "false")
       << ",\n"
       << "  \"journal\": {\n"
       << "    \"fsync\": \"batch\",\n"
       << "    \"baseline_rps\": " << direct_off.throughput_rps << ",\n"
       << "    \"throughput_rps\": " << journal_rps << ",\n"
       << "    \"overhead_percent\": " << overhead_percent << ",\n"
       << "    \"digest_unchanged\": "
       << (direct_on.stats.decision_digest == direct_off.stats.decision_digest
               ? "true"
               : "false")
       << ",\n"
       << "    \"appends\": " << direct_on.journal.requests << ",\n"
       << "    \"ticks\": " << direct_on.journal.ticks << ",\n"
       << "    \"fsyncs\": " << direct_on.journal.fsyncs << ",\n"
       << "    \"rotations\": " << direct_on.journal.rotations << ",\n"
       << "    \"bytes\": " << direct_on.journal.bytes << "\n"
       << "  },\n"
       << "  \"overload\": {\n"
       << "    \"offered_rps\": " << overload_options.rate << ",\n"
       << "    \"deadline_ms\": " << overload_options.deadline_ms << ",\n"
       << "    \"sent\": " << o.sent << ",\n"
       << "    \"responses\": " << o.responses << ",\n"
       << "    \"shed\": " << o.shed << ",\n"
       << "    \"busy\": " << o.busy << ",\n"
       << "    \"shed_percent\": " << shed_percent << ",\n"
       << "    \"turned_away_percent\": " << turned_away_percent << ",\n"
       << "    \"latency_p99_ms\": " << o.latency.p99_ms << "\n"
       << "  },\n"
       << "  \"shard_sweep\": {\n"
       << "    \"workload\": \"zipf:tenants=64,theta=0.9\",\n"
       << "    \"requests\": " << tenant_stream.size() << ",\n"
       << "    \"shards\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json << "      {\"shards\": " << sweep[i].shards
         << ", \"wall_seconds\": " << sweep[i].wall_seconds
         << ", \"throughput_rps\": " << sweep[i].throughput_rps
         << ", \"decision_digest\": \"" << sweep[i].digest << "\"}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"digest_invariant\": "
       << (shard_digest_invariant ? "true" : "false") << ",\n"
       << "    \"speedup_4x\": " << speedup_4x << ",\n"
       << "    \"hardware_threads\": " << hardware_threads << ",\n"
       << "    \"speedup_gate_armed\": "
       << (speedup_gate_armed ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"advise\": {\n"
       << "    \"workload\": \"" << mix_config.workload << "\",\n"
       << "    \"mix_shift\": \"" << mix_config.mix_shift << "\",\n"
       << "    \"requests\": " << mix_stream.size() << ",\n"
       << "    \"advise_every\": " << advised_options.advisor.advise_every
       << ",\n"
       << "    \"window\": " << advised_options.advisor.window << ",\n"
       << "    \"weights\": [" << operator_weights[0] << ", "
       << operator_weights[1] << ", " << operator_weights[2] << ", "
       << operator_weights[3] << "],\n"
       << "    \"risk_aversion\": " << kRiskAversion << ",\n"
       << "    \"static_rps\": " << static_rps << ",\n"
       << "    \"advised_rps\": " << advised_rps << ",\n"
       << "    \"overhead_percent\": " << advise_overhead_percent << ",\n"
       << "    \"evaluations\": " << advised.stats.advisor_evaluations
       << ",\n"
       << "    \"policy_switches\": " << advised.stats.policy_switches
       << ",\n"
       << "    \"decision_digest\": \"" << advised_digest << "\",\n"
       << "    \"digest_reproduced\": "
       << (advise_digest_reproduced ? "true" : "false") << ",\n"
       << "    \"static_policy\": \"" << static_policy << "\",\n"
       << "    \"static_score\": " << static_score << ",\n"
       << "    \"recommended\": \"" << verdict.recommended << "\",\n"
       << "    \"recommended_score\": " << recommended_score << ",\n"
       << "    \"advisor_beats_static\": "
       << (advisor_beats_static ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "[wrote " << path << "]\n";

  return pass ? 0 : 1;
}
