// Robustness: sensitivity of the headline results to the synthetic trace
// seed. Runs the bid-model policies on five independently seeded traces
// (Set B estimates) and reports per-policy mean +/- spread of each
// objective — if the spread dwarfed the between-policy gaps, conclusions
// drawn from a single trace would be noise.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "sim/distributions.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();
  const std::uint32_t jobs_n = std::min<std::uint32_t>(env.jobs, 2000);
  const std::uint64_t seeds[] = {42, 1001, 2002, 3003, 4004};

  std::cout << "Seed robustness (bid model, Set B, " << jobs_n
            << " jobs, " << std::size(seeds) << " trace seeds):\n";
  std::cout << std::left << std::setw(14) << "policy" << std::right
            << std::setw(18) << "SLA% mean+-sd" << std::setw(18)
            << "Rel% mean+-sd" << std::setw(18) << "Prof% mean+-sd" << '\n';

  for (policy::PolicyKind kind :
       policy::policies_for_model(economy::EconomicModel::BidBased)) {
    sim::RunningStats sla, rel, prof;
    for (std::uint64_t seed : seeds) {
      workload::SyntheticSdscConfig trace;
      trace.job_count = jobs_n;
      trace.seed = seed;
      workload::QosConfig qos;
      qos.seed = seed + 7;
      const workload::WorkloadBuilder builder(trace);
      const auto jobs = builder.build(qos, 0.25, 100.0);
      const auto report =
          service::simulate(jobs, kind, economy::EconomicModel::BidBased);
      sla.add(report.objectives.sla);
      rel.add(report.objectives.reliability);
      prof.add(report.objectives.profitability);
    }
    auto cell = [](const sim::RunningStats& stats) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(1) << stats.mean() << "+-"
          << stats.stddev();
      return out.str();
    };
    std::cout << std::left << std::setw(14) << policy::to_string(kind)
              << std::right << std::setw(18) << cell(sla) << std::setw(18)
              << cell(rel) << std::setw(18) << cell(prof) << '\n';
  }
  return 0;
}
