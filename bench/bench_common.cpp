#include "bench_common.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace utilrisk::bench {

BenchEnv read_env() {
  BenchEnv env;
  if (const char* jobs = std::getenv("REPRO_JOBS")) {
    const long parsed = std::strtol(jobs, nullptr, 10);
    if (parsed > 0) env.jobs = static_cast<std::uint32_t>(parsed);
  }
  if (const char* fresh = std::getenv("REPRO_FRESH")) {
    env.fresh = std::string(fresh) == "1";
  }
  if (const char* out = std::getenv("REPRO_OUT")) {
    env.out_dir = out;
  }
  env.workers = exp::default_worker_count();  // honours REPRO_JOBS_PAR
  std::filesystem::create_directories(env.out_dir);
  return env;
}

exp::ExperimentConfig make_config(const BenchEnv& env,
                                  economy::EconomicModel model,
                                  exp::ExperimentSet set) {
  exp::ExperimentConfig config;
  config.model = model;
  config.set = set;
  config.trace.job_count = env.jobs;
  return config;
}

exp::ResultStore make_store(const BenchEnv& env) {
  if (env.fresh) return exp::ResultStore();
  return exp::ResultStore(env.out_dir + "/results_cache.csv");
}

std::string slugify(const std::string& title) {
  std::string slug;
  slug.reserve(title.size());
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

exp::SweepResult run_sweep(const BenchEnv& env, economy::EconomicModel model,
                           exp::ExperimentSet set, exp::ResultStore& store) {
  exp::ParallelRunner runner(make_config(env, model, set), &store,
                             env.workers);
  const exp::SweepResult sweep = runner.run_sweep();
  const exp::SweepStats& stats = runner.stats();
  std::cout << "[sweep " << economy::to_string(model) << "/Set "
            << exp::to_string(set) << ": " << stats.simulations
            << " simulations on " << runner.worker_count() << " worker(s), "
            << stats.cache_hits << " cells from cache, " << stats.deduped
            << " deduped in flight, " << stats.events << " events in "
            << stats.wall_seconds << " s]\n";
  return sweep;
}

void emit_separate_figure(const BenchEnv& env, economy::EconomicModel model,
                          const std::string& figure_name) {
  exp::ResultStore store = make_store(env);
  for (exp::ExperimentSet set :
       {exp::ExperimentSet::A, exp::ExperimentSet::B}) {
    const exp::SweepResult sweep = run_sweep(env, model, set, store);
    for (core::Objective objective : core::kAllObjectives) {
      const std::string title =
          figure_name + " " + economy::to_string(model) + " Set " +
          exp::to_string(set) + ": " + std::string(core::to_string(objective));
      const core::RiskPlot plot = exp::separate_plot(sweep, objective, title);
      emit_plot(env, plot, slugify(title));
    }
  }
}

void emit_integrated3_figure(const BenchEnv& env,
                             economy::EconomicModel model,
                             const std::string& figure_name) {
  exp::ResultStore store = make_store(env);
  for (exp::ExperimentSet set :
       {exp::ExperimentSet::A, exp::ExperimentSet::B}) {
    const exp::SweepResult sweep = run_sweep(env, model, set, store);
    for (const auto& combo : exp::three_objective_combinations()) {
      const std::string title = figure_name + " " +
                                economy::to_string(model) + " Set " +
                                exp::to_string(set) + ": " +
                                exp::combination_label(combo);
      const core::RiskPlot plot = exp::integrated_plot(sweep, combo, title);
      emit_plot(env, plot, slugify(title));
    }
  }
}

void emit_integrated4_figure(const BenchEnv& env,
                             economy::EconomicModel model,
                             const std::string& figure_name) {
  exp::ResultStore store = make_store(env);
  const std::vector<core::Objective> all(core::kAllObjectives.begin(),
                                         core::kAllObjectives.end());
  for (exp::ExperimentSet set :
       {exp::ExperimentSet::A, exp::ExperimentSet::B}) {
    const exp::SweepResult sweep = run_sweep(env, model, set, store);
    const std::string title = figure_name + " " + economy::to_string(model) +
                              " Set " + exp::to_string(set) + ": " +
                              exp::combination_label(all);
    const core::RiskPlot plot = exp::integrated_plot(sweep, all, title);
    emit_plot(env, plot, slugify(title));
  }
}

void emit_plot(const BenchEnv& env, const core::RiskPlot& plot,
               const std::string& slug) {
  std::cout << "\n==== " << plot.title << " ====\n";
  core::write_ascii_scatter(std::cout, plot);

  const auto ranked_perf =
      core::rank_policies(plot.series, core::RankBy::BestPerformance);
  core::write_ranking_table(std::cout, ranked_perf,
                            core::RankBy::BestPerformance);

  const std::string base = env.out_dir + "/" + slug;
  std::ofstream csv(base + ".csv");
  core::write_plot_csv(csv, plot);
  std::ofstream dat(base + ".dat");
  core::write_plot_gnuplot(dat, plot);
  std::ofstream script(base + ".gp");
  core::write_gnuplot_script(script, plot, slug + ".dat", slug + ".png");
  std::cout << "[wrote " << base << ".{csv,dat,gp}]\n";
}

}  // namespace utilrisk::bench
