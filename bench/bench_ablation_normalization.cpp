// Ablation: sensitivity of the integrated risk analysis to the wait-
// normalisation strategy (the one formula the paper leaves unspecified).
// Re-aggregates the same simulations under MinMaxAcrossPolicies and
// Reciprocal and emits both all-four-objective plots for comparison.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();
  exp::ResultStore store = bench::make_store(env);

  const std::vector<core::Objective> all(core::kAllObjectives.begin(),
                                         core::kAllObjectives.end());
  for (core::WaitNormalization strategy :
       {core::WaitNormalization::MinMaxAcrossPolicies,
        core::WaitNormalization::Reciprocal}) {
    exp::ExperimentConfig config = bench::make_config(
        env, economy::EconomicModel::BidBased, exp::ExperimentSet::B);
    config.normalization.wait = strategy;
    exp::ExperimentRunner runner(config, &store);
    const exp::SweepResult sweep = runner.run_sweep();
    const std::string title = std::string("Ablation wait-normalisation=") +
                              core::to_string(strategy) +
                              " bid Set B: all objectives";
    bench::emit_plot(env, exp::integrated_plot(sweep, all, title),
                     bench::slugify(title));
  }
  std::cout << "\nBoth aggregations reuse the same simulations; only the\n"
               "wait panel's normalisation differs. Rankings should agree\n"
               "on the leaders if the analysis is robust.\n";
  return 0;
}
