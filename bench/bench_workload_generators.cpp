// Workload-generator bench: generation throughput of every registered
// method plus the headline-conclusion check on the three extension
// traces (zipf multi-tenant, flash-crowd, Daly checkpoint-restart).
//
// Part one times `generate_jobs(spec)` for each builtin method at
// REPRO_JOBS jobs and prints jobs/s with shape statistics (mean
// inter-arrival, mean runtime, mean procs, distinct tenants) so a
// regression in either speed or distribution shape is visible in one
// table. Part two replays the bid-model policy set on each extension
// trace and reports whether LibraRiskD >= Libra on reliability and
// profitability still holds off the paper's SDSC-matched trace.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "policy/policy.hpp"
#include "service/computing_service.hpp"
#include "workload/generator.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();
  const std::uint32_t jobs_n = std::min<std::uint32_t>(env.jobs, 20000);

  const std::vector<std::string> specs = {
      "sdsc",
      "lublin",
      "zipf:theta=0.9,tenants=10000",
      "flash:base=sdsc,peak=8",
      "daly:interval=0",
  };

  std::cout << "== generation throughput (" << jobs_n << " jobs/method) ==\n";
  std::cout << std::left << std::setw(30) << "spec" << std::right
            << std::setw(12) << "jobs/s" << std::setw(12) << "interarr"
            << std::setw(12) << "runtime" << std::setw(8) << "procs"
            << std::setw(10) << "tenants\n";
  for (const std::string& text : specs) {
    workload::GeneratorSpec spec = workload::GeneratorSpec::parse(text);
    spec.set_default("jobs", std::to_string(jobs_n));
    spec.set_default("seed", "42");

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<workload::Job> jobs = workload::generate_jobs(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();

    double interarrival = 0.0, runtime = 0.0, procs = 0.0;
    std::set<std::uint32_t> tenants;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (i > 0) interarrival += jobs[i].submit_time - jobs[i - 1].submit_time;
      runtime += jobs[i].actual_runtime;
      procs += static_cast<double>(jobs[i].procs);
      tenants.insert(jobs[i].tenant);
    }
    const double n = static_cast<double>(jobs.size());
    std::cout << std::left << std::setw(30) << text << std::right
              << std::fixed << std::setprecision(0) << std::setw(12)
              << (seconds > 0.0 ? n / seconds : 0.0) << std::setprecision(1)
              << std::setw(12) << (n > 1 ? interarrival / (n - 1) : 0.0)
              << std::setw(12) << runtime / n << std::setprecision(1)
              << std::setw(8) << procs / n << std::setw(10) << tenants.size()
              << '\n';
  }

  const std::uint32_t sim_n = std::min<std::uint32_t>(jobs_n, 3000);
  std::cout << "\n== headline check on extension traces (" << sim_n
            << " jobs, bid model) ==\n";
  for (const std::string& text :
       {std::string("zipf:theta=0.9"), std::string("flash:base=sdsc,peak=8"),
        std::string("daly:interval=3600")}) {
    workload::GeneratorSpec spec = workload::GeneratorSpec::parse(text);
    spec.set_default("jobs", std::to_string(sim_n));
    spec.set_default("seed", "42");
    const std::vector<workload::Job> trace = workload::generate_jobs(spec);
    const std::vector<workload::Job> jobs =
        workload::WorkloadBuilder(trace).build(workload::QosConfig{}, 0.25,
                                               100.0);
    double libra_rel = 0.0, libra_prof = 0.0;
    double riskd_rel = 0.0, riskd_prof = 0.0;
    for (policy::PolicyKind kind :
         policy::policies_for_model(economy::EconomicModel::BidBased)) {
      const auto report =
          service::simulate(jobs, kind, economy::EconomicModel::BidBased);
      if (kind == policy::PolicyKind::Libra) {
        libra_rel = report.objectives.reliability;
        libra_prof = report.objectives.profitability;
      }
      if (kind == policy::PolicyKind::LibraRiskD) {
        riskd_rel = report.objectives.reliability;
        riskd_prof = report.objectives.profitability;
      }
    }
    std::cout << std::left << std::setw(26) << text
              << " LibraRiskD vs Libra — reliability "
              << (riskd_rel >= libra_rel ? "HOLDS" : "FAILS")
              << ", profitability "
              << (riskd_prof >= libra_prof ? "HOLDS" : "FAILS") << '\n';
  }
  return 0;
}
