// Regenerates Fig. 2: the bid-based model's penalty function — utility as
// a function of completion time for a representative job. Utility equals
// the full budget until the deadline, then drops linearly at the penalty
// rate, through zero and unbounded below.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "economy/penalty.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::Job job;
  job.id = 1;
  job.submit_time = 0.0;
  job.actual_runtime = 3600.0;
  job.deadline_duration = 2.0 * 3600.0;
  job.budget = 4.0 * 3600.0;  // budget factor 4 at $1/s
  job.penalty_rate = job.budget / job.deadline_duration;  // erodes in one window

  std::cout << "Fig. 2: utility vs completion time (budget=$" << job.budget
            << ", deadline=" << job.deadline_duration
            << "s, penalty rate=$" << job.penalty_rate << "/s)\n";
  std::cout << "breakeven delay (utility crosses 0): "
            << economy::breakeven_delay(job) << " s after submission\n\n";
  std::cout << "finish_time_s  delay_s  utility_$\n";

  const std::string path = env.out_dir + "/fig2_penalty.csv";
  std::ofstream csv(path);
  csv << "finish_time,delay,utility\n";
  for (double t = 0.0; t <= 6.0 * 3600.0; t += 900.0) {
    const double delay = economy::deadline_delay(job, t);
    const double utility = economy::bid_utility(job, t);
    std::cout << t << "  " << delay << "  " << utility << '\n';
    csv << t << ',' << delay << ',' << utility << '\n';
  }
  std::cout << "[wrote " << path << "]\n";
  return 0;
}
