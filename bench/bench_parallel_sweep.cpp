// Serial vs. parallel sweep wall-clock: runs the same fresh
// (cache-bypassed) Table VI sweep at 1/2/4/hardware_concurrency workers,
// asserts bit-identity against the serial path, and writes
// <out>/BENCH_parallel_sweep.json (per-worker-count wall clock, speedup,
// parallel efficiency, dedup/cache statistics) so the perf trajectory is
// machine-readable from this PR onward.
//
// Honours REPRO_JOBS (trace size; keep it small — every worker count
// re-simulates the whole sweep) and REPRO_JOBS_PAR (top worker count).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/parallel.hpp"
#include "verify/golden.hpp"

namespace {

using namespace utilrisk;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t simulations = 0;
  bool identical_to_serial = false;
};

}  // namespace

int main() {
  bench::BenchEnv env = bench::read_env();
  // The default figure-bench trace (5000 jobs) would make four full
  // re-simulations of the sweep painfully slow; this bench is about
  // scaling shape, not absolute cost, so cap the default.
  if (std::getenv("REPRO_JOBS") == nullptr) env.jobs = 400;

  const exp::ExperimentConfig config = bench::make_config(
      env, economy::EconomicModel::BidBased, exp::ExperimentSet::B);
  const std::vector<policy::PolicyKind> policies = {
      policy::PolicyKind::Libra, policy::PolicyKind::LibraRiskD};

  std::vector<std::size_t> worker_counts = {1, 2, 4,
                                            exp::default_worker_count()};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());

  std::cout << "parallel sweep bench: " << env.jobs << " jobs/trace, "
            << policies.size() << " policies, 12 scenarios, worker counts";
  for (std::size_t w : worker_counts) std::cout << ' ' << w;
  std::cout << "\n";

  // Serial baseline: ExperimentRunner forced onto its serial path with a
  // fresh in-memory store (cache-bypassed, like every measurement below).
  exp::SweepResult serial_sweep;
  double serial_wall = 0.0;
  {
    exp::ResultStore store;
    exp::ExperimentRunner runner(config, &store, 1);
    const double start = now_seconds();
    serial_sweep = runner.run_sweep(policies);
    serial_wall = now_seconds() - start;
    std::cout << "  serial reference: " << runner.simulations_run()
              << " simulations, " << serial_wall << " s\n";
  }
  // One comparable 64-bit value for the whole sweep; every parallel run
  // below must reproduce it exactly (a second line of defence beside
  // bit_identical, and the value the JSON output exposes to trend tooling).
  const std::uint64_t serial_digest = verify::sweep_digest(serial_sweep);
  std::cout << "  serial sweep digest: " << verify::to_hex(serial_digest)
            << "\n";

  std::vector<Measurement> runs;
  std::size_t cells = 0;
  std::size_t unique_runs = 0;
  std::size_t deduped = 0;
  for (std::size_t workers : worker_counts) {
    exp::ResultStore store;
    exp::ParallelRunner runner(config, &store, workers);
    const double start = now_seconds();
    const exp::SweepResult sweep = runner.run_sweep(policies);
    Measurement m;
    m.workers = workers;
    m.wall_seconds = now_seconds() - start;
    m.events = runner.stats().events;
    m.simulations = runner.stats().simulations;
    m.identical_to_serial = exp::bit_identical(sweep, serial_sweep) &&
                            verify::sweep_digest(sweep) == serial_digest;
    runs.push_back(m);
    unique_runs = runner.stats().simulations;
    deduped = runner.stats().deduped;
    cells = unique_runs + deduped + runner.stats().cache_hits;
    std::cout << "  " << workers << " worker(s): " << m.wall_seconds
              << " s, speedup " << serial_wall / m.wall_seconds
              << ", efficiency "
              << serial_wall / m.wall_seconds / static_cast<double>(workers)
              << (m.identical_to_serial ? "" : "  [MISMATCH vs serial!]")
              << "\n";
  }

  // Warm re-run at the top worker count: every cell must come from the
  // store (the cross-figure cache behaviour the figure benches rely on).
  double warm_hit_rate = 0.0;
  {
    exp::ResultStore store;
    exp::ParallelRunner runner(config, &store,
                               worker_counts.back());
    (void)runner.run_sweep(policies);
    exp::SweepStats before = runner.stats();
    (void)runner.run_sweep(policies);
    const std::size_t warm_cells = (before.cache_hits + before.deduped +
                                    before.simulations);
    const std::size_t warm_hits = runner.stats().cache_hits -
                                  before.cache_hits;
    warm_hit_rate = warm_cells == 0
                        ? 0.0
                        : static_cast<double>(warm_hits) /
                              static_cast<double>(warm_cells);
    std::cout << "  warm re-run cache hit rate: " << warm_hit_rate << "\n";
  }

  const std::string path = env.out_dir + "/BENCH_parallel_sweep.json";
  std::ofstream json(path);
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"parallel_sweep\",\n"
       << "  \"trace_jobs\": " << env.jobs << ",\n"
       << "  \"policies\": " << policies.size() << ",\n"
       << "  \"matrix_cells\": " << cells << ",\n"
       << "  \"unique_runs\": " << unique_runs << ",\n"
       << "  \"in_flight_deduped\": " << deduped << ",\n"
       << "  \"dedup_rate\": "
       << (cells == 0 ? 0.0
                      : static_cast<double>(deduped) /
                            static_cast<double>(cells))
       << ",\n"
       << "  \"warm_cache_hit_rate\": " << warm_hit_rate << ",\n"
       << "  \"sweep_digest\": \"" << verify::to_hex(serial_digest)
       << "\",\n"
       << "  \"hardware_concurrency\": "
       << exp::default_worker_count() << ",\n"
       << "  \"serial_wall_seconds\": " << serial_wall << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    json << "    {\"workers\": " << m.workers << ", \"wall_seconds\": "
         << m.wall_seconds << ", \"speedup\": "
         << serial_wall / m.wall_seconds << ", \"efficiency\": "
         << serial_wall / m.wall_seconds / static_cast<double>(m.workers)
         << ", \"events\": " << m.events << ", \"simulations\": "
         << m.simulations << ", \"bit_identical_to_serial\": "
         << (m.identical_to_serial ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "[wrote " << path << "]\n";

  const bool all_identical =
      std::all_of(runs.begin(), runs.end(),
                  [](const Measurement& m) { return m.identical_to_serial; });
  if (!all_identical) {
    std::cerr << "FAIL: parallel sweep diverged from the serial path\n";
    return 1;
  }
  return 0;
}
