// Regenerates Table VI: the twelve scenarios and their varying values,
// with the defaults used everywhere else marked.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace utilrisk;
  (void)bench::read_env();

  std::cout << "Table VI: varying values of twelve scenarios\n";
  std::cout << "(defaults: 20% high urgency, arrival delay factor 0.25,\n"
            << " inaccuracy 0% in Set A / 100% in Set B, bias 2,\n"
            << " high:low ratio 4, low-value mean 4 for deadline, budget\n"
            << " and penalty; see DESIGN.md section 3)\n\n";

  std::cout << std::left << std::setw(22) << "Scenario" << "Values\n";
  for (const exp::Scenario& scenario : exp::all_scenarios()) {
    std::cout << std::left << std::setw(22) << scenario.name;
    for (double value : scenario.values) std::cout << value << ' ';
    std::cout << '\n';
  }

  // Show that each scenario really only perturbs its own knob.
  const exp::ExperimentConfig config;
  const exp::RunSettings defaults = config.default_settings();
  std::cout << "\ndefault run key fragment:\n  " << defaults.key_fragment()
            << '\n';
  for (const exp::Scenario& scenario : exp::all_scenarios()) {
    const exp::RunSettings v0 = scenario.settings_for(defaults, 0);
    std::cout << scenario.name << " @ " << scenario.values[0] << ":\n  "
              << v0.key_fragment() << '\n';
  }
  return 0;
}
