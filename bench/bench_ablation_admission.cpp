// Ablation: the generous admission control of the backfilling policies.
// Paper §5.2: "we find that these policies without job admission control
// perform much worse, especially when deadlines of jobs are short."
// This bench runs FCFS/SJF/EDF-BF with and without admission control on
// relaxed (low-value mean 4) and tight (low-value mean 1) deadlines.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "policy/queue_policy.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::SyntheticSdscConfig trace;
  trace.job_count = std::min<std::uint32_t>(env.jobs, 2000);
  const workload::WorkloadBuilder builder(trace);

  const struct {
    const char* label;
    double deadline_low_mean;
  } deadline_cases[] = {{"relaxed deadlines (low mean 4)", 4.0},
                        {"tight deadlines (low mean 1)", 1.0}};

  for (const auto& deadline_case : deadline_cases) {
    workload::QosConfig qos;
    qos.deadline.low_value_mean = deadline_case.deadline_low_mean;
    const auto jobs = builder.build(qos, 0.25, /*inaccuracy=*/100.0);

    std::cout << "\nAdmission-control ablation, " << deadline_case.label
              << " (bid model, " << trace.job_count << " jobs):\n";
    std::cout << std::left << std::setw(10) << "policy" << std::setw(11)
              << "admission" << std::right << std::setw(8) << "SLA%"
              << std::setw(10) << "Rel%" << std::setw(12) << "Prof%"
              << std::setw(12) << "Wait(s)\n";

    for (policy::QueueOrder order :
         {policy::QueueOrder::ArrivalTime,
          policy::QueueOrder::ShortestEstimate,
          policy::QueueOrder::EarliestDeadline}) {
      for (policy::AdmissionControl admission :
           {policy::AdmissionControl::Generous,
            policy::AdmissionControl::None}) {
        const auto report = service::simulate(
            jobs,
            [order, admission](const policy::PolicyContext& context,
                               policy::PolicyHost& host) {
              return std::make_unique<policy::QueueBackfillPolicy>(
                  context, host, order, admission);
            },
            economy::EconomicModel::BidBased);
        std::cout << std::left << std::setw(10)
                  << policy::to_string(order) << std::setw(11)
                  << policy::to_string(admission) << std::right << std::fixed
                  << std::setprecision(2) << std::setw(8)
                  << report.objectives.sla << std::setw(10)
                  << report.objectives.reliability << std::setw(12)
                  << report.objectives.profitability << std::setw(12)
                  << report.objectives.wait << '\n';
      }
    }
  }
  std::cout << "\nWithout admission control every queued job eventually\n"
               "runs: reliability and (bid-model) profitability collapse as\n"
               "hopeless jobs accrue unbounded penalties — most sharply\n"
               "under tight deadlines, as the paper observes.\n";
  return 0;
}
