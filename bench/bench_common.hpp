// Shared plumbing for the figure-regeneration benches.
//
// Environment knobs:
//   REPRO_JOBS      job count of the synthetic trace (default 5000)
//   REPRO_FRESH     set to 1 to bypass the on-disk result cache
//   REPRO_OUT       output directory for .csv/.dat artefacts
//                   (default ./bench_out)
//   REPRO_JOBS_PAR  worker threads for the sweep fan-out
//                   (default hardware_concurrency())
#pragma once

#include <string>
#include <vector>

#include "core/report.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "exp/parallel.hpp"

namespace utilrisk::bench {

struct BenchEnv {
  std::uint32_t jobs = 5000;
  bool fresh = false;
  std::string out_dir = "bench_out";
  std::size_t workers = 0;  ///< 0 = REPRO_JOBS_PAR / hardware_concurrency
};

/// Reads the environment knobs (creating the output directory).
[[nodiscard]] BenchEnv read_env();

/// Experiment configuration shared by every figure bench: the defaults of
/// DESIGN.md §3 with the requested model/set.
[[nodiscard]] exp::ExperimentConfig make_config(const BenchEnv& env,
                                                economy::EconomicModel model,
                                                exp::ExperimentSet set);

/// Shared on-disk result store ("<out_dir>/results_cache.csv"), or an
/// in-memory store when `fresh` is set.
[[nodiscard]] exp::ResultStore make_store(const BenchEnv& env);

/// Prints the plot (ASCII scatter + ranking tables) to stdout and writes
/// <out_dir>/<slug>.csv and <slug>.dat.
void emit_plot(const BenchEnv& env, const core::RiskPlot& plot,
               const std::string& slug);

/// Lowercase, filesystem-safe slug of a title.
[[nodiscard]] std::string slugify(const std::string& title);

/// Runs (or loads from cache) the full Table VI sweep for one model/set,
/// fanning cache misses out across env.workers threads and printing the
/// wall-clock / events-processed counters.
[[nodiscard]] exp::SweepResult run_sweep(const BenchEnv& env,
                                         economy::EconomicModel model,
                                         exp::ExperimentSet set,
                                         exp::ResultStore& store);

/// Emits the separate-risk figure (paper Figs 3 / 6): one panel per
/// objective per experiment set.
void emit_separate_figure(const BenchEnv& env, economy::EconomicModel model,
                          const std::string& figure_name);

/// Emits the integrated three-objective figure (Figs 4 / 7): four
/// leave-one-out panels per experiment set.
void emit_integrated3_figure(const BenchEnv& env,
                             economy::EconomicModel model,
                             const std::string& figure_name);

/// Emits the integrated four-objective figure (Figs 5 / 8).
void emit_integrated4_figure(const BenchEnv& env,
                             economy::EconomicModel model,
                             const std::string& figure_name);

}  // namespace utilrisk::bench
