// Extension experiment: LibraReserve (deferred admission on advance
// reservations) against the Libra family on the four objectives, both
// estimate-accuracy sets. Quantifies the wait/SLA/reliability trade the
// objective framework was built to expose — an a-priori analysis a
// provider would run before deploying the extension.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace utilrisk;
  const bench::BenchEnv env = bench::read_env();

  workload::SyntheticSdscConfig trace;
  trace.job_count = std::min<std::uint32_t>(env.jobs, 2000);
  const workload::WorkloadBuilder builder(trace);

  for (double inaccuracy : {0.0, 100.0}) {
    const auto jobs = builder.build(workload::QosConfig{}, 0.25, inaccuracy);
    std::cout << "\nLibra family + LibraReserve (bid model, inaccuracy "
              << inaccuracy << "%, " << trace.job_count << " jobs):\n";
    std::cout << std::left << std::setw(14) << "policy" << std::right
              << std::setw(8) << "SLA%" << std::setw(10) << "Rel%"
              << std::setw(10) << "Prof%" << std::setw(12) << "Wait(s)"
              << std::setw(8) << "Util\n";
    for (policy::PolicyKind kind :
         {policy::PolicyKind::Libra, policy::PolicyKind::LibraRiskD,
          policy::PolicyKind::LibraReserve}) {
      const auto report =
          service::simulate(jobs, kind, economy::EconomicModel::BidBased);
      std::cout << std::left << std::setw(14) << policy::to_string(kind)
                << std::right << std::fixed << std::setprecision(2)
                << std::setw(8) << report.objectives.sla << std::setw(10)
                << report.objectives.reliability << std::setw(10)
                << report.objectives.profitability << std::setw(12)
                << report.objectives.wait << std::setw(8)
                << report.utilization << '\n';
    }
  }
  std::cout << "\nLibraReserve trades Libra's zero wait for whole-window\n"
               "guarantees: higher reliability and profitability under\n"
               "inaccurate estimates, lower SLA acceptance and non-zero\n"
               "wait everywhere.\n";
  return 0;
}
