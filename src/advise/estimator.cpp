#include "advise/estimator.hpp"

#include <cmath>

namespace utilrisk::advise {

RollingWelford::RollingWelford(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) ring_.resize(capacity_);
}

void RollingWelford::push(double x) {
  if (capacity_ > 0 && count_ == capacity_) {
    downdate(ring_[head_]);
    ring_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  } else if (capacity_ > 0) {
    ring_[(head_ + count_) % capacity_] = x;
  }
  ++count_;
  if (capacity_ > 0 && count_ > capacity_) count_ = capacity_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RollingWelford::downdate(double x) {
  // Exact inverse of the update: with n samples including x, remove x.
  const auto n = static_cast<double>(count_);
  if (count_ <= 1) {
    mean_ = 0.0;
    m2_ = 0.0;
    count_ = 0;
    return;
  }
  const double mean_without = (n * mean_ - x) / (n - 1.0);
  m2_ -= (x - mean_without) * (x - mean_);
  // Numerical guard: M2 is a sum of squares and can only go (slightly)
  // negative through rounding in the downdate chain.
  if (m2_ < 0.0) m2_ = 0.0;
  mean_ = mean_without;
  --count_;
}

double RollingWelford::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RollingWelford::stddev() const { return std::sqrt(variance()); }

void RollingWelford::reset() {
  head_ = 0;
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

ObjectiveEstimators make_objective_estimators(std::size_t capacity) {
  return {RollingWelford(capacity), RollingWelford(capacity),
          RollingWelford(capacity), RollingWelford(capacity)};
}

}  // namespace utilrisk::advise
