// Online a-priori risk advisor: the serving path's observe -> analyze ->
// act loop (docs/ADVISOR.md).
//
// The offline advisor (core/advisor.hpp) scores policies against a
// finished sweep; this engine scores them against the *live* workload mix
// an AdmissionEngine is currently admitting. Per routing key it keeps
//
//  - a rolling window of the last W admitted jobs (the observed mix),
//  - streaming Welford estimators of the four paper objectives as the
//    live service realises them (estimator.hpp),
//  - per-candidate-policy estimators fed by *shadow evaluations*: at
//    deterministic switch points the window is replayed through every
//    candidate policy on a scratch simulator (service::simulate), the
//    resulting objectives are normalised across the candidates
//    (core/normalization.hpp) and pushed into that candidate's
//    estimators. The mean - lambda * sigma machinery (core risk points +
//    integrated_risk) then ranks the candidates for the configured
//    objective weights.
//
// Determinism contract: everything here is a pure function of the
// sequence of (job, objective-sample) observations for one key — no
// wall clock, no entropy, no cross-key coupling. Switch points fire
// every `advise_every` decided requests *of that key's own stream*, so
// the decision (and any resulting policy switch) reproduces identically
// under replay, under resharding and under request interleaving — the
// same invariant the per-key isolated TenantState gives admission
// decisions (serve/engine.hpp). Protocol `advise` queries are read-only:
// they never touch the estimators, so issuing them cannot perturb the
// decision digest.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "advise/estimator.hpp"
#include "cluster/node.hpp"
#include "core/advisor.hpp"
#include "core/objectives.hpp"
#include "economy/money.hpp"
#include "policy/factory.hpp"
#include "policy/first_reward.hpp"
#include "workload/job.hpp"

namespace utilrisk::advise {

/// Knobs of the online advisor (CLI --advise-*).
struct OnlineAdvisorConfig {
  /// Scoring preferences: objective weights + risk aversion (lambda).
  core::AdvisorConfig scoring;
  /// Live policy switching at switch points ("--advise-auto"). Implies
  /// scheduled evaluations.
  bool auto_switch = false;
  /// Scheduled-evaluation cadence: every N decided requests per routing
  /// key. 0 = no scheduled evaluations (the `advise` verb still answers
  /// with an on-demand read-only evaluation).
  std::uint64_t advise_every = 0;
  /// Rolling job window length per key (observed mix; also the shadow
  /// replay length).
  std::size_t window = 64;

  /// True when switch-point evaluations run at all.
  [[nodiscard]] bool scheduled() const {
    return auto_switch || advise_every > 0;
  }
  /// The cadence actually used (auto mode defaults to 1024 when
  /// `advise_every` was left 0).
  [[nodiscard]] std::uint64_t effective_every() const {
    return advise_every > 0 ? advise_every : 1024;
  }
  /// Throws std::invalid_argument (structured, core::AdvisorConfig rules)
  /// on NaN/negative/non-unit weights, invalid risk aversion or a window
  /// shorter than 2 jobs.
  void validate() const;
};

/// Simulation context the shadow evaluations replay under — mirrors the
/// admission engine's own world so shadow objectives are comparable with
/// the live ones.
struct ShadowContext {
  economy::EconomicModel model = economy::EconomicModel::CommodityMarket;
  cluster::MachineConfig machine;
  economy::PricingParams pricing;
  policy::FirstRewardParams first_reward;
};

/// One candidate's rank entry under the mean - lambda * sigma score.
struct RankedPolicy {
  policy::PolicyKind kind = policy::PolicyKind::Libra;
  std::string policy;         ///< display name (policy::to_string)
  double score = 0.0;         ///< performance - lambda * volatility
  double performance = 0.0;   ///< mu of the weighted objective combination
  double volatility = 0.0;    ///< sigma of the weighted combination
};

/// Outcome of one scheduled switch-point evaluation.
struct Evaluation {
  std::vector<RankedPolicy> ranked;  ///< best first; deterministic order
  policy::PolicyKind recommended = policy::PolicyKind::Libra;
  /// auto_switch decided to change the key's active policy. The caller
  /// (AdmissionEngine) performs the actual service swap and folds the
  /// switch event into its decision digest and journal.
  bool switched = false;
  policy::PolicyKind from = policy::PolicyKind::Libra;
  policy::PolicyKind to = policy::PolicyKind::Libra;
  std::uint64_t at = 0;  ///< the key's decided-request count at the event
};

/// Read-only advisor state snapshot, the body of an `advise` response.
struct Snapshot {
  std::string active;              ///< the key's active policy name
  std::string recommended;         ///< best-ranked candidate
  std::uint64_t decided = 0;       ///< requests decided for this key
  std::uint64_t evaluations = 0;   ///< scheduled evaluations so far
  std::uint64_t switches = 0;      ///< live policy switches so far
  std::uint64_t samples = 0;       ///< live objective samples in window
  /// Live observed objective estimates (wait, SLA, reliability,
  /// profitability — raw objective units, not normalised).
  std::array<double, 4> estimate_mean{};
  std::array<double, 4> estimate_stddev{};
  std::vector<RankedPolicy> ranked;
  /// FNV-1a fold over (key, active, ranked names/scores): two identical
  /// request histories answer with identical digests (advise_test.cpp).
  std::uint64_t digest = 0;
};

/// Per-engine advisor: owns the per-routing-key advisor state. Not
/// thread-safe — it lives on the engine thread like the rest of the
/// decision state.
class AdvisorEngine {
 public:
  AdvisorEngine(const OnlineAdvisorConfig& config,
                const ShadowContext& context,
                policy::PolicyKind initial_policy);

  /// Books one admission outcome: the admitted job joins the key's
  /// rolling window and `live` (the key's cumulative objective values
  /// after this decision) feeds the observed estimators.
  void observe(std::uint64_t key, const workload::Job& job,
               const core::ObjectiveValues& live);

  /// True when the key's decided-request count sits on a switch-point
  /// boundary (and the window holds enough jobs to evaluate).
  [[nodiscard]] bool at_switch_point(std::uint64_t key) const;

  /// Scheduled switch-point evaluation: shadow-replays the window through
  /// every candidate, records the normalised outcomes into the
  /// candidates' estimators and ranks them. Under auto_switch the key's
  /// active policy advances to the recommendation (Evaluation::switched
  /// tells the caller to act).
  [[nodiscard]] Evaluation evaluate(std::uint64_t key);

  /// Read-only query for the `advise` protocol verb, scored under the
  /// *caller's* weights/risk aversion. Ranks from the candidates'
  /// estimator state; before any scheduled evaluation it falls back to a
  /// one-shot shadow evaluation (still read-only) when the window allows,
  /// else returns an empty ranking. Never mutates advisor state.
  [[nodiscard]] Snapshot query(std::uint64_t key,
                               const std::array<double, 4>& weights,
                               double risk_aversion) const;

  /// The candidate set (policies_for_model of the shadow context).
  [[nodiscard]] const std::vector<policy::PolicyKind>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] const OnlineAdvisorConfig& config() const { return config_; }
  /// The key's current active policy (initial policy before any switch).
  [[nodiscard]] policy::PolicyKind active_policy(std::uint64_t key) const;
  /// Session totals across keys.
  [[nodiscard]] std::uint64_t total_evaluations() const {
    return total_evaluations_;
  }
  [[nodiscard]] std::uint64_t total_switches() const {
    return total_switches_;
  }

 private:
  struct KeyState {
    std::deque<workload::Job> window;
    ObjectiveEstimators observed;
    /// candidate_stats[i] tracks candidates_[i], over the normalised
    /// outcomes of the scheduled shadow evaluations.
    std::vector<ObjectiveEstimators> candidate_stats;
    std::uint64_t decided = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t switches = 0;
    policy::PolicyKind active = policy::PolicyKind::Libra;
  };

  [[nodiscard]] KeyState& state_for(std::uint64_t key);
  /// Shadow-replays the key's window through every candidate; returns
  /// normalized[candidate][objective] in [0, 1]. Read-only.
  [[nodiscard]] std::vector<std::array<double, 4>> shadow_evaluate(
      const KeyState& state) const;
  /// Ranks candidates from per-candidate risk points under the given
  /// preferences (score desc, volatility asc, name asc — the offline
  /// advisor's deterministic order).
  [[nodiscard]] std::vector<RankedPolicy> rank(
      const std::vector<std::array<core::RiskPoint, 4>>& points,
      const std::array<double, 4>& weights, double risk_aversion) const;

  OnlineAdvisorConfig config_;
  ShadowContext context_;
  policy::PolicyKind initial_policy_;
  std::vector<policy::PolicyKind> candidates_;
  std::map<std::uint64_t, KeyState> keys_;
  std::uint64_t total_evaluations_ = 0;
  std::uint64_t total_switches_ = 0;
};

}  // namespace utilrisk::advise
