// Streaming estimators for the online risk advisor (docs/ADVISOR.md).
//
// The serve-path advisor needs mean/variance of the paper's four
// objectives over a *moving* horizon of recent observations, updated once
// per admission decision without rescanning history. RollingWelford keeps
// Welford's online mean/M2 recurrence over a fixed-capacity window by
// pairing the classic update with its exact inverse (the "downdate"):
//
//   update  (n-1 -> n):   mean += (x - mean) / n
//                         M2   += (x - mean_old) * (x - mean_new)
//   downdate (n -> n-1):  mean' = (n * mean - x) / (n - 1)
//                         M2'  = M2 - (x - mean') * (x - mean)
//
// Evicting the oldest sample and admitting the newest is therefore O(1),
// and the estimate is *exactly* the Welford statistic of the samples
// currently in the window (advise_test.cpp checks it against a batch
// reference on seeded streams). Everything here is plain arithmetic on
// the values pushed — no clocks, no entropy — so two identical request
// sequences produce bit-identical estimates, which the advisor's
// deterministic switch points rely on (docs/DETERMINISM.md).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace utilrisk::advise {

/// Welford mean/variance over the last `capacity` pushed samples.
class RollingWelford {
 public:
  /// `capacity` = window length; 0 behaves as an unbounded stream.
  explicit RollingWelford(std::size_t capacity = 0);

  /// Admits `x`, evicting the oldest sample when the window is full.
  void push(double x);

  /// Samples currently in the window.
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Mean of the windowed samples (0 when empty).
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divide by n — eqn 6 of the paper uses the
  /// population stddev); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Population standard deviation, sigma of the mean - lambda * sigma
  /// risk-adjusted score.
  [[nodiscard]] double stddev() const;

  /// Drops every sample (capacity is kept).
  void reset();

 private:
  void downdate(double x);

  std::size_t capacity_;
  /// Ring buffer of the windowed samples, oldest at `head_`.
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// One estimator per paper objective (core/objectives.hpp order: wait,
/// SLA, reliability, profitability) — the advisor tracks both the live
/// observed mix and each candidate policy's shadow evaluations this way.
using ObjectiveEstimators = std::array<RollingWelford, 4>;

/// Convenience: four equal-capacity estimators.
[[nodiscard]] ObjectiveEstimators make_objective_estimators(
    std::size_t capacity);

}  // namespace utilrisk::advise
