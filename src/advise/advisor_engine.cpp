#include "advise/advisor_engine.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "core/integrated_risk.hpp"
#include "core/normalization.hpp"
#include "service/computing_service.hpp"
#include "verify/digest.hpp"

namespace utilrisk::advise {

void OnlineAdvisorConfig::validate() const {
  scoring.validate();
  if (window < 2) {
    throw std::invalid_argument("advisor: window must be >= 2 jobs");
  }
}

AdvisorEngine::AdvisorEngine(const OnlineAdvisorConfig& config,
                             const ShadowContext& context,
                             policy::PolicyKind initial_policy)
    : config_(config), context_(context), initial_policy_(initial_policy) {
  config_.validate();
  candidates_ = policy::policies_for_model(context_.model);
  // The engine's configured policy always takes part in the comparison,
  // even when it sits outside the model's usual candidate set.
  if (std::find(candidates_.begin(), candidates_.end(), initial_policy_) ==
      candidates_.end()) {
    candidates_.push_back(initial_policy_);
  }
}

AdvisorEngine::KeyState& AdvisorEngine::state_for(std::uint64_t key) {
  auto [it, inserted] = keys_.try_emplace(key);
  if (inserted) {
    KeyState& state = it->second;
    state.active = initial_policy_;
    state.observed = make_objective_estimators(config_.window);
    state.candidate_stats.reserve(candidates_.size());
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      // One sample lands per scheduled evaluation, so bounding by the job
      // window also ages out evaluations of long-gone mix phases.
      state.candidate_stats.push_back(make_objective_estimators(config_.window));
    }
  }
  return it->second;
}

void AdvisorEngine::observe(std::uint64_t key, const workload::Job& job,
                            const core::ObjectiveValues& live) {
  KeyState& state = state_for(key);
  state.window.push_back(job);
  while (state.window.size() > config_.window) state.window.pop_front();
  for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
    state.observed[o].push(live.get(core::kAllObjectives[o]));
  }
  ++state.decided;
}

bool AdvisorEngine::at_switch_point(std::uint64_t key) const {
  if (!config_.scheduled()) return false;
  const auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  const KeyState& state = it->second;
  return state.decided > 0 &&
         state.decided % config_.effective_every() == 0 &&
         state.window.size() >= 2;
}

policy::PolicyKind AdvisorEngine::active_policy(std::uint64_t key) const {
  const auto it = keys_.find(key);
  return it == keys_.end() ? initial_policy_ : it->second.active;
}

std::vector<std::array<double, 4>> AdvisorEngine::shadow_evaluate(
    const KeyState& state) const {
  // Rebase the window onto t = 0 (deadlines are durations, so SLA terms
  // survive the shift) and renumber ids for the scratch run.
  std::vector<workload::Job> jobs(state.window.begin(), state.window.end());
  const sim::SimTime base = jobs.front().submit_time;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].submit_time -= base;
    jobs[i].id = static_cast<workload::JobId>(i + 1);
  }
  std::vector<std::array<double, 4>> raw(candidates_.size());
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const service::SimulationReport report = service::simulate(
        jobs, candidates_[c], context_.model, context_.machine,
        context_.pricing, context_.first_reward);
    for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
      raw[c][o] = report.objectives.get(core::kAllObjectives[o]);
    }
  }
  // Normalise each objective across the candidate set (single scenario
  // value per candidate) — same scale the offline sweep pipeline uses.
  std::vector<std::array<double, 4>> normalized(candidates_.size());
  for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
    std::vector<std::vector<double>> matrix(candidates_.size());
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      matrix[c] = {raw[c][o]};
    }
    const auto norm =
        core::normalize_objective(core::kAllObjectives[o], matrix);
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      normalized[c][o] = norm[c][0];
    }
  }
  return normalized;
}

std::vector<RankedPolicy> AdvisorEngine::rank(
    const std::vector<std::array<core::RiskPoint, 4>>& points,
    const std::array<double, 4>& weights, double risk_aversion) const {
  std::vector<RankedPolicy> ranked;
  ranked.reserve(candidates_.size());
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const core::RiskPoint integrated = core::integrated_risk(
        std::span<const core::RiskPoint>(points[c]),
        std::span<const double>(weights));
    RankedPolicy entry;
    entry.kind = candidates_[c];
    entry.policy = policy::to_string(candidates_[c]);
    entry.performance = integrated.performance;
    entry.volatility = integrated.volatility;
    entry.score = integrated.performance - risk_aversion * integrated.volatility;
    ranked.push_back(std::move(entry));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPolicy& a, const RankedPolicy& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.volatility != b.volatility) {
                return a.volatility < b.volatility;
              }
              return a.policy < b.policy;
            });
  return ranked;
}

Evaluation AdvisorEngine::evaluate(std::uint64_t key) {
  KeyState& state = state_for(key);
  if (state.window.size() < 2) {
    throw std::logic_error("advisor: evaluate() before the window filled");
  }
  const auto normalized = shadow_evaluate(state);
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
      state.candidate_stats[c][o].push(normalized[c][o]);
    }
  }
  ++state.evaluations;
  ++total_evaluations_;

  std::vector<std::array<core::RiskPoint, 4>> points(candidates_.size());
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
      points[c][o] = core::RiskPoint{state.candidate_stats[c][o].mean(),
                                     state.candidate_stats[c][o].stddev()};
    }
  }
  Evaluation evaluation;
  evaluation.ranked = rank(points, config_.scoring.objective_weights,
                           config_.scoring.risk_aversion);
  evaluation.recommended = evaluation.ranked.front().kind;
  if (config_.auto_switch && evaluation.recommended != state.active) {
    evaluation.switched = true;
    evaluation.from = state.active;
    evaluation.to = evaluation.recommended;
    evaluation.at = state.decided;
    state.active = evaluation.recommended;
    ++state.switches;
    ++total_switches_;
  }
  return evaluation;
}

Snapshot AdvisorEngine::query(std::uint64_t key,
                              const std::array<double, 4>& weights,
                              double risk_aversion) const {
  core::AdvisorConfig scoring;
  scoring.objective_weights = weights;
  scoring.risk_aversion = risk_aversion;
  scoring.validate();

  Snapshot snapshot;
  const auto it = keys_.find(key);
  const KeyState* state = it == keys_.end() ? nullptr : &it->second;
  snapshot.active =
      policy::to_string(state == nullptr ? initial_policy_ : state->active);
  if (state != nullptr) {
    snapshot.decided = state->decided;
    snapshot.evaluations = state->evaluations;
    snapshot.switches = state->switches;
    snapshot.samples = state->observed[0].count();
    for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
      snapshot.estimate_mean[o] = state->observed[o].mean();
      snapshot.estimate_stddev[o] = state->observed[o].stddev();
    }
    if (state->evaluations > 0) {
      // Rank from the accumulated shadow-evaluation estimators under the
      // caller's preferences.
      std::vector<std::array<core::RiskPoint, 4>> points(candidates_.size());
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
          points[c][o] =
              core::RiskPoint{state->candidate_stats[c][o].mean(),
                              state->candidate_stats[c][o].stddev()};
        }
      }
      snapshot.ranked = rank(points, weights, risk_aversion);
    } else if (state->window.size() >= 2) {
      // No scheduled evaluation has run yet: answer with a one-shot
      // read-only shadow evaluation of the current window (sigma = 0, a
      // single sample per candidate).
      const auto normalized = shadow_evaluate(*state);
      std::vector<std::array<core::RiskPoint, 4>> points(candidates_.size());
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        for (std::size_t o = 0; o < core::kAllObjectives.size(); ++o) {
          points[c][o] = core::RiskPoint{normalized[c][o], 0.0};
        }
      }
      snapshot.ranked = rank(points, weights, risk_aversion);
    }
  }
  snapshot.recommended =
      snapshot.ranked.empty() ? snapshot.active : snapshot.ranked.front().policy;

  verify::DigestStream digest;
  digest.put_string("advise");
  digest.put_u64(key);
  digest.put_string(snapshot.active);
  digest.put_string(snapshot.recommended);
  digest.put_u64(snapshot.evaluations);
  digest.put_u64(snapshot.switches);
  for (const RankedPolicy& entry : snapshot.ranked) {
    digest.put_string(entry.policy);
    digest.put_double(entry.score);
    digest.put_double(entry.performance);
    digest.put_double(entry.volatility);
  }
  snapshot.digest = digest.value();
  return snapshot;
}

}  // namespace utilrisk::advise
