#include "service/monitor.hpp"

#include <ostream>
#include <stdexcept>

#include "service/computing_service.hpp"

namespace utilrisk::service {

ServiceMonitor::ServiceMonitor(sim::Simulator& simulator,
                               const ComputingService& service,
                               sim::SimTime period, sim::SimTime horizon)
    : Entity(simulator, "service-monitor"),
      service_(&service),
      period_(period),
      horizon_(horizon) {
  if (period <= 0.0) {
    throw std::invalid_argument("ServiceMonitor: period must be positive");
  }
  if (horizon <= 0.0) {
    throw std::invalid_argument("ServiceMonitor: horizon must be positive");
  }
  arm();
}

void ServiceMonitor::arm() {
  if (stopped_) return;
  if (now() + period_ > horizon_ + sim::kTimeEpsilon) return;
  tick_ = after(period_, [this] {
    sample_now();
    // Early-drain shutdown: if this tick was the last pending event, the
    // service has quiesced and re-arming would do nothing but march the
    // clock to the horizon. Take this as the final sample and stand down.
    if (simulator().pending_events() == 0) return;
    arm();
  });
}

void ServiceMonitor::stop() {
  stopped_ = true;
  tick_.cancel();
}

void ServiceMonitor::sample_now() {
  const MetricsCollector& metrics = service_->metrics();
  MonitorSample sample;
  sample.time = now();
  // O(1) from the collector's per-outcome counters — a sample costs the
  // same on a 100-job run as on a 100k-job one. Terminated SLAs and
  // outage losses are unfulfilled acceptances; the dashboard lumps them
  // with violations. Unfinished records (queued/undecided or running) are
  // the in-flight set.
  using workload::JobOutcome;
  sample.submitted = metrics.submitted_count();
  sample.rejected = metrics.outcome_count(JobOutcome::Rejected);
  sample.fulfilled = metrics.outcome_count(JobOutcome::FulfilledSLA);
  sample.violated = metrics.outcome_count(JobOutcome::ViolatedSLA) +
                    metrics.outcome_count(JobOutcome::TerminatedSLA) +
                    metrics.outcome_count(JobOutcome::FailedOutage);
  sample.accepted = sample.fulfilled + sample.violated;
  sample.in_flight = metrics.outcome_count(JobOutcome::Unfinished);
  sample.utility_to_date = metrics.ledger().total_utility();

  const auto& machine = service_->active_policy().context().machine;
  if (sample.time > 0.0 && machine.node_count > 0) {
    sample.utilization =
        service_->active_policy().delivered_proc_seconds() /
        (static_cast<double>(machine.node_count) * sample.time);
  }

  // Rolling inputs: counter-exact counts, wait sum accumulated in
  // fulfilment order (samples are dashboard data, never digested).
  sample.objectives =
      core::compute_objectives(metrics.rolling_objective_inputs());
  samples_.push_back(sample);
}

void ServiceMonitor::write_csv(std::ostream& out) const {
  out << "time,submitted,accepted,fulfilled,violated,rejected,in_flight,"
         "utility,utilization,wait,sla,reliability,profitability\n";
  for (const MonitorSample& s : samples_) {
    out << s.time << ',' << s.submitted << ',' << s.accepted << ','
        << s.fulfilled << ',' << s.violated << ',' << s.rejected << ','
        << s.in_flight << ',' << s.utility_to_date << ',' << s.utilization
        << ',' << s.objectives.wait << ',' << s.objectives.sla << ','
        << s.objectives.reliability << ',' << s.objectives.profitability
        << '\n';
  }
}

}  // namespace utilrisk::service
