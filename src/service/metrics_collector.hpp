// Aggregates SLA records into the paper's objective inputs.
#pragma once

#include <map>
#include <vector>

#include "core/objectives.hpp"
#include "economy/accounting.hpp"
#include "service/sla.hpp"

namespace utilrisk::service {

/// Collects per-job SLA records during a run and reduces them to the
/// ObjectiveInputs consumed by the risk analysis.
class MetricsCollector {
 public:
  void record_submitted(const workload::Job& job, sim::SimTime when);
  void record_accepted(workload::JobId id, sim::SimTime when,
                       economy::Money quoted_cost);
  void record_rejected(workload::JobId id, sim::SimTime when);
  void record_started(workload::JobId id, sim::SimTime when);
  /// `utility` is the realised utility under the active economic model.
  void record_finished(workload::JobId id, sim::SimTime when,
                       economy::Money utility);

  /// Job killed at its deadline (preemption ablation): counts as an
  /// accepted, unfulfilled SLA with the given settlement (usually 0 — the
  /// user pays nothing for work that never completed).
  void record_terminated(workload::JobId id, sim::SimTime when,
                         economy::Money utility);

  /// An attempt of the job was killed by a node outage (the job itself may
  /// still be retried): bumps outage_count and clears the started flag.
  void record_outage(workload::JobId id, sim::SimTime when);

  /// Job lost for good to outages (retry budget exhausted or deadline
  /// unreachable): accepted, unfulfilled, settled at `utility` (usually
  /// negative in the bid model — the provider owes the penalty).
  void record_failed(workload::JobId id, sim::SimTime when,
                     economy::Money utility);

  [[nodiscard]] const SlaRecord& record(workload::JobId id) const;
  [[nodiscard]] const std::map<workload::JobId, SlaRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const economy::Ledger& ledger() const { return ledger_; }

  [[nodiscard]] core::ObjectiveInputs objective_inputs() const;

  /// Jobs accepted but not finished (non-zero only if a run was cut off
  /// before draining; the harness treats this as an error).
  [[nodiscard]] std::size_t unfinished_count() const;

 private:
  SlaRecord& must_find(workload::JobId id, const char* what);

  std::map<workload::JobId, SlaRecord> records_;
  economy::Ledger ledger_;
};

}  // namespace utilrisk::service
