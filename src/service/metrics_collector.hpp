// Aggregates SLA records into the paper's objective inputs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/objectives.hpp"
#include "economy/accounting.hpp"
#include "service/sla.hpp"

namespace utilrisk::service {

/// Collects per-job SLA records during a run and reduces them to the
/// ObjectiveInputs consumed by the risk analysis.
class MetricsCollector {
 public:
  void record_submitted(const workload::Job& job, sim::SimTime when);
  void record_accepted(workload::JobId id, sim::SimTime when,
                       economy::Money quoted_cost);
  void record_rejected(workload::JobId id, sim::SimTime when);
  void record_started(workload::JobId id, sim::SimTime when);
  /// `utility` is the realised utility under the active economic model.
  void record_finished(workload::JobId id, sim::SimTime when,
                       economy::Money utility);

  /// Job killed at its deadline (preemption ablation): counts as an
  /// accepted, unfulfilled SLA with the given settlement (usually 0 — the
  /// user pays nothing for work that never completed).
  void record_terminated(workload::JobId id, sim::SimTime when,
                         economy::Money utility);

  /// An attempt of the job was killed by a node outage (the job itself may
  /// still be retried): bumps outage_count and clears the started flag.
  void record_outage(workload::JobId id, sim::SimTime when);

  /// Job lost for good to outages (retry budget exhausted or deadline
  /// unreachable): accepted, unfulfilled, settled at `utility` (usually
  /// negative in the bid model — the provider owes the penalty).
  void record_failed(workload::JobId id, sim::SimTime when,
                     economy::Money utility);

  [[nodiscard]] const SlaRecord& record(workload::JobId id) const;
  [[nodiscard]] const std::map<workload::JobId, SlaRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const economy::Ledger& ledger() const { return ledger_; }

  /// Canonical objective inputs: the wait sum is accumulated walking the
  /// records in ascending job-id order, which is the order the digested
  /// report has always used. O(records).
  [[nodiscard]] core::ObjectiveInputs objective_inputs() const;

  /// O(1) objective inputs for periodic samplers: counts come from the
  /// incrementally-maintained outcome counters (exact integers, identical
  /// to the canonical walk) and the wait sum from a rolling accumulator
  /// updated at each fulfilment (finish order, so the double may differ
  /// from the canonical id-order sum in the last ulp). Dashboards only —
  /// anything digested must use objective_inputs().
  [[nodiscard]] core::ObjectiveInputs rolling_objective_inputs() const;

  /// Number of records currently carrying `outcome`. O(1), maintained
  /// incrementally at every outcome transition.
  [[nodiscard]] std::uint64_t outcome_count(workload::JobOutcome outcome) const {
    return outcome_counts_[static_cast<std::size_t>(outcome)];
  }

  /// Total records (== submissions). O(1).
  [[nodiscard]] std::uint64_t submitted_count() const {
    return records_.size();
  }

  /// Jobs accepted but not finished (non-zero only if a run was cut off
  /// before draining; the harness treats this as an error). O(1).
  [[nodiscard]] std::size_t unfinished_count() const;

 private:
  SlaRecord& must_find(workload::JobId id, const char* what);
  /// Moves `record` to `outcome`, keeping the per-outcome counters and the
  /// rolling fulfilled-wait sum in step.
  void set_outcome(SlaRecord& record, workload::JobOutcome outcome);

  std::map<workload::JobId, SlaRecord> records_;
  economy::Ledger ledger_;
  /// One bucket per JobOutcome value; every record is in exactly one.
  std::array<std::uint64_t, 6> outcome_counts_{};
  /// Sum of wait_time() over currently-fulfilled records, accumulated in
  /// fulfilment order (see rolling_objective_inputs()).
  double rolling_wait_sum_ = 0.0;
};

}  // namespace utilrisk::service
