// Service-level monitoring (§3.3: "we assume that a commercial computing
// service has monitoring mechanisms to check the progress of existing job
// executions"): samples the service's operational state on a fixed period
// and keeps a time series a provider would chart on a dashboard —
// accepted backlog, running work, utilisation, cumulative utility, and
// the rolling objective values.
#pragma once

#include <vector>

#include "core/objectives.hpp"
#include "sim/entity.hpp"

namespace utilrisk::service {

class ComputingService;

/// One sample of the service's state.
struct MonitorSample {
  sim::SimTime time = 0.0;
  std::uint64_t submitted = 0;
  /// Settled acceptances (fulfilled + violated).
  std::uint64_t accepted = 0;
  std::uint64_t fulfilled = 0;
  std::uint64_t violated = 0;
  std::uint64_t rejected = 0;
  /// Jobs submitted but not yet settled: awaiting an admission decision,
  /// queued, or running.
  std::uint64_t in_flight = 0;
  economy::Money utility_to_date = 0.0;
  /// Machine utilisation so far (delivered work / capacity to date).
  double utilization = 0.0;
  /// Rolling objective values over everything settled so far.
  core::ObjectiveValues objectives;
};

/// Periodic sampler bound to a ComputingService. Construct after the
/// service, before running the simulator; it re-arms itself every
/// `period` seconds until the horizon — but stands down as soon as the
/// rest of the event set drains: when its tick is the only pending event,
/// re-arming would keep an already-finished run ticking to the horizon,
/// so the monitor takes its final sample and stops instead.
class ServiceMonitor : public sim::Entity {
 public:
  /// Samples every `period` seconds from `start` until `horizon`.
  ServiceMonitor(sim::Simulator& simulator, const ComputingService& service,
                 sim::SimTime period, sim::SimTime horizon);

  [[nodiscard]] const std::vector<MonitorSample>& samples() const {
    return samples_;
  }

  /// Cancels the pending tick (if any) and stops re-arming; the collected
  /// samples stay available. Idempotent.
  void stop();

  /// True while a tick is scheduled.
  [[nodiscard]] bool armed() const { return tick_.pending(); }

  /// CSV dump (one row per sample) for external charting.
  void write_csv(std::ostream& out) const;

 private:
  void sample_now();
  void arm();

  const ComputingService* service_;
  sim::SimTime period_;
  sim::SimTime horizon_;
  bool stopped_ = false;
  sim::EventHandle tick_;
  std::vector<MonitorSample> samples_;
};

}  // namespace utilrisk::service
