// The commercial computing service: receives SLAs, delegates admission and
// scheduling to a resource-management policy, settles utilities under the
// active economic model, and feeds the metrics collector.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/failure.hpp"
#include "economy/accounting.hpp"
#include "policy/factory.hpp"
#include "policy/policy.hpp"
#include "service/metrics_collector.hpp"
#include "sim/entity.hpp"

namespace utilrisk::obs {
class Counter;
class Gauge;
}  // namespace utilrisk::obs

namespace utilrisk::service {

/// Creates a policy bound to a host — the injection point for custom
/// policies in simulate() and ComputingService.
using PolicyFactory = std::function<std::unique_ptr<policy::Policy>(
    const policy::PolicyContext&, policy::PolicyHost&)>;

/// Adapts a Table V PolicyKind to a PolicyFactory.
[[nodiscard]] PolicyFactory factory_for(policy::PolicyKind kind);

class ComputingService : public sim::Entity, public policy::PolicyHost {
 public:
  ComputingService(sim::Simulator& simulator, policy::PolicyKind kind,
                   const policy::PolicyContext& context);

  ComputingService(sim::Simulator& simulator, const PolicyFactory& factory,
                   const policy::PolicyContext& context);

  /// Schedules submission events for every job (jobs need not be sorted;
  /// each fires at its own submit_time, which must be >= the current
  /// simulation time).
  void submit_all(const std::vector<workload::Job>& jobs);

  [[nodiscard]] const MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] const policy::Policy& active_policy() const {
    return *policy_;
  }
  [[nodiscard]] economy::EconomicModel model() const { return model_; }

  /// The fault injector, or nullptr when failure injection is disabled
  /// (context.failure.mtbf_seconds not finite-positive).
  [[nodiscard]] const cluster::FailureInjector* failure_injector() const {
    return injector_.get();
  }

  // --- PolicyHost -------------------------------------------------------
  void notify_accepted(const workload::Job& job,
                       economy::Money quoted_cost) override;
  void notify_rejected(const workload::Job& job) override;
  void notify_started(const workload::Job& job) override;
  void notify_finished(const workload::Job& job,
                       sim::SimTime finish_time) override;
  void notify_failed(const workload::Job& job,
                     double completed_work) override;

 private:
  /// Bounded retry with exponential backoff; falls through to
  /// settle_outage when the budget or the deadline is exhausted.
  void handle_failed_attempt(const workload::Job& attempt,
                             double completed_work);
  /// Settles a job permanently lost to outages (FailedOutage).
  void settle_outage(workload::JobId id);
  /// One job reached a terminal outcome; disarms the injector once all
  /// submitted jobs are settled so the run can drain.
  void note_terminal();
  /// Runs the policy's admission decision for `job`, timing it when the
  /// `cluster.decision_ns` gauge is wired up (the gauge carries the
  /// running mean nanoseconds per decision).
  void run_admission(const workload::Job& job);

  economy::EconomicModel model_;
  MetricsCollector metrics_;
  std::unique_ptr<policy::Policy> policy_;
  std::unique_ptr<cluster::FailureInjector> injector_;
  /// Resubmissions consumed per job (present only for jobs that absorbed
  /// at least one outage — also how notify_rejected tells a retry attempt
  /// from a fresh submission).
  std::map<workload::JobId, std::uint32_t> retry_attempts_;
  std::size_t expected_jobs_ = 0;
  std::size_t terminal_jobs_ = 0;
  // service.* instruments, resolved once from context.metrics in the
  // constructor; all null when no (enabled) registry was injected.
  obs::Counter* submitted_metric_ = nullptr;
  obs::Counter* accepted_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Counter* started_metric_ = nullptr;
  obs::Counter* fulfilled_metric_ = nullptr;
  obs::Counter* violated_metric_ = nullptr;
  obs::Counter* terminated_metric_ = nullptr;
  obs::Counter* retries_metric_ = nullptr;
  obs::Counter* outages_metric_ = nullptr;
  obs::Counter* failed_outage_metric_ = nullptr;
  /// Mean wall nanoseconds per admission decision (policy on_submit),
  /// over submissions and retry resubmissions alike. Null when metrics
  /// are absent — then decisions are not timed at all.
  obs::Gauge* decision_ns_metric_ = nullptr;
  std::uint64_t decision_count_ = 0;
  double decision_ns_total_ = 0.0;
};

/// Outcome of a complete simulation run.
struct SimulationReport {
  core::ObjectiveInputs inputs;
  core::ObjectiveValues objectives;
  std::vector<SlaRecord> records;  ///< per-job, submission order
  std::uint64_t events_dispatched = 0;
  sim::SimTime end_time = 0.0;
  /// Delivered work / (machine width * simulated span): the realised
  /// machine utilisation (the SDSC SP2 subset the paper simulates ran at
  /// 83.2 %).
  double utilization = 0.0;
  /// Settlement ledger snapshot: one entry per settled SLA, settlement
  /// order. Backs the money-conservation invariants and the digest's
  /// order-independent money-flow component.
  std::vector<economy::LedgerEntry> ledger_entries;
  economy::Money ledger_total_utility = 0.0;
  economy::Money ledger_total_budget = 0.0;
  /// Canonical run digest (verify::run_digest), 16 lowercase hex chars.
  /// A pure function of the fields above; bit-stable across platforms,
  /// build types and worker counts.
  std::string digest;
};

/// Convenience one-shot runner: builds a simulator + service, submits all
/// jobs, runs to quiescence and reduces the metrics. Throws
/// std::runtime_error if any accepted job never finished (a kernel or
/// policy bug, not a workload condition).
[[nodiscard]] SimulationReport simulate(
    const std::vector<workload::Job>& jobs, policy::PolicyKind kind,
    economy::EconomicModel model,
    const cluster::MachineConfig& machine = {},
    const economy::PricingParams& pricing = {},
    const policy::FirstRewardParams& first_reward = {});

/// Same runner for custom policies (anything constructible from a
/// PolicyContext + PolicyHost).
[[nodiscard]] SimulationReport simulate(
    const std::vector<workload::Job>& jobs, const PolicyFactory& factory,
    economy::EconomicModel model,
    const cluster::MachineConfig& machine = {},
    const economy::PricingParams& pricing = {},
    const policy::FirstRewardParams& first_reward = {});

/// Fully explicit variant: every context knob (including
/// terminate_at_deadline) under caller control. `context.simulator` is
/// overwritten with the runner's own simulator.
[[nodiscard]] SimulationReport simulate(
    const std::vector<workload::Job>& jobs, const PolicyFactory& factory,
    policy::PolicyContext context);

}  // namespace utilrisk::service
