#include "service/metrics_collector.hpp"

#include <stdexcept>
#include <string>

namespace utilrisk::service {

SlaRecord& MetricsCollector::must_find(workload::JobId id, const char* what) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::logic_error(std::string("MetricsCollector::") + what +
                           ": unknown job " + std::to_string(id));
  }
  return it->second;
}

void MetricsCollector::set_outcome(SlaRecord& record,
                                   workload::JobOutcome outcome) {
  if (record.outcome == workload::JobOutcome::FulfilledSLA) {
    rolling_wait_sum_ -= record.wait_time();
  }
  --outcome_counts_[static_cast<std::size_t>(record.outcome)];
  record.outcome = outcome;
  ++outcome_counts_[static_cast<std::size_t>(outcome)];
  if (outcome == workload::JobOutcome::FulfilledSLA) {
    rolling_wait_sum_ += record.wait_time();
  }
}

void MetricsCollector::record_submitted(const workload::Job& job,
                                        sim::SimTime when) {
  if (records_.contains(job.id)) {
    throw std::logic_error("MetricsCollector: duplicate submission of job " +
                           std::to_string(job.id));
  }
  SlaRecord record;
  record.job = job;
  record.submit_time = when;
  ++outcome_counts_[static_cast<std::size_t>(record.outcome)];
  records_.emplace(job.id, record);
  ledger_.record_submitted(job);
}

void MetricsCollector::record_accepted(workload::JobId id, sim::SimTime when,
                                       economy::Money quoted_cost) {
  SlaRecord& record = must_find(id, "record_accepted");
  record.decision_time = when;
  record.quoted_cost = quoted_cost;
  set_outcome(record, workload::JobOutcome::Unfinished);  // running/queued
}

void MetricsCollector::record_rejected(workload::JobId id, sim::SimTime when) {
  SlaRecord& record = must_find(id, "record_rejected");
  record.decision_time = when;
  set_outcome(record, workload::JobOutcome::Rejected);
}

void MetricsCollector::record_started(workload::JobId id, sim::SimTime when) {
  SlaRecord& record = must_find(id, "record_started");
  // Retried attempts keep the first start (wait measures first dispatch).
  if (!record.started && record.outage_count == 0) {
    record.start_time = when;
  }
  record.started = true;
}

void MetricsCollector::record_finished(workload::JobId id, sim::SimTime when,
                                       economy::Money utility) {
  SlaRecord& record = must_find(id, "record_finished");
  record.finish_time = when;
  record.utility = utility;
  const bool on_time =
      when <= record.submit_time + record.job.deadline_duration +
                  sim::kTimeEpsilon;
  set_outcome(record, on_time ? workload::JobOutcome::FulfilledSLA
                              : workload::JobOutcome::ViolatedSLA);
  ledger_.record_utility(id, utility);
}

void MetricsCollector::record_terminated(workload::JobId id,
                                         sim::SimTime when,
                                         economy::Money utility) {
  SlaRecord& record = must_find(id, "record_terminated");
  if (record.outcome == workload::JobOutcome::Rejected) {
    throw std::logic_error("MetricsCollector: terminating a rejected job");
  }
  record.finish_time = when;
  record.utility = utility;
  set_outcome(record, workload::JobOutcome::TerminatedSLA);
  ledger_.record_utility(id, utility);
}

void MetricsCollector::record_outage(workload::JobId id,
                                     sim::SimTime /*when*/) {
  SlaRecord& record = must_find(id, "record_outage");
  if (record.outcome == workload::JobOutcome::Rejected) {
    throw std::logic_error("MetricsCollector: outage on a rejected job");
  }
  ++record.outage_count;
  record.started = false;
}

void MetricsCollector::record_failed(workload::JobId id, sim::SimTime when,
                                     economy::Money utility) {
  SlaRecord& record = must_find(id, "record_failed");
  if (record.outcome == workload::JobOutcome::Rejected) {
    throw std::logic_error("MetricsCollector: failing a rejected job");
  }
  record.finish_time = when;
  record.utility = utility;
  set_outcome(record, workload::JobOutcome::FailedOutage);
  ledger_.record_utility(id, utility);
}

const SlaRecord& MetricsCollector::record(workload::JobId id) const {
  auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::out_of_range("MetricsCollector::record: unknown job " +
                            std::to_string(id));
  }
  return it->second;
}

core::ObjectiveInputs MetricsCollector::objective_inputs() const {
  core::ObjectiveInputs inputs;
  inputs.total_budget = ledger_.total_budget();
  inputs.total_utility = ledger_.total_utility();
  for (const auto& [id, record] : records_) {
    ++inputs.submitted;
    if (record.accepted()) ++inputs.accepted;
    if (record.fulfilled()) {
      ++inputs.fulfilled;
      inputs.wait_sum_fulfilled += record.wait_time();
    }
  }
  return inputs;
}

core::ObjectiveInputs MetricsCollector::rolling_objective_inputs() const {
  core::ObjectiveInputs inputs;
  inputs.total_budget = ledger_.total_budget();
  inputs.total_utility = ledger_.total_utility();
  inputs.submitted = records_.size();
  inputs.accepted =
      records_.size() - outcome_count(workload::JobOutcome::Rejected);
  inputs.fulfilled = outcome_count(workload::JobOutcome::FulfilledSLA);
  inputs.wait_sum_fulfilled = rolling_wait_sum_;
  return inputs;
}

std::size_t MetricsCollector::unfinished_count() const {
  return outcome_count(workload::JobOutcome::Unfinished);
}

}  // namespace utilrisk::service
