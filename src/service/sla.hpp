// SLA lifecycle record kept by the commercial computing service for every
// submitted job.
#pragma once

#include "economy/money.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace utilrisk::service {

struct SlaRecord {
  workload::Job job;
  workload::JobOutcome outcome = workload::JobOutcome::Unfinished;

  sim::SimTime submit_time = 0.0;
  /// Time admission control decided (acceptance or rejection).
  sim::SimTime decision_time = 0.0;
  /// Execution start (wait objective measures start - submit).
  sim::SimTime start_time = 0.0;
  sim::SimTime finish_time = 0.0;

  /// Commodity-model charge fixed at acceptance.
  economy::Money quoted_cost = 0.0;
  /// Realised utility (commodity: the quote; bid: bid minus penalty —
  /// possibly negative). Zero for rejected jobs.
  economy::Money utility = 0.0;

  /// True while an attempt is executing; an outage kill resets it, so the
  /// service can tell a queued attempt from a running one.
  bool started = false;
  /// Number of outage kills this job absorbed (each may trigger a retry).
  std::uint32_t outage_count = 0;

  [[nodiscard]] bool accepted() const {
    return outcome != workload::JobOutcome::Rejected;
  }
  [[nodiscard]] bool fulfilled() const {
    return outcome == workload::JobOutcome::FulfilledSLA;
  }
  [[nodiscard]] double wait_time() const { return start_time - submit_time; }
  [[nodiscard]] double deadline_delay() const {
    const double delay =
        (finish_time - submit_time) - job.deadline_duration;
    return delay > 0.0 ? delay : 0.0;
  }
};

}  // namespace utilrisk::service
