#include "service/computing_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "economy/penalty.hpp"
#include "obs/metrics.hpp"
#include "sim/logger.hpp"
#include "verify/invariants.hpp"
#include "verify/run_digest.hpp"

namespace utilrisk::service {

namespace {
/// A hair past the deadline, so a job completing exactly on time settles
/// as fulfilled before any kill/abandon event fires.
constexpr sim::SimTime kKillSlack = 1e-3;
/// Residual runtime floor for a checkpoint-restarted attempt (a restart
/// exactly at a checkpoint boundary still costs a moment of recovery).
constexpr double kMinRestartRuntime = 1e-3;
}  // namespace

PolicyFactory factory_for(policy::PolicyKind kind) {
  return [kind](const policy::PolicyContext& context,
                policy::PolicyHost& host) {
    return policy::make_policy(kind, context, host);
  };
}

ComputingService::ComputingService(sim::Simulator& simulator,
                                   policy::PolicyKind kind,
                                   const policy::PolicyContext& context)
    : ComputingService(simulator, factory_for(kind), context) {}

ComputingService::ComputingService(sim::Simulator& simulator,
                                   const PolicyFactory& factory,
                                   const policy::PolicyContext& context)
    : Entity(simulator, "computing-service"),
      model_(context.model),
      policy_(factory(context, *this)) {
  if (context.simulator != &simulator) {
    throw std::invalid_argument(
        "ComputingService: context simulator mismatch");
  }
  if (!policy_) {
    throw std::invalid_argument("ComputingService: factory returned null");
  }
  context.machine.validate();
  if (obs::MetricsRegistry* reg = context.metrics) {
    submitted_metric_ = obs::counter_or_null(reg, "service.jobs_submitted");
    accepted_metric_ = obs::counter_or_null(reg, "service.sla_accepted");
    rejected_metric_ = obs::counter_or_null(reg, "service.sla_rejected");
    started_metric_ = obs::counter_or_null(reg, "service.jobs_started");
    fulfilled_metric_ = obs::counter_or_null(reg, "service.sla_fulfilled");
    violated_metric_ = obs::counter_or_null(reg, "service.sla_violated");
    terminated_metric_ = obs::counter_or_null(reg, "service.sla_terminated");
    retries_metric_ = obs::counter_or_null(reg, "service.retries");
    outages_metric_ = obs::counter_or_null(reg, "service.outages");
    failed_outage_metric_ =
        obs::counter_or_null(reg, "service.jobs_failed_outage");
    decision_ns_metric_ = obs::gauge_or_null(reg, "cluster.decision_ns");
  }
  if (context.failure.enabled()) {
    context.failure.validate();
    context.recovery.validate();
    injector_ = std::make_unique<cluster::FailureInjector>(
        simulator, context.machine, context.failure);
    injector_->set_callbacks(
        [this](cluster::NodeId id) { policy_->on_node_down(id); },
        [this](cluster::NodeId id) { policy_->on_node_up(id); });
  }
}

void ComputingService::submit_all(const std::vector<workload::Job>& jobs) {
  expected_jobs_ += jobs.size();
  // Arm only while settlements are outstanding: an injector with no jobs
  // to fail would keep the event queue alive forever.
  if (injector_ && terminal_jobs_ < expected_jobs_) injector_->arm();
  for (const workload::Job& job : jobs) {
    at(job.submit_time, [this, job] {
      metrics_.record_submitted(job, now());
      if (submitted_metric_ != nullptr) submitted_metric_->inc();
      UTILRISK_ELOG(sim::LogLevel::Debug, "submit job " << job.id << " procs=" << job.procs
                                 << " est=" << job.estimated_runtime
                                 << " deadline=" << job.deadline_duration);
      run_admission(job);
    });
  }
}

void ComputingService::run_admission(const workload::Job& job) {
  if (decision_ns_metric_ == nullptr) {
    policy_->on_submit(job);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  policy_->on_submit(job);
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  decision_ns_total_ += ns;
  ++decision_count_;
  decision_ns_metric_->set(decision_ns_total_ /
                           static_cast<double>(decision_count_));
}

void ComputingService::notify_accepted(const workload::Job& job,
                                       economy::Money quoted_cost) {
  metrics_.record_accepted(job.id, now(), quoted_cost);
  if (accepted_metric_ != nullptr) accepted_metric_->inc();
  const workload::JobId id = job.id;
  if (policy_->context().terminate_at_deadline) {
    at(std::max(now(), job.absolute_deadline() + kKillSlack), [this, id] {
      if (metrics_.record(id).outcome != workload::JobOutcome::Unfinished) {
        return;  // settled on time (or already terminated)
      }
      if (policy_->terminate(id)) {
        // The user pays nothing for work that never completed, and the
        // provider stops accruing penalties: termination caps the bid
        // model's otherwise unbounded downside at zero revenue.
        metrics_.record_terminated(id, now(), 0.0);
        if (terminated_metric_ != nullptr) terminated_metric_->inc();
        note_terminal();
      }
    });
  } else if (injector_) {
    // Outage liveness guard: policies that accept at submission
    // (FirstReward, LibraReserve) can leave a job queued forever when
    // failures shrink capacity below its width. Once its deadline passes
    // without the job ever starting, abandon it as an outage casualty.
    at(std::max(now(), job.absolute_deadline() + kKillSlack), [this, id] {
      const SlaRecord& record = metrics_.record(id);
      if (record.outcome != workload::JobOutcome::Unfinished ||
          record.started) {
        return;  // settled, or running (it will finish on its own)
      }
      if (policy_->terminate(id)) settle_outage(id);
    });
  }
}

void ComputingService::notify_rejected(const workload::Job& job) {
  if (retry_attempts_.contains(job.id)) {
    // A resubmitted attempt the policy would not take back: the original
    // acceptance stands, so the job is lost to the outage — not flipped
    // to Rejected (m = accepted + rejected must keep holding).
    settle_outage(job.id);
    return;
  }
  metrics_.record_rejected(job.id, now());
  if (rejected_metric_ != nullptr) rejected_metric_->inc();
  note_terminal();
}

void ComputingService::notify_started(const workload::Job& job) {
  metrics_.record_started(job.id, now());
  if (started_metric_ != nullptr) started_metric_->inc();
}

void ComputingService::notify_finished(const workload::Job& job,
                                       sim::SimTime finish_time) {
  economy::Money utility = 0.0;
  if (model_ == economy::EconomicModel::CommodityMarket) {
    // No penalty: the service keeps charging the quoted price even when
    // the deadline slipped (§5.1).
    utility = metrics_.record(job.id).quoted_cost;
  } else {
    utility = economy::bid_utility(job, finish_time);
  }
  metrics_.record_finished(job.id, finish_time, utility);
  // record_finished decides fulfilled-vs-violated from the deadline.
  const bool fulfilled =
      metrics_.record(job.id).outcome == workload::JobOutcome::FulfilledSLA;
  if (fulfilled && fulfilled_metric_ != nullptr) fulfilled_metric_->inc();
  if (!fulfilled && violated_metric_ != nullptr) violated_metric_->inc();
  note_terminal();
}

void ComputingService::notify_failed(const workload::Job& job,
                                     double completed_work) {
  metrics_.record_outage(job.id, now());
  if (outages_metric_ != nullptr) outages_metric_->inc();
  UTILRISK_ELOG(sim::LogLevel::Debug, "job " << job.id << " killed by outage, completed "
                      << completed_work << "s");
  handle_failed_attempt(job, completed_work);
}

void ComputingService::handle_failed_attempt(const workload::Job& attempt,
                                             double completed_work) {
  const cluster::RecoveryParams& recovery = policy_->context().recovery;
  std::uint32_t& attempts = retry_attempts_[attempt.id];
  const sim::SimTime deadline = attempt.absolute_deadline();
  if (attempts < recovery.retry_limit) {
    const sim::SimTime resubmit = now() + recovery.backoff_for(attempts);
    if (resubmit < deadline - sim::kTimeEpsilon) {
      ++attempts;
      // Checkpoint credit: progress rounds down to the last checkpoint
      // boundary (tau = 0 keeps nothing, the restart redoes everything).
      const double kept = std::min(recovery.checkpointed(completed_work),
                                   attempt.actual_runtime);
      workload::Job retry = attempt;
      retry.submit_time = resubmit;
      // Same absolute deadline: crashing does not renegotiate the SLA.
      retry.deadline_duration = deadline - resubmit;
      retry.actual_runtime =
          std::max(attempt.actual_runtime - kept, kMinRestartRuntime);
      retry.estimated_runtime =
          std::max(attempt.estimated_runtime - kept, 1.0);
      if (retries_metric_ != nullptr) retries_metric_->inc();
      UTILRISK_ELOG(sim::LogLevel::Debug, "retry " << attempts << " of job " << attempt.id
                            << " at t=" << resubmit);
      at(resubmit, [this, retry] { run_admission(retry); });
      return;
    }
  }
  settle_outage(attempt.id);
}

void ComputingService::settle_outage(workload::JobId id) {
  const SlaRecord& record = metrics_.record(id);
  economy::Money utility = 0.0;
  if (model_ == economy::EconomicModel::BidBased) {
    // No delivery, no revenue; but retries kept the SLA open past its
    // deadline, and the provider owes the penalty for that delay — the
    // cost that makes outages bite the bid model's profitability.
    const double delay =
        std::max(0.0, now() - record.job.absolute_deadline());
    utility = -record.job.penalty_rate * delay;
  }
  metrics_.record_failed(id, now(), utility);
  if (failed_outage_metric_ != nullptr) failed_outage_metric_->inc();
  note_terminal();
}

void ComputingService::note_terminal() {
  ++terminal_jobs_;
  if (injector_ && terminal_jobs_ >= expected_jobs_) injector_->disarm();
}

SimulationReport simulate(const std::vector<workload::Job>& jobs,
                          policy::PolicyKind kind,
                          economy::EconomicModel model,
                          const cluster::MachineConfig& machine,
                          const economy::PricingParams& pricing,
                          const policy::FirstRewardParams& first_reward) {
  machine.validate();
  return simulate(jobs, factory_for(kind), model, machine, pricing,
                  first_reward);
}

SimulationReport simulate(const std::vector<workload::Job>& jobs,
                          const PolicyFactory& factory,
                          economy::EconomicModel model,
                          const cluster::MachineConfig& machine,
                          const economy::PricingParams& pricing,
                          const policy::FirstRewardParams& first_reward) {
  machine.validate();
  policy::PolicyContext context;
  context.machine = machine;
  context.model = model;
  context.pricing = pricing;
  context.first_reward = first_reward;
  return simulate(jobs, factory, context);
}

SimulationReport simulate(const std::vector<workload::Job>& jobs,
                          const PolicyFactory& factory,
                          policy::PolicyContext context) {
  context.machine.validate();
  sim::Simulator simulator;
  context.simulator = &simulator;
  simulator.logger().set_level(context.log_level);
  simulator.set_metrics(context.metrics);
  obs::Histogram* wall_hist = obs::histogram_or_null(
      context.metrics, "service.run_wall_seconds",
      obs::default_time_buckets());
  const cluster::MachineConfig machine = context.machine;

  ComputingService svc(simulator, factory, context);
  svc.submit_all(jobs);
  const auto wall_start = std::chrono::steady_clock::now();
  simulator.run();
  if (wall_hist != nullptr) {
    wall_hist->observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count());
  }

  if (svc.metrics().unfinished_count() != 0) {
    // A stuck job is a kernel or policy bug, not a workload condition;
    // name the culprits so the bug is debuggable from the message alone.
    std::ostringstream msg;
    msg << "simulate: " << svc.metrics().unfinished_count()
        << " accepted job(s) left unfinished after quiescence [policy="
        << svc.active_policy().name()
        << ", pending events=" << simulator.pending_events()
        << ", t=" << simulator.now() << "]; stuck:";
    std::size_t listed = 0;
    for (const auto& [id, record] : svc.metrics().records()) {
      if (record.outcome != workload::JobOutcome::Unfinished) continue;
      if (listed == 10) {
        msg << " ...";
        break;
      }
      msg << " job " << id << (record.started ? " (running" : " (queued")
          << ", outages=" << record.outage_count << ")";
      ++listed;
    }
    throw std::runtime_error(msg.str());
  }

  SimulationReport report;
  report.inputs = svc.metrics().objective_inputs();
  report.objectives = core::compute_objectives(report.inputs);
  report.records.reserve(svc.metrics().records().size());
  for (const auto& [id, record] : svc.metrics().records()) {
    report.records.push_back(record);
  }
  report.events_dispatched = simulator.events_dispatched();
  report.end_time = simulator.now();
  if (report.end_time > 0.0 && machine.node_count > 0) {
    report.utilization =
        svc.active_policy().delivered_proc_seconds() /
        (static_cast<double>(machine.node_count) * report.end_time);
  }
  report.ledger_entries = svc.metrics().ledger().entries();
  report.ledger_total_utility = svc.metrics().ledger().total_utility();
  report.ledger_total_budget = svc.metrics().ledger().total_budget();
  report.digest = verify::run_digest(report).hex();
#ifndef NDEBUG
  // Debug builds audit every run; Release relies on the dedicated verify
  // ctest and the replay harness so the hot path stays unchanged.
  verify::enforce_invariants(report, machine.node_count);
#endif
  return report;
}

}  // namespace utilrisk::service
