#include "service/computing_service.hpp"

#include <stdexcept>

#include "economy/penalty.hpp"
#include "sim/trace_log.hpp"

namespace utilrisk::service {

PolicyFactory factory_for(policy::PolicyKind kind) {
  return [kind](const policy::PolicyContext& context,
                policy::PolicyHost& host) {
    return policy::make_policy(kind, context, host);
  };
}

ComputingService::ComputingService(sim::Simulator& simulator,
                                   policy::PolicyKind kind,
                                   const policy::PolicyContext& context)
    : ComputingService(simulator, factory_for(kind), context) {}

ComputingService::ComputingService(sim::Simulator& simulator,
                                   const PolicyFactory& factory,
                                   const policy::PolicyContext& context)
    : Entity(simulator, "computing-service"),
      model_(context.model),
      policy_(factory(context, *this)) {
  if (context.simulator != &simulator) {
    throw std::invalid_argument(
        "ComputingService: context simulator mismatch");
  }
  if (!policy_) {
    throw std::invalid_argument("ComputingService: factory returned null");
  }
}

void ComputingService::submit_all(const std::vector<workload::Job>& jobs) {
  for (const workload::Job& job : jobs) {
    at(job.submit_time, [this, job] {
      metrics_.record_submitted(job, now());
      UTILRISK_LOG(sim::LogLevel::Debug, now(), name(),
                   "submit job " << job.id << " procs=" << job.procs
                                 << " est=" << job.estimated_runtime
                                 << " deadline=" << job.deadline_duration);
      policy_->on_submit(job);
    });
  }
}

void ComputingService::notify_accepted(const workload::Job& job,
                                       economy::Money quoted_cost) {
  metrics_.record_accepted(job.id, now(), quoted_cost);
  if (policy_->context().terminate_at_deadline) {
    const workload::JobId id = job.id;
    // A hair past the deadline, so a job completing exactly on time
    // settles as fulfilled before the kill fires.
    constexpr sim::SimTime kKillSlack = 1e-3;
    at(std::max(now(), job.absolute_deadline() + kKillSlack), [this, id] {
      if (metrics_.record(id).outcome != workload::JobOutcome::Unfinished) {
        return;  // settled on time (or already terminated)
      }
      if (policy_->terminate(id)) {
        // The user pays nothing for work that never completed, and the
        // provider stops accruing penalties: termination caps the bid
        // model's otherwise unbounded downside at zero revenue.
        metrics_.record_terminated(id, now(), 0.0);
      }
    });
  }
}

void ComputingService::notify_rejected(const workload::Job& job) {
  metrics_.record_rejected(job.id, now());
}

void ComputingService::notify_started(const workload::Job& job) {
  metrics_.record_started(job.id, now());
}

void ComputingService::notify_finished(const workload::Job& job,
                                       sim::SimTime finish_time) {
  economy::Money utility = 0.0;
  if (model_ == economy::EconomicModel::CommodityMarket) {
    // No penalty: the service keeps charging the quoted price even when
    // the deadline slipped (§5.1).
    utility = metrics_.record(job.id).quoted_cost;
  } else {
    utility = economy::bid_utility(job, finish_time);
  }
  metrics_.record_finished(job.id, finish_time, utility);
}

SimulationReport simulate(const std::vector<workload::Job>& jobs,
                          policy::PolicyKind kind,
                          economy::EconomicModel model,
                          const cluster::MachineConfig& machine,
                          const economy::PricingParams& pricing,
                          const policy::FirstRewardParams& first_reward) {
  return simulate(jobs, factory_for(kind), model, machine, pricing,
                  first_reward);
}

SimulationReport simulate(const std::vector<workload::Job>& jobs,
                          const PolicyFactory& factory,
                          economy::EconomicModel model,
                          const cluster::MachineConfig& machine,
                          const economy::PricingParams& pricing,
                          const policy::FirstRewardParams& first_reward) {
  policy::PolicyContext context;
  context.machine = machine;
  context.model = model;
  context.pricing = pricing;
  context.first_reward = first_reward;
  return simulate(jobs, factory, context);
}

SimulationReport simulate(const std::vector<workload::Job>& jobs,
                          const PolicyFactory& factory,
                          policy::PolicyContext context) {
  sim::Simulator simulator;
  context.simulator = &simulator;
  const cluster::MachineConfig machine = context.machine;

  ComputingService svc(simulator, factory, context);
  svc.submit_all(jobs);
  simulator.run();

  if (svc.metrics().unfinished_count() != 0) {
    throw std::runtime_error(
        "simulate: accepted jobs left unfinished after quiescence");
  }

  SimulationReport report;
  report.inputs = svc.metrics().objective_inputs();
  report.objectives = core::compute_objectives(report.inputs);
  report.records.reserve(svc.metrics().records().size());
  for (const auto& [id, record] : svc.metrics().records()) {
    report.records.push_back(record);
  }
  report.events_dispatched = simulator.events_dispatched();
  report.end_time = simulator.now();
  if (report.end_time > 0.0 && machine.node_count > 0) {
    report.utilization =
        svc.active_policy().delivered_proc_seconds() /
        (static_cast<double>(machine.node_count) * report.end_time);
  }
  return report;
}

}  // namespace utilrisk::service
