// Golden-digest regression harness over the Table VI run matrix.
//
// A golden file freezes the canonical run digest of every unique
// (scenario, policy, value) simulation of one experiment sweep:
//
//   # utilrisk.golden/1 model=commodity set=B jobs=80 nodes=128 tseed=42 qseed=4242
//   <run key>\t<combined>\t<event stream>\t<money flows>
//   ...
//   # combined <hex>
//
// Entries are sorted by run key and the trailer is the digest of the
// entry list, so a golden file is itself canonical. Record with
// `utilrisk replay --record <dir>`, check with `--check <dir>`; the check
// recomputes every run (serial or fanned out over --workers, which must
// not change a single bit) and names the first diverging record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "verify/run_digest.hpp"

namespace utilrisk::verify {

inline constexpr char kGoldenSchema[] = "utilrisk.golden/1";

/// The sweep a golden file covers. jobs=80 keeps a full record/check of
/// both models within smoke-test budget while still exercising rejection,
/// deadline violation and every Table V policy.
struct GoldenConfig {
  economy::EconomicModel model = economy::EconomicModel::CommodityMarket;
  exp::ExperimentSet set = exp::ExperimentSet::B;
  std::uint32_t job_count = 80;
  std::uint32_t node_count = 128;
  std::uint64_t trace_seed = 42;
  std::uint64_t qos_seed = 4242;

  [[nodiscard]] exp::ExperimentConfig experiment_config() const;
  /// Canonical file name, e.g. "golden_commodity_B.tsv".
  [[nodiscard]] std::string filename() const;
};

struct GoldenEntry {
  std::string key;  ///< ExperimentConfig::run_key of the run
  RunDigest digest;
};

struct GoldenFile {
  GoldenConfig config;
  std::vector<GoldenEntry> entries;  ///< sorted by key

  /// Digest of the whole entry list (the trailer line).
  [[nodiscard]] std::uint64_t combined() const;
};

/// Simulates every unique run of the config's Table VI matrix (all
/// scenarios x the model's Table V policies) and returns the digests.
/// `workers` > 1 fans the runs out; the result is identical either way.
[[nodiscard]] GoldenFile compute_golden(const GoldenConfig& config,
                                        std::size_t workers = 1);

/// Writes `<dir>/<config.filename()>` (creating `dir`); returns the path.
std::string write_golden(const GoldenFile& golden, const std::string& dir);

/// Parses a golden file; throws std::runtime_error on malformed input or
/// a trailer that does not match the entries.
[[nodiscard]] GoldenFile load_golden(const std::string& path);

/// Outcome of re-running a golden file's matrix against its digests.
struct CheckReport {
  std::size_t records_checked = 0;
  /// Human-readable findings; the first entry names the first diverging
  /// record (file order). Empty = clean.
  std::vector<std::string> diagnostics;

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Recomputes every run of `expected.config` and diffs the digests.
[[nodiscard]] CheckReport check_golden(const GoldenFile& expected,
                                       std::size_t workers = 1);

/// Order-sensitive digest over a full SweepResult (raw values + separate
/// risk) — the serial<->parallel bit-identity contract as one comparable
/// 64-bit value.
[[nodiscard]] std::uint64_t sweep_digest(const exp::SweepResult& sweep);

}  // namespace utilrisk::verify
