#include "verify/invariants.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "service/computing_service.hpp"
#include "sim/time.hpp"

namespace utilrisk::verify {

namespace {

bool is_settled(workload::JobOutcome outcome) {
  return outcome == workload::JobOutcome::FulfilledSLA ||
         outcome == workload::JobOutcome::ViolatedSLA ||
         outcome == workload::JobOutcome::TerminatedSLA ||
         outcome == workload::JobOutcome::FailedOutage;
}

class Collector {
 public:
  explicit Collector(InvariantReport& report) : report_(report) {}

  template <typename... Parts>
  void fail(Parts&&... parts) {
    std::ostringstream oss;
    (oss << ... << parts);
    report_.violations.push_back(oss.str());
  }

 private:
  InvariantReport& report_;
};

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) oss << '\n';
    oss << violations[i];
  }
  return oss.str();
}

InvariantReport check_invariants(const service::SimulationReport& report,
                                 std::uint32_t node_count) {
  InvariantReport result;
  Collector out(result);
  const double eps = sim::kTimeEpsilon;

  // --- SLA-outcome partition -------------------------------------------
  std::uint64_t rejected = 0;
  std::uint64_t fulfilled = 0;
  std::uint64_t settled = 0;
  std::uint64_t unfinished = 0;
  for (const service::SlaRecord& record : report.records) {
    switch (record.outcome) {
      case workload::JobOutcome::Rejected:
        ++rejected;
        break;
      case workload::JobOutcome::FulfilledSLA:
        ++fulfilled;
        ++settled;
        break;
      case workload::JobOutcome::ViolatedSLA:
      case workload::JobOutcome::TerminatedSLA:
      case workload::JobOutcome::FailedOutage:
        ++settled;
        break;
      case workload::JobOutcome::Unfinished:
        ++unfinished;
        break;
    }
  }
  if (unfinished != 0) {
    out.fail("outcome partition: ", unfinished,
             " job(s) left Unfinished after quiescence");
  }
  if (rejected + settled + unfinished != report.records.size()) {
    out.fail("outcome partition: rejected(", rejected, ") + settled(",
             settled, ") + unfinished(", unfinished, ") != submitted(",
             report.records.size(), ")");
  }
  if (report.inputs.submitted != report.records.size()) {
    out.fail("objective inputs: submitted=", report.inputs.submitted,
             " != record count ", report.records.size());
  }
  if (report.inputs.accepted != report.records.size() - rejected) {
    out.fail("objective inputs: accepted=", report.inputs.accepted,
             " != submitted - rejected = ",
             report.records.size() - rejected);
  }
  if (report.inputs.fulfilled != fulfilled) {
    out.fail("objective inputs: fulfilled=", report.inputs.fulfilled,
             " != fulfilled record count ", fulfilled);
  }

  // --- money conservation (user <-> provider) --------------------------
  // Every settled SLA must appear exactly once in the ledger with the
  // record's settled utility; rejected jobs must not appear at all.
  std::map<workload::JobId, economy::Money> by_job;
  bool duplicate_entry = false;
  for (const economy::LedgerEntry& entry : report.ledger_entries) {
    if (!by_job.emplace(entry.job, entry.utility).second) {
      duplicate_entry = true;
      out.fail("money conservation: job ", entry.job,
               " settled more than once in the ledger");
    }
  }
  if (!duplicate_entry && by_job.size() != settled) {
    out.fail("money conservation: ", by_job.size(),
             " ledger entries for ", settled, " settled SLA(s)");
  }
  for (const service::SlaRecord& record : report.records) {
    const auto it = by_job.find(record.job.id);
    if (is_settled(record.outcome)) {
      if (it == by_job.end()) {
        out.fail("money conservation: settled job ", record.job.id,
                 " missing from the ledger");
      } else if (it->second != record.utility) {
        out.fail("money conservation: job ", record.job.id,
                 " ledger utility ", it->second, " != record utility ",
                 record.utility);
      }
    } else if (it != by_job.end()) {
      out.fail("money conservation: unsettled job ", record.job.id,
               " has a ledger entry");
    }
  }
  // The running totals must re-sum from the entries. Utilities re-add in
  // entry order (the accumulation order), so that sum is exact; budgets
  // accumulate in submission-event order, which job-id iteration may not
  // reproduce, so they get a relative tolerance.
  economy::Money utility_sum = 0.0;
  for (const economy::LedgerEntry& entry : report.ledger_entries) {
    utility_sum += entry.utility;
  }
  if (utility_sum != report.ledger_total_utility) {
    out.fail("money conservation: ledger entries sum to ", utility_sum,
             " but total_utility is ", report.ledger_total_utility);
  }
  economy::Money budget_sum = 0.0;
  for (const service::SlaRecord& record : report.records) {
    budget_sum += record.job.budget;
  }
  const double budget_tol =
      1e-9 * std::max(1.0, std::abs(report.ledger_total_budget));
  if (std::abs(budget_sum - report.ledger_total_budget) > budget_tol) {
    out.fail("money conservation: submitted budgets sum to ", budget_sum,
             " but total_budget is ", report.ledger_total_budget);
  }
  if (report.inputs.total_utility != report.ledger_total_utility ||
      report.inputs.total_budget != report.ledger_total_budget) {
    out.fail("money conservation: objective inputs disagree with the "
             "ledger totals");
  }

  // --- PE-allocation accounting ----------------------------------------
  if (!(report.utilization >= 0.0) || report.utilization > 1.0 + 1e-9) {
    out.fail("PE accounting: utilization ", report.utilization,
             " outside [0, 1]");
  }
  for (const service::SlaRecord& record : report.records) {
    if (record.job.procs == 0) {
      out.fail("PE accounting: job ", record.job.id, " requests 0 PEs");
    } else if (node_count != 0 && record.job.procs > node_count) {
      out.fail("PE accounting: job ", record.job.id, " requests ",
               record.job.procs, " PEs on a ", node_count, "-PE machine");
    }
  }

  // --- monotone clock ---------------------------------------------------
  if (!std::isfinite(report.end_time) || report.end_time < 0.0) {
    out.fail("monotone clock: end_time ", report.end_time,
             " not finite and non-negative");
  }
  for (const service::SlaRecord& record : report.records) {
    const workload::JobId id = record.job.id;
    if (!std::isfinite(record.submit_time) || record.submit_time < 0.0) {
      out.fail("monotone clock: job ", id, " submit time ",
               record.submit_time, " not finite and non-negative");
      continue;
    }
    if (record.decision_time < record.submit_time - eps) {
      out.fail("monotone clock: job ", id, " decided at ",
               record.decision_time, " before submission at ",
               record.submit_time);
    }
    const bool finished =
        record.outcome == workload::JobOutcome::FulfilledSLA ||
        record.outcome == workload::JobOutcome::ViolatedSLA;
    if (finished && (record.start_time < record.submit_time - eps ||
                     record.finish_time < record.start_time - eps)) {
      out.fail("monotone clock: job ", id, " submit/start/finish ",
               record.submit_time, '/', record.start_time, '/',
               record.finish_time, " not monotone");
    }
    if (is_settled(record.outcome) &&
        record.finish_time > report.end_time + eps) {
      out.fail("monotone clock: job ", id, " settled at ",
               record.finish_time, " after the run ended at ",
               report.end_time);
    }
  }

  return result;
}

void enforce_invariants(const service::SimulationReport& report,
                        std::uint32_t node_count) {
  const InvariantReport result = check_invariants(report, node_count);
  if (!result.ok()) {
    throw std::logic_error("simulation invariants violated:\n" +
                           result.to_string());
  }
}

}  // namespace utilrisk::verify
