// Cross-run invariants of a completed simulation.
//
// These are properties every correct run must satisfy regardless of
// policy, economic model or failure injection:
//   - money conservation: every settled SLA appears exactly once in the
//     ledger with the record's utility, and the ledger totals re-sum;
//   - SLA-outcome partition: rejected + fulfilled + violated + terminated
//     + failed-outage == submitted jobs, none left Unfinished;
//   - PE-allocation accounting: no job wider than the machine, realised
//     utilisation within [0, 1];
//   - monotone clock: submit <= decision/start <= finish <= end of run,
//     all timestamps finite and non-negative.
//
// service::simulate() enforces them after every run in debug builds
// (NDEBUG off); the verify test suite and the replay harness run them in
// every build type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace utilrisk::service {
struct SimulationReport;
}  // namespace utilrisk::service

namespace utilrisk::verify {

struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations, one per line (empty string when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Checks every invariant; `node_count` bounds the PE-allocation checks
/// (0 skips them when the machine width is unknown to the caller).
[[nodiscard]] InvariantReport check_invariants(
    const service::SimulationReport& report, std::uint32_t node_count = 0);

/// Throws std::logic_error listing every violation (no-op when ok).
void enforce_invariants(const service::SimulationReport& report,
                        std::uint32_t node_count = 0);

}  // namespace utilrisk::verify
