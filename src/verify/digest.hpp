// Stable 64-bit content digests for deterministic-replay verification.
//
// FNV-1a over a canonical byte encoding: every value is serialised to a
// fixed little-endian layout before hashing, doubles are normalised
// (-0.0 -> +0.0, every NaN -> one canonical quiet NaN) and strings are
// length-prefixed, so the same record stream hashes to the same value on
// every platform the kernel's RNG contract covers. Deliberately no
// external dependencies: a golden digest must never change because a
// library version did.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace utilrisk::verify {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

/// Bit pattern hashed for a double: -0.0 collapses onto +0.0 and every
/// NaN onto the canonical quiet NaN, so values that compare equal (or are
/// equally "not a number") digest equally regardless of how they were
/// produced.
[[nodiscard]] constexpr std::uint64_t canonical_double_bits(double value) {
  if (value != value) return 0x7ff8000000000000ULL;  // any NaN
  if (value == 0.0) return 0;                        // +0.0 and -0.0
  return std::bit_cast<std::uint64_t>(value);
}

/// Order-sensitive FNV-1a accumulator.
class DigestStream {
 public:
  void put_byte(std::uint8_t byte) {
    hash_ = (hash_ ^ byte) * kFnvPrime;
  }

  void put_u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      put_byte(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void put_i64(std::int64_t value) {
    put_u64(static_cast<std::uint64_t>(value));
  }

  void put_bool(bool value) { put_byte(value ? 1 : 0); }

  void put_double(double value) { put_u64(canonical_double_bits(value)); }

  /// Length-prefixed, so "ab" + "c" and "a" + "bc" digest differently.
  void put_string(std::string_view text) {
    put_u64(text.size());
    for (char c : text) put_byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffsetBasis;
};

/// Order-independent combiner: each element hash is mixed through a
/// SplitMix64-style finalizer and summed with wrapping arithmetic, so any
/// permutation of the same multiset digests equally while near-collisions
/// of raw hashes do not cancel.
class UnorderedDigest {
 public:
  void add(std::uint64_t element_hash) {
    sum_ += mix(element_hash);
    ++count_;
  }

  /// Folds another accumulator in. Because both sides are wrapping sums
  /// over mixed element hashes, merging per-partition digests yields
  /// exactly the digest a single accumulator over the union would — the
  /// property the sharded serving path's combined decision digest rests
  /// on (any partitioning of the same decision multiset merges equal).
  void merge(const UnorderedDigest& other) {
    sum_ += other.sum_;
    count_ += other.count_;
  }

  [[nodiscard]] std::uint64_t value() const {
    DigestStream stream;
    stream.put_u64(sum_);
    stream.put_u64(count_);
    return stream.value();
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  static constexpr std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

/// 16 lowercase hex characters (zero-padded).
[[nodiscard]] std::string to_hex(std::uint64_t value);

/// Inverse of to_hex; throws std::invalid_argument on anything that is
/// not exactly 1..16 hex characters.
[[nodiscard]] std::uint64_t parse_hex(std::string_view text);

}  // namespace utilrisk::verify
