// Canonical digest of one simulation run.
//
// Two components, combined into one 64-bit value:
//   - event stream: order-sensitive hash over the per-job SLA lifecycle
//     (outcome, every timestamp, settlement) plus the kernel's event count
//     and end time — any scheduling divergence lands here;
//   - money flows: order-independent hash over the settlement ledger plus
//     the user<->provider totals — settlements are commutative sums, so
//     their digest must not depend on settlement order.
//
// The digest is a pure function of the SimulationReport, computed by
// service::simulate() for every run and embedded in report.digest.
#pragma once

#include <cstdint>
#include <string>

#include "verify/digest.hpp"

namespace utilrisk::service {
struct SimulationReport;
}  // namespace utilrisk::service

namespace utilrisk::verify {

/// Digest schema version. v2 folds `Job.tenant` into the event stream for
/// multi-tenant runs (tenant != 0 only, so the tenantless Table VI golden
/// corpus digests are byte-identical to v1 — the goldens did not need
/// regeneration). Before v2, two runs whose jobs differed only in tenant
/// assignment digested equally, which would have let a broken
/// tenant-aware router pass replay.
inline constexpr int kRunDigestSchemaVersion = 2;

struct RunDigest {
  std::uint64_t event_stream = 0;
  std::uint64_t money_flows = 0;
  std::uint64_t combined = 0;

  /// The combined digest as 16 lowercase hex characters.
  [[nodiscard]] std::string hex() const { return to_hex(combined); }

  [[nodiscard]] bool operator==(const RunDigest&) const = default;
};

[[nodiscard]] RunDigest run_digest(const service::SimulationReport& report);

}  // namespace utilrisk::verify
