#include "verify/digest.hpp"

#include <stdexcept>

namespace utilrisk::verify {

std::string to_hex(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex(std::string_view text) {
  if (text.empty() || text.size() > 16) {
    throw std::invalid_argument("parse_hex: expected 1..16 hex characters");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("parse_hex: non-hex character in '" +
                                  std::string(text) + "'");
    }
  }
  return value;
}

}  // namespace utilrisk::verify
