#include "verify/golden.hpp"

#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "exp/parallel.hpp"
#include "service/computing_service.hpp"

namespace utilrisk::verify {

namespace {

/// One unique run of the matrix (after run_key dedup).
struct UniqueRun {
  policy::PolicyKind policy{};
  exp::RunSettings settings;
};

economy::EconomicModel parse_model_token(const std::string& token) {
  if (token == "commodity") return economy::EconomicModel::CommodityMarket;
  if (token == "bid") return economy::EconomicModel::BidBased;
  throw std::runtime_error("load_golden: unknown model '" + token + "'");
}

exp::ExperimentSet parse_set_token(const std::string& token) {
  if (token == "A") return exp::ExperimentSet::A;
  if (token == "B") return exp::ExperimentSet::B;
  throw std::runtime_error("load_golden: unknown set '" + token + "'");
}

std::string model_token(economy::EconomicModel model) {
  return model == economy::EconomicModel::CommodityMarket ? "commodity"
                                                          : "bid";
}

std::string header_line(const GoldenConfig& config) {
  std::ostringstream oss;
  oss << "# " << kGoldenSchema << " model=" << model_token(config.model)
      << " set=" << exp::to_string(config.set)
      << " jobs=" << config.job_count << " nodes=" << config.node_count
      << " tseed=" << config.trace_seed << " qseed=" << config.qos_seed;
  return oss.str();
}

}  // namespace

exp::ExperimentConfig GoldenConfig::experiment_config() const {
  exp::ExperimentConfig config;
  config.model = model;
  config.set = set;
  config.trace.job_count = job_count;
  config.trace.seed = trace_seed;
  config.machine.node_count = node_count;
  config.qos_seed = qos_seed;
  return config;
}

std::string GoldenConfig::filename() const {
  return "golden_" + model_token(model) + "_" + exp::to_string(set) + ".tsv";
}

std::uint64_t GoldenFile::combined() const {
  DigestStream stream;
  stream.put_u64(entries.size());
  for (const GoldenEntry& entry : entries) {
    stream.put_string(entry.key);
    stream.put_u64(entry.digest.combined);
    stream.put_u64(entry.digest.event_stream);
    stream.put_u64(entry.digest.money_flows);
  }
  return stream.value();
}

GoldenFile compute_golden(const GoldenConfig& golden_config,
                          std::size_t workers) {
  const exp::ExperimentConfig config = golden_config.experiment_config();
  const exp::RunSettings defaults = config.default_settings();
  const std::vector<policy::PolicyKind> policies =
      policy::policies_for_model(config.model);

  // Dedup the (scenario, policy, value) matrix by run key; the map keeps
  // the entries sorted, which is the file's canonical order.
  std::map<std::string, UniqueRun> unique;
  for (const exp::Scenario& scenario : exp::all_scenarios()) {
    for (policy::PolicyKind policy : policies) {
      for (std::size_t v = 0; v < scenario.values.size(); ++v) {
        exp::RunSettings settings = scenario.settings_for(defaults, v);
        std::string key = config.run_key(policy, settings);
        unique.emplace(std::move(key), UniqueRun{policy, std::move(settings)});
      }
    }
  }

  GoldenFile result;
  result.config = golden_config;
  result.entries.reserve(unique.size());
  std::vector<const UniqueRun*> runs;
  runs.reserve(unique.size());
  for (const auto& [key, run] : unique) {
    result.entries.push_back({key, RunDigest{}});
    runs.push_back(&run);
  }

  auto digest_one = [&config](const workload::WorkloadBuilder& builder,
                              const UniqueRun& run) {
    return run_digest(
        exp::simulate_run_report(config, builder, run.policy, run.settings));
  };

  if (workers <= 1) {
    const workload::WorkloadBuilder builder = config.make_builder();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      result.entries[i].digest = digest_one(builder, *runs[i]);
    }
    return result;
  }

  // Same fan-out shape as the parallel sweep executor: each worker shard
  // owns its own WorkloadBuilder, results land at their index, and the
  // serial/parallel outputs are identical by construction.
  exp::ThreadPool pool(workers);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const std::size_t shards = std::min(pool.worker_count(), runs.size());
  for (std::size_t shard = 0; shard < shards; ++shard) {
    pool.submit([&] {
      try {
        const workload::WorkloadBuilder builder = config.make_builder();
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= runs.size()) return;
          result.entries[i].digest = digest_one(builder, *runs[i]);
        }
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

std::string write_golden(const GoldenFile& golden, const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / golden.config.filename()).string();
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_golden: cannot write " + path);
  }
  out << header_line(golden.config) << '\n';
  for (const GoldenEntry& entry : golden.entries) {
    out << entry.key << '\t' << to_hex(entry.digest.combined) << '\t'
        << to_hex(entry.digest.event_stream) << '\t'
        << to_hex(entry.digest.money_flows) << '\n';
  }
  out << "# combined " << to_hex(golden.combined()) << '\n';
  if (!out) {
    throw std::runtime_error("write_golden: short write to " + path);
  }
  return path;
}

GoldenFile load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_golden: cannot read " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_golden: " + path + " is empty");
  }

  GoldenFile golden;
  {
    std::istringstream header(line);
    std::string hash;
    std::string schema;
    header >> hash >> schema;
    if (hash != "#" || schema != kGoldenSchema) {
      throw std::runtime_error("load_golden: " + path +
                               ": not a '" + kGoldenSchema + "' file");
    }
    std::string token;
    while (header >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error("load_golden: " + path +
                                 ": malformed header token '" + token + "'");
      }
      const std::string name = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (name == "model") {
        golden.config.model = parse_model_token(value);
      } else if (name == "set") {
        golden.config.set = parse_set_token(value);
      } else if (name == "jobs") {
        golden.config.job_count =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (name == "nodes") {
        golden.config.node_count =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (name == "tseed") {
        golden.config.trace_seed = std::stoull(value);
      } else if (name == "qseed") {
        golden.config.qos_seed = std::stoull(value);
      } else {
        throw std::runtime_error("load_golden: " + path +
                                 ": unknown header field '" + name + "'");
      }
    }
  }

  bool saw_trailer = false;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("# combined ", 0) == 0) {
      const std::uint64_t expected = parse_hex(line.substr(11));
      if (expected != golden.combined()) {
        throw std::runtime_error(
            "load_golden: " + path +
            ": trailer digest does not match the entries (corrupt or "
            "hand-edited file)");
      }
      saw_trailer = true;
      continue;
    }
    if (saw_trailer) {
      throw std::runtime_error("load_golden: " + path + ':' +
                               std::to_string(line_no) +
                               ": content after the trailer");
    }
    std::istringstream fields(line);
    GoldenEntry entry;
    std::string combined_hex;
    std::string event_hex;
    std::string money_hex;
    if (!std::getline(fields, entry.key, '\t') ||
        !std::getline(fields, combined_hex, '\t') ||
        !std::getline(fields, event_hex, '\t') ||
        !std::getline(fields, money_hex)) {
      throw std::runtime_error("load_golden: " + path + ':' +
                               std::to_string(line_no) +
                               ": malformed entry line");
    }
    entry.digest.combined = parse_hex(combined_hex);
    entry.digest.event_stream = parse_hex(event_hex);
    entry.digest.money_flows = parse_hex(money_hex);
    golden.entries.push_back(std::move(entry));
  }
  if (!saw_trailer) {
    throw std::runtime_error("load_golden: " + path +
                             ": missing '# combined' trailer (truncated?)");
  }
  return golden;
}

CheckReport check_golden(const GoldenFile& expected, std::size_t workers) {
  const GoldenFile actual = compute_golden(expected.config, workers);
  std::map<std::string, RunDigest> recomputed;
  for (const GoldenEntry& entry : actual.entries) {
    recomputed.emplace(entry.key, entry.digest);
  }

  CheckReport report;
  report.records_checked = expected.entries.size();
  auto diverged = [&report](std::ostringstream& oss) {
    // The first finding carries the headline the acceptance criteria and
    // CI grep for; later ones are plain.
    report.diagnostics.push_back(
        (report.diagnostics.empty() ? "first diverging record: " : "") +
        oss.str());
  };

  for (const GoldenEntry& entry : expected.entries) {
    const auto it = recomputed.find(entry.key);
    if (it == recomputed.end()) {
      std::ostringstream oss;
      oss << entry.key << ": no longer part of the run matrix";
      diverged(oss);
      continue;
    }
    if (it->second != entry.digest) {
      std::ostringstream oss;
      oss << entry.key << ": expected " << to_hex(entry.digest.combined)
          << ", got " << to_hex(it->second.combined) << " [event stream "
          << (it->second.event_stream == entry.digest.event_stream
                  ? "matches"
                  : "diverges")
          << ", money flows "
          << (it->second.money_flows == entry.digest.money_flows
                  ? "match"
                  : "diverge")
          << "]";
      diverged(oss);
    }
    recomputed.erase(it);
  }
  for (const auto& [key, digest] : recomputed) {
    std::ostringstream oss;
    oss << key << ": new run not covered by the golden file (combined "
        << to_hex(digest.combined) << "); re-record to adopt it";
    diverged(oss);
  }
  return report;
}

std::uint64_t sweep_digest(const exp::SweepResult& sweep) {
  DigestStream stream;
  stream.put_u64(sweep.scenario_names.size());
  for (const std::string& name : sweep.scenario_names) {
    stream.put_string(name);
  }
  stream.put_u64(sweep.policies.size());
  for (policy::PolicyKind policy : sweep.policies) {
    stream.put_string(policy::to_string(policy));
  }
  for (const auto& per_scenario : sweep.raw) {
    for (const auto& per_objective : per_scenario) {
      stream.put_u64(per_objective.size());
      for (const auto& per_policy : per_objective) {
        stream.put_u64(per_policy.size());
        for (double value : per_policy) stream.put_double(value);
      }
    }
  }
  for (const auto& per_scenario : sweep.separate) {
    stream.put_u64(per_scenario.size());
    for (const auto& per_policy : per_scenario) {
      for (const core::RiskPoint& point : per_policy) {
        stream.put_double(point.performance);
        stream.put_double(point.volatility);
      }
    }
  }
  return stream.value();
}

}  // namespace utilrisk::verify
