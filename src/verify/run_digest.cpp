#include "verify/run_digest.hpp"

#include "service/computing_service.hpp"

namespace utilrisk::verify {

RunDigest run_digest(const service::SimulationReport& report) {
  // Records arrive in job-id order (the collector's map), which is itself
  // deterministic, so an order-sensitive stream is exact here.
  DigestStream events;
  events.put_u64(report.records.size());
  for (const service::SlaRecord& record : report.records) {
    events.put_u64(record.job.id);
    events.put_byte(static_cast<std::uint8_t>(record.outcome));
    events.put_double(record.submit_time);
    events.put_double(record.decision_time);
    events.put_double(record.start_time);
    events.put_double(record.finish_time);
    events.put_double(record.quoted_cost);
    events.put_double(record.utility);
    events.put_bool(record.started);
    events.put_u64(record.outage_count);
    // Tenant attribution (schema v2): folded only when attributed, so the
    // tenantless golden corpus keeps its v1 digests bit-for-bit.
    if (record.job.tenant != 0) events.put_u64(record.job.tenant);
    events.put_u64(record.job.procs);
    events.put_double(record.job.deadline_duration);
    events.put_double(record.job.budget);
    events.put_double(record.job.penalty_rate);
  }
  events.put_u64(report.events_dispatched);
  events.put_double(report.end_time);

  UnorderedDigest settlements;
  for (const economy::LedgerEntry& entry : report.ledger_entries) {
    DigestStream element;
    element.put_u64(entry.job);
    element.put_double(entry.utility);
    settlements.add(element.value());
  }
  DigestStream money;
  money.put_u64(settlements.value());
  money.put_u64(report.ledger_entries.size());
  money.put_double(report.ledger_total_budget);
  money.put_double(report.ledger_total_utility);

  RunDigest digest;
  digest.event_stream = events.value();
  digest.money_flows = money.value();

  DigestStream combined;
  combined.put_u64(digest.event_stream);
  combined.put_u64(digest.money_flows);
  combined.put_double(report.objectives.wait);
  combined.put_double(report.objectives.sla);
  combined.put_double(report.objectives.reliability);
  combined.put_double(report.objectives.profitability);
  combined.put_double(report.utilization);
  digest.combined = combined.value();
  return digest;
}

}  // namespace utilrisk::verify
