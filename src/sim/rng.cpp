#include "sim/rng.hpp"

#include <stdexcept>

namespace utilrisk::sim {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::uniform_int: lo > hi");
  }
  const std::uint64_t span = hi - lo + 1;  // wraps to 0 for the full range
  if (span == 0) return operator()();
  // Rejection sampling on the top bits: unbiased and cheap (expected < 2
  // draws even in the worst case).
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = operator()();
  } while (draw >= limit);
  return lo + draw % span;
}

Rng Rng::split() {
  // Use two raw draws to seed a child via SplitMix64; streams from
  // different split points are statistically independent for our purposes.
  std::uint64_t mix = operator()() ^ (operator()() << 1 | 1ULL);
  Rng child(0);
  child.reseed(mix);
  return child;
}

}  // namespace utilrisk::sim
