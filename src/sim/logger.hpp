// Leveled trace logger, one per Simulator.
//
// Replaces the process-wide TraceLog::instance() singleton (now a
// deprecated shim in trace_log.hpp): since the parallel sweep executor
// runs one simulator per worker on a jthread pool, a shared mutable
// singleton was a latent data race. Each Simulator owns a Logger; entities
// reach it through simulator().logger() — usually via the UTILRISK_ELOG
// sugar — so every run's trace is independently levelled and sinked.
//
// Thread-safety: level/sink reads are relaxed atomics (the Off fast path
// is one load + compare), writes serialise on a mutex, so a Logger shared
// across threads (e.g. the CLI's top-level logger) emits whole lines.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace utilrisk::sim {

enum class LogLevel : int { Off = 0, Error = 1, Info = 2, Debug = 3 };

[[nodiscard]] constexpr const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "error";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
    default: return "off";
  }
}

/// Parses "off" | "error" | "info" | "debug" (the CLI's --log-level);
/// throws std::invalid_argument on anything else.
[[nodiscard]] inline LogLevel parse_log_level(const std::string& name) {
  if (name == "off") return LogLevel::Off;
  if (name == "error") return LogLevel::Error;
  if (name == "info") return LogLevel::Info;
  if (name == "debug") return LogLevel::Debug;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (off|error|info|debug)");
}

class Logger {
 public:
  Logger() = default;
  explicit Logger(LogLevel level, std::ostream* sink = &std::cerr)
      : level_(static_cast<int>(level)), sink_(sink) {}

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// nullptr silences the logger regardless of level.
  void set_sink(std::ostream* sink) {
    sink_.store(sink, std::memory_order_relaxed);
  }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= level_.load(std::memory_order_relaxed) &&
           sink_.load(std::memory_order_relaxed) != nullptr;
  }

  void write(LogLevel level, SimTime now, std::string_view who,
             std::string_view msg) {
    if (!enabled(level)) return;
    std::ostream* sink = sink_.load(std::memory_order_relaxed);
    // Compose off-lock, emit one atomic-ish line under the lock.
    std::ostringstream line;
    line << '[' << label(level) << "] t=" << now << ' ' << who << ": " << msg
         << '\n';
    std::lock_guard lock(mutex_);
    (*sink) << line.str();
  }

 private:
  static const char* label(LogLevel level) {
    switch (level) {
      case LogLevel::Error: return "ERR";
      case LogLevel::Info: return "INF";
      case LogLevel::Debug: return "DBG";
      default: return "OFF";
    }
  }

  std::atomic<int> level_{static_cast<int>(LogLevel::Off)};
  std::atomic<std::ostream*> sink_{&std::cerr};
  std::mutex mutex_;
};

/// Log to an explicit Logger with lazy message construction: the stream
/// expression only runs when the level is enabled.
#define UTILRISK_LOG_TO(logger, level, now, who, expr)                       \
  do {                                                                       \
    auto& utilrisk_log_ = (logger);                                          \
    if (utilrisk_log_.enabled(level)) {                                      \
      std::ostringstream utilrisk_oss_;                                      \
      utilrisk_oss_ << expr;                                                 \
      utilrisk_log_.write(level, (now), (who), utilrisk_oss_.str());         \
    }                                                                        \
  } while (0)

/// Entity/policy sugar: logs through the owning simulator's logger with
/// the caller's clock and name. Valid inside any class exposing
/// simulator(), now() and name() (sim::Entity subclasses).
#define UTILRISK_ELOG(level, expr)                                           \
  UTILRISK_LOG_TO(this->simulator().logger(), level, this->now(),            \
                  this->name(), expr)

}  // namespace utilrisk::sim
