#include "sim/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace utilrisk::sim {

double sample_exponential(Rng& rng, double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("sample_exponential: mean must be > 0");
  }
  // Avoid log(0): uniform01() is in [0,1), so 1-u is in (0,1].
  return -mean * std::log(1.0 - rng.uniform01());
}

double sample_standard_normal(Rng& rng) {
  for (;;) {
    const double u = 2.0 * rng.uniform01() - 1.0;
    const double v = 2.0 * rng.uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Rng& rng, double mean, double stddev) {
  if (stddev < 0.0) {
    throw std::invalid_argument("sample_normal: stddev must be >= 0");
  }
  return mean + stddev * sample_standard_normal(rng);
}

double sample_truncated_normal(Rng& rng, double mean, double stddev,
                               double lo, double hi) {
  if (lo > hi) {
    throw std::invalid_argument("sample_truncated_normal: lo > hi");
  }
  constexpr int kMaxAttempts = 64;
  for (int i = 0; i < kMaxAttempts; ++i) {
    const double x = sample_normal(rng, mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double sample_lognormal_mean_cv(Rng& rng, double mean, double cv) {
  if (mean <= 0.0 || cv <= 0.0) {
    throw std::invalid_argument("sample_lognormal_mean_cv: mean, cv > 0");
  }
  // For X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // CV^2 = exp(sigma^2) - 1  =>  sigma^2 = ln(1 + cv^2),
  // mu = ln(mean) - sigma^2 / 2.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(mu + std::sqrt(sigma2) * sample_standard_normal(rng));
}

double sample_gamma(Rng& rng, double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("sample_gamma: shape, scale > 0");
  }
  if (shape < 1.0) {
    // Boost: X ~ Gamma(shape+1), then X * U^(1/shape) ~ Gamma(shape).
    const double boosted = sample_gamma(rng, shape + 1.0, 1.0);
    const double u = rng.uniform01();
    // uniform01 can return 0; resample the pathological case.
    const double u_safe = u > 0.0 ? u : 0.5;
    return scale * boosted * std::pow(u_safe, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = sample_standard_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("sample_discrete: empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("sample_discrete: weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("sample_discrete: all weights zero");
  }
  double target = rng.uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

std::uint32_t sample_job_size(Rng& rng, std::uint32_t max_procs,
                              double p2_bias) {
  if (max_procs == 0) {
    throw std::invalid_argument("sample_job_size: max_procs must be >= 1");
  }
  if (rng.bernoulli(p2_bias)) {
    const int max_exp =
        static_cast<int>(std::floor(std::log2(static_cast<double>(max_procs))));
    const int k = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(max_exp)));
    return std::min<std::uint32_t>(max_procs, 1u << k);
  }
  return static_cast<std::uint32_t>(rng.uniform_int(1, max_procs));
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace utilrisk::sim
