// Lightweight leveled logger for simulation traces.
//
// Disabled (Level::Off) by default so hot loops pay one branch. The service
// and policies log SLA lifecycle transitions at Debug for test forensics.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace utilrisk::sim {

enum class LogLevel : int { Off = 0, Error = 1, Info = 2, Debug = 3 };

/// Process-wide trace logger. Not thread-safe (kernel is single-threaded).
class TraceLog {
 public:
  static TraceLog& instance() {
    static TraceLog log;
    return log;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void set_sink(std::ostream* sink) { sink_ = sink; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_) &&
           sink_ != nullptr;
  }

  void write(LogLevel level, SimTime now, const std::string& who,
             const std::string& msg) {
    if (!enabled(level)) return;
    (*sink_) << '[' << label(level) << "] t=" << now << ' ' << who << ": "
             << msg << '\n';
  }

 private:
  TraceLog() = default;
  static const char* label(LogLevel level) {
    switch (level) {
      case LogLevel::Error: return "ERR";
      case LogLevel::Info: return "INF";
      case LogLevel::Debug: return "DBG";
      default: return "OFF";
    }
  }

  LogLevel level_ = LogLevel::Off;
  std::ostream* sink_ = &std::cerr;
};

/// Log with lazy message construction: the stream expression only runs when
/// the level is enabled.
#define UTILRISK_LOG(level, now, who, expr)                                  \
  do {                                                                       \
    auto& utilrisk_log_ = ::utilrisk::sim::TraceLog::instance();             \
    if (utilrisk_log_.enabled(level)) {                                      \
      std::ostringstream utilrisk_oss_;                                      \
      utilrisk_oss_ << expr;                                                 \
      utilrisk_log_.write(level, (now), (who), utilrisk_oss_.str());         \
    }                                                                        \
  } while (0)

}  // namespace utilrisk::sim
