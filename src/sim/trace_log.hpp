// DEPRECATED compatibility shim for the old process-wide trace logger.
//
// The TraceLog::instance() singleton was documented "not thread-safe" and
// became a latent data race once the parallel sweep executor (exp/parallel)
// started running simulators on a jthread pool. Logging now goes through a
// Logger owned by each Simulator (sim/logger.hpp): use
// Simulator::logger() / UTILRISK_LOG_TO / UTILRISK_ELOG.
//
// This shim keeps out-of-tree callers compiling for one release and then
// goes away. It forwards to an internal (thread-safe) Logger, so existing
// code keeps working — it just can no longer be levelled per run.
#pragma once

#include "sim/logger.hpp"

namespace utilrisk::sim {

class TraceLog {
 public:
  [[deprecated(
      "TraceLog::instance() is deprecated; use Simulator::logger() "
      "(sim/logger.hpp)")]]
  static TraceLog& instance() {
    static TraceLog log;
    return log;
  }

  void set_level(LogLevel level) { logger_.set_level(level); }
  [[nodiscard]] LogLevel level() const { return logger_.level(); }
  void set_sink(std::ostream* sink) { logger_.set_sink(sink); }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return logger_.enabled(level);
  }
  void write(LogLevel level, SimTime now, const std::string& who,
             const std::string& msg) {
    logger_.write(level, now, who, msg);
  }

  /// The shim's backing logger, for staged migrations.
  [[nodiscard]] Logger& logger() { return logger_; }

 private:
  TraceLog() = default;
  Logger logger_;
};

/// DEPRECATED: logs through the process-wide shim. Use UTILRISK_LOG_TO
/// with an owned Logger (or UTILRISK_ELOG inside entities) instead.
#define UTILRISK_LOG(level, now, who, expr)                                  \
  UTILRISK_LOG_TO(::utilrisk::sim::TraceLog::instance(), level, (now),       \
                  (who), expr)

}  // namespace utilrisk::sim
