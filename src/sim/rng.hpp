// Deterministic random number engine.
//
// We hand-roll xoshiro256** (Blackman & Vigna) with SplitMix64 seeding
// instead of using <random> engines + distributions, because libstdc++ /
// libc++ distribution implementations differ: experiment results must be
// bit-reproducible across platforms for the result cache and the
// determinism tests to hold.
#pragma once

#include <array>
#include <cstdint>

namespace utilrisk::sim {

/// SplitMix64 step; used to expand a single 64-bit seed into engine state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — 256-bit state, period 2^256 - 1, excellent
/// statistical quality for simulation workloads.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = 0x7261697365726973ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection
  /// to avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// Derives an independent child stream (for per-subsystem streams that
  /// must not perturb each other when one consumes more draws).
  [[nodiscard]] Rng split();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace utilrisk::sim
