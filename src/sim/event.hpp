// Event record used by the discrete-event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.hpp"

namespace utilrisk::sim {

/// Action executed when an event fires. Runs with the simulator clock
/// already advanced to the event's timestamp.
using EventAction = std::function<void()>;

/// Monotonically increasing sequence number; breaks ties between events
/// scheduled for the same instant so execution order is deterministic
/// (FIFO in scheduling order).
using EventSequence = std::uint64_t;

namespace detail {

/// Heap node, owned exclusively by the queue's slab pool. Cancellation is
/// O(1): the node is tombstoned in place and skipped when it reaches the
/// top of the heap. Slots are recycled after pop; `generation` is bumped
/// on every recycle so a stale EventHandle can tell its event already
/// fired. Single-threaded by kernel contract.
struct EventRecord {
  SimTime time = 0.0;
  EventSequence seq = 0;
  EventAction action;
  bool cancelled = false;
  std::uint64_t generation = 0;
};

}  // namespace detail

/// Opaque handle to a scheduled event, usable to cancel it before it fires.
/// Default-constructed handles are inert. Handles do not keep the event
/// alive past execution; cancelling an already-fired event is a no-op.
///
/// Validity is checked in two layers: a queue-lifetime token (so a handle
/// outliving its queue degrades to inert instead of dangling) and the
/// record's generation counter (so a recycled slot is never mistaken for
/// the original event).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Returns true if this call
  /// performed the cancellation.
  bool cancel() {
    auto live = live_.lock();
    if (!live) return false;
    if (record_ == nullptr || record_->generation != generation_ ||
        record_->cancelled) {
      return false;
    }
    record_->cancelled = true;
    record_->action = nullptr;  // release captured state eagerly
    --*live;
    return true;
  }

  /// True if the handle still refers to a live (pending, uncancelled) event.
  [[nodiscard]] bool pending() const {
    auto live = live_.lock();
    return live && record_ != nullptr &&
           record_->generation == generation_ && !record_->cancelled;
  }

  /// Scheduled firing time, or kTimeNever if no longer pending.
  [[nodiscard]] SimTime time() const {
    return pending() ? record_->time : kTimeNever;
  }

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<std::size_t> live, detail::EventRecord* record,
              std::uint64_t generation)
      : live_(std::move(live)), record_(record), generation_(generation) {}

  /// The owning queue's live-event counter; expires with the queue, which
  /// also guards `record_` (the slab dies with the queue).
  std::weak_ptr<std::size_t> live_;
  detail::EventRecord* record_ = nullptr;
  std::uint64_t generation_ = 0;
};

}  // namespace utilrisk::sim
