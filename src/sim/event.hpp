// Event record used by the discrete-event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.hpp"

namespace utilrisk::sim {

/// Action executed when an event fires. Runs with the simulator clock
/// already advanced to the event's timestamp.
using EventAction = std::function<void()>;

/// Monotonically increasing sequence number; breaks ties between events
/// scheduled for the same instant so execution order is deterministic
/// (FIFO in scheduling order).
using EventSequence = std::uint64_t;

namespace detail {

/// Heap node. Shared with EventHandle so cancellation is O(1): the node is
/// tombstoned in place and skipped when it reaches the top of the heap.
struct EventRecord {
  SimTime time = 0.0;
  EventSequence seq = 0;
  EventAction action;
  bool cancelled = false;
  /// Points at the owning queue's live-event counter while the record sits
  /// in the heap; cleared when popped. Lets cancel() keep size() exact
  /// without a queue back-reference. Single-threaded by kernel contract.
  std::size_t* live_hook = nullptr;
};

}  // namespace detail

/// Opaque handle to a scheduled event, usable to cancel it before it fires.
/// Default-constructed handles are inert. Handles do not keep the event
/// alive past execution; cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Returns true if this call
  /// performed the cancellation.
  bool cancel() {
    auto rec = record_.lock();
    if (!rec || rec->cancelled) return false;
    rec->cancelled = true;
    rec->action = nullptr;  // release captured state eagerly
    if (rec->live_hook != nullptr) {
      --*rec->live_hook;
      rec->live_hook = nullptr;
    }
    return true;
  }

  /// True if the handle still refers to a live (pending, uncancelled) event.
  [[nodiscard]] bool pending() const {
    auto rec = record_.lock();
    return rec && !rec->cancelled;
  }

  /// Scheduled firing time, or kTimeNever if no longer pending.
  [[nodiscard]] SimTime time() const {
    auto rec = record_.lock();
    return (rec && !rec->cancelled) ? rec->time : kTimeNever;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<detail::EventRecord> rec)
      : record_(std::move(rec)) {}

  std::weak_ptr<detail::EventRecord> record_;
};

}  // namespace utilrisk::sim
