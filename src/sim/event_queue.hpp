// Pending-event set with two interchangeable structures behind one API:
// a binary heap ordered by (time, sequence) for small event sets, and a
// Brown-style calendar queue for large ones (10k-100k-node clusters keep
// tens of thousands of completion events pending; the heap's O(log n)
// sift chains dominate the kernel there). Both structures pop the unique
// global minimum under the same (time, sequence) total order, so the
// dispatch sequence — and therefore every replay digest — is identical
// regardless of which structure is active or when the switch happens.
// Cancellation stays tombstone-based O(1) in both modes.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace utilrisk::sim {

/// An event removed from the queue, ready to dispatch.
struct PoppedEvent {
  SimTime time = 0.0;
  EventSequence seq = 0;
  EventAction action;
};

/// Min-queue of pending events. Not thread-safe: the kernel is
/// single-threaded by design (deterministic replay is a core requirement
/// for the experiment cache; see DESIGN.md §4). Parallelism lives one
/// layer up, in exp/parallel.hpp, with one kernel per worker.
///
/// Records live in a slab pool owned by the queue and are recycled after
/// they fire, so the steady-state hot path performs no per-event heap
/// allocation. The structure starts as a binary heap and migrates to a
/// calendar queue once the live count crosses kCalendarEnter (back to the
/// heap below kCalendarExit); the calendar keeps ~1 live event per bucket
/// via power-of-two resizing, making push/pop O(1) amortised.
class EventQueue {
 public:
  /// Live-event count above which the queue migrates to calendar mode.
  static constexpr std::size_t kCalendarEnter = 512;
  /// Live-event count below which calendar mode migrates back to the heap.
  static constexpr std::size_t kCalendarExit = 128;

  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an event. `time` must be finite.
  EventHandle push(SimTime time, EventAction action);

  /// True if no live (uncancelled) events remain.
  [[nodiscard]] bool empty() const { return *live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return *live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event, or nullopt when empty.
  /// Tombstoned entries encountered on the way are discarded.
  std::optional<PoppedEvent> pop();

  /// Drops every pending event.
  void clear();

  /// Total events ever pushed (diagnostics).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

  /// True while the calendar structure is active (diagnostics/tests).
  [[nodiscard]] bool calendar_active() const { return calendar_mode_; }

  /// Pins the queue to the binary heap regardless of size (benchmarks use
  /// this to measure the pre-calendar baseline; tests use it to compare
  /// structures). Call before the first push.
  void force_heap_mode() { heap_pinned_ = true; }

 private:
  // -- shared slab plumbing --
  void recycle(detail::EventRecord* rec);
  [[nodiscard]] detail::EventRecord* acquire();
  [[nodiscard]] static bool before(const detail::EventRecord& a,
                                   const detail::EventRecord& b);

  // -- heap mode --
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();

  // -- calendar mode --
  void enter_calendar();
  void exit_calendar();
  /// Re-buckets every resident record for `live` live events (tombstones
  /// are recycled on the way).
  void rebuild_calendar(std::size_t live);
  /// Sizes the ring for the records gathered in scratch_ and re-inserts
  /// them. Bucket vectors are reused across rebuilds (cleared, not freed),
  /// so steady-state growth performs no per-bucket allocation churn.
  void distribute_scratch();
  /// Inserts into the ring; returns the record's bucket length afterwards
  /// (the push path watches it to detect a stale bucket width).
  std::size_t calendar_insert(detail::EventRecord* rec);
  /// Earliest live record, or nullptr; prunes tombstones and caches the
  /// result (valid until it is popped, cancelled, or out-pushed).
  [[nodiscard]] detail::EventRecord* calendar_min();
  /// Removes `rec` (the cached minimum) from its bucket.
  void calendar_remove_min(detail::EventRecord* rec);
  /// Absolute bucket number for `time`; ring slot = value & bucket_mask_.
  [[nodiscard]] std::size_t bucket_of(SimTime time) const;

  std::deque<detail::EventRecord> pool_;        ///< stable slab storage
  std::vector<detail::EventRecord*> free_;      ///< recycled slots
  std::vector<detail::EventRecord*> heap_;
  /// Live-event counter, shared (weakly) with handles: expiry doubles as
  /// the "queue still alive" token for handles that outlive the queue.
  std::shared_ptr<std::size_t> live_;
  EventSequence next_seq_ = 0;
  std::uint64_t total_pushed_ = 0;

  bool calendar_mode_ = false;
  bool heap_pinned_ = false;
  /// Ring of buckets, each sorted descending by (time, seq) so the bucket
  /// minimum pops from the back in O(1). The vector may be larger than the
  /// active ring (bucket_mask_ + 1): rebuilds keep previously-allocated
  /// bucket storage around for reuse; slots past the ring are empty.
  std::vector<std::vector<detail::EventRecord*>> buckets_;
  std::size_t bucket_mask_ = 0;   ///< active ring size - 1 (power of two)
  double bucket_width_ = 1.0;
  double inv_bucket_width_ = 1.0;  ///< 1 / bucket_width_ (mul beats div)
  /// Rebuild staging area (reused capacity).
  std::vector<detail::EventRecord*> scratch_;
  /// Width-adaptation state: when an insert finds its bucket longer than
  /// kBucketOverflow, the pending window has drifted away from the width
  /// the last rebuild measured (e.g. a wide prefill narrowing into a tight
  /// steady-state band) and the ring is rebuilt with a fresh width. The
  /// cooldown doubles whenever such a rebuild fails to halve the width —
  /// genuinely clustered time distributions (ties, one far outlier) would
  /// otherwise rebuild-storm at O(live) a pop.
  std::size_t pushes_since_rebuild_ = 0;
  std::size_t length_cooldown_ = 32;
  std::size_t resident_ = 0;      ///< records in buckets (incl. tombstones)
  /// Scan position: the dequeue search starts at the bucket covering
  /// `pos_time_` and walks one "year" (bucket ring) forward.
  double pos_time_ = 0.0;
  /// Cached minimum (validated by generation + cancelled flag on read).
  detail::EventRecord* cached_min_ = nullptr;
  std::uint64_t cached_min_generation_ = 0;
  std::size_t cached_min_bucket_ = 0;
};

}  // namespace utilrisk::sim
