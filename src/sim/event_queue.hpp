// Pending-event set: a binary heap ordered by (time, sequence) with
// tombstone-based O(1) cancellation.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace utilrisk::sim {

/// An event removed from the queue, ready to dispatch.
struct PoppedEvent {
  SimTime time = 0.0;
  EventSequence seq = 0;
  EventAction action;
};

/// Min-heap of pending events. Not thread-safe: the kernel is
/// single-threaded by design (deterministic replay is a core requirement
/// for the experiment cache; see DESIGN.md §4). Parallelism lives one
/// layer up, in exp/parallel.hpp, with one kernel per worker.
///
/// Records live in a slab pool owned by the queue and are recycled after
/// they fire, so the steady-state hot path performs no per-event heap
/// allocation (the previous design paid one shared_ptr control block per
/// push; see bench_micro_kernel's BM_EventQueuePushPop).
class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an event. `time` must be finite.
  EventHandle push(SimTime time, EventAction action);

  /// True if no live (uncancelled) events remain.
  [[nodiscard]] bool empty() const { return *live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return *live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event, or nullopt when empty.
  /// Tombstoned entries encountered on the way are discarded.
  std::optional<PoppedEvent> pop();

  /// Drops every pending event.
  void clear();

  /// Total events ever pushed (diagnostics).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();
  void recycle(detail::EventRecord* rec);
  [[nodiscard]] detail::EventRecord* acquire();
  [[nodiscard]] static bool before(const detail::EventRecord& a,
                                   const detail::EventRecord& b);

  std::deque<detail::EventRecord> pool_;        ///< stable slab storage
  std::vector<detail::EventRecord*> free_;      ///< recycled slots
  std::vector<detail::EventRecord*> heap_;
  /// Live-event counter, shared (weakly) with handles: expiry doubles as
  /// the "queue still alive" token for handles that outlive the queue.
  std::shared_ptr<std::size_t> live_;
  EventSequence next_seq_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace utilrisk::sim
