// Pending-event set: a binary heap ordered by (time, sequence) with
// tombstone-based O(1) cancellation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace utilrisk::sim {

/// Min-heap of pending events. Not thread-safe: the kernel is
/// single-threaded by design (deterministic replay is a core requirement
/// for the experiment cache; see DESIGN.md §4).
class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an event. `time` must be finite.
  EventHandle push(SimTime time, EventAction action);

  /// True if no live (uncancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event record, or nullptr when
  /// empty. Tombstoned entries encountered on the way are discarded.
  std::shared_ptr<detail::EventRecord> pop();

  /// Drops every pending event.
  void clear();

  /// Total events ever pushed (diagnostics).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();
  [[nodiscard]] static bool before(const detail::EventRecord& a,
                                   const detail::EventRecord& b);

  std::vector<std::shared_ptr<detail::EventRecord>> heap_;
  std::size_t live_ = 0;
  EventSequence next_seq_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace utilrisk::sim
