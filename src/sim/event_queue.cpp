#include "sim/event_queue.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace utilrisk::sim {

EventQueue::EventQueue() : live_(std::make_shared<std::size_t>(0)) {}

EventQueue::~EventQueue() = default;
// Handles hold only a weak_ptr to live_ plus a generation stamp, so the
// queue (and its record slab) can die with handles outstanding: their
// weak_ptr expires and they degrade to inert.

bool EventQueue::before(const detail::EventRecord& a,
                        const detail::EventRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

detail::EventRecord* EventQueue::acquire() {
  if (!free_.empty()) {
    detail::EventRecord* rec = free_.back();
    free_.pop_back();
    return rec;
  }
  return &pool_.emplace_back();
}

void EventQueue::recycle(detail::EventRecord* rec) {
  ++rec->generation;  // invalidate outstanding handles to this slot
  rec->action = nullptr;
  rec->cancelled = false;
  free_.push_back(rec);
}

EventHandle EventQueue::push(SimTime time, EventAction action) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("EventQueue::push: non-finite event time");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::push: empty action");
  }
  detail::EventRecord* rec = acquire();
  rec->time = time;
  rec->seq = next_seq_++;
  rec->action = std::move(action);
  rec->cancelled = false;
  EventHandle handle{std::weak_ptr<std::size_t>(live_), rec, rec->generation};
  heap_.push_back(rec);
  sift_up(heap_.size() - 1);
  ++*live_;
  ++total_pushed_;
  return handle;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && heap_.front()->cancelled) {
    detail::EventRecord* dead = heap_.front();
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    recycle(dead);
  }
}

SimTime EventQueue::next_time() const {
  if (*live_ == 0) return kTimeNever;
  if (!heap_.front()->cancelled) return heap_.front()->time;
  // Front is a tombstone (purged on the next pop); scan for the earliest
  // live record. Rare path: only hit between a cancel of the head event
  // and the next pop.
  SimTime best = kTimeNever;
  for (const detail::EventRecord* rec : heap_) {
    if (!rec->cancelled && rec->time < best) best = rec->time;
  }
  return best;
}

std::optional<PoppedEvent> EventQueue::pop() {
  drop_dead_top();
  if (heap_.empty()) {
    assert(*live_ == 0);
    return std::nullopt;
  }
  detail::EventRecord* top = heap_.front();
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  assert(!top->cancelled);
  assert(*live_ > 0);
  --*live_;
  PoppedEvent popped{top->time, top->seq, std::move(top->action)};
  recycle(top);
  drop_dead_top();
  return popped;
}

void EventQueue::clear() {
  for (detail::EventRecord* rec : heap_) recycle(rec);
  heap_.clear();
  *live_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!before(*heap_[i], *heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t left = 2 * i + 1;
    std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && before(*heap_[left], *heap_[smallest])) smallest = left;
    if (right < n && before(*heap_[right], *heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace utilrisk::sim
