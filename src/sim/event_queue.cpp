#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace utilrisk::sim {

namespace {
/// Bucket length that flags a stale calendar width (see push()).
constexpr std::size_t kBucketOverflow = 32;
constexpr std::size_t kMinLengthCooldown = 32;
constexpr std::size_t kMaxLengthCooldown = std::size_t{1} << 20;
}  // namespace

EventQueue::EventQueue() : live_(std::make_shared<std::size_t>(0)) {}

EventQueue::~EventQueue() = default;
// Handles hold only a weak_ptr to live_ plus a generation stamp, so the
// queue (and its record slab) can die with handles outstanding: their
// weak_ptr expires and they degrade to inert.

bool EventQueue::before(const detail::EventRecord& a,
                        const detail::EventRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

detail::EventRecord* EventQueue::acquire() {
  if (!free_.empty()) {
    detail::EventRecord* rec = free_.back();
    free_.pop_back();
    return rec;
  }
  return &pool_.emplace_back();
}

void EventQueue::recycle(detail::EventRecord* rec) {
  ++rec->generation;  // invalidate outstanding handles to this slot
  rec->action = nullptr;
  rec->cancelled = false;
  free_.push_back(rec);
}

EventHandle EventQueue::push(SimTime time, EventAction action) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("EventQueue::push: non-finite event time");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::push: empty action");
  }
  detail::EventRecord* rec = acquire();
  rec->time = time;
  rec->seq = next_seq_++;
  rec->action = std::move(action);
  rec->cancelled = false;
  EventHandle handle{std::weak_ptr<std::size_t>(live_), rec, rec->generation};
  ++*live_;
  ++total_pushed_;
  if (calendar_mode_) {
    const std::size_t bucket_len = calendar_insert(rec);
    ++pushes_since_rebuild_;
    if (*live_ > 2 * (bucket_mask_ + 1)) {
      // Keep occupancy near one live event per bucket: grow the ring once
      // the live count outgrows it twofold.
      rebuild_calendar(*live_);
    } else if (bucket_len > kBucketOverflow &&
               pushes_since_rebuild_ >= length_cooldown_) {
      // Stale width: the live window no longer matches the span the last
      // rebuild measured. Re-measure — and back off exponentially when
      // re-measuring doesn't actually spread the events (clustered times).
      const double old_width = bucket_width_;
      rebuild_calendar(*live_);
      if (bucket_width_ > 0.5 * old_width) {
        if (length_cooldown_ < kMaxLengthCooldown) length_cooldown_ *= 2;
      } else {
        length_cooldown_ = kMinLengthCooldown;
      }
    }
  } else {
    heap_.push_back(rec);
    sift_up(heap_.size() - 1);
    if (!heap_pinned_ && *live_ >= kCalendarEnter) enter_calendar();
  }
  return handle;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && heap_.front()->cancelled) {
    detail::EventRecord* dead = heap_.front();
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    recycle(dead);
  }
}

SimTime EventQueue::next_time() const {
  if (*live_ == 0) return kTimeNever;
  if (calendar_mode_) {
    // Logically const: calendar_min only prunes tombstones and refreshes
    // the cached minimum; the live event set is untouched.
    detail::EventRecord* rec = const_cast<EventQueue*>(this)->calendar_min();
    return rec != nullptr ? rec->time : kTimeNever;
  }
  if (!heap_.front()->cancelled) return heap_.front()->time;
  // Front is a tombstone (purged on the next pop); scan for the earliest
  // live record. Rare path: only hit between a cancel of the head event
  // and the next pop.
  SimTime best = kTimeNever;
  for (const detail::EventRecord* rec : heap_) {
    if (!rec->cancelled && rec->time < best) best = rec->time;
  }
  return best;
}

std::optional<PoppedEvent> EventQueue::pop() {
  if (calendar_mode_) {
    detail::EventRecord* rec = calendar_min();
    if (rec == nullptr) {
      assert(*live_ == 0);
      // Mass-cancellation drained the queue without pops: fall back to the
      // (empty) heap so resident tombstones are reclaimed.
      exit_calendar();
      return std::nullopt;
    }
    calendar_remove_min(rec);
    assert(*live_ > 0);
    --*live_;
    PoppedEvent popped{rec->time, rec->seq, std::move(rec->action)};
    recycle(rec);
    if (*live_ < kCalendarExit) {
      exit_calendar();
    } else if (resident_ > 4 * *live_ + 64) {
      // Cancellation-heavy phase: sweep tombstones before they dominate.
      rebuild_calendar(*live_);
    }
    return popped;
  }
  drop_dead_top();
  if (heap_.empty()) {
    assert(*live_ == 0);
    return std::nullopt;
  }
  detail::EventRecord* top = heap_.front();
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  assert(!top->cancelled);
  assert(*live_ > 0);
  --*live_;
  PoppedEvent popped{top->time, top->seq, std::move(top->action)};
  recycle(top);
  drop_dead_top();
  return popped;
}

void EventQueue::clear() {
  for (detail::EventRecord* rec : heap_) recycle(rec);
  heap_.clear();
  for (auto& bucket : buckets_) {
    for (detail::EventRecord* rec : bucket) recycle(rec);
  }
  buckets_.clear();
  bucket_mask_ = 0;
  resident_ = 0;
  cached_min_ = nullptr;
  calendar_mode_ = false;
  *live_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!before(*heap_[i], *heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t left = 2 * i + 1;
    std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && before(*heap_[left], *heap_[smallest])) smallest = left;
    if (right < n && before(*heap_[right], *heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

// ---------------------------------------------------------------------------
// Calendar mode. The invariants that make it digest-safe:
//  * both structures hold the same live set, and both pop the unique
//    minimum under the (time, seq) total order, so the dispatch sequence
//    is independent of which structure is active;
//  * pos_time_ <= every live event's time (pops set it to the popped
//    time, earlier pushes rewind it, cancellations only raise the min);
//  * each bucket is sorted descending, so its minimum — after trailing
//    tombstones are pruned — is back() and pops in O(1);
//  * bucket_of is monotone non-decreasing in time, and the dequeue scan
//    accepts a bucket minimum only when bucket_of(its time) equals the
//    absolute bucket being scanned — so correctness never depends on the
//    exact arithmetic of the time->bucket map, only on both sides using
//    the same map (which lets bucket_of multiply by the cached reciprocal
//    instead of dividing).
// ---------------------------------------------------------------------------

std::size_t EventQueue::bucket_of(SimTime time) const {
  if (time <= 0.0) return 0;
  double q = time * inv_bucket_width_;
  // Deterministic clamp keeping the cast in range; events past it collapse
  // into one far-future bucket and are found by the direct-search fallback.
  if (q > 4.0e18) q = 4.0e18;
  return static_cast<std::size_t>(q);
}

void EventQueue::enter_calendar() {
  scratch_.clear();
  scratch_.reserve(heap_.size());
  for (detail::EventRecord* rec : heap_) {
    if (rec->cancelled) {
      recycle(rec);
    } else {
      scratch_.push_back(rec);
    }
  }
  heap_.clear();
  calendar_mode_ = true;
  distribute_scratch();
}

void EventQueue::exit_calendar() {
  heap_.clear();
  heap_.reserve(*live_);
  for (auto& bucket : buckets_) {
    for (detail::EventRecord* rec : bucket) {
      if (rec->cancelled) {
        recycle(rec);
      } else {
        heap_.push_back(rec);
      }
    }
    bucket.clear();  // keep capacity for the next calendar episode
  }
  bucket_mask_ = 0;
  resident_ = 0;
  cached_min_ = nullptr;
  calendar_mode_ = false;
  // Floyd bottom-up heapify: O(n), reuses the pop-path sift.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

void EventQueue::rebuild_calendar(std::size_t live) {
  scratch_.clear();
  scratch_.reserve(live);
  for (auto& bucket : buckets_) {
    for (detail::EventRecord* rec : bucket) {
      if (rec->cancelled) {
        recycle(rec);
      } else {
        scratch_.push_back(rec);
      }
    }
    bucket.clear();
  }
  distribute_scratch();
}

void EventQueue::distribute_scratch() {
  const std::size_t nbuckets =
      std::bit_ceil(std::max<std::size_t>(scratch_.size(), 1));
  // Grow the bucket vector but never shrink it: slots past the active ring
  // stay empty, and their heap storage is reused when the ring grows back.
  if (buckets_.size() < nbuckets) buckets_.resize(nbuckets);
  bucket_mask_ = nbuckets - 1;
  resident_ = 0;
  cached_min_ = nullptr;
  pushes_since_rebuild_ = 0;
  if (scratch_.empty()) {
    bucket_width_ = 1.0;
    inv_bucket_width_ = 1.0;
    return;
  }
  SimTime lo = scratch_.front()->time;
  SimTime hi = lo;
  for (const detail::EventRecord* rec : scratch_) {
    lo = std::min(lo, rec->time);
    hi = std::max(hi, rec->time);
  }
  // Width = average inter-event gap, so one ring cycle ("year") spans the
  // whole pending window with ~1 live event per bucket. The floor keeps
  // time/width castable even when all events share one timestamp.
  double width = (hi - lo) / static_cast<double>(scratch_.size());
  const double width_floor = (std::abs(hi) + 1.0) * 1e-12;
  if (!std::isfinite(width) || width < width_floor) width = width_floor;
  bucket_width_ = width;
  inv_bucket_width_ = 1.0 / width;
  pos_time_ = lo;
  for (detail::EventRecord* rec : scratch_) calendar_insert(rec);
  scratch_.clear();
}

std::size_t EventQueue::calendar_insert(detail::EventRecord* rec) {
  const std::size_t idx = bucket_of(rec->time) & bucket_mask_;
  auto& bucket = buckets_[idx];
  // Descending (time, seq): a typical (later-than-everything) push lands
  // near the front, the bucket minimum stays at back().
  auto it = std::upper_bound(
      bucket.begin(), bucket.end(), rec,
      [](const detail::EventRecord* a, const detail::EventRecord* b) {
        return before(*b, *a);
      });
  bucket.insert(it, rec);
  ++resident_;
  if (rec->time < pos_time_) pos_time_ = rec->time;
  if (cached_min_ != nullptr) {
    if (cached_min_->generation != cached_min_generation_ ||
        cached_min_->cancelled) {
      cached_min_ = nullptr;
    } else if (before(*rec, *cached_min_)) {
      // New global minimum: smaller than everything live, so it just went
      // to the very back of its bucket.
      cached_min_ = rec;
      cached_min_generation_ = rec->generation;
      cached_min_bucket_ = idx;
    }
  }
  return bucket.size();
}

detail::EventRecord* EventQueue::calendar_min() {
  if (cached_min_ != nullptr &&
      cached_min_->generation == cached_min_generation_ &&
      !cached_min_->cancelled) {
    return cached_min_;
  }
  cached_min_ = nullptr;
  if (*live_ == 0) return nullptr;
  const std::size_t nbuckets = bucket_mask_ + 1;
  const std::size_t start = bucket_of(pos_time_);
  // One ring cycle: the first bucket whose (tombstone-pruned) minimum is
  // an in-year event holds the global minimum. "In-year" is tested with
  // bucket_of itself — the exact map inserts used — so any monotone map
  // is correct: pos_time_ <= every live time means every live record's
  // absolute bucket is >= start, within [start, start + nbuckets) only
  // abs_bucket itself lands in this ring slot, and a record in a strictly
  // later absolute bucket cannot be earlier than one in this bucket.
  for (std::size_t step = 0; step < nbuckets; ++step) {
    const std::size_t abs_bucket = start + step;
    auto& bucket = buckets_[abs_bucket & bucket_mask_];
    while (!bucket.empty() && bucket.back()->cancelled) {
      recycle(bucket.back());
      bucket.pop_back();
      --resident_;
    }
    if (bucket.empty()) continue;
    detail::EventRecord* back = bucket.back();
    if (bucket_of(back->time) == abs_bucket) {
      pos_time_ = back->time;
      cached_min_ = back;
      cached_min_generation_ = back->generation;
      cached_min_bucket_ = abs_bucket & bucket_mask_;
      return back;
    }
  }
  // Whole cycle empty: the live events sit past the current year. Direct
  // search across bucket minima, then jump the scan position to the hit.
  detail::EventRecord* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t i = 0; i < nbuckets; ++i) {
    auto& bucket = buckets_[i];
    while (!bucket.empty() && bucket.back()->cancelled) {
      recycle(bucket.back());
      bucket.pop_back();
      --resident_;
    }
    if (bucket.empty()) continue;
    detail::EventRecord* cand = bucket.back();
    if (best == nullptr || before(*cand, *best)) {
      best = cand;
      best_bucket = i;
    }
  }
  assert(best != nullptr);
  pos_time_ = best->time;
  cached_min_ = best;
  cached_min_generation_ = best->generation;
  cached_min_bucket_ = best_bucket;
  return best;
}

void EventQueue::calendar_remove_min(detail::EventRecord* rec) {
  auto& bucket = buckets_[cached_min_bucket_];
  // Everything sorted after the live minimum is smaller, hence tombstoned.
  while (!bucket.empty() && bucket.back()->cancelled) {
    recycle(bucket.back());
    bucket.pop_back();
    --resident_;
  }
  assert(!bucket.empty() && bucket.back() == rec);
  bucket.pop_back();
  --resident_;
  pos_time_ = rec->time;
  cached_min_ = nullptr;
}

}  // namespace utilrisk::sim
