// Single-threaded discrete-event simulation kernel.
//
// This is the GridSim substitute (DESIGN.md §3): a deterministic event loop
// with a virtual clock. Entities schedule closures at future instants; the
// kernel dispatches them in (time, scheduling-order) order.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/logger.hpp"
#include "sim/time.hpp"

namespace utilrisk::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace utilrisk::obs

namespace utilrisk::sim {

/// Thrown when an entity schedules an event in the past.
class SchedulingError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Deterministic discrete-event simulator.
///
/// Usage:
///   Simulator simk;
///   simk.schedule_at(10.0, [&]{ ... });
///   simk.run();
///
/// Invariants:
///  - the clock never moves backwards;
///  - events at the same instant fire in the order they were scheduled;
///  - run() returns when the event set is exhausted, `stop()` is called,
///    or the optional horizon is reached.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds since epoch).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `time` (>= now()).
  EventHandle schedule_at(SimTime time, EventAction action);

  /// Schedules `action` after `delay` seconds (>= 0).
  EventHandle schedule_in(SimTime delay, EventAction action);

  /// Runs until the event set drains, stop() is called, or — if `horizon`
  /// is finite — the next event would fire after `horizon` (the clock is
  /// then advanced to `horizon`). Returns the number of events dispatched
  /// by this call.
  std::uint64_t run(SimTime horizon = kTimeNever);

  /// Dispatches at most one event. Returns false when no live event remains.
  bool step();

  /// Requests the current run() to return after the in-flight event.
  void stop() { stop_requested_ = true; }

  /// True while inside run()/step() dispatch.
  [[nodiscard]] bool running() const { return running_; }

  /// Total events dispatched over the simulator's lifetime.
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return dispatched_;
  }

  /// Number of live pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Timestamp of the next pending event (kTimeNever when none).
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  /// Per-simulator trace logger (replaces the TraceLog singleton).
  [[nodiscard]] Logger& logger() { return logger_; }
  [[nodiscard]] const Logger& logger() const { return logger_; }

  /// Pins the event queue to the binary heap regardless of its size.
  /// Benchmarks use this to measure the pre-calendar kernel baseline;
  /// tests use it to compare structures. Call before the first event is
  /// scheduled (see EventQueue::force_heap_mode).
  void pin_heap_event_queue() { queue_.force_heap_mode(); }

  /// Attaches (or detaches, with nullptr) a metrics registry. The kernel
  /// resolves its instruments once here — `sim.events_scheduled`,
  /// `sim.events_dispatched`, `sim.queue_depth`, `sim.events_per_sec` —
  /// so the per-event cost is a null check when metrics are absent or
  /// disabled. The throughput gauge is updated once per run() call (events
  /// dispatched / wall seconds); the wall clock is only read when the
  /// gauge is resolved, so un-instrumented runs never touch it.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t dispatched_ = 0;
  bool stop_requested_ = false;
  bool running_ = false;
  Logger logger_;
  obs::Counter* scheduled_metric_ = nullptr;
  obs::Counter* dispatched_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Gauge* events_per_sec_metric_ = nullptr;
};

}  // namespace utilrisk::sim
