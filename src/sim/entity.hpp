// Base class for simulation actors.
#pragma once

#include <string>
#include <utility>

#include "sim/simulator.hpp"

namespace utilrisk::sim {

/// An Entity is a named actor bound to a Simulator. It provides scheduling
/// sugar; all behaviour lives in subclasses (cluster executors, the
/// computing service, workload injectors...).
class Entity {
 public:
  Entity(Simulator& simulator, std::string name)
      : simulator_(&simulator), name_(std::move(name)) {}

  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& simulator() const { return *simulator_; }
  [[nodiscard]] SimTime now() const { return simulator_->now(); }

 protected:
  EventHandle at(SimTime time, EventAction action) {
    return simulator_->schedule_at(time, std::move(action));
  }
  EventHandle after(SimTime delay, EventAction action) {
    return simulator_->schedule_in(delay, std::move(action));
  }

 private:
  Simulator* simulator_;
  std::string name_;
};

}  // namespace utilrisk::sim
