// Platform-stable probability distributions over utilrisk::sim::Rng.
//
// All samplers are pure functions of the engine stream, so a fixed seed
// reproduces identical workloads on every platform/compiler.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace utilrisk::sim {

/// Exponential with the given mean (= 1/rate). mean > 0.
[[nodiscard]] double sample_exponential(Rng& rng, double mean);

/// Standard normal via the Marsaglia polar method (no trig; stable).
/// Consumes a variable number of draws; do not interleave with samplers
/// that assume fixed consumption.
[[nodiscard]] double sample_standard_normal(Rng& rng);

/// Normal(mean, stddev).
[[nodiscard]] double sample_normal(Rng& rng, double mean, double stddev);

/// Normal(mean, stddev) truncated to [lo, hi] by resampling (up to a
/// bounded number of attempts, then clamped). Requires lo <= hi.
[[nodiscard]] double sample_truncated_normal(Rng& rng, double mean,
                                             double stddev, double lo,
                                             double hi);

/// Lognormal parameterised by the *target* mean and coefficient of
/// variation (cv = stddev/mean) of the resulting distribution — more
/// convenient for matching published trace statistics than (mu, sigma).
[[nodiscard]] double sample_lognormal_mean_cv(Rng& rng, double mean,
                                              double cv);

/// Gamma(shape k, scale theta) via Marsaglia & Tsang's squeeze method
/// (with the standard U^(1/k) boost for k < 1). Mean = k * theta.
[[nodiscard]] double sample_gamma(Rng& rng, double shape, double scale);

/// Samples an index from unnormalised non-negative weights.
[[nodiscard]] std::size_t sample_discrete(Rng& rng,
                                          const std::vector<double>& weights);

/// Parallel-job size sampler biased toward powers of two, as observed in
/// production parallel workloads (Feitelson's archive analyses): with
/// probability `p2_bias` draws 2^k with k log-uniform in [0, log2(max)],
/// otherwise uniform in [1, max]. The result never exceeds `max_procs`.
[[nodiscard]] std::uint32_t sample_job_size(Rng& rng, std::uint32_t max_procs,
                                            double p2_bias = 0.8);

/// Online mean/variance accumulator (Welford). Population variance, to
/// match the paper's volatility definition (eqn 6).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n, as in eqn 6).
  [[nodiscard]] double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace utilrisk::sim
