#include "sim/simulator.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace utilrisk::sim {

void Simulator::set_metrics(obs::MetricsRegistry* registry) {
  scheduled_metric_ =
      obs::counter_or_null(registry, "sim.events_scheduled");
  dispatched_metric_ =
      obs::counter_or_null(registry, "sim.events_dispatched");
  queue_depth_metric_ = obs::gauge_or_null(registry, "sim.queue_depth");
}

EventHandle Simulator::schedule_at(SimTime time, EventAction action) {
  if (time < now_ - kTimeEpsilon) {
    throw SchedulingError("Simulator::schedule_at: event in the past (t=" +
                          std::to_string(time) +
                          ", now=" + std::to_string(now_) + ")");
  }
  // Snap barely-in-the-past times (floating point slop from rate
  // integration) to "now" so they still fire.
  if (time < now_) time = now_;
  auto handle = queue_.push(time, std::move(action));
  if (scheduled_metric_ != nullptr) scheduled_metric_->inc();
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
  return handle;
}

EventHandle Simulator::schedule_in(SimTime delay, EventAction action) {
  delay = clamp_nonnegative(delay);
  if (delay < 0.0) {
    throw SchedulingError("Simulator::schedule_in: negative delay " +
                          std::to_string(delay));
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  auto rec = queue_.pop();
  if (!rec) return false;
  now_ = rec->time;
  running_ = true;
  ++dispatched_;
  if (dispatched_metric_ != nullptr) dispatched_metric_->inc();
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
  // Move the action out so self-cancellation during dispatch is harmless.
  EventAction action = std::move(rec->action);
  action();
  running_ = false;
  return true;
}

std::uint64_t Simulator::run(SimTime horizon) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  for (;;) {
    if (stop_requested_) break;
    const SimTime next = queue_.next_time();
    if (next == kTimeNever) break;
    if (next > horizon) {
      now_ = horizon;
      break;
    }
    if (!step()) break;
    ++n;
  }
  return n;
}

}  // namespace utilrisk::sim
