#include "sim/simulator.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"

namespace utilrisk::sim {

void Simulator::set_metrics(obs::MetricsRegistry* registry) {
  scheduled_metric_ =
      obs::counter_or_null(registry, "sim.events_scheduled");
  dispatched_metric_ =
      obs::counter_or_null(registry, "sim.events_dispatched");
  queue_depth_metric_ = obs::gauge_or_null(registry, "sim.queue_depth");
  events_per_sec_metric_ =
      obs::gauge_or_null(registry, "sim.events_per_sec");
}

EventHandle Simulator::schedule_at(SimTime time, EventAction action) {
  if (time < now_ - kTimeEpsilon) {
    throw SchedulingError("Simulator::schedule_at: event in the past (t=" +
                          std::to_string(time) +
                          ", now=" + std::to_string(now_) + ")");
  }
  // Snap barely-in-the-past times (floating point slop from rate
  // integration) to "now" so they still fire.
  if (time < now_) time = now_;
  auto handle = queue_.push(time, std::move(action));
  if (scheduled_metric_ != nullptr) scheduled_metric_->inc();
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
  return handle;
}

EventHandle Simulator::schedule_in(SimTime delay, EventAction action) {
  delay = clamp_nonnegative(delay);
  if (delay < 0.0) {
    throw SchedulingError("Simulator::schedule_in: negative delay " +
                          std::to_string(delay));
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  auto rec = queue_.pop();
  if (!rec) return false;
  now_ = rec->time;
  running_ = true;
  ++dispatched_;
  if (dispatched_metric_ != nullptr) dispatched_metric_->inc();
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
  // Move the action out so self-cancellation during dispatch is harmless.
  EventAction action = std::move(rec->action);
  action();
  running_ = false;
  return true;
}

std::uint64_t Simulator::run(SimTime horizon) {
  stop_requested_ = false;
  // Wall timing only when the throughput gauge is wired up: the clock
  // reads bracket the whole run, so the un-instrumented hot loop is
  // untouched either way.
  const bool timed = events_per_sec_metric_ != nullptr;
  const auto wall_start =
      timed ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point{};
  std::uint64_t n = 0;
  for (;;) {
    if (stop_requested_) break;
    const SimTime next = queue_.next_time();
    if (next == kTimeNever) break;
    if (next > horizon) {
      now_ = horizon;
      break;
    }
    if (!step()) break;
    ++n;
  }
  if (timed && n > 0) {
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    if (wall > 0.0) {
      events_per_sec_metric_->set(static_cast<double>(n) / wall);
    }
  }
  return n;
}

}  // namespace utilrisk::sim
