// Simulation time representation and helpers.
//
// Simulated time is a double measured in seconds from the simulation epoch
// (t = 0). Doubles give us sub-second resolution over multi-month horizons
// (the SDSC SP2 subset spans ~3.75 months ~ 1e7 s, far below the 2^53
// integer-exact range), while keeping proportional-share rate arithmetic
// natural.
#pragma once

#include <cmath>
#include <limits>

namespace utilrisk::sim {

/// Simulated time in seconds since the simulation epoch.
using SimTime = double;

/// Sentinel for "never" / unbounded horizons.
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Comparison slack for derived times (rate integrations accumulate a few
/// ulps of error; anything below a microsecond is "equal" for scheduling).
inline constexpr SimTime kTimeEpsilon = 1e-6;

/// True if |a - b| <= kTimeEpsilon.
[[nodiscard]] inline bool time_almost_equal(SimTime a, SimTime b) {
  return std::fabs(a - b) <= kTimeEpsilon;
}

/// True if a is strictly before b beyond the epsilon slack.
[[nodiscard]] inline bool time_before(SimTime a, SimTime b) {
  return a < b - kTimeEpsilon;
}

/// Clamp tiny negative values (from floating-point cancellation) to zero.
[[nodiscard]] inline SimTime clamp_nonnegative(SimTime t) {
  return t < 0.0 && t > -kTimeEpsilon ? 0.0 : t;
}

namespace duration {
inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 86400.0;
inline constexpr SimTime kWeek = 7.0 * kDay;
}  // namespace duration

}  // namespace utilrisk::sim
