// Multi-seed replication: independent trace/QoS seeds turn one simulation
// into an estimate with a confidence interval, so policy comparisons can
// be made statistically rather than off a single draw (the robustness
// benches use this; the paper reports single-trace numbers).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/objectives.hpp"
#include "economy/money.hpp"
#include "exp/scenario.hpp"
#include "policy/factory.hpp"
#include "workload/synthetic_sdsc.hpp"

namespace utilrisk::exp {

/// Mean / spread / normal-approximation 95 % confidence half-width of one
/// objective across replications.
struct ObjectiveEstimate {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n - 1)
  double ci95_half = 0.0;

  [[nodiscard]] double lower() const { return mean - ci95_half; }
  [[nodiscard]] double upper() const { return mean + ci95_half; }
  /// True if the intervals of two estimates do not overlap — a
  /// conservative "significantly different" check.
  [[nodiscard]] bool significantly_above(const ObjectiveEstimate& other) const {
    return lower() > other.upper();
  }
};

/// Estimates for all four objectives plus bookkeeping.
struct ReplicationSummary {
  std::array<ObjectiveEstimate, 4> objectives;  ///< by core::Objective index
  std::vector<core::ObjectiveValues> replicates;

  [[nodiscard]] const ObjectiveEstimate& of(core::Objective objective) const {
    return objectives[static_cast<std::size_t>(objective)];
  }
};

struct ReplicationConfig {
  policy::PolicyKind policy = policy::PolicyKind::Libra;
  economy::EconomicModel model = economy::EconomicModel::BidBased;
  /// Base trace configuration; the seed field is overridden per replicate.
  workload::SyntheticSdscConfig trace;
  /// Knobs (defaults are the Table VI defaults; inaccuracy as configured).
  RunSettings settings;
  /// Independent seeds, one replicate each (>= 2 for an interval).
  std::vector<std::uint64_t> seeds = {42, 1001, 2002, 3003, 4004};
  /// Worker threads fanning the seeds out (exp/parallel.hpp); 0 resolves
  /// to REPRO_JOBS_PAR / hardware_concurrency(), 1 forces serial.
  std::size_t workers = 0;
};

/// Runs one simulation per seed (trace seed = s, QoS seed = s * 31 + 7)
/// and reduces. Replicates are fully independent (each worker owns its
/// trace, builder and simulator), so they fan out across config.workers
/// threads; the replicate order — and thus the summary — is identical to
/// the serial path. Throws std::invalid_argument on fewer than 2 seeds.
[[nodiscard]] ReplicationSummary replicate(const ReplicationConfig& config);

/// Reduces externally collected replicate values (exposed for tests and
/// for callers that parallelise the runs themselves).
[[nodiscard]] ReplicationSummary summarize_replicates(
    std::vector<core::ObjectiveValues> replicates);

}  // namespace utilrisk::exp
