#include "exp/parallel.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "workload/workload.hpp"

namespace utilrisk::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::size_t default_worker_count() {
  if (const char* env = std::getenv("REPRO_JOBS_PAR")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// ------------------------------------------------------------- ThreadPool

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() = default;
// jthread joins on destruction after requesting stop; worker_loop drains
// the queue before honouring the stop request, and workers_ is the last
// member, so queued tasks never observe destroyed pool state.

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(std::stop_token stop) {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, stop, [this] { return !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto error_mutex = std::make_shared<std::mutex>();
  auto first_error = std::make_shared<std::exception_ptr>();
  const std::size_t shards = std::min(pool.worker_count(), count);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    pool.submit([next, error_mutex, first_error, count, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(*error_mutex);
          if (!*first_error) *first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (*first_error) std::rethrow_exception(*first_error);
}

// ------------------------------------------------- parallel sweep executor

namespace {

/// How one matrix cell obtains its objective values.
struct CellSource {
  enum class Kind { FromStore, FromJob } kind = Kind::FromJob;
  std::size_t index = 0;  ///< into `resolved` or `jobs`
};

/// One deduplicated simulation to execute (a cache miss).
struct UniqueJob {
  std::string key;
  policy::PolicyKind policy{};
  RunSettings settings;
};

}  // namespace

SweepResult run_scenarios_parallel(
    const ExperimentConfig& config, ResultStore& store,
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies, ThreadPool& pool,
    SweepStats* stats, const SweepHooks& hooks) {
  SweepResult result;
  result.policies = policies;
  result.scenario_names.reserve(scenarios.size());
  result.raw.resize(scenarios.size());
  result.separate.resize(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    result.scenario_names.push_back(scenarios[s].name);
    for (auto& per_objective : result.raw[s]) {
      per_objective.assign(
          policies.size(),
          std::vector<double>(scenarios[s].values.size(), 0.0));
    }
  }

  // Phase 1 (serial, deterministic order): enumerate the run matrix,
  // resolve cells against the store, and dedupe the misses by cache key —
  // in-flight dedup: a key occurring in several cells is simulated once.
  std::vector<CellSource> cells;
  std::vector<core::ObjectiveValues> resolved;
  std::vector<UniqueJob> jobs;
  std::unordered_map<std::string, CellSource> by_key;
  SweepStats local;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t v = 0; v < scenarios[s].values.size(); ++v) {
        RunSettings settings = scenarios[s].settings_for(defaults, v);
        std::string key = config.run_key(policies[p], settings);
        if (auto it = by_key.find(key); it != by_key.end()) {
          if (it->second.kind == CellSource::Kind::FromJob) {
            ++local.deduped;  // coalesced onto an in-flight run
          } else {
            ++local.cache_hits;
          }
          cells.push_back(it->second);
          continue;
        }
        CellSource source;
        if (auto cached = store.lookup(key)) {
          source = {CellSource::Kind::FromStore, resolved.size()};
          resolved.push_back(*cached);
          ++local.cache_hits;
          by_key.emplace(std::move(key), source);
        } else {
          source = {CellSource::Kind::FromJob, jobs.size()};
          by_key.emplace(key, source);
          jobs.push_back({std::move(key), policies[p], std::move(settings)});
        }
        cells.push_back(source);
      }
    }
  }

  // Phase 2: fan the unique cache misses out across the pool. Each worker
  // shard owns its own WorkloadBuilder (and thus its own simulator per
  // run), so the single-threaded kernel contract holds; results land at
  // their job index, never shared between workers.
  std::vector<core::ObjectiveValues> job_values(jobs.size());
  std::vector<RunTiming> timings(jobs.size());
  std::atomic<std::uint64_t> total_events{0};
  // Executor instruments (all null when no enabled registry is hooked):
  // run/queue-wait histograms are shared across workers, the run counter
  // is per worker shard so load imbalance is visible in the snapshot.
  obs::MetricsRegistry* registry = hooks.metrics;
  obs::Histogram* run_wall_hist = obs::histogram_or_null(
      registry, "exp.run_wall_seconds", obs::default_time_buckets());
  obs::Histogram* queue_wait_hist = obs::histogram_or_null(
      registry, "exp.task_queue_wait_seconds", obs::default_time_buckets());
  if (obs::Counter* c = obs::counter_or_null(registry, "exp.cache_hits")) {
    c->inc(local.cache_hits);
  }
  if (obs::Counter* c = obs::counter_or_null(registry, "exp.deduped")) {
    c->inc(local.deduped);
  }
  if (obs::Counter* c = obs::counter_or_null(registry, "exp.cache_misses")) {
    c->inc(jobs.size());
  }
  const auto region_start = std::chrono::steady_clock::now();
  if (!jobs.empty()) {
    if (hooks.progress != nullptr) {
      hooks.progress->begin(jobs.size(), pool.worker_count(),
                            [&pool] { return pool.active_count(); });
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const std::size_t shards = std::min(pool.worker_count(), jobs.size());
    for (std::size_t shard = 0; shard < shards; ++shard) {
      obs::Counter* shard_runs = obs::counter_or_null(
          registry, "exp.worker." + std::to_string(shard) + ".runs");
      pool.submit([&, shard_runs] {
        try {
          const workload::WorkloadBuilder builder = config.make_builder();
          for (;;) {
            const std::size_t j =
                next.fetch_add(1, std::memory_order_relaxed);
            if (j >= jobs.size()) return;
            const auto start = std::chrono::steady_clock::now();
            if (queue_wait_hist != nullptr) {
              // Time this task spent enqueued before a worker picked it
              // up, approximated from the fan-out instant.
              queue_wait_hist->observe(
                  std::chrono::duration<double>(start - region_start)
                      .count());
            }
            std::uint64_t events = 0;
            job_values[j] = simulate_run(config, builder, jobs[j].policy,
                                         jobs[j].settings, &events, registry);
            timings[j] = {jobs[j].key, seconds_since(start), events};
            total_events.fetch_add(events, std::memory_order_relaxed);
            store.insert(jobs[j].key, job_values[j]);
            if (run_wall_hist != nullptr) {
              run_wall_hist->observe(timings[j].wall_seconds);
            }
            if (shard_runs != nullptr) shard_runs->inc();
            if (hooks.progress != nullptr) hooks.progress->note_done();
          }
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();  // barrier: reduction must see every result
    // The reporter thread samples pool state; stop it before unwinding.
    if (hooks.progress != nullptr) hooks.progress->end();
    if (first_error) std::rethrow_exception(first_error);
  }
  local.simulations = jobs.size();
  local.events = total_events.load();
  local.wall_seconds = seconds_since(region_start);
  local.runs = std::move(timings);

  // Phase 3 (serial, deterministic order): scatter cell values back into
  // the matrix and reduce — same code as the serial path, so the sweep is
  // bit-identical to it.
  std::size_t cell = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t v = 0; v < scenarios[s].values.size(); ++v) {
        const CellSource& source = cells[cell++];
        const core::ObjectiveValues& values =
            source.kind == CellSource::Kind::FromStore
                ? resolved[source.index]
                : job_values[source.index];
        for (core::Objective objective : core::kAllObjectives) {
          result.raw[s][static_cast<std::size_t>(objective)][p][v] =
              values.get(objective);
        }
      }
    }
    reduce_scenario(result, s, config.normalization);
  }

  if (stats != nullptr) stats->accumulate(local);
  return result;
}

SweepResult run_scenarios_parallel(
    const ExperimentConfig& config, ResultStore& store,
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies, std::size_t workers,
    SweepStats* stats, const SweepHooks& hooks) {
  ThreadPool pool(workers == 0 ? default_worker_count() : workers);
  return run_scenarios_parallel(config, store, scenarios, defaults, policies,
                                pool, stats, hooks);
}

// ---------------------------------------------------------- ParallelRunner

ParallelRunner::ParallelRunner(ExperimentConfig config, ResultStore* store,
                               std::size_t workers)
    : config_(std::move(config)),
      store_(store != nullptr ? store : &local_store_),
      pool_(workers == 0 ? default_worker_count() : workers) {}

SweepResult ParallelRunner::run_sweep() {
  return run_sweep(policy::policies_for_model(config_.model));
}

SweepResult ParallelRunner::run_sweep(
    const std::vector<policy::PolicyKind>& policies) {
  return run_scenarios(all_scenarios(), config_.default_settings(),
                       policies);
}

SweepResult ParallelRunner::run_scenarios(
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies) {
  return run_scenarios_parallel(config_, *store_, scenarios, defaults,
                                policies, pool_, &stats_, hooks_);
}

}  // namespace utilrisk::exp
