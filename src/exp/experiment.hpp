// The experiment runner: executes the Table VI sweep for one economic
// model and one experiment set (A or B) and reduces it to the separate
// risk analysis per (scenario, policy, objective) from which every figure
// of §6 is assembled.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/normalization.hpp"
#include "core/objectives.hpp"
#include "core/separate_risk.hpp"
#include "economy/money.hpp"
#include "exp/result_store.hpp"
#include "exp/scenario.hpp"
#include "policy/factory.hpp"
#include "workload/workload.hpp"

namespace utilrisk::exp {

/// The two experiment sets (§5.4): identical except for the default
/// runtime-estimate inaccuracy.
enum class ExperimentSet {
  A,  ///< 0 % inaccuracy: accurate estimates
  B,  ///< 100 % inaccuracy: the trace's own (mostly over-) estimates
};

[[nodiscard]] const char* to_string(ExperimentSet set);

/// Full configuration of one sweep.
struct ExperimentConfig {
  economy::EconomicModel model = economy::EconomicModel::CommodityMarket;
  ExperimentSet set = ExperimentSet::A;
  workload::SyntheticSdscConfig trace;  ///< base trace (seeded)
  cluster::MachineConfig machine;
  economy::PricingParams pricing;
  policy::FirstRewardParams first_reward;
  core::NormalizationConfig normalization;
  std::uint64_t qos_seed = 4242;

  /// Defaults with the set's inaccuracy applied.
  [[nodiscard]] RunSettings default_settings() const;

  /// Canonical cache key of one run under this config.
  [[nodiscard]] std::string run_key(policy::PolicyKind policy,
                                    const RunSettings& settings) const;
};

/// All separate-risk results of a sweep. Indices: [scenario][policy].
struct SweepResult {
  std::vector<std::string> scenario_names;
  std::vector<policy::PolicyKind> policies;
  /// Raw objective values: raw[s][o][p][v] with o indexed by Objective.
  std::vector<std::array<std::vector<std::vector<double>>, 4>> raw;
  /// Separate risk per scenario/policy/objective (eqns 5-6 over the six
  /// normalised values).
  std::vector<std::vector<std::array<core::RiskPoint, 4>>> separate;

  [[nodiscard]] std::size_t scenario_count() const {
    return scenario_names.size();
  }
  [[nodiscard]] std::size_t policy_count() const { return policies.size(); }
};

/// Dumps every raw objective value of a sweep as CSV
/// (scenario,value_index,policy,objective,raw_value) for external
/// analysis.
void write_sweep_csv(std::ostream& out, const SweepResult& sweep);

class ExperimentRunner {
 public:
  /// `store` (optional) memoises runs across runners and processes.
  explicit ExperimentRunner(ExperimentConfig config,
                            ResultStore* store = nullptr);

  /// Raw objective values of a single run (cached).
  [[nodiscard]] core::ObjectiveValues run_one(policy::PolicyKind policy,
                                              const RunSettings& settings);

  /// Full Table VI sweep over `policies` (default: the Table V set for the
  /// configured economic model).
  [[nodiscard]] SweepResult run_sweep();
  [[nodiscard]] SweepResult run_sweep(
      const std::vector<policy::PolicyKind>& policies);

  /// Arbitrary scenario list over explicit defaults — the substrate of
  /// run_sweep, exposed so extension scenarios (the MTBF robustness
  /// sweep) reuse the raw-collection/normalise/reduce machinery without
  /// joining the Table VI set.
  [[nodiscard]] SweepResult run_scenarios(
      const std::vector<Scenario>& scenarios, const RunSettings& defaults,
      const std::vector<policy::PolicyKind>& policies);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const workload::WorkloadBuilder& workloads() const {
    return builder_;
  }

  /// Total simulations actually executed (cache misses).
  [[nodiscard]] std::size_t simulations_run() const {
    return simulations_run_;
  }

 private:
  ExperimentConfig config_;
  workload::WorkloadBuilder builder_;
  ResultStore* store_;
  ResultStore local_store_;  ///< used when no shared store is given
  std::size_t simulations_run_ = 0;
};

}  // namespace utilrisk::exp
