// The experiment runner: executes the Table VI sweep for one economic
// model and one experiment set (A or B) and reduces it to the separate
// risk analysis per (scenario, policy, objective) from which every figure
// of §6 is assembled.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/normalization.hpp"
#include "core/objectives.hpp"
#include "core/separate_risk.hpp"
#include "economy/money.hpp"
#include "exp/result_store.hpp"
#include "exp/scenario.hpp"
#include "policy/factory.hpp"
#include "workload/workload.hpp"

namespace utilrisk::obs {
class MetricsRegistry;
}  // namespace utilrisk::obs

namespace utilrisk::service {
struct SimulationReport;
}  // namespace utilrisk::service

namespace utilrisk::exp {

/// The two experiment sets (§5.4): identical except for the default
/// runtime-estimate inaccuracy.
enum class ExperimentSet {
  A,  ///< 0 % inaccuracy: accurate estimates
  B,  ///< 100 % inaccuracy: the trace's own (mostly over-) estimates
};

[[nodiscard]] const char* to_string(ExperimentSet set);

/// Full configuration of one sweep.
struct ExperimentConfig {
  economy::EconomicModel model = economy::EconomicModel::CommodityMarket;
  ExperimentSet set = ExperimentSet::A;
  workload::SyntheticSdscConfig trace;  ///< base trace (seeded)
  /// Workload-generator spec ("name:key=value,...") for the base trace;
  /// empty (default) = the synthetic SDSC config above. `trace.job_count`
  /// and `trace.seed` are injected as spec defaults so experiment-level
  /// sizing/seeding applies uniformly across methods (an explicit spec
  /// key wins).
  std::string workload;
  cluster::MachineConfig machine;
  economy::PricingParams pricing;
  policy::FirstRewardParams first_reward;
  core::NormalizationConfig normalization;
  std::uint64_t qos_seed = 4242;

  /// Defaults with the set's inaccuracy applied.
  [[nodiscard]] RunSettings default_settings() const;

  /// The base-trace builder this config describes: the `workload` spec
  /// when set, else the synthetic SDSC config (routed through the
  /// generator registry either way). Every consumer of the base trace —
  /// serial runner, parallel workers, golden-replay harness — goes
  /// through here so they cannot drift.
  [[nodiscard]] workload::WorkloadBuilder make_builder() const;

  /// Canonical cache key of one run under this config.
  [[nodiscard]] std::string run_key(policy::PolicyKind policy,
                                    const RunSettings& settings) const;
};

/// All separate-risk results of a sweep. Indices: [scenario][policy].
struct SweepResult {
  std::vector<std::string> scenario_names;
  std::vector<policy::PolicyKind> policies;
  /// Raw objective values: raw[s][o][p][v] with o indexed by Objective.
  std::vector<std::array<std::vector<std::vector<double>>, 4>> raw;
  /// Separate risk per scenario/policy/objective (eqns 5-6 over the six
  /// normalised values).
  std::vector<std::vector<std::array<core::RiskPoint, 4>>> separate;

  [[nodiscard]] std::size_t scenario_count() const {
    return scenario_names.size();
  }
  [[nodiscard]] std::size_t policy_count() const { return policies.size(); }
};

/// Dumps every raw objective value of a sweep as CSV
/// (scenario,value_index,policy,objective,raw_value) for external
/// analysis.
void write_sweep_csv(std::ostream& out, const SweepResult& sweep);

/// Exact (bit-level, no tolerance) equality of two sweeps — the parallel
/// executor's contract is bit-identity with the serial path, so nothing
/// weaker than == on every double is acceptable here.
[[nodiscard]] bool bit_identical(const SweepResult& a, const SweepResult& b);

/// Diagnostics of one executed (cache-missing) simulation run.
struct RunTiming {
  std::string key;           ///< the run's cache key
  double wall_seconds = 0.0;
  std::uint64_t events = 0;  ///< kernel events dispatched
};

/// Timing/dedup counters of a sweep, accumulated across sweeps of one
/// runner. Shared by the serial and parallel executors.
struct SweepStats {
  std::size_t simulations = 0;   ///< runs actually executed (cache misses)
  std::uint64_t events = 0;      ///< kernel events across those runs
  double wall_seconds = 0.0;     ///< wall clock of the execution region
  std::size_t cache_hits = 0;    ///< matrix cells served by the store
  std::size_t deduped = 0;       ///< cells coalesced onto an in-flight run
  std::vector<RunTiming> runs;   ///< per executed run, deterministic order

  void accumulate(const SweepStats& other);
};

/// One uncached simulation under `config`: builds the run's job stream
/// from `builder` (parallel workers own one each so the single-threaded
/// kernel is untouched), simulates, and returns the objectives. If
/// `events_out` is non-null it receives the events dispatched. A non-null
/// `metrics` registry is injected into the run (kernel `sim.*` and
/// `service.*` instruments). Exposed so the serial and parallel paths
/// share one definition of "a run".
[[nodiscard]] core::ObjectiveValues simulate_run(
    const ExperimentConfig& config, const workload::WorkloadBuilder& builder,
    policy::PolicyKind policy, const RunSettings& settings,
    std::uint64_t* events_out = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

/// The same run, returning the full report (per-job SLA records, ledger
/// snapshot, canonical digest) instead of just the objectives — the
/// substrate of simulate_run and of the replay/golden-digest harness
/// (verify/golden.hpp).
[[nodiscard]] service::SimulationReport simulate_run_report(
    const ExperimentConfig& config, const workload::WorkloadBuilder& builder,
    policy::PolicyKind policy, const RunSettings& settings,
    obs::MetricsRegistry* metrics = nullptr);

/// Normalises scenario `s`'s raw values and reduces them to separate risk
/// (eqns 5-6), writing result.separate[s]. One definition shared by the
/// serial and parallel paths keeps them bit-identical by construction.
void reduce_scenario(SweepResult& result, std::size_t s,
                     const core::NormalizationConfig& normalization);

class ExperimentRunner {
 public:
  /// `store` (optional) memoises runs across runners and processes.
  /// `workers` > 1 fans sweep cells out across a thread pool
  /// (exp/parallel.hpp) with bit-identical results; 0 resolves to
  /// REPRO_JOBS_PAR / hardware_concurrency(), 1 forces the serial path.
  explicit ExperimentRunner(ExperimentConfig config,
                            ResultStore* store = nullptr,
                            std::size_t workers = 0);

  /// Raw objective values of a single run (cached).
  [[nodiscard]] core::ObjectiveValues run_one(policy::PolicyKind policy,
                                              const RunSettings& settings);

  /// Full Table VI sweep over `policies` (default: the Table V set for the
  /// configured economic model).
  [[nodiscard]] SweepResult run_sweep();
  [[nodiscard]] SweepResult run_sweep(
      const std::vector<policy::PolicyKind>& policies);

  /// Arbitrary scenario list over explicit defaults — the substrate of
  /// run_sweep, exposed so extension scenarios (the MTBF robustness
  /// sweep) reuse the raw-collection/normalise/reduce machinery without
  /// joining the Table VI set.
  [[nodiscard]] SweepResult run_scenarios(
      const std::vector<Scenario>& scenarios, const RunSettings& defaults,
      const std::vector<policy::PolicyKind>& policies);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const workload::WorkloadBuilder& workloads() const {
    return builder_;
  }

  /// Total simulations actually executed (cache misses).
  [[nodiscard]] std::size_t simulations_run() const {
    return stats_.simulations;
  }

  /// Worker threads used by run_sweep/run_scenarios (1 = serial).
  [[nodiscard]] std::size_t worker_count() const { return workers_; }

  /// Per-run wall-clock and events-processed counters, accumulated across
  /// run_one/run_sweep/run_scenarios calls.
  [[nodiscard]] const SweepStats& stats() const { return stats_; }

 private:
  ExperimentConfig config_;
  workload::WorkloadBuilder builder_;
  ResultStore* store_;
  ResultStore local_store_;  ///< used when no shared store is given
  std::size_t workers_;
  SweepStats stats_;
};

}  // namespace utilrisk::exp
