#include "exp/experiment.hpp"

#include <ostream>
#include <sstream>

#include "service/computing_service.hpp"

namespace utilrisk::exp {

const char* to_string(ExperimentSet set) {
  return set == ExperimentSet::A ? "A" : "B";
}

RunSettings ExperimentConfig::default_settings() const {
  RunSettings settings;
  settings.inaccuracy_percent = set == ExperimentSet::A ? 0.0 : 100.0;
  return settings;
}

std::string ExperimentConfig::run_key(policy::PolicyKind policy,
                                      const RunSettings& settings) const {
  std::ostringstream oss;
  oss << "model=" << economy::to_string(model)
      << ";policy=" << policy::to_string(policy)
      << ";jobs=" << trace.job_count << ";tseed=" << trace.seed
      << ";qseed=" << qos_seed << ";nodes=" << machine.node_count
      << ";price=" << pricing.base_price << ',' << pricing.libra_gamma << ','
      << pricing.libra_delta << ',' << pricing.libra_dollar_alpha << ','
      << pricing.libra_dollar_beta << ";fr=" << first_reward.alpha << ','
      << first_reward.discount_rate_per_hour << ','
      << first_reward.slack_threshold << ';' << settings.key_fragment();
  return oss.str();
}

void write_sweep_csv(std::ostream& out, const SweepResult& sweep) {
  out << "scenario,value_index,policy,objective,raw_value\n";
  for (std::size_t s = 0; s < sweep.scenario_count(); ++s) {
    for (core::Objective objective : core::kAllObjectives) {
      const auto o = static_cast<std::size_t>(objective);
      for (std::size_t p = 0; p < sweep.policy_count(); ++p) {
        for (std::size_t v = 0; v < sweep.raw[s][o][p].size(); ++v) {
          out << sweep.scenario_names[s] << ',' << v << ','
              << policy::to_string(sweep.policies[p]) << ','
              << core::to_string(objective) << ',' << sweep.raw[s][o][p][v]
              << '\n';
        }
      }
    }
  }
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config, ResultStore* store)
    : config_(std::move(config)),
      builder_(config_.trace),
      store_(store != nullptr ? store : &local_store_) {}

core::ObjectiveValues ExperimentRunner::run_one(policy::PolicyKind policy,
                                                const RunSettings& settings) {
  const std::string key = config_.run_key(policy, settings);
  if (auto cached = store_->lookup(key)) return *cached;

  workload::QosConfig qos;
  qos.high_urgency_percent = settings.high_urgency_percent;
  qos.deadline = settings.deadline;
  qos.budget = settings.budget;
  qos.penalty = settings.penalty;
  qos.base_price = config_.pricing.base_price;
  qos.seed = config_.qos_seed;

  const std::vector<workload::Job> jobs = builder_.build(
      qos, settings.arrival_delay_factor, settings.inaccuracy_percent);

  policy::PolicyContext context;
  context.machine = config_.machine;
  context.model = config_.model;
  context.pricing = config_.pricing;
  context.first_reward = config_.first_reward;
  context.failure = settings.failure;
  context.recovery = settings.recovery;

  const service::SimulationReport report =
      service::simulate(jobs, service::factory_for(policy), context);
  ++simulations_run_;
  store_->insert(key, report.objectives);
  return report.objectives;
}

SweepResult ExperimentRunner::run_sweep() {
  return run_sweep(policy::policies_for_model(config_.model));
}

SweepResult ExperimentRunner::run_sweep(
    const std::vector<policy::PolicyKind>& policies) {
  return run_scenarios(all_scenarios(), config_.default_settings(),
                       policies);
}

SweepResult ExperimentRunner::run_scenarios(
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies) {
  SweepResult result;
  result.policies = policies;
  result.scenario_names.reserve(scenarios.size());
  result.raw.resize(scenarios.size());
  result.separate.resize(scenarios.size());

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    result.scenario_names.push_back(scenario.name);

    // Collect raw values: raw[o][p][v].
    for (auto& per_objective : result.raw[s]) {
      per_objective.assign(policies.size(),
                           std::vector<double>(scenario.values.size(), 0.0));
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t v = 0; v < scenario.values.size(); ++v) {
        const RunSettings settings = scenario.settings_for(defaults, v);
        const core::ObjectiveValues values = run_one(policies[p], settings);
        for (core::Objective objective : core::kAllObjectives) {
          result.raw[s][static_cast<std::size_t>(objective)][p][v] =
              values.get(objective);
        }
      }
    }

    // Normalise per objective across policies, then reduce to separate
    // risk (eqns 5-6) per policy.
    result.separate[s].resize(policies.size());
    for (core::Objective objective : core::kAllObjectives) {
      const auto o = static_cast<std::size_t>(objective);
      const auto normalized = core::normalize_objective(
          objective, result.raw[s][o], config_.normalization);
      for (std::size_t p = 0; p < policies.size(); ++p) {
        result.separate[s][p][o] = core::separate_risk(normalized[p]);
      }
    }
  }
  return result;
}

}  // namespace utilrisk::exp
