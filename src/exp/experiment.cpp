#include "exp/experiment.hpp"

#include <chrono>
#include <optional>
#include <ostream>
#include <sstream>

#include "exp/parallel.hpp"
#include "service/computing_service.hpp"
#include "workload/generator.hpp"

namespace utilrisk::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const char* to_string(ExperimentSet set) {
  return set == ExperimentSet::A ? "A" : "B";
}

RunSettings ExperimentConfig::default_settings() const {
  RunSettings settings;
  settings.inaccuracy_percent = set == ExperimentSet::A ? 0.0 : 100.0;
  return settings;
}

namespace {

/// Parses a workload spec and injects the experiment's job count and
/// trace seed as defaults (seed convention, workload/generator.hpp).
workload::GeneratorSpec spec_with_defaults(
    const std::string& text, const workload::SyntheticSdscConfig& trace) {
  workload::GeneratorSpec spec = workload::GeneratorSpec::parse(text);
  spec.set_default("jobs", std::to_string(trace.job_count));
  spec.set_default("seed", std::to_string(trace.seed));
  return spec;
}

}  // namespace

workload::WorkloadBuilder ExperimentConfig::make_builder() const {
  if (workload.empty()) return workload::WorkloadBuilder(trace);
  return workload::WorkloadBuilder(
      workload::generate_jobs(spec_with_defaults(workload, trace)));
}

// Cache-key audit note (kept current; last reviewed for `serve --shards`):
// every knob that changes a run's outcome MUST appear in this key or in
// settings.key_fragment() — PR 4 fixed exactly that class of collision for
// the --fail-* recovery knobs. Serve-only knobs (--shards, --queue-capacity,
// journal options, ...) are deliberately absent: the serving path never
// reads or writes the sweep ResultStore, and shard count cannot change
// decisions anyway (engine-level per-tenant isolation; serve/shard.hpp).
// The shard-count collision guard for *journals* — the store the serve
// path does persist — is the `shards.meta` check in serve/shard.cpp.
std::string ExperimentConfig::run_key(policy::PolicyKind policy,
                                      const RunSettings& settings) const {
  std::ostringstream oss;
  oss << "model=" << economy::to_string(model)
      << ";policy=" << policy::to_string(policy)
      << ";jobs=" << trace.job_count << ";tseed=" << trace.seed
      << ";qseed=" << qos_seed << ";nodes=" << machine.node_count
      << ";price=" << pricing.base_price << ',' << pricing.libra_gamma << ','
      << pricing.libra_delta << ',' << pricing.libra_dollar_alpha << ','
      << pricing.libra_dollar_beta << ";fr=" << first_reward.alpha << ','
      << first_reward.discount_rate_per_hour << ','
      << first_reward.slack_threshold;
  // Only when set (legacy keys must stay byte-identical).
  if (!workload.empty()) oss << ";wload=" << workload;
  oss << ';' << settings.key_fragment();
  return oss.str();
}

void write_sweep_csv(std::ostream& out, const SweepResult& sweep) {
  out << "scenario,value_index,policy,objective,raw_value\n";
  for (std::size_t s = 0; s < sweep.scenario_count(); ++s) {
    for (core::Objective objective : core::kAllObjectives) {
      const auto o = static_cast<std::size_t>(objective);
      for (std::size_t p = 0; p < sweep.policy_count(); ++p) {
        for (std::size_t v = 0; v < sweep.raw[s][o][p].size(); ++v) {
          out << sweep.scenario_names[s] << ',' << v << ','
              << policy::to_string(sweep.policies[p]) << ','
              << core::to_string(objective) << ',' << sweep.raw[s][o][p][v]
              << '\n';
        }
      }
    }
  }
}

bool bit_identical(const SweepResult& a, const SweepResult& b) {
  if (a.scenario_names != b.scenario_names || a.policies != b.policies ||
      a.raw.size() != b.raw.size() ||
      a.separate.size() != b.separate.size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.raw.size(); ++s) {
    for (std::size_t o = 0; o < a.raw[s].size(); ++o) {
      if (a.raw[s][o] != b.raw[s][o]) return false;  // exact, per double
    }
    if (a.separate[s].size() != b.separate[s].size()) return false;
    for (std::size_t p = 0; p < a.separate[s].size(); ++p) {
      for (std::size_t o = 0; o < a.separate[s][p].size(); ++o) {
        if (a.separate[s][p][o].performance !=
                b.separate[s][p][o].performance ||
            a.separate[s][p][o].volatility !=
                b.separate[s][p][o].volatility) {
          return false;
        }
      }
    }
  }
  return true;
}

void SweepStats::accumulate(const SweepStats& other) {
  simulations += other.simulations;
  events += other.events;
  wall_seconds += other.wall_seconds;
  cache_hits += other.cache_hits;
  deduped += other.deduped;
  runs.insert(runs.end(), other.runs.begin(), other.runs.end());
}

core::ObjectiveValues simulate_run(const ExperimentConfig& config,
                                   const workload::WorkloadBuilder& builder,
                                   policy::PolicyKind policy,
                                   const RunSettings& settings,
                                   std::uint64_t* events_out,
                                   obs::MetricsRegistry* metrics) {
  const service::SimulationReport report =
      simulate_run_report(config, builder, policy, settings, metrics);
  if (events_out != nullptr) *events_out += report.events_dispatched;
  return report.objectives;
}

service::SimulationReport simulate_run_report(
    const ExperimentConfig& config, const workload::WorkloadBuilder& builder,
    policy::PolicyKind policy, const RunSettings& settings,
    obs::MetricsRegistry* metrics) {
  workload::QosConfig qos;
  qos.high_urgency_percent = settings.high_urgency_percent;
  qos.deadline = settings.deadline;
  qos.budget = settings.budget;
  qos.penalty = settings.penalty;
  qos.base_price = config.pricing.base_price;
  qos.seed = config.qos_seed;

  // A per-run workload spec (scenario sweeps over generator knobs)
  // replaces the shared base trace for this run only.
  std::optional<workload::WorkloadBuilder> per_run;
  if (!settings.workload.empty()) {
    per_run.emplace(workload::generate_jobs(
        spec_with_defaults(settings.workload, config.trace)));
  }
  const workload::WorkloadBuilder& active = per_run ? *per_run : builder;

  const std::vector<workload::Job> jobs = active.build(
      qos, settings.arrival_delay_factor, settings.inaccuracy_percent);

  policy::PolicyContext context;
  context.machine = config.machine;
  context.model = config.model;
  context.pricing = config.pricing;
  context.first_reward = config.first_reward;
  context.failure = settings.failure;
  context.recovery = settings.recovery;
  context.metrics = metrics;

  return service::simulate(jobs, service::factory_for(policy), context);
}

void reduce_scenario(SweepResult& result, std::size_t s,
                     const core::NormalizationConfig& normalization) {
  // Normalise per objective across policies, then reduce to separate
  // risk (eqns 5-6) per policy.
  const std::size_t policies = result.policies.size();
  result.separate[s].resize(policies);
  for (core::Objective objective : core::kAllObjectives) {
    const auto o = static_cast<std::size_t>(objective);
    const auto normalized =
        core::normalize_objective(objective, result.raw[s][o], normalization);
    for (std::size_t p = 0; p < policies; ++p) {
      result.separate[s][p][o] = core::separate_risk(normalized[p]);
    }
  }
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config, ResultStore* store,
                                   std::size_t workers)
    : config_(std::move(config)),
      builder_(config_.make_builder()),
      store_(store != nullptr ? store : &local_store_),
      workers_(workers == 0 ? default_worker_count() : workers) {}

core::ObjectiveValues ExperimentRunner::run_one(policy::PolicyKind policy,
                                                const RunSettings& settings) {
  const std::string key = config_.run_key(policy, settings);
  if (auto cached = store_->lookup(key)) {
    ++stats_.cache_hits;
    return *cached;
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t events = 0;
  const core::ObjectiveValues values =
      simulate_run(config_, builder_, policy, settings, &events);
  const double elapsed = seconds_since(start);
  ++stats_.simulations;
  stats_.events += events;
  stats_.wall_seconds += elapsed;
  stats_.runs.push_back({key, elapsed, events});
  store_->insert(key, values);
  return values;
}

SweepResult ExperimentRunner::run_sweep() {
  return run_sweep(policy::policies_for_model(config_.model));
}

SweepResult ExperimentRunner::run_sweep(
    const std::vector<policy::PolicyKind>& policies) {
  return run_scenarios(all_scenarios(), config_.default_settings(),
                       policies);
}

SweepResult ExperimentRunner::run_scenarios(
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies) {
  if (workers_ > 1) {
    SweepStats stats;
    SweepResult result = run_scenarios_parallel(
        config_, *store_, scenarios, defaults, policies, workers_, &stats);
    stats_.accumulate(stats);
    return result;
  }

  SweepResult result;
  result.policies = policies;
  result.scenario_names.reserve(scenarios.size());
  result.raw.resize(scenarios.size());
  result.separate.resize(scenarios.size());

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    result.scenario_names.push_back(scenario.name);

    // Collect raw values: raw[o][p][v].
    for (auto& per_objective : result.raw[s]) {
      per_objective.assign(policies.size(),
                           std::vector<double>(scenario.values.size(), 0.0));
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t v = 0; v < scenario.values.size(); ++v) {
        const RunSettings settings = scenario.settings_for(defaults, v);
        const core::ObjectiveValues values = run_one(policies[p], settings);
        for (core::Objective objective : core::kAllObjectives) {
          result.raw[s][static_cast<std::size_t>(objective)][p][v] =
              values.get(objective);
        }
      }
    }

    reduce_scenario(result, s, config_.normalization);
  }
  return result;
}

}  // namespace utilrisk::exp
