#include "exp/replication.hpp"

#include <cmath>
#include <stdexcept>

#include "service/computing_service.hpp"
#include "workload/workload.hpp"

namespace utilrisk::exp {

ReplicationSummary summarize_replicates(
    std::vector<core::ObjectiveValues> replicates) {
  if (replicates.size() < 2) {
    throw std::invalid_argument(
        "summarize_replicates: need at least 2 replicates");
  }
  ReplicationSummary summary;
  const double n = static_cast<double>(replicates.size());
  for (core::Objective objective : core::kAllObjectives) {
    const auto o = static_cast<std::size_t>(objective);
    double sum = 0.0;
    for (const core::ObjectiveValues& values : replicates) {
      sum += values.get(objective);
    }
    const double mean = sum / n;
    double sq = 0.0;
    for (const core::ObjectiveValues& values : replicates) {
      const double d = values.get(objective) - mean;
      sq += d * d;
    }
    ObjectiveEstimate& estimate = summary.objectives[o];
    estimate.mean = mean;
    estimate.stddev = std::sqrt(sq / (n - 1.0));
    // Normal approximation; fine for the coarse "do intervals overlap"
    // comparisons we make (replicate counts are small, so this slightly
    // understates the width — callers wanting rigour can use the raw
    // replicates).
    estimate.ci95_half = 1.96 * estimate.stddev / std::sqrt(n);
  }
  summary.replicates = std::move(replicates);
  return summary;
}

ReplicationSummary replicate(const ReplicationConfig& config) {
  if (config.seeds.size() < 2) {
    throw std::invalid_argument("replicate: need at least 2 seeds");
  }
  std::vector<core::ObjectiveValues> replicates;
  replicates.reserve(config.seeds.size());
  for (std::uint64_t seed : config.seeds) {
    workload::SyntheticSdscConfig trace = config.trace;
    trace.seed = seed;
    workload::QosConfig qos;
    qos.high_urgency_percent = config.settings.high_urgency_percent;
    qos.deadline = config.settings.deadline;
    qos.budget = config.settings.budget;
    qos.penalty = config.settings.penalty;
    qos.seed = seed * 31 + 7;
    const workload::WorkloadBuilder builder(trace);
    const auto jobs =
        builder.build(qos, config.settings.arrival_delay_factor,
                      config.settings.inaccuracy_percent);
    const auto report = service::simulate(jobs, config.policy, config.model);
    replicates.push_back(report.objectives);
  }
  return summarize_replicates(std::move(replicates));
}

}  // namespace utilrisk::exp
