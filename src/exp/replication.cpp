#include "exp/replication.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exp/parallel.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

namespace utilrisk::exp {

ReplicationSummary summarize_replicates(
    std::vector<core::ObjectiveValues> replicates) {
  if (replicates.size() < 2) {
    throw std::invalid_argument(
        "summarize_replicates: need at least 2 replicates");
  }
  ReplicationSummary summary;
  const double n = static_cast<double>(replicates.size());
  for (core::Objective objective : core::kAllObjectives) {
    const auto o = static_cast<std::size_t>(objective);
    double sum = 0.0;
    for (const core::ObjectiveValues& values : replicates) {
      sum += values.get(objective);
    }
    const double mean = sum / n;
    double sq = 0.0;
    for (const core::ObjectiveValues& values : replicates) {
      const double d = values.get(objective) - mean;
      sq += d * d;
    }
    ObjectiveEstimate& estimate = summary.objectives[o];
    estimate.mean = mean;
    estimate.stddev = std::sqrt(sq / (n - 1.0));
    // Normal approximation; fine for the coarse "do intervals overlap"
    // comparisons we make (replicate counts are small, so this slightly
    // understates the width — callers wanting rigour can use the raw
    // replicates).
    estimate.ci95_half = 1.96 * estimate.stddev / std::sqrt(n);
  }
  summary.replicates = std::move(replicates);
  return summary;
}

ReplicationSummary replicate(const ReplicationConfig& config) {
  if (config.seeds.size() < 2) {
    throw std::invalid_argument("replicate: need at least 2 seeds");
  }
  // Each replicate builds its own trace, workload and simulator from its
  // seed alone (no shared RNG streams), so the seeds fan out across the
  // pool; results land at their seed's index, keeping the summary
  // bit-identical to the serial order.
  std::vector<core::ObjectiveValues> replicates(config.seeds.size());
  const auto run_seed = [&config, &replicates](std::size_t i) {
    const std::uint64_t seed = config.seeds[i];
    workload::SyntheticSdscConfig trace = config.trace;
    trace.seed = seed;
    workload::QosConfig qos;
    qos.high_urgency_percent = config.settings.high_urgency_percent;
    qos.deadline = config.settings.deadline;
    qos.budget = config.settings.budget;
    qos.penalty = config.settings.penalty;
    qos.seed = seed * 31 + 7;
    const workload::WorkloadBuilder builder(trace);
    const auto jobs =
        builder.build(qos, config.settings.arrival_delay_factor,
                      config.settings.inaccuracy_percent);
    policy::PolicyContext context;
    context.model = config.model;
    context.failure = config.settings.failure;
    context.recovery = config.settings.recovery;
    const auto report = service::simulate(
        jobs, service::factory_for(config.policy), context);
    replicates[i] = report.objectives;
  };
  const std::size_t workers =
      config.workers == 0 ? default_worker_count() : config.workers;
  if (workers > 1 && config.seeds.size() > 1) {
    ThreadPool pool(std::min(workers, config.seeds.size()));
    parallel_for_index(pool, config.seeds.size(), run_seed);
  } else {
    for (std::size_t i = 0; i < config.seeds.size(); ++i) run_seed(i);
  }
  return summarize_replicates(std::move(replicates));
}

}  // namespace utilrisk::exp
