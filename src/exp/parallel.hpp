// Parallel sweep executor: thread-pool fan-out of independent simulations.
//
// Every figure of the paper reduces hundreds of *independent*
// single-threaded simulation runs (scenario x policy x value x seed), so
// the experiment layer — not the kernel — is where parallelism lives
// (DESIGN.md §4 "threading model"): each worker owns its own
// WorkloadBuilder and simulator, RNG seeding stays per-run, and the
// reduction happens in deterministic task order after a barrier, so the
// parallel path is bit-identical to the serial one.
//
// The worker count resolves, in order: explicit argument >
// REPRO_JOBS_PAR env var > std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

namespace utilrisk::obs {
class MetricsRegistry;
class ProgressReporter;
}  // namespace utilrisk::obs

namespace utilrisk::exp {

/// REPRO_JOBS_PAR if set to a positive integer, else
/// hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t default_worker_count();

/// Fixed-size worker pool: std::jthread workers draining a mutex/condvar
/// task queue. Tasks must not throw (the sweep executor catches and
/// re-throws after its barrier); submit() never blocks on task execution.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = default_worker_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for the next free worker.
  void submit(std::function<void()> task);

  /// Barrier: returns once the queue is drained and no task is running.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Workers currently executing a task (diagnostic; e.g. the sweep
  /// progress reporter's "workers busy" figure).
  [[nodiscard]] std::size_t active_count() const {
    std::lock_guard lock(mutex_);
    return active_;
  }

 private:
  void worker_loop(std::stop_token stop);

  mutable std::mutex mutex_;
  std::condition_variable_any work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  std::vector<std::jthread> workers_;  ///< last member: joins first
};

/// Runs fn(0..count-1) across the pool (each index exactly once, dynamic
/// load balancing) and returns after all complete. The first exception
/// thrown by any index is re-thrown here.
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

/// Optional observability attachments for a parallel sweep. Both pointers
/// may be null (the default): the sweep then runs exactly as before.
struct SweepHooks {
  /// Receives `exp.*` executor instruments (per-worker run counters,
  /// run-wall and queue-wait histograms, cache hit/miss counters) and is
  /// injected into every executed run (`sim.*` / `service.*`).
  obs::MetricsRegistry* metrics = nullptr;
  /// Periodic completed/total/ETA lines while phase 2 executes.
  obs::ProgressReporter* progress = nullptr;
};

/// The parallel twin of ExperimentRunner::run_scenarios: enumerates the
/// (scenario, policy, value) run matrix in deterministic order, dedupes
/// tasks by cache key (an in-flight key is simulated exactly once, however
/// many cells request it), fans the cache misses out across the pool's
/// workers, then reduces after a barrier. `stats` (optional) receives the
/// per-run timing counters.
[[nodiscard]] SweepResult run_scenarios_parallel(
    const ExperimentConfig& config, ResultStore& store,
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies, ThreadPool& pool,
    SweepStats* stats = nullptr, const SweepHooks& hooks = {});

/// Convenience overload: a throwaway pool of `workers` threads.
[[nodiscard]] SweepResult run_scenarios_parallel(
    const ExperimentConfig& config, ResultStore& store,
    const std::vector<Scenario>& scenarios, const RunSettings& defaults,
    const std::vector<policy::PolicyKind>& policies, std::size_t workers,
    SweepStats* stats = nullptr, const SweepHooks& hooks = {});

/// Drop-in parallel ExperimentRunner with a persistent pool: same sweep
/// API, bit-identical results, `stats()` exposing wall-clock/events/dedup
/// counters of the last sweep.
class ParallelRunner {
 public:
  explicit ParallelRunner(ExperimentConfig config, ResultStore* store = nullptr,
                          std::size_t workers = 0 /* 0 = default */);

  [[nodiscard]] SweepResult run_sweep();
  [[nodiscard]] SweepResult run_sweep(
      const std::vector<policy::PolicyKind>& policies);
  [[nodiscard]] SweepResult run_scenarios(
      const std::vector<Scenario>& scenarios, const RunSettings& defaults,
      const std::vector<policy::PolicyKind>& policies);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] std::size_t worker_count() const {
    return pool_.worker_count();
  }
  /// Simulations actually executed (cache misses) across all sweeps.
  [[nodiscard]] std::size_t simulations_run() const {
    return stats_.simulations;
  }
  /// Timing/dedup counters accumulated across all sweeps of this runner.
  [[nodiscard]] const SweepStats& stats() const { return stats_; }

  /// Attach observability to subsequent sweeps (see SweepHooks). Both
  /// accept nullptr to detach; the runner never owns the objects.
  void set_metrics(obs::MetricsRegistry* metrics) { hooks_.metrics = metrics; }
  void set_progress(obs::ProgressReporter* progress) {
    hooks_.progress = progress;
  }

 private:
  ExperimentConfig config_;
  ResultStore* store_;
  ResultStore local_store_;  ///< used when no shared store is given
  SweepStats stats_;
  SweepHooks hooks_;
  ThreadPool pool_;  ///< last member: joins before the store dies
};

}  // namespace utilrisk::exp
