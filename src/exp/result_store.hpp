// Memoisation of simulation runs.
//
// Figures 3-5 (and 6-8) share one policies x scenarios x values sweep, and
// within a sweep the all-defaults run recurs in most scenarios. The store
// caches raw objective values keyed by the complete run configuration and
// optionally persists them to a CSV file so the per-figure bench binaries
// reuse each other's simulations.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/objectives.hpp"

namespace utilrisk::exp {

class ResultStore {
 public:
  /// In-memory only.
  ResultStore() = default;

  /// Backed by `path`: existing entries are loaded eagerly (ignored if the
  /// file does not exist); every insert appends to the file.
  explicit ResultStore(std::string path);

  [[nodiscard]] std::optional<core::ObjectiveValues> lookup(
      const std::string& key) const;

  void insert(const std::string& key, const core::ObjectiveValues& values);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

 private:
  void load();

  std::string path_;  ///< empty = memory-only
  std::map<std::string, core::ObjectiveValues> entries_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace utilrisk::exp
