// Memoisation of simulation runs.
//
// Figures 3-8 (and 6-8) share one policies x scenarios x values sweep, and
// within a sweep the all-defaults run recurs in most scenarios. The store
// caches raw objective values keyed by the complete run configuration and
// optionally persists them to a CSV file so the per-figure bench binaries
// reuse each other's simulations.
//
// Thread safety: lookup/insert/size may be called concurrently (the
// parallel sweep executor in exp/parallel.hpp shares one store across
// workers). Reads take a shared lock; inserts take an exclusive lock and
// perform the single-writer append + flush to the backing file while
// holding it, so a crash can lose at most the record being written and
// never interleaves two records.
#pragma once

#include <atomic>
#include <fstream>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>

#include "core/objectives.hpp"

namespace utilrisk::exp {

class ResultStore {
 public:
  /// In-memory only.
  ResultStore() = default;

  /// Backed by `path`: existing entries are loaded eagerly (ignored if the
  /// file does not exist; malformed lines are skipped with a warning);
  /// every insert appends to the file and flushes, so a crash mid-run
  /// cannot tear an already-acknowledged record.
  ///
  /// The first line of the file is the schema header (kSchemaHeader). A
  /// file without the current header — produced before cache keys covered
  /// the failure knobs, or by a future incompatible version — is discarded
  /// wholesale and rewritten, so a stale cache self-invalidates instead of
  /// silently serving wrong objectives. Duplicate keys whose objective
  /// values disagree (two incompatible writers sharing one file) are
  /// dropped entirely and re-simulated rather than trusting either line.
  explicit ResultStore(std::string path);

  /// First line of every backing file. Bump the version whenever the line
  /// format or the run-key definition changes incompatibly.
  static constexpr const char* kSchemaHeader = "#utilrisk.result_store/2";

  [[nodiscard]] std::optional<core::ObjectiveValues> lookup(
      const std::string& key) const;

  void insert(const std::string& key, const core::ObjectiveValues& values);

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return entries_.size();
  }
  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Lines of the backing file dropped by load() because they failed to
  /// parse (torn tail of a crashed run, manual edits) or carried a
  /// conflicting duplicate key.
  [[nodiscard]] std::size_t malformed_lines_skipped() const {
    return malformed_lines_skipped_;
  }
  /// Subset of malformed_lines_skipped(): lines dropped because the same
  /// key appeared with disagreeing objective values (both copies are
  /// dropped — re-simulation beats trusting a conflicting cache line).
  [[nodiscard]] std::size_t conflicting_lines_dropped() const {
    return conflicting_lines_dropped_;
  }
  /// True when load() discarded a backing file whose schema header was
  /// missing or outdated.
  [[nodiscard]] bool stale_cache_discarded() const {
    return stale_cache_discarded_;
  }

 private:
  /// Returns true when the backing file must be rewritten (missing, stale
  /// schema, or compaction after dropping conflicting lines).
  bool load();
  /// Truncates the backing file and writes header + surviving entries.
  void rewrite_file();

  std::string path_;      ///< empty = memory-only
  std::ofstream append_;  ///< held open across inserts (single writer)
  std::map<std::string, core::ObjectiveValues> entries_;
  mutable std::shared_mutex mutex_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::size_t malformed_lines_skipped_ = 0;
  std::size_t conflicting_lines_dropped_ = 0;
  bool stale_cache_discarded_ = false;
};

}  // namespace utilrisk::exp
