// Assembly of the paper's figures from a sweep: separate risk plots
// (Figs 3, 6), integrated three-objective plots (Figs 4, 7) and the
// all-four-objective plots (Figs 5, 8).
#pragma once

#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/integrated_risk.hpp"
#include "core/risk_plot.hpp"
#include "exp/experiment.hpp"

namespace utilrisk::exp {

/// Separate risk analysis plot of one objective: one series per policy,
/// one point per scenario (paper Figs 3a-h / 6a-h panels).
[[nodiscard]] core::RiskPlot separate_plot(const SweepResult& sweep,
                                           core::Objective objective,
                                           const std::string& title);

/// Integrated risk analysis plot over `objectives` with `weights`
/// (equal weights when empty). Figs 4/7 use the four three-objective
/// combinations; Figs 5/8 use all four objectives.
[[nodiscard]] core::RiskPlot integrated_plot(
    const SweepResult& sweep, const std::vector<core::Objective>& objectives,
    const std::string& title, const std::vector<double>& weights = {});

/// The four leave-one-out combinations in the paper's panel order:
/// {SLA, reliability, profitability} (no wait), {wait, reliability,
/// profitability} (no SLA), {wait, SLA, profitability} (no reliability),
/// {wait, SLA, reliability} (no profitability).
[[nodiscard]] std::vector<std::vector<core::Objective>>
three_objective_combinations();

/// Short "a+b+c" label for a combination.
[[nodiscard]] std::string combination_label(
    const std::vector<core::Objective>& objectives);

/// Repackages a sweep as advisor input (core/advisor.hpp) for the a-priori
/// risk analysis: score policies for future operating points without
/// re-simulating.
[[nodiscard]] core::AdvisorInput advisor_input(const SweepResult& sweep);

}  // namespace utilrisk::exp
