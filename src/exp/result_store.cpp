#include "exp/result_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace utilrisk::exp {

namespace {

// Cache lines are '<key>\t<wait> <sla> <reliability> <profitability>'.
// Keys are printable and contain no tabs by construction (run_key).
constexpr char kSeparator = '\t';

}  // namespace

ResultStore::ResultStore(std::string path) : path_(std::move(path)) { load(); }

void ResultStore::load() {
  std::ifstream in(path_);
  if (!in) return;  // first use: no cache yet
  std::string line;
  while (std::getline(in, line)) {
    const auto tab = line.find(kSeparator);
    if (tab == std::string::npos) continue;
    std::istringstream values(line.substr(tab + 1));
    core::ObjectiveValues v;
    if (values >> v.wait >> v.sla >> v.reliability >> v.profitability) {
      entries_[line.substr(0, tab)] = v;
    }
  }
}

std::optional<core::ObjectiveValues> ResultStore::lookup(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ResultStore::insert(const std::string& key,
                         const core::ObjectiveValues& values) {
  if (key.find(kSeparator) != std::string::npos ||
      key.find('\n') != std::string::npos) {
    throw std::invalid_argument("ResultStore::insert: key contains separator");
  }
  const auto [it, inserted] = entries_.emplace(key, values);
  if (!inserted) return;  // idempotent
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw std::runtime_error("ResultStore: cannot append to " + path_);
  }
  out.precision(17);
  out << key << kSeparator << values.wait << ' ' << values.sla << ' '
      << values.reliability << ' ' << values.profitability << '\n';
}

}  // namespace utilrisk::exp
