#include "exp/result_store.hpp"

#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace utilrisk::exp {

namespace {

// Cache lines are '<key>\t<wait> <sla> <reliability> <profitability>'.
// Keys are printable and contain no tabs by construction (run_key).
constexpr char kSeparator = '\t';

bool same_values(const core::ObjectiveValues& a,
                 const core::ObjectiveValues& b) {
  // Exact: precision-17 round-trips are bit-faithful, so two lines for
  // the same run agree bit-for-bit unless something is actually wrong.
  return a.wait == b.wait && a.sla == b.sla &&
         a.reliability == b.reliability &&
         a.profitability == b.profitability;
}

}  // namespace

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  if (load()) rewrite_file();
  append_.open(path_, std::ios::app);
  if (!append_) {
    throw std::runtime_error("ResultStore: cannot append to " + path_);
  }
  append_.precision(17);
}

bool ResultStore::load() {
  std::ifstream in(path_);
  if (!in) return true;  // first use: create the file with its header
  std::string line;
  std::size_t line_no = 0;
  bool needs_rewrite = false;
  std::set<std::string> conflicted;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) {
      if (line == kSchemaHeader) continue;
      // Pre-versioning or incompatible cache: the keys may not mean what
      // they mean today (e.g. they used to omit the failure knobs), so
      // serving any entry risks silently wrong objectives. Discard the
      // whole file; every run is simply re-simulated.
      std::cerr << "[ResultStore] " << path_
                << ": stale or unversioned cache (expected '"
                << kSchemaHeader << "' header); discarding it\n";
      stale_cache_discarded_ = true;
      entries_.clear();
      return true;
    }
    if (line.empty()) continue;
    const auto tab = line.find(kSeparator);
    bool parsed = false;
    if (tab != std::string::npos) {
      std::istringstream values(line.substr(tab + 1));
      core::ObjectiveValues v;
      if (values >> v.wait >> v.sla >> v.reliability >> v.profitability) {
        std::string key = line.substr(0, tab);
        parsed = true;
        if (conflicted.contains(key)) {
          ++malformed_lines_skipped_;
          ++conflicting_lines_dropped_;
          std::cerr << "[ResultStore] " << path_ << ':' << line_no
                    << ": dropping another copy of conflicting key '" << key
                    << "'\n";
        } else if (auto it = entries_.find(key);
                   it != entries_.end() && !same_values(it->second, v)) {
          // Two lines claim the same run with different objectives: one of
          // them is wrong and there is no way to tell which, so drop both
          // and let the run re-simulate.
          entries_.erase(it);
          conflicted.insert(std::move(key));
          malformed_lines_skipped_ += 2;
          conflicting_lines_dropped_ += 2;
          needs_rewrite = true;  // compact the poisoned lines away
          std::cerr << "[ResultStore] " << path_ << ':' << line_no
                    << ": duplicate key with conflicting objective values; "
                       "dropping both copies (will re-simulate)\n";
        } else {
          entries_[std::move(key)] = v;  // identical duplicate: benign
        }
      }
    }
    if (!parsed) {
      // Torn tail of a crashed run or a manual edit: drop the line rather
      // than silently mis-parsing it; the run is simply re-simulated.
      ++malformed_lines_skipped_;
      std::cerr << "[ResultStore] " << path_ << ':' << line_no
                << ": skipping malformed cache line\n";
    }
  }
  if (line_no == 0) return true;  // empty file: still needs its header
  return needs_rewrite;
}

void ResultStore::rewrite_file() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("ResultStore: cannot rewrite " + path_);
  }
  out.precision(17);
  out << kSchemaHeader << '\n';
  for (const auto& [key, values] : entries_) {
    out << key << kSeparator << values.wait << ' ' << values.sla << ' '
        << values.reliability << ' ' << values.profitability << '\n';
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("ResultStore: short rewrite of " + path_);
  }
}

std::optional<core::ObjectiveValues> ResultStore::lookup(
    const std::string& key) const {
  std::shared_lock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultStore::insert(const std::string& key,
                         const core::ObjectiveValues& values) {
  if (key.find(kSeparator) != std::string::npos ||
      key.find('\n') != std::string::npos) {
    throw std::invalid_argument("ResultStore::insert: key contains separator");
  }
  std::unique_lock lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, values);
  if (!inserted) return;  // idempotent
  if (path_.empty()) return;
  // Single-writer append under the exclusive lock; flush per record so a
  // crash cannot leave an acknowledged insert only half on disk.
  append_ << key << kSeparator << values.wait << ' ' << values.sla << ' '
          << values.reliability << ' ' << values.profitability << '\n'
          << std::flush;
  if (!append_) {
    throw std::runtime_error("ResultStore: cannot append to " + path_);
  }
}

}  // namespace utilrisk::exp
