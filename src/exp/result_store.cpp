#include "exp/result_store.hpp"

#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace utilrisk::exp {

namespace {

// Cache lines are '<key>\t<wait> <sla> <reliability> <profitability>'.
// Keys are printable and contain no tabs by construction (run_key).
constexpr char kSeparator = '\t';

}  // namespace

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  load();
  append_.open(path_, std::ios::app);
  if (!append_) {
    throw std::runtime_error("ResultStore: cannot append to " + path_);
  }
  append_.precision(17);
}

void ResultStore::load() {
  std::ifstream in(path_);
  if (!in) return;  // first use: no cache yet
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto tab = line.find(kSeparator);
    bool parsed = false;
    if (tab != std::string::npos) {
      std::istringstream values(line.substr(tab + 1));
      core::ObjectiveValues v;
      if (values >> v.wait >> v.sla >> v.reliability >> v.profitability) {
        entries_[line.substr(0, tab)] = v;
        parsed = true;
      }
    }
    if (!parsed) {
      // Torn tail of a crashed run or a manual edit: drop the line rather
      // than silently mis-parsing it; the run is simply re-simulated.
      ++malformed_lines_skipped_;
      std::cerr << "[ResultStore] " << path_ << ':' << line_no
                << ": skipping malformed cache line\n";
    }
  }
}

std::optional<core::ObjectiveValues> ResultStore::lookup(
    const std::string& key) const {
  std::shared_lock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultStore::insert(const std::string& key,
                         const core::ObjectiveValues& values) {
  if (key.find(kSeparator) != std::string::npos ||
      key.find('\n') != std::string::npos) {
    throw std::invalid_argument("ResultStore::insert: key contains separator");
  }
  std::unique_lock lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, values);
  if (!inserted) return;  // idempotent
  if (path_.empty()) return;
  // Single-writer append under the exclusive lock; flush per record so a
  // crash cannot leave an acknowledged insert only half on disk.
  append_ << key << kSeparator << values.wait << ' ' << values.sla << ' '
          << values.reliability << ' ' << values.profitability << '\n'
          << std::flush;
  if (!append_) {
    throw std::runtime_error("ResultStore: cannot append to " + path_);
  }
}

}  // namespace utilrisk::exp
