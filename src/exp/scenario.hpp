// The twelve evaluation scenarios of Table VI.
//
// A scenario varies exactly one knob over six values while every other
// knob stays at its default (underlined in the paper's Table VI; our
// defaults are documented in DESIGN.md §3). Six values per scenario feed
// six normalised results into each separate risk analysis.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/failure.hpp"
#include "workload/qos.hpp"

namespace utilrisk::exp {

/// Concrete knob values for one simulation run.
struct RunSettings {
  double high_urgency_percent = 20.0;
  double arrival_delay_factor = 0.25;
  double inaccuracy_percent = 0.0;  ///< 0 in Set A, 100 in Set B
  workload::QosParameterConfig deadline{};  // low_mean 4, ratio 4, bias 2
  workload::QosParameterConfig budget{};
  workload::QosParameterConfig penalty{};
  /// Fault injection (disabled by default: infinite MTBF).
  cluster::FailureConfig failure{};
  /// Retry/backoff/checkpoint knobs for outage recovery.
  cluster::RecoveryParams recovery{};
  /// Per-run workload-generator spec ("name:key=value,...",
  /// workload/generator.hpp); empty (default) = the experiment's base
  /// trace. The harness injects the config's job count and trace seed as
  /// spec defaults, so a scenario spec like "zipf:theta=0.5" inherits
  /// both unless it pins its own.
  std::string workload;

  /// Canonical key fragment for the result cache: every knob above,
  /// including the failure/recovery configuration, so runs that differ in
  /// any determinism-relevant setting never share a cache key.
  [[nodiscard]] std::string key_fragment() const;
};

/// One Table VI scenario: a label, six values, and the mutation each value
/// applies on top of the defaults.
struct Scenario {
  std::string name;
  std::vector<double> values;
  std::function<void(RunSettings&, double)> apply;

  /// Settings for value index i, starting from `defaults`.
  [[nodiscard]] RunSettings settings_for(const RunSettings& defaults,
                                         std::size_t index) const;
};

/// Number of values per scenario (Table VI).
inline constexpr std::size_t kValuesPerScenario = 6;

/// The twelve scenarios, in Table VI column order: job mix, workload
/// (arrival delay factor), estimate inaccuracy, then {bias, high:low
/// ratio, low-value mean} x {deadline, budget, penalty}.
[[nodiscard]] const std::vector<Scenario>& all_scenarios();

/// The 13th, robustness scenario: an MTBF sweep (infinity down to one
/// hour) at otherwise-default knobs. Deliberately NOT part of
/// all_scenarios() — the Table VI figures must not change — and consumed
/// by bench_robustness_failures and the `sweep` CLI instead.
[[nodiscard]] const Scenario& mtbf_scenario();

// Extension scenarios over the pluggable workload generators
// (workload/generator.hpp). Like mtbf_scenario() they are deliberately
// NOT in all_scenarios(), so the Table VI figures are unchanged; the
// `sweep --scenario` CLI and the workload benches consume them.

/// Zipfian multi-tenant skew sweep: theta 0 (uniform tenants) up to the
/// classic YCSB 0.99, at otherwise-default knobs.
[[nodiscard]] const Scenario& zipf_scenario();

/// Flash-crowd sweep: window rate multiplier 1 (no crowd) up to 32x over
/// the default base trace.
[[nodiscard]] const Scenario& flash_scenario();

/// Checkpoint-restart sweep: Daly checkpoint interval from 15 min up to
/// 8 h, with fault injection and bounded retries enabled and the
/// service-side restart credit (RecoveryParams::checkpoint_interval)
/// matched to the workload's dump interval.
[[nodiscard]] const Scenario& daly_scenario();

/// Looks a scenario up by name (Table VI plus the "mtbf", "zipf",
/// "flash" and "daly" extensions); throws std::invalid_argument when
/// unknown.
[[nodiscard]] const Scenario& scenario_by_name(const std::string& name);

}  // namespace utilrisk::exp
