// The twelve evaluation scenarios of Table VI.
//
// A scenario varies exactly one knob over six values while every other
// knob stays at its default (underlined in the paper's Table VI; our
// defaults are documented in DESIGN.md §3). Six values per scenario feed
// six normalised results into each separate risk analysis.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/failure.hpp"
#include "workload/qos.hpp"

namespace utilrisk::exp {

/// Concrete knob values for one simulation run.
struct RunSettings {
  double high_urgency_percent = 20.0;
  double arrival_delay_factor = 0.25;
  double inaccuracy_percent = 0.0;  ///< 0 in Set A, 100 in Set B
  workload::QosParameterConfig deadline{};  // low_mean 4, ratio 4, bias 2
  workload::QosParameterConfig budget{};
  workload::QosParameterConfig penalty{};
  /// Fault injection (disabled by default: infinite MTBF).
  cluster::FailureConfig failure{};
  /// Retry/backoff/checkpoint knobs for outage recovery.
  cluster::RecoveryParams recovery{};

  /// Canonical key fragment for the result cache: every knob above,
  /// including the failure/recovery configuration, so runs that differ in
  /// any determinism-relevant setting never share a cache key.
  [[nodiscard]] std::string key_fragment() const;
};

/// One Table VI scenario: a label, six values, and the mutation each value
/// applies on top of the defaults.
struct Scenario {
  std::string name;
  std::vector<double> values;
  std::function<void(RunSettings&, double)> apply;

  /// Settings for value index i, starting from `defaults`.
  [[nodiscard]] RunSettings settings_for(const RunSettings& defaults,
                                         std::size_t index) const;
};

/// Number of values per scenario (Table VI).
inline constexpr std::size_t kValuesPerScenario = 6;

/// The twelve scenarios, in Table VI column order: job mix, workload
/// (arrival delay factor), estimate inaccuracy, then {bias, high:low
/// ratio, low-value mean} x {deadline, budget, penalty}.
[[nodiscard]] const std::vector<Scenario>& all_scenarios();

/// The 13th, robustness scenario: an MTBF sweep (infinity down to one
/// hour) at otherwise-default knobs. Deliberately NOT part of
/// all_scenarios() — the Table VI figures must not change — and consumed
/// by bench_robustness_failures and the `sweep` CLI instead.
[[nodiscard]] const Scenario& mtbf_scenario();

/// Looks a scenario up by name (Table VI plus "mtbf"); throws
/// std::invalid_argument when unknown.
[[nodiscard]] const Scenario& scenario_by_name(const std::string& name);

}  // namespace utilrisk::exp
