#include "exp/scenario.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "workload/generator.hpp"

namespace utilrisk::exp {

namespace {

std::vector<double> percent_values() { return {0, 20, 40, 60, 80, 100}; }
std::vector<double> delay_values() {
  return {0.02, 0.10, 0.25, 0.50, 0.75, 1.00};
}
std::vector<double> factor_values() { return {1, 2, 4, 6, 8, 10}; }

void qos_fragment(std::ostream& out, const workload::QosParameterConfig& p) {
  out << p.low_value_mean << ',' << p.high_low_ratio << ',' << p.bias << ','
      << p.sigma_fraction;
}

}  // namespace

std::string RunSettings::key_fragment() const {
  std::ostringstream oss;
  oss << "hu=" << high_urgency_percent << ";adf=" << arrival_delay_factor
      << ";inacc=" << inaccuracy_percent << ";d=";
  qos_fragment(oss, deadline);
  oss << ";b=";
  qos_fragment(oss, budget);
  oss << ";p=";
  qos_fragment(oss, penalty);
  // Unconditionally: these knobs change the run, so two runs that differ
  // only in them must never share a cache key. (They used to be emitted
  // only when injection was enabled, which made every --fail-* run collide
  // with the failure-free cell of the same scenario; the result-store
  // schema version was bumped alongside this fix so pre-fix caches are
  // discarded instead of served.)
  oss << ";fail=" << failure.mtbf_seconds << ',' << failure.mttr_seconds
      << ',' << cluster::to_string(failure.distribution) << ','
      << failure.weibull_shape << ',' << failure.seed << ','
      << failure.correlated_fraction << ',' << failure.correlated_size
      << ";rec=" << recovery.retry_limit << ',' << recovery.backoff_seconds
      << ',' << recovery.backoff_factor << ','
      << recovery.checkpoint_interval;
  // Only when set, so every legacy cache key is byte-identical to the
  // pre-generator-registry format.
  if (!workload.empty()) oss << ";wload=" << workload;
  return oss.str();
}

RunSettings Scenario::settings_for(const RunSettings& defaults,
                                   std::size_t index) const {
  if (index >= values.size()) {
    throw std::out_of_range("Scenario::settings_for: bad value index");
  }
  RunSettings settings = defaults;
  apply(settings, values[index]);
  return settings;
}

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> scenarios = [] {
    std::vector<Scenario> list;

    list.push_back({"job mix", percent_values(),
                    [](RunSettings& s, double v) {
                      s.high_urgency_percent = v;
                    }});
    list.push_back({"workload", delay_values(),
                    [](RunSettings& s, double v) {
                      s.arrival_delay_factor = v;
                    }});
    list.push_back({"inaccuracy", percent_values(),
                    [](RunSettings& s, double v) {
                      s.inaccuracy_percent = v;
                    }});

    list.push_back({"deadline bias", factor_values(),
                    [](RunSettings& s, double v) { s.deadline.bias = v; }});
    list.push_back({"budget bias", factor_values(),
                    [](RunSettings& s, double v) { s.budget.bias = v; }});
    list.push_back({"penalty bias", factor_values(),
                    [](RunSettings& s, double v) { s.penalty.bias = v; }});

    list.push_back({"deadline ratio", factor_values(),
                    [](RunSettings& s, double v) {
                      s.deadline.high_low_ratio = v;
                    }});
    list.push_back({"budget ratio", factor_values(),
                    [](RunSettings& s, double v) {
                      s.budget.high_low_ratio = v;
                    }});
    list.push_back({"penalty ratio", factor_values(),
                    [](RunSettings& s, double v) {
                      s.penalty.high_low_ratio = v;
                    }});

    list.push_back({"deadline low mean", factor_values(),
                    [](RunSettings& s, double v) {
                      s.deadline.low_value_mean = v;
                    }});
    list.push_back({"budget low mean", factor_values(),
                    [](RunSettings& s, double v) {
                      s.budget.low_value_mean = v;
                    }});
    list.push_back({"penalty low mean", factor_values(),
                    [](RunSettings& s, double v) {
                      s.penalty.low_value_mean = v;
                    }});

    for (const Scenario& scenario : list) {
      if (scenario.values.size() != kValuesPerScenario) {
        throw std::logic_error("all_scenarios: scenario without 6 values");
      }
    }
    return list;
  }();
  return scenarios;
}

const Scenario& mtbf_scenario() {
  static const Scenario scenario = [] {
    Scenario s;
    s.name = "mtbf";
    // Infinity (no failures) down to one failure per node-hour: one week,
    // two days, one day, six hours, one hour.
    s.values = {std::numeric_limits<double>::infinity(),
                604800, 172800, 86400, 21600, 3600};
    s.apply = [](RunSettings& settings, double v) {
      settings.failure.mtbf_seconds = v;
    };
    if (s.values.size() != kValuesPerScenario) {
      throw std::logic_error("mtbf_scenario: scenario without 6 values");
    }
    return s;
  }();
  return scenario;
}

const Scenario& zipf_scenario() {
  static const Scenario scenario = [] {
    Scenario s;
    s.name = "zipf";
    s.values = {0.0, 0.3, 0.5, 0.7, 0.9, 0.99};
    s.apply = [](RunSettings& settings, double v) {
      settings.workload = "zipf:theta=" + workload::format_double(v);
    };
    if (s.values.size() != kValuesPerScenario) {
      throw std::logic_error("zipf_scenario: scenario without 6 values");
    }
    return s;
  }();
  return scenario;
}

const Scenario& flash_scenario() {
  static const Scenario scenario = [] {
    Scenario s;
    s.name = "flash";
    s.values = {1, 2, 4, 8, 16, 32};
    s.apply = [](RunSettings& settings, double v) {
      settings.workload = "flash:peak=" + workload::format_double(v);
    };
    if (s.values.size() != kValuesPerScenario) {
      throw std::logic_error("flash_scenario: scenario without 6 values");
    }
    return s;
  }();
  return scenario;
}

const Scenario& daly_scenario() {
  static const Scenario scenario = [] {
    Scenario s;
    s.name = "daly";
    // Checkpoint interval tau: 15 min up to 8 h.
    s.values = {900, 1800, 3600, 7200, 14400, 28800};
    s.apply = [](RunSettings& settings, double v) {
      settings.workload = "daly:interval=" + workload::format_double(v);
      // The sweep only means something under failures: one interrupt per
      // node-day, bounded retries, and the service-side restart credit
      // matched to the workload's dump interval.
      settings.failure.mtbf_seconds = 86400.0;
      settings.recovery.retry_limit = 3;
      settings.recovery.checkpoint_interval = v;
    };
    if (s.values.size() != kValuesPerScenario) {
      throw std::logic_error("daly_scenario: scenario without 6 values");
    }
    return s;
  }();
  return scenario;
}

const Scenario& scenario_by_name(const std::string& name) {
  for (const Scenario& scenario : all_scenarios()) {
    if (scenario.name == name) return scenario;
  }
  for (const Scenario* extension :
       {&mtbf_scenario(), &zipf_scenario(), &flash_scenario(),
        &daly_scenario()}) {
    if (extension->name == name) return *extension;
  }
  throw std::invalid_argument("scenario_by_name: unknown scenario '" + name +
                              "'");
}

}  // namespace utilrisk::exp
