#include "exp/figures.hpp"

#include <stdexcept>

#include "policy/factory.hpp"

namespace utilrisk::exp {

core::RiskPlot separate_plot(const SweepResult& sweep,
                             core::Objective objective,
                             const std::string& title) {
  core::RiskPlot plot;
  plot.title = title;
  plot.scenarios = sweep.scenario_names;
  plot.series.resize(sweep.policy_count());
  for (std::size_t p = 0; p < sweep.policy_count(); ++p) {
    plot.series[p].policy = std::string(policy::to_string(sweep.policies[p]));
    plot.series[p].points.reserve(sweep.scenario_count());
    for (std::size_t s = 0; s < sweep.scenario_count(); ++s) {
      plot.series[p].points.push_back(
          sweep.separate[s][p][static_cast<std::size_t>(objective)]);
    }
  }
  return plot;
}

core::RiskPlot integrated_plot(const SweepResult& sweep,
                               const std::vector<core::Objective>& objectives,
                               const std::string& title,
                               const std::vector<double>& weights) {
  if (objectives.empty()) {
    throw std::invalid_argument("integrated_plot: no objectives");
  }
  const std::vector<double> w =
      weights.empty() ? core::equal_weights(objectives.size()) : weights;

  core::RiskPlot plot;
  plot.title = title;
  plot.scenarios = sweep.scenario_names;
  plot.series.resize(sweep.policy_count());
  for (std::size_t p = 0; p < sweep.policy_count(); ++p) {
    plot.series[p].policy = std::string(policy::to_string(sweep.policies[p]));
    plot.series[p].points.reserve(sweep.scenario_count());
    for (std::size_t s = 0; s < sweep.scenario_count(); ++s) {
      std::vector<core::RiskPoint> separate;
      separate.reserve(objectives.size());
      for (core::Objective objective : objectives) {
        separate.push_back(
            sweep.separate[s][p][static_cast<std::size_t>(objective)]);
      }
      plot.series[p].points.push_back(core::integrated_risk(separate, w));
    }
  }
  return plot;
}

std::vector<std::vector<core::Objective>> three_objective_combinations() {
  using core::Objective;
  return {
      {Objective::Sla, Objective::Reliability, Objective::Profitability},
      {Objective::Wait, Objective::Reliability, Objective::Profitability},
      {Objective::Wait, Objective::Sla, Objective::Profitability},
      {Objective::Wait, Objective::Sla, Objective::Reliability},
  };
}

core::AdvisorInput advisor_input(const SweepResult& sweep) {
  core::AdvisorInput input;
  input.policies.reserve(sweep.policy_count());
  for (policy::PolicyKind kind : sweep.policies) {
    input.policies.emplace_back(policy::to_string(kind));
  }
  input.points.resize(sweep.policy_count());
  for (std::size_t p = 0; p < sweep.policy_count(); ++p) {
    input.points[p].reserve(sweep.scenario_count());
    for (std::size_t s = 0; s < sweep.scenario_count(); ++s) {
      input.points[p].push_back(sweep.separate[s][p]);
    }
  }
  return input;
}

std::string combination_label(const std::vector<core::Objective>& objectives) {
  std::string label;
  for (core::Objective objective : objectives) {
    if (!label.empty()) label += "+";
    label += std::string(core::to_string(objective));
  }
  return label;
}

}  // namespace utilrisk::exp
