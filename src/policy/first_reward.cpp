#include "policy/first_reward.hpp"

#include <algorithm>
#include <limits>

namespace utilrisk::policy {

FirstRewardPolicy::FirstRewardPolicy(const PolicyContext& context,
                                     PolicyHost& host)
    : Policy(context, host),
      cluster_(std::make_unique<cluster::SpaceSharedCluster>(
          *context.simulator, context.machine)) {}

economy::Money FirstRewardPolicy::present_value(
    const workload::Job& job) const {
  const double rpt_hours = job.estimated_runtime / 3600.0;
  return job.budget /
         (1.0 + context().first_reward.discount_rate_per_hour * rpt_hours);
}

economy::Money FirstRewardPolicy::opportunity_cost(
    const workload::Job& job) const {
  // cost_i = sum_{j != i, j accepted} pr_j * RPT_i. At admission the job is
  // not yet in the accepted set, so the full sum applies.
  return accepted_penalty_rate_sum_ * job.estimated_runtime;
}

double FirstRewardPolicy::slack(const workload::Job& job) const {
  if (job.penalty_rate <= 0.0) {
    // A penalty-free job can never cost anything: infinite slack.
    return std::numeric_limits<double>::infinity();
  }
  return (present_value(job) - opportunity_cost(job)) / job.penalty_rate;
}

double FirstRewardPolicy::reward(const workload::Job& job) const {
  const double alpha = context().first_reward.alpha;
  const double rpt = std::max(job.estimated_runtime, 1.0);
  return (alpha * present_value(job) -
          (1.0 - alpha) * opportunity_cost(job)) /
         rpt;
}

void FirstRewardPolicy::on_submit(const workload::Job& job) {
  if (job.procs > cluster_->total_procs()) {
    host().notify_rejected(job);
    return;
  }
  if (slack(job) < context().first_reward.slack_threshold) {
    host().notify_rejected(job);
    return;
  }
  // Accepted at submission; the bid (budget) is the maximum utility, the
  // realised utility is settled by the service from the finish time.
  host().notify_accepted(job, job.budget);
  accepted_penalty_rate_sum_ += job.penalty_rate;
  queue_.push_back(job);
  dispatch();
}

bool FirstRewardPolicy::terminate(workload::JobId id) {
  if (cluster_->cancel(id)) {
    // The completion callback (which normally settles the penalty-rate
    // sum) is suppressed by the cancel; settle here.
    auto it = running_penalty_.find(id);
    if (it != running_penalty_.end()) {
      accepted_penalty_rate_sum_ -= it->second;
      running_penalty_.erase(it);
    }
    dispatch();  // freed processors can start queued jobs
    return true;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      accepted_penalty_rate_sum_ -= it->penalty_rate;
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void FirstRewardPolicy::on_node_down(cluster::NodeId id) {
  auto kill = cluster_->node_down(id);
  if (kill) {
    // The completion callback normally settles the penalty-rate sum; the
    // outage suppressed it, so settle here before reporting the kill.
    accepted_penalty_rate_sum_ -= kill->job.penalty_rate;
    running_penalty_.erase(kill->job.id);
    host().notify_failed(kill->job, kill->completed_work);
  }
  dispatch();
}

void FirstRewardPolicy::on_node_up(cluster::NodeId id) {
  cluster_->node_up(id);
  dispatch();  // repaired capacity can start queued jobs
}

void FirstRewardPolicy::dispatch() {
  // Keep the wait queue ordered by reward (descending): FirstReward delays
  // previously accepted jobs whenever a newcomer outranks them.
  std::sort(queue_.begin(), queue_.end(),
            [this](const workload::Job& a, const workload::Job& b) {
              const double ra = reward(a);
              const double rb = reward(b);
              if (ra != rb) return ra > rb;
              return a.id < b.id;
            });
  // No backfilling: the head blocks until its processors are free.
  while (!queue_.empty() && cluster_->can_start(queue_.front().procs)) {
    const workload::Job job = queue_.front();
    queue_.erase(queue_.begin());
    host().notify_started(job);
    running_penalty_[job.id] = job.penalty_rate;
    cluster_->start(job,
                    [this, job](workload::JobId, sim::SimTime finish) {
                      accepted_penalty_rate_sum_ -= job.penalty_rate;
                      running_penalty_.erase(job.id);
                      host().notify_finished(job, finish);
                      dispatch();
                    });
  }
}

}  // namespace utilrisk::policy
