#include "policy/libra.hpp"

#include <algorithm>

#include "sim/logger.hpp"

namespace utilrisk::policy {

LibraPolicy::LibraPolicy(const PolicyContext& context, PolicyHost& host)
    : Policy(context, host),
      cluster_(std::make_unique<cluster::TimeSharedCluster>(
          *context.simulator, context.machine)) {}

std::optional<double> LibraPolicy::required_share(
    const workload::Job& job) const {
  if (job.deadline_duration <= 0.0 || job.estimated_runtime <= 0.0) {
    return std::nullopt;
  }
  const double share = job.estimated_runtime / job.deadline_duration;
  if (share > 1.0) return std::nullopt;  // infeasible even on a free node
  return share;
}

bool LibraPolicy::node_eligible(cluster::NodeId node,
                                const workload::Job& /*job*/,
                                double share) const {
  return cluster_->is_up(node) &&
         cluster_->committed_share(node) + share <=
             1.0 + cluster::TimeSharedCluster::kShareEpsilon;
}

void LibraPolicy::on_node_down(cluster::NodeId id) {
  for (const cluster::FailureKill& kill : cluster_->node_down(id)) {
    host().notify_failed(kill.job, kill.completed_work);
  }
}

void LibraPolicy::on_node_up(cluster::NodeId id) {
  cluster_->node_up(id);
}

economy::Money LibraPolicy::quote(const workload::Job& job,
                                  const std::vector<cluster::NodeId>& /*nodes*/,
                                  double /*share*/) const {
  return economy::libra_quote(job, pricing());
}

std::vector<cluster::NodeId> LibraPolicy::select_nodes(
    const workload::Job& job, double share) const {
  std::vector<cluster::NodeId> eligible;
  eligible.reserve(cluster_->node_count());
  for (cluster::NodeId node = 0; node < cluster_->node_count(); ++node) {
    if (node_eligible(node, job, share)) eligible.push_back(node);
  }
  if (eligible.size() < job.procs) return {};
  // Best fit: least residual share after placement == highest committed
  // share first.
  std::sort(eligible.begin(), eligible.end(),
            [this](cluster::NodeId a, cluster::NodeId b) {
              const double ca = cluster_->committed_share(a);
              const double cb = cluster_->committed_share(b);
              if (ca != cb) return ca > cb;
              return a < b;
            });
  eligible.resize(job.procs);
  return eligible;
}

void LibraPolicy::on_submit(const workload::Job& job) {
  if (job.procs > cluster_->node_count()) {
    host().notify_rejected(job);
    return;
  }
  const std::optional<double> share = required_share(job);
  if (!share) {
    host().notify_rejected(job);
    return;
  }
  const std::vector<cluster::NodeId> nodes = select_nodes(job, *share);
  if (nodes.empty()) {
    host().notify_rejected(job);
    return;
  }
  economy::Money quoted = job.budget;
  if (model() == economy::EconomicModel::CommodityMarket) {
    quoted = quote(job, nodes, *share);
    if (quoted > job.budget) {  // cost above budget: reject (§5.1)
      host().notify_rejected(job);
      return;
    }
  }
  host().notify_accepted(job, quoted);
  host().notify_started(job);  // time-shared execution starts immediately
  cluster_->start(job, nodes, *share,
                  [this, job](workload::JobId, sim::SimTime finish) {
                    host().notify_finished(job, finish);
                  });
}

}  // namespace utilrisk::policy
