#include "policy/libra.hpp"

#include <algorithm>

#include "sim/logger.hpp"

namespace utilrisk::policy {

LibraPolicy::LibraPolicy(const PolicyContext& context, PolicyHost& host)
    : Policy(context, host),
      cluster_(std::make_unique<cluster::TimeSharedCluster>(
          *context.simulator, context.machine)) {}

std::optional<double> LibraPolicy::required_share(
    const workload::Job& job) const {
  if (job.deadline_duration <= 0.0 || job.estimated_runtime <= 0.0) {
    return std::nullopt;
  }
  const double share = job.estimated_runtime / job.deadline_duration;
  if (share > 1.0) return std::nullopt;  // infeasible even on a free node
  return share;
}

bool LibraPolicy::node_eligible(cluster::NodeId node,
                                const workload::Job& /*job*/,
                                double share) const {
  return cluster_->is_up(node) &&
         cluster_->committed_share(node) + share <=
             1.0 + cluster::TimeSharedCluster::kShareEpsilon;
}

void LibraPolicy::on_node_down(cluster::NodeId id) {
  for (const cluster::FailureKill& kill : cluster_->node_down(id)) {
    host().notify_failed(kill.job, kill.completed_work);
  }
}

void LibraPolicy::on_node_up(cluster::NodeId id) {
  cluster_->node_up(id);
}

economy::Money LibraPolicy::quote(const workload::Job& job,
                                  const std::vector<cluster::NodeId>& /*nodes*/,
                                  double /*share*/) const {
  return economy::libra_quote(job, pricing());
}

std::vector<cluster::NodeId> LibraPolicy::select_nodes(
    const workload::Job& job, double share) const {
  // Best fit: least residual share after placement == highest committed
  // share first. The executor's share index already iterates in that
  // exact order (committed desc, id asc), so taking the first job.procs
  // eligible nodes from it equals sorting every eligible node and
  // truncating — without the whole-cluster scan. The bound skips nodes
  // that cannot pass the base capacity check; it sits 1e-12 above the
  // exact cutoff and node_eligible re-checks the exact predicate, so the
  // skip never changes the outcome.
  const double bound =
      1.0 + cluster::TimeSharedCluster::kShareEpsilon - share + 1e-12;
  std::vector<cluster::NodeId> chosen;
  chosen.reserve(job.procs);
  cluster_->for_each_up_node_best_fit(
      bound, [&](cluster::NodeId node, double /*committed*/) {
        if (node_eligible(node, job, share)) {
          chosen.push_back(node);
          if (chosen.size() == job.procs) return false;
        }
        return true;
      });
  if (chosen.size() < job.procs) return {};
  return chosen;
}

void LibraPolicy::on_submit(const workload::Job& job) {
  if (job.procs > cluster_->node_count()) {
    host().notify_rejected(job);
    return;
  }
  const std::optional<double> share = required_share(job);
  if (!share) {
    host().notify_rejected(job);
    return;
  }
  const std::vector<cluster::NodeId> nodes = select_nodes(job, *share);
  if (nodes.empty()) {
    host().notify_rejected(job);
    return;
  }
  economy::Money quoted = job.budget;
  if (model() == economy::EconomicModel::CommodityMarket) {
    quoted = quote(job, nodes, *share);
    if (quoted > job.budget) {  // cost above budget: reject (§5.1)
      host().notify_rejected(job);
      return;
    }
  }
  host().notify_accepted(job, quoted);
  host().notify_started(job);  // time-shared execution starts immediately
  cluster_->start(job, nodes, *share,
                  [this, job](workload::JobId, sim::SimTime finish) {
                    host().notify_finished(job, finish);
                  });
}

}  // namespace utilrisk::policy
