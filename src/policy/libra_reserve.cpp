#include "policy/libra_reserve.hpp"

#include <algorithm>
#include <optional>
#include <set>

namespace utilrisk::policy {

namespace {
/// Smallest share a degraded (conflicted) start will run at; below this
/// the job would take absurdly long and penalties explode, so we retry
/// shortly instead.
constexpr double kMinDegradedShare = 0.02;
/// Retry delay when a deferred job finds its nodes saturated by overrun
/// predecessors.
constexpr double kRetryDelay = 300.0;
}  // namespace

LibraReservePolicy::LibraReservePolicy(const PolicyContext& context,
                                       PolicyHost& host)
    : Policy(context, host),
      cluster_(std::make_unique<cluster::TimeSharedCluster>(
          *context.simulator, context.machine)),
      book_(context.machine.node_count) {}

std::optional<LibraReservePolicy::Booking> LibraReservePolicy::plan(
    const workload::Job& job) const {
  if (job.procs > cluster_->node_count() || job.estimated_runtime <= 0.0 ||
      job.deadline_duration <= 0.0) {
    return std::nullopt;
  }
  const sim::SimTime now = simulator().now();
  const sim::SimTime deadline = job.absolute_deadline();
  const sim::SimTime latest_start = deadline - job.estimated_runtime;
  if (latest_start < now - sim::kTimeEpsilon) return std::nullopt;

  // Candidate starts: "now" plus the earliest per-node fits at two probe
  // share levels. Deferring the start only *increases* the required share
  // (the window shrinks), so the earliest feasible candidate in this
  // ladder is a sound — if slightly conservative — choice; exact
  // procs-wide earliest-start search would need a sweep over the joint
  // breakpoint set and buys little on these workloads.
  std::set<sim::SimTime> candidates;
  candidates.insert(now);
  const double min_share = job.estimated_runtime / (deadline - now);
  if (min_share <= 1.0 + cluster::TimeSharedCluster::kShareEpsilon) {
    for (cluster::NodeId id = 0; id < book_.node_count(); ++id) {
      // An unbooked timeline fits any probe immediately, so earliest_fit
      // can only return `now` — which is already a candidate — or
      // kTimeNever (when latest_start < now); skip the walk either way.
      if (book_.node(id).empty()) continue;
      for (double probe : {min_share, std::min(1.0, min_share * 2.0)}) {
        const sim::SimTime t = book_.node(id).earliest_fit(
            now, latest_start, job.estimated_runtime, probe);
        if (t != sim::kTimeNever) candidates.insert(t);
      }
    }
  }

  for (sim::SimTime start : candidates) {
    if (start > latest_start + sim::kTimeEpsilon) continue;
    const double share = job.estimated_runtime / (deadline - start);
    if (share > 1.0 + cluster::TimeSharedCluster::kShareEpsilon) continue;
    const auto fitting =
        book_.fitting_nodes(start, deadline, share, 1.0, job.procs);
    if (fitting.size() < job.procs) continue;
    Booking booking;
    booking.job = job;
    booking.nodes.assign(fitting.begin(),
                         fitting.begin() + job.procs);
    booking.share = std::min(share, 1.0);
    booking.start = std::max(start, now);
    booking.window_end = deadline;
    return booking;
  }
  return std::nullopt;
}

void LibraReservePolicy::on_submit(const workload::Job& job) {
  std::optional<Booking> booking = plan(job);
  if (!booking) {
    host().notify_rejected(job);
    return;
  }
  economy::Money quoted = job.budget;
  if (model() == economy::EconomicModel::CommodityMarket) {
    quoted = economy::libra_quote(job, pricing());
    if (quoted > job.budget) {
      host().notify_rejected(job);
      return;
    }
  }
  for (cluster::NodeId node : booking->nodes) {
    book_.node(node).book(booking->start, booking->window_end,
                          booking->share);
  }
  host().notify_accepted(job, quoted);
  const workload::JobId id = job.id;
  const sim::SimTime start = booking->start;
  deferred_.emplace(id, std::move(*booking));
  simulator().schedule_at(start, [this, id] { start_booked(id); });
}

void LibraReservePolicy::start_booked(workload::JobId id) {
  auto it = deferred_.find(id);
  if (it == deferred_.end()) return;  // defensive: already started
  Booking booking = it->second;
  const sim::SimTime now = simulator().now();

  // The booked window starts now; release the book (execution occupancy is
  // tracked by the live cluster from here on). Trimming settled history
  // keeps each timeline sized to its active window — every later query
  // looks at [now, ...), so the trim never changes a result.
  for (cluster::NodeId node : booking.nodes) {
    book_.node(node).release(booking.start, booking.window_end,
                             booking.share);
    book_.node(node).discard_before(now);
  }

  // Honour the planned placement when the live cluster allows it (always,
  // when estimates are accurate: every execution stays inside its
  // booking). Only overrun predecessors can invalidate it.
  std::vector<cluster::NodeId> nodes;
  double degraded_share = booking.share;
  bool booked_nodes_ok = true;
  for (cluster::NodeId node : booking.nodes) {
    if (!cluster_->is_up(node) ||
        cluster_->committed_share(node) + booking.share >
            1.0 + cluster::TimeSharedCluster::kShareEpsilon) {
      booked_nodes_ok = false;
      break;
    }
  }
  if (booked_nodes_ok) {
    nodes = booking.nodes;
  } else {
    // Overrun fallback: pick nodes that are feasible both live and in the
    // book over the remaining window (avoid stealing pending slots).
    for (cluster::NodeId node = 0;
         node < cluster_->node_count() && nodes.size() < booking.job.procs;
         ++node) {
      const bool live_ok =
          cluster_->is_up(node) &&
          cluster_->committed_share(node) + booking.share <=
              1.0 + cluster::TimeSharedCluster::kShareEpsilon;
      const bool book_ok =
          now >= booking.window_end ||
          book_.node(node).max_committed(now, booking.window_end) +
                  booking.share <=
              1.0 + cluster::TimeSharedCluster::kShareEpsilon;
      if (live_ok && book_ok) nodes.push_back(node);
    }
  }
  if (nodes.size() < booking.job.procs) {
    // Degraded path: take the least-committed nodes and shrink the share.
    std::vector<std::pair<double, cluster::NodeId>> by_load;
    for (cluster::NodeId node = 0; node < cluster_->node_count(); ++node) {
      if (!cluster_->is_up(node)) continue;
      by_load.emplace_back(cluster_->committed_share(node), node);
    }
    std::sort(by_load.begin(), by_load.end());
    nodes.clear();
    double available = 1.0;
    for (std::size_t i = 0; i < booking.job.procs && i < by_load.size();
         ++i) {
      nodes.push_back(by_load[i].second);
      available = std::min(available, 1.0 - by_load[i].first);
    }
    degraded_share = std::min(booking.share, available);
    if (nodes.size() < booking.job.procs ||
        degraded_share < kMinDegradedShare) {
      // Saturated: re-book the remaining window and retry shortly.
      for (cluster::NodeId node : booking.nodes) {
        book_.node(node).book(now + kRetryDelay, booking.window_end + kRetryDelay,
                              booking.share);
      }
      it->second.start = now + kRetryDelay;
      it->second.window_end = booking.window_end + kRetryDelay;
      simulator().schedule_in(kRetryDelay, [this, id] { start_booked(id); });
      return;
    }
  }

  deferred_.erase(it);

  // Track the execution in the book on the nodes actually used, so later
  // plans see the commitment; the unused tail is released at completion
  // (early finishes free capacity, exactly like Libra's share release).
  const double booked_share = degraded_share;
  const sim::SimTime window_end = booking.window_end;
  if (now < window_end) {
    for (cluster::NodeId node : nodes) {
      book_.node(node).book(now, window_end, booked_share);
    }
  }

  if (now < window_end) {
    active_[booking.job.id] =
        Active{nodes, booked_share, window_end};
  }

  host().notify_started(booking.job);
  cluster_->start(
      booking.job, nodes, degraded_share,
      [this, booking](workload::JobId id, sim::SimTime finish) {
        release_active(id, finish);
        host().notify_finished(booking.job, finish);
      });
}

void LibraReservePolicy::release_active(workload::JobId id,
                                        sim::SimTime at) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  if (at < it->second.window_end - sim::kTimeEpsilon) {
    for (cluster::NodeId node : it->second.nodes) {
      book_.node(node).release(at, it->second.window_end,
                               it->second.share);
      book_.node(node).discard_before(at);
    }
  }
  active_.erase(it);
}

void LibraReservePolicy::on_node_down(cluster::NodeId id) {
  book_.set_down(id, true);  // plans stop booking the dead node
  for (const cluster::FailureKill& kill : cluster_->node_down(id)) {
    release_active(kill.job.id, simulator().now());
    host().notify_failed(kill.job, kill.completed_work);
  }
}

void LibraReservePolicy::on_node_up(cluster::NodeId id) {
  book_.set_down(id, false);
  cluster_->node_up(id);
}

bool LibraReservePolicy::terminate(workload::JobId id) {
  if (cluster_->cancel(id)) {
    release_active(id, simulator().now());
    return true;
  }
  auto it = deferred_.find(id);
  if (it == deferred_.end()) return false;
  // Deferred (not yet started): drop the future booking; the scheduled
  // start event finds the id gone and no-ops.
  for (cluster::NodeId node : it->second.nodes) {
    book_.node(node).release(it->second.start, it->second.window_end,
                             it->second.share);
    book_.node(node).discard_before(simulator().now());
  }
  deferred_.erase(it);
  return true;
}

}  // namespace utilrisk::policy
