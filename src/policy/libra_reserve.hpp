// LibraReserve — an extension policy built on the advance-reservation
// substrate (cluster/reservation.hpp): deferred admission for the Libra
// family.
//
// Libra rejects a job outright when no node has spare share *right now*,
// even if capacity frees up well before the job's deadline. LibraReserve
// instead searches for the earliest start time t* <= deadline - estimate
// at which `procs` nodes can guarantee the (now larger) share
//   s(t*) = estimate / (absolute deadline - t*)
// through the job's remaining window, books that reservation, and starts
// the job at t*. The price is a non-zero wait (accepted-but-deferred jobs
// wait for their slot); the reward is a higher acceptance rate at equal
// deadline guarantees — the exact wait/SLA trade the paper's objectives
// are designed to expose.
//
// Reservations are maintained optimistically: a finished job releases the
// tail of its booking; a job that overruns its estimate keeps its
// processor share beyond what the book predicted, so deferred starts
// re-validate against the live cluster and fall back to a degraded share
// (risking a violation, like any non-preemptive system under
// mis-estimation) rather than deadlocking.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/reservation.hpp"
#include "cluster/time_shared.hpp"
#include "policy/policy.hpp"

namespace utilrisk::policy {

class LibraReservePolicy : public Policy {
 public:
  LibraReservePolicy(const PolicyContext& context, PolicyHost& host);

  void on_submit(const workload::Job& job) override;
  [[nodiscard]] std::string_view name() const override {
    return "LibraReserve";
  }
  [[nodiscard]] double delivered_proc_seconds() const override {
    return cluster_->busy_proc_seconds();
  }
  bool terminate(workload::JobId id) override;
  void on_node_down(cluster::NodeId id) override;
  void on_node_up(cluster::NodeId id) override;

  [[nodiscard]] const cluster::TimeSharedCluster& executor() const {
    return *cluster_;
  }
  [[nodiscard]] const cluster::ReservationBook& book() const {
    return book_;
  }

  /// Jobs accepted but not yet started (diagnostics).
  [[nodiscard]] std::size_t deferred_count() const {
    return deferred_.size();
  }

 private:
  struct Booking {
    workload::Job job;
    std::vector<cluster::NodeId> nodes;
    double share = 0.0;
    sim::SimTime start = 0.0;
    sim::SimTime window_end = 0.0;  ///< absolute deadline
  };

  /// Finds (start, nodes, share) for the job, or nullopt to reject.
  [[nodiscard]] std::optional<Booking> plan(const workload::Job& job) const;

  void start_booked(workload::JobId id);
  void release_active(workload::JobId id, sim::SimTime at);

  /// Execution-phase bookkeeping for tail release / termination.
  struct Active {
    std::vector<cluster::NodeId> nodes;
    double share = 0.0;
    sim::SimTime window_end = 0.0;
  };

  std::unique_ptr<cluster::TimeSharedCluster> cluster_;
  cluster::ReservationBook book_;
  std::map<workload::JobId, Booking> deferred_;
  std::map<workload::JobId, Active> active_;
};

}  // namespace utilrisk::policy
