#include "policy/factory.hpp"

#include <stdexcept>
#include <string>

#include "policy/first_reward.hpp"
#include "policy/libra.hpp"
#include "policy/libra_dollar.hpp"
#include "policy/libra_reserve.hpp"
#include "policy/libra_riskd.hpp"
#include "policy/queue_policy.hpp"

namespace utilrisk::policy {

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::FcfsBf: return "FCFS-BF";
    case PolicyKind::SjfBf: return "SJF-BF";
    case PolicyKind::EdfBf: return "EDF-BF";
    case PolicyKind::Libra: return "Libra";
    case PolicyKind::LibraDollar: return "Libra+$";
    case PolicyKind::LibraRiskD: return "LibraRiskD";
    case PolicyKind::FirstReward: return "FirstReward";
    case PolicyKind::LibraReserve: return "LibraReserve";
  }
  return "?";
}

PolicyKind parse_policy_kind(std::string_view name) {
  for (PolicyKind kind : all_policy_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("parse_policy_kind: unknown policy '" +
                              std::string(name) + "'");
}

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::FcfsBf,     PolicyKind::SjfBf,       PolicyKind::EdfBf,
      PolicyKind::Libra,      PolicyKind::LibraDollar, PolicyKind::LibraRiskD,
      PolicyKind::FirstReward, PolicyKind::LibraReserve};
  return kinds;
}

std::vector<PolicyKind> policies_for_model(economy::EconomicModel model) {
  if (model == economy::EconomicModel::CommodityMarket) {
    return {PolicyKind::FcfsBf, PolicyKind::EdfBf, PolicyKind::SjfBf,
            PolicyKind::Libra, PolicyKind::LibraDollar};
  }
  return {PolicyKind::FcfsBf, PolicyKind::EdfBf, PolicyKind::FirstReward,
          PolicyKind::Libra, PolicyKind::LibraRiskD};
}

std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    const PolicyContext& context,
                                    PolicyHost& host) {
  switch (kind) {
    case PolicyKind::FcfsBf:
      return std::make_unique<QueueBackfillPolicy>(context, host,
                                                   QueueOrder::ArrivalTime);
    case PolicyKind::SjfBf:
      return std::make_unique<QueueBackfillPolicy>(
          context, host, QueueOrder::ShortestEstimate);
    case PolicyKind::EdfBf:
      return std::make_unique<QueueBackfillPolicy>(
          context, host, QueueOrder::EarliestDeadline);
    case PolicyKind::Libra:
      return std::make_unique<LibraPolicy>(context, host);
    case PolicyKind::LibraDollar:
      return std::make_unique<LibraDollarPolicy>(context, host);
    case PolicyKind::LibraRiskD:
      return std::make_unique<LibraRiskDPolicy>(context, host);
    case PolicyKind::FirstReward:
      return std::make_unique<FirstRewardPolicy>(context, host);
    case PolicyKind::LibraReserve:
      return std::make_unique<LibraReservePolicy>(context, host);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace utilrisk::policy
