// Queue-based space-shared policies with EASY backfilling: FCFS-BF,
// SJF-BF, EDF-BF (paper §5.2).
//
// Jobs queue until processors free up; the queue is ordered by the
// policy's priority key. EASY backfilling [Lifka'95, Mu'alem &
// Feitelson'01] lets lower-priority jobs jump ahead when — by their
// runtime *estimates* — they cannot delay the head job's shadow
// reservation.
//
// "Generous admission control" (the paper's §5.2 refinement): a queued job
// is rejected only once it provably cannot fulfil its SLA — its deadline
// lapsed in the queue, or starting it right now would already overshoot
// the deadline by its estimate. Jobs are therefore examined at the latest
// possible time, trading wait time for acceptance flexibility.
#pragma once

#include <deque>
#include <memory>

#include "cluster/space_shared.hpp"
#include "policy/policy.hpp"

namespace utilrisk::policy {

/// Queue priority key.
enum class QueueOrder {
  ArrivalTime,       ///< FCFS-BF
  ShortestEstimate,  ///< SJF-BF
  EarliestDeadline,  ///< EDF-BF
};

[[nodiscard]] const char* to_string(QueueOrder order);

/// Admission-control mode. The paper's §5.2 observes that the backfilling
/// policies "without job admission control perform much worse, especially
/// when deadlines of jobs are short" — `None` exists to reproduce that
/// ablation (bench_ablation_admission): every job is eventually run, no
/// matter how hopeless its deadline has become.
enum class AdmissionControl {
  Generous,  ///< reject a queued job once it provably cannot meet its SLA
  None,      ///< run everything (deadline violations pile up)
};

[[nodiscard]] const char* to_string(AdmissionControl admission);

/// FCFS-BF / SJF-BF / EDF-BF, selected by `order`.
class QueueBackfillPolicy : public Policy {
 public:
  QueueBackfillPolicy(const PolicyContext& context, PolicyHost& host,
                      QueueOrder order,
                      AdmissionControl admission = AdmissionControl::Generous);

  void on_submit(const workload::Job& job) override;
  [[nodiscard]] std::string_view name() const override;
  [[nodiscard]] double delivered_proc_seconds() const override;
  bool terminate(workload::JobId id) override;
  void on_node_down(cluster::NodeId id) override;
  void on_node_up(cluster::NodeId id) override;

  [[nodiscard]] QueueOrder order() const { return order_; }
  [[nodiscard]] AdmissionControl admission() const { return admission_; }
  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }
  [[nodiscard]] const cluster::SpaceSharedCluster& executor() const {
    return *cluster_;
  }

 private:
  /// True if `a` precedes `b` under the configured priority.
  [[nodiscard]] bool higher_priority(const workload::Job& a,
                                     const workload::Job& b) const;

  /// Generous admission: can the job still fulfil its SLA if started now?
  [[nodiscard]] bool still_viable(const workload::Job& job) const;

  /// Processors estimated free at time `when`, from current free count plus
  /// running jobs whose estimated completion is <= `when`.
  [[nodiscard]] std::uint32_t estimated_free_at(sim::SimTime when) const;

  void start_job(const workload::Job& job);
  void dispatch();

  QueueOrder order_;
  AdmissionControl admission_;
  std::unique_ptr<cluster::SpaceSharedCluster> cluster_;
  /// Wait queue, kept sorted by higher_priority at all times (the key is
  /// immutable per job and the order is total — id tiebreak — so sorted
  /// insertion produces the exact permutation the old per-dispatch
  /// std::sort did). Deque: the hot path pops the head.
  std::deque<workload::Job> queue_;
  bool dispatching_ = false;
  bool dispatch_again_ = false;
};

}  // namespace utilrisk::policy
