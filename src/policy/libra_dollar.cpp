#include "policy/libra_dollar.hpp"

#include <algorithm>

namespace utilrisk::policy {

economy::Money LibraDollarPolicy::quote(
    const workload::Job& job, const std::vector<cluster::NodeId>& nodes,
    double /*share*/) const {
  // RESMax_j: processor-seconds node j offers over the job's deadline
  // window. RESFree_ij deducts (a) every existing reservation, each of
  // which expires at its own deadline, and (b) the new job's own
  // reservation (its estimate) — per §5.2.
  const sim::SimTime now = simulator().now();
  const double window = job.deadline_duration;
  economy::Money max_price = 0.0;
  for (cluster::NodeId node : nodes) {
    const cluster::NodeView view = cluster().node_view(node);
    double committed = job.estimated_runtime;  // the new job's deduction
    for (const cluster::TaskView& task : view.tasks) {
      const double remaining_window =
          std::clamp(task.deadline - now, 0.0, window);
      committed += task.share * remaining_window;
    }
    const double res_free = window - committed;
    max_price = std::max(max_price, economy::libra_dollar_node_price(
                                        window, res_free, pricing()));
  }
  return economy::libra_dollar_quote(job, max_price);
}

}  // namespace utilrisk::policy
