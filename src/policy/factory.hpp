// Policy registry: the seven policies of Table V plus name round-trips.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "economy/money.hpp"
#include "policy/policy.hpp"

namespace utilrisk::policy {

enum class PolicyKind {
  FcfsBf,
  SjfBf,
  EdfBf,
  Libra,
  LibraDollar,
  LibraRiskD,
  FirstReward,
  /// Extension (not part of the paper's Table V): deferred admission on
  /// the advance-reservation substrate; see policy/libra_reserve.hpp.
  LibraReserve,
};

/// Canonical display name ("FCFS-BF", "Libra+$", ...).
[[nodiscard]] std::string_view to_string(PolicyKind kind);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] PolicyKind parse_policy_kind(std::string_view name);

/// All kinds: the seven of Table V in order, then extensions.
[[nodiscard]] const std::vector<PolicyKind>& all_policy_kinds();

/// The policy set the paper evaluates per economic model (Table V):
/// commodity = {FCFS-BF, SJF-BF, EDF-BF, Libra, Libra+$},
/// bid       = {FCFS-BF, EDF-BF, FirstReward, Libra, LibraRiskD}.
[[nodiscard]] std::vector<PolicyKind> policies_for_model(
    economy::EconomicModel model);

/// Instantiates a policy (and its executor) bound to `host`.
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                                  const PolicyContext& context,
                                                  PolicyHost& host);

}  // namespace utilrisk::policy
