// FirstReward (Irwin, Grit & Chase [12]): risk-aware market-based task
// service for the bid-based model.
//
// Present value of a job with remaining processing time RPT:
//   PV_i = b_i / (1 + discount_rate * RPT_i)
// Opportunity-cost penalty against every other accepted job j:
//   cost_i = sum_{j != i} pr_j * RPT_i          (unbounded penalties)
// Reward (alpha-weighting):
//   reward_i = (alpha * PV_i - (1 - alpha) * cost_i) / RPT_i
// Admission at submission: accept iff
//   slack_i = (PV_i - cost_i) / pr_i >= slack_threshold.
//
// Execution is space-shared without backfilling (the paper extends the
// original single-processor formulation to parallel jobs but explicitly
// does not add backfilling): the accepted queue is kept ordered by reward,
// and the highest-reward job blocks until its processors free up —
// FirstReward willingly delays earlier jobs when a newcomer's reward
// outranks them.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cluster/space_shared.hpp"
#include "policy/policy.hpp"

namespace utilrisk::policy {

class FirstRewardPolicy : public Policy {
 public:
  FirstRewardPolicy(const PolicyContext& context, PolicyHost& host);

  void on_submit(const workload::Job& job) override;
  [[nodiscard]] std::string_view name() const override {
    return "FirstReward";
  }
  [[nodiscard]] double delivered_proc_seconds() const override {
    return cluster_->busy_proc_seconds(simulator().now());
  }
  bool terminate(workload::JobId id) override;
  void on_node_down(cluster::NodeId id) override;
  void on_node_up(cluster::NodeId id) override;

  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }
  [[nodiscard]] const cluster::SpaceSharedCluster& executor() const {
    return *cluster_;
  }

  /// Present value of `job` with the policy's discount rate. Exposed for
  /// tests and the slack-threshold ablation bench.
  [[nodiscard]] economy::Money present_value(const workload::Job& job) const;

  /// Opportunity cost of `job` against the currently accepted set.
  [[nodiscard]] economy::Money opportunity_cost(
      const workload::Job& job) const;

  /// Admission slack in seconds.
  [[nodiscard]] double slack(const workload::Job& job) const;

  /// Scheduling reward.
  [[nodiscard]] double reward(const workload::Job& job) const;

 private:
  void dispatch();

  std::unique_ptr<cluster::SpaceSharedCluster> cluster_;
  std::vector<workload::Job> queue_;  ///< accepted, waiting for processors
  /// Penalty rates of currently *running* accepted jobs (needed to settle
  /// the sum when a running job is terminated instead of completing).
  std::map<workload::JobId, double> running_penalty_;
  /// Sum of penalty rates over accepted-but-unfinished jobs; cost_i is
  /// (total - pr_i when i is in the set) * RPT_i.
  double accepted_penalty_rate_sum_ = 0.0;
};

}  // namespace utilrisk::policy
