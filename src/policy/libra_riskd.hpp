// LibraRiskD (Yeo & Buyya [33]): Libra allocation that only places jobs on
// nodes with zero risk of deadline delay.
//
// Base Libra admits on nominal share capacity alone; it trusts estimates.
// LibraRiskD additionally projects every task on a candidate node forward
// at the rates that would hold after the placement:
//   - any task that has already overrun its estimate makes the node risky
//     (its remaining work is unknowable, so no deadline can be guaranteed);
//   - any task (including the new job) whose projected completion at the
//     post-placement rates exceeds its deadline makes the node risky.
// This is what lets LibraRiskD absorb inaccurate runtime estimates (Set B)
// while matching Libra when estimates are accurate (Set A).
#pragma once

#include "policy/libra.hpp"

namespace utilrisk::policy {

class LibraRiskDPolicy : public LibraPolicy {
 public:
  using LibraPolicy::LibraPolicy;

  [[nodiscard]] std::string_view name() const override {
    return "LibraRiskD";
  }

 protected:
  [[nodiscard]] bool node_eligible(cluster::NodeId node,
                                   const workload::Job& job,
                                   double share) const override;
};

}  // namespace utilrisk::policy
