#include "policy/libra_riskd.hpp"

#include <algorithm>

#include "sim/time.hpp"

namespace utilrisk::policy {

bool LibraRiskDPolicy::node_eligible(cluster::NodeId node,
                                     const workload::Job& job,
                                     double share) const {
  if (!LibraPolicy::node_eligible(node, job, share)) return false;

  const cluster::NodeView view = cluster().node_view(node);
  const double total_after = view.committed_share + share;
  const sim::SimTime now = simulator().now();

  // Project resident tasks at the post-placement proportional rates.
  for (const cluster::TaskView& task : view.tasks) {
    if (task.overran_estimate()) return false;  // unknowable remainder
    const double rate = task.share / std::max(total_after, task.share);
    const double remaining = task.estimated_work - task.done_work;
    if (now + remaining / rate > task.deadline + sim::kTimeEpsilon) {
      return false;
    }
  }

  // Project the new job itself on this node.
  const double new_rate = share / std::max(total_after, share);
  if (now + job.estimated_runtime / new_rate >
      job.absolute_deadline() + sim::kTimeEpsilon) {
    return false;
  }
  return true;
}

}  // namespace utilrisk::policy
