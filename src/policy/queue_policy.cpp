#include "policy/queue_policy.hpp"

#include <algorithm>

#include "sim/logger.hpp"

namespace utilrisk::policy {

const char* to_string(QueueOrder order) {
  switch (order) {
    case QueueOrder::ArrivalTime: return "FCFS-BF";
    case QueueOrder::ShortestEstimate: return "SJF-BF";
    case QueueOrder::EarliestDeadline: return "EDF-BF";
  }
  return "?";
}

const char* to_string(AdmissionControl admission) {
  return admission == AdmissionControl::Generous ? "generous" : "none";
}

QueueBackfillPolicy::QueueBackfillPolicy(const PolicyContext& context,
                                         PolicyHost& host, QueueOrder order,
                                         AdmissionControl admission)
    : Policy(context, host),
      order_(order),
      admission_(admission),
      cluster_(std::make_unique<cluster::SpaceSharedCluster>(
          *context.simulator, context.machine)) {}

std::string_view QueueBackfillPolicy::name() const {
  return to_string(order_);
}

double QueueBackfillPolicy::delivered_proc_seconds() const {
  return cluster_->busy_proc_seconds(simulator().now());
}

bool QueueBackfillPolicy::terminate(workload::JobId id) {
  if (cluster_->cancel(id)) {
    dispatch();  // freed processors can start queued jobs
    return true;
  }
  // Accepted-but-queued jobs can also be terminated (outage abandon path).
  auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [id](const workload::Job& job) { return job.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void QueueBackfillPolicy::on_node_down(cluster::NodeId id) {
  auto kill = cluster_->node_down(id);
  if (kill) host().notify_failed(kill->job, kill->completed_work);
  // Shrunken capacity can invalidate queued SLAs; re-examine the queue.
  dispatch();
}

void QueueBackfillPolicy::on_node_up(cluster::NodeId id) {
  cluster_->node_up(id);
  dispatch();  // repaired capacity can start queued jobs
}

bool QueueBackfillPolicy::higher_priority(const workload::Job& a,
                                          const workload::Job& b) const {
  switch (order_) {
    case QueueOrder::ArrivalTime:
      if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
      break;
    case QueueOrder::ShortestEstimate:
      if (a.estimated_runtime != b.estimated_runtime) {
        return a.estimated_runtime < b.estimated_runtime;
      }
      break;
    case QueueOrder::EarliestDeadline:
      if (a.absolute_deadline() != b.absolute_deadline()) {
        return a.absolute_deadline() < b.absolute_deadline();
      }
      break;
  }
  return a.id < b.id;  // deterministic tiebreak
}

bool QueueBackfillPolicy::still_viable(const workload::Job& job) const {
  if (admission_ == AdmissionControl::None) return true;
  const sim::SimTime now = simulator().now();
  // (ii) deadline already lapsed in the queue, or (i) starting now is
  // predicted (by the estimate) to exceed the deadline.
  return now + job.estimated_runtime <=
         job.absolute_deadline() + sim::kTimeEpsilon;
}

std::uint32_t QueueBackfillPolicy::estimated_free_at(sim::SimTime when) const {
  // Prefix walk of the cluster's finish index; integer sum, so the result
  // is exactly the old full-rescan answer.
  return cluster_->estimated_procs_free_by(when);
}

void QueueBackfillPolicy::on_submit(const workload::Job& job) {
  if (job.procs > cluster_->total_procs()) {
    host().notify_rejected(job);
    return;
  }
  // Commodity-market rule: a job whose expected cost exceeds its budget is
  // rejected (§5.1). The tariff is fixed at submission (SLA negotiation
  // time), so the check at submission equals the charge at start.
  if (model() == economy::EconomicModel::CommodityMarket &&
      economy::flat_quote_at(job, job.submit_time, pricing()) > job.budget) {
    host().notify_rejected(job);
    return;
  }
  queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), job,
                                 [this](const workload::Job& a,
                                        const workload::Job& b) {
                                   return higher_priority(a, b);
                                 }),
                job);
  dispatch();
}

void QueueBackfillPolicy::start_job(const workload::Job& job) {
  const economy::Money quote =
      model() == economy::EconomicModel::CommodityMarket
          ? economy::flat_quote_at(job, job.submit_time, pricing())
          : job.budget;
  host().notify_accepted(job, quote);
  host().notify_started(job);
  cluster_->start(job,
                  [this, job](workload::JobId, sim::SimTime finish) {
                    host().notify_finished(job, finish);
                    dispatch();
                  });
}

void QueueBackfillPolicy::dispatch() {
  if (dispatching_) {
    // Completion callbacks can re-enter while we are mid-scan; fold the
    // request into the current pass.
    dispatch_again_ = true;
    return;
  }
  dispatching_ = true;
  do {
    dispatch_again_ = false;

    // queue_ is maintained in priority order (see the member doc), so no
    // per-dispatch sort is needed.
    //
    // Reject queued jobs that can no longer fulfil their SLA (generous
    // admission control, applied at the latest possible moment).
    // In-place erase: rejections happen in the same (priority) order the
    // old filter-copy produced, without copying the whole queue per
    // dispatch.
    for (std::size_t i = 0; i < queue_.size();) {
      if (still_viable(queue_[i])) {
        ++i;
      } else {
        const workload::Job doomed = queue_[i];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        host().notify_rejected(doomed);
      }
    }

    // Start the head while it fits.
    while (!queue_.empty() && cluster_->can_start(queue_.front().procs)) {
      const workload::Job head = queue_.front();
      queue_.pop_front();
      start_job(head);
    }
    if (queue_.empty()) continue;

    // EASY backfilling against the head's shadow reservation.
    const workload::Job head = queue_.front();
    sim::SimTime shadow = cluster_->estimated_availability(head.procs);
    std::uint32_t extra = estimated_free_at(shadow) >= head.procs
                              ? estimated_free_at(shadow) - head.procs
                              : 0;
    const sim::SimTime now = simulator().now();
    for (std::size_t i = 1; i < queue_.size();) {
      const workload::Job& candidate = queue_[i];
      const bool fits_now = cluster_->can_start(candidate.procs);
      const bool before_shadow =
          now + candidate.estimated_runtime <= shadow + sim::kTimeEpsilon;
      const bool within_extra = candidate.procs <= extra;
      if (fits_now && (before_shadow || within_extra)) {
        start_job(candidate);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        // Restate the reservation against the new cluster state.
        shadow = cluster_->estimated_availability(head.procs);
        extra = estimated_free_at(shadow) >= head.procs
                    ? estimated_free_at(shadow) - head.procs
                    : 0;
      } else {
        ++i;
      }
    }
  } while (dispatch_again_);
  dispatching_ = false;
}

}  // namespace utilrisk::policy
