// Libra+$ (Yeo & Buyya [35]): Libra allocation with an enhanced pricing
// function that is flexible, fair, dynamic and adaptive.
//
// Per-node price for job i on node j:
//   P_ij = alpha * PBase_j + beta * PUtil_ij
//   PUtil_ij = RESMax_j / RESFree_ij * PBase_j
// where RESFree_ij is the node's remaining share capacity over the job's
// deadline window *after* deducting the job's own reservation. The job is
// charged the maximum P_ij across its allocated nodes (revenue
// maximisation, §5.2); as nodes saturate, prices rise above user budgets
// and admission rejects the marginal job — the adaptive overload control
// the paper credits for Libra+$'s profitability lead.
#pragma once

#include "policy/libra.hpp"

namespace utilrisk::policy {

class LibraDollarPolicy : public LibraPolicy {
 public:
  using LibraPolicy::LibraPolicy;

  [[nodiscard]] std::string_view name() const override { return "Libra+$"; }

 protected:
  [[nodiscard]] economy::Money quote(
      const workload::Job& job, const std::vector<cluster::NodeId>& nodes,
      double share) const override;
};

}  // namespace utilrisk::policy
