// Resource-management policy interface.
//
// A policy receives every submitted job and decides whether/when it runs.
// It owns its executor (space- or time-shared) and reports SLA lifecycle
// transitions to the PolicyHost (the commercial computing service), which
// does the accounting. Ground-truth runtimes are only ever consumed by the
// executors; policies decide from estimates, deadlines, budgets and
// penalty rates — exactly the information a real scheduler would have.
#pragma once

#include <stdexcept>
#include <string_view>

#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "economy/money.hpp"
#include "economy/pricing.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace utilrisk::obs {
class MetricsRegistry;
}  // namespace utilrisk::obs

namespace utilrisk::policy {

/// Callbacks from a policy to the service. All calls happen at the current
/// simulation time of the policy's simulator.
class PolicyHost {
 public:
  virtual ~PolicyHost() = default;

  /// SLA accepted. `quoted_cost` is the commodity-model charge fixed at
  /// acceptance (ignored in the bid-based model, where utility is settled
  /// from the completion time).
  virtual void notify_accepted(const workload::Job& job,
                               economy::Money quoted_cost) = 0;

  /// SLA refused by admission control.
  virtual void notify_rejected(const workload::Job& job) = 0;

  /// Job began executing (drives the wait objective: t_start - t_submit).
  virtual void notify_started(const workload::Job& job) = 0;

  /// Job finished (drives SLA/reliability/profitability objectives).
  virtual void notify_finished(const workload::Job& job,
                               sim::SimTime finish_time) = 0;

  /// An accepted job was killed by a node outage. `completed_work` is the
  /// per-processor seconds of progress lost-or-checkpointed before the
  /// crash; the host decides whether to resubmit (bounded retry) or settle
  /// the SLA as FailedOutage. Default: ignore (hosts predating the failure
  /// subsystem keep compiling).
  virtual void notify_failed(const workload::Job& /*job*/,
                             double /*completed_work*/) {}
};

/// Parameters of the FirstReward policy (paper §5.2, after Irwin et al.).
struct FirstRewardParams {
  /// Reward alpha-weighting; the paper's tuned value is 1 (pure earnings).
  double alpha = 1.0;
  /// Discount rate applied per hour of remaining processing time:
  /// PV = b / (1 + rate * RPT_hours). The paper states "1%" without a time
  /// unit; per-hour keeps PV meaningful at trace runtimes (DESIGN.md §3).
  double discount_rate_per_hour = 0.01;
  /// Admission slack threshold in seconds of (PV - cost) / penalty-rate.
  double slack_threshold = 25.0;
};

/// Everything a policy needs at construction.
struct PolicyContext {
  sim::Simulator* simulator = nullptr;
  cluster::MachineConfig machine;
  economy::EconomicModel model = economy::EconomicModel::CommodityMarket;
  economy::PricingParams pricing;
  FirstRewardParams first_reward;
  /// Preemption ablation (§5.2 assumes non-preemptive policies): when
  /// true, the service kills any accepted job still unfinished at its
  /// deadline via Policy::terminate. Default matches the paper.
  bool terminate_at_deadline = false;
  /// Node failure process (disabled by default: mtbf = infinity, so the
  /// injector schedules nothing and every run is bit-identical to the
  /// failure-free build).
  cluster::FailureConfig failure;
  /// Retry/backoff/checkpoint knobs for jobs killed by outages.
  cluster::RecoveryParams recovery;
  /// Optional metrics registry (obs/metrics.hpp). When non-null and
  /// enabled, the kernel and the service publish `sim.*` / `service.*`
  /// instruments here; null keeps every hot path at a single branch.
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace level simulate() applies to the run simulator's Logger.
  sim::LogLevel log_level = sim::LogLevel::Off;
};

/// Abstract policy. Concrete policies: queue_policy.hpp (FCFS/SJF/EDF with
/// EASY backfilling), libra.hpp, libra_dollar.hpp, libra_riskd.hpp,
/// first_reward.hpp. Custom policies subclass this (see
/// examples/custom_policy.cpp).
class Policy {
 public:
  Policy(const PolicyContext& context, PolicyHost& host)
      : context_(context), host_(&host) {
    if (context_.simulator == nullptr) {
      throw std::invalid_argument("Policy: null simulator");
    }
    context_.machine.validate();
  }

  virtual ~Policy() = default;

  Policy(const Policy&) = delete;
  Policy& operator=(const Policy&) = delete;

  /// Invoked at the job's submission time.
  virtual void on_submit(const workload::Job& job) = 0;

  /// Display name, e.g. "SJF-BF".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Processor-seconds of real work delivered by this policy's executor so
  /// far (drives the utilisation figure in SimulationReport).
  [[nodiscard]] virtual double delivered_proc_seconds() const { return 0.0; }

  /// Kills an accepted (queued or running) job, freeing its resources and
  /// suppressing its completion callback (the service records the outcome
  /// separately). Returns false when the job is unknown or termination is
  /// unsupported. Base implementation: unsupported.
  virtual bool terminate(workload::JobId /*id*/) { return false; }

  /// Node `id` just failed: the policy must take it out of its executor
  /// (killing resident jobs via PolicyHost::notify_failed) and stop
  /// considering it for admission. Default: no-op (policies without an
  /// executor, e.g. test doubles, ignore failures).
  virtual void on_node_down(cluster::NodeId /*id*/) {}

  /// Node `id` was repaired and is back in service.
  virtual void on_node_up(cluster::NodeId /*id*/) {}

  [[nodiscard]] const PolicyContext& context() const { return context_; }

 protected:
  [[nodiscard]] sim::Simulator& simulator() const {
    return *context_.simulator;
  }
  [[nodiscard]] PolicyHost& host() const { return *host_; }
  [[nodiscard]] economy::EconomicModel model() const { return context_.model; }
  [[nodiscard]] const economy::PricingParams& pricing() const {
    return context_.pricing;
  }

 private:
  PolicyContext context_;
  PolicyHost* host_;
};

}  // namespace utilrisk::policy
