// Libra (Sherwani et al. [24]): deadline-based proportional processor
// share with immediate job admission control.
//
// At submission, job i requires a share s_i = estimate_i / deadline_i on
// each of procs_i distinct nodes. It is accepted iff procs_i nodes have
// spare share capacity (sum of committed shares + s_i <= 1); otherwise it
// is rejected on the spot (no queue). Node selection is best-fit: the
// nodes left most saturated by the placement are chosen first. Accepted
// jobs start executing immediately on the time-shared executor, so their
// wait time is exactly zero — the paper's ideal wait point.
//
// Libra+$ (libra_dollar.hpp) and LibraRiskD (libra_riskd.hpp) specialise
// the admission hooks below.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/time_shared.hpp"
#include "policy/policy.hpp"

namespace utilrisk::policy {

class LibraPolicy : public Policy {
 public:
  LibraPolicy(const PolicyContext& context, PolicyHost& host);

  void on_submit(const workload::Job& job) override;
  [[nodiscard]] std::string_view name() const override { return "Libra"; }
  [[nodiscard]] double delivered_proc_seconds() const override {
    return cluster_->busy_proc_seconds();
  }
  bool terminate(workload::JobId id) override {
    return cluster_->cancel(id);
  }
  void on_node_down(cluster::NodeId id) override;
  void on_node_up(cluster::NodeId id) override;

  [[nodiscard]] const cluster::TimeSharedCluster& executor() const {
    return *cluster_;
  }

 protected:
  /// Required per-node share for the job: estimate / deadline-duration.
  /// nullopt when the job cannot meet its deadline even on a dedicated
  /// node (share > 1).
  [[nodiscard]] std::optional<double> required_share(
      const workload::Job& job) const;

  /// Hook: may the job (with per-node share `share`) be placed on `node`?
  /// Base Libra checks share capacity only; LibraRiskD adds the
  /// deadline-delay risk projection.
  [[nodiscard]] virtual bool node_eligible(cluster::NodeId node,
                                           const workload::Job& job,
                                           double share) const;

  /// Hook: commodity-model quote for the job on its selected nodes. Base
  /// Libra uses the static incentive pricing; Libra+$ prices dynamically
  /// from node saturation.
  [[nodiscard]] virtual economy::Money quote(
      const workload::Job& job, const std::vector<cluster::NodeId>& nodes,
      double share) const;

  [[nodiscard]] cluster::TimeSharedCluster& cluster() { return *cluster_; }
  [[nodiscard]] const cluster::TimeSharedCluster& cluster() const {
    return *cluster_;
  }

  /// Best-fit selection among eligible nodes: highest committed share
  /// first (saturate nodes to the maximum, §5.2), node id as tiebreak.
  [[nodiscard]] std::vector<cluster::NodeId> select_nodes(
      const workload::Job& job, double share) const;

 private:
  std::unique_ptr<cluster::TimeSharedCluster> cluster_;
};

}  // namespace utilrisk::policy
