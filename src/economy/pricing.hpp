// Pricing functions for the commodity market model (§5.2).
//
// All quotes are computed from the scheduler-visible *estimated* runtime —
// the paper notes that over-estimation inflates commodity charges ("the
// prices charged are computed using the over-estimated runtime
// estimates").
#pragma once

#include "economy/money.hpp"
#include "workload/job.hpp"

namespace utilrisk::economy {

/// Variable (time-of-day) pricing, the alternative §5.1 allows to flat
/// prices: submissions during the peak window pay base_price *
/// peak_multiplier. Disabled (flat) by default — the paper's experiments
/// use flat prices; bench_ablation_variable_pricing explores this knob.
struct VariablePricing {
  bool enabled = false;
  double peak_multiplier = 1.5;
  int peak_start_hour = 9;   ///< inclusive, hours since simulation epoch % 24
  int peak_end_hour = 17;    ///< exclusive
};

/// Knobs for every pricing function, with the paper's experiment values.
struct PricingParams {
  /// Static base price PBase_j, identical on all nodes ($1 per second of
  /// processing time in the experiments).
  Money base_price = 1.0;
  /// Libra static pricing: cost = gamma * tr + delta * tr / d.
  double libra_gamma = 1.0;
  double libra_delta = 1.0;
  /// Libra+$: P_ij = alpha * PBase_j + beta * PUtil_ij.
  double libra_dollar_alpha = 1.0;
  double libra_dollar_beta = 0.3;
  VariablePricing variable;
};

/// Flat pricing used by FCFS-BF / SJF-BF / EDF-BF: cost = estimate * PBase.
[[nodiscard]] Money flat_quote(const workload::Job& job,
                               const PricingParams& params);

/// Time-of-day multiplier at simulated time `when` (1.0 when variable
/// pricing is disabled or off-peak).
[[nodiscard]] double price_multiplier_at(double when,
                                         const PricingParams& params);

/// Flat quote under the tariff in force at `when` (the submission time in
/// the queue policies: the quote is fixed when the SLA is negotiated).
[[nodiscard]] Money flat_quote_at(const workload::Job& job, double when,
                                  const PricingParams& params);

/// Libra's static incentive pricing: gamma * tr + delta * tr / d, where tr
/// is the estimate and d the deadline duration — relaxed deadlines cost
/// less.
[[nodiscard]] Money libra_quote(const workload::Job& job,
                                const PricingParams& params);

/// Libra+$ per-node price:
///   PUtil = RESMax / RESFree * PBase,
///   P     = alpha * PBase + beta * PUtil,
/// where RESMax is the node's total processor-seconds over the new job's
/// deadline window and RESFree the part not committed to existing
/// reservations (each expiring at its own deadline) nor to the new job
/// itself. Saturated nodes (res_free <= 0) price at kUnaffordable, which
/// admission interprets as "reject".
[[nodiscard]] Money libra_dollar_node_price(double res_max, double res_free,
                                            const PricingParams& params);

/// Libra+$ job quote given the highest node price among allocated nodes
/// (the paper maximises revenue by charging the max P_ij).
[[nodiscard]] Money libra_dollar_quote(const workload::Job& job,
                                       Money max_node_price);

}  // namespace utilrisk::economy
