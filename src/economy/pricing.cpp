#include "economy/pricing.hpp"

#include <cmath>
#include <stdexcept>

namespace utilrisk::economy {

Money flat_quote(const workload::Job& job, const PricingParams& params) {
  if (params.base_price < 0.0) {
    throw std::invalid_argument("flat_quote: negative base price");
  }
  return job.estimated_runtime * params.base_price;
}

double price_multiplier_at(double when, const PricingParams& params) {
  const VariablePricing& variable = params.variable;
  if (!variable.enabled) return 1.0;
  if (variable.peak_multiplier <= 0.0) {
    throw std::invalid_argument(
        "price_multiplier_at: non-positive peak multiplier");
  }
  if (variable.peak_start_hour < 0 || variable.peak_start_hour > 23 ||
      variable.peak_end_hour < 0 || variable.peak_end_hour > 24 ||
      variable.peak_start_hour >= variable.peak_end_hour) {
    throw std::invalid_argument(
        "price_multiplier_at: peak window must satisfy 0 <= start < end <= 24");
  }
  const double seconds_into_day = std::fmod(when, 86400.0);
  const int hour =
      static_cast<int>(seconds_into_day >= 0.0 ? seconds_into_day / 3600.0
                                               : 0.0);
  const bool peak = hour >= variable.peak_start_hour &&
                    hour < variable.peak_end_hour;
  return peak ? variable.peak_multiplier : 1.0;
}

Money flat_quote_at(const workload::Job& job, double when,
                    const PricingParams& params) {
  return flat_quote(job, params) * price_multiplier_at(when, params);
}

Money libra_quote(const workload::Job& job, const PricingParams& params) {
  if (job.deadline_duration <= 0.0) {
    throw std::invalid_argument("libra_quote: non-positive deadline");
  }
  const double tr = job.estimated_runtime;
  return params.libra_gamma * tr +
         params.libra_delta * tr / job.deadline_duration;
}

Money libra_dollar_node_price(double res_max, double res_free,
                              const PricingParams& params) {
  if (res_max <= 0.0) {
    throw std::invalid_argument("libra_dollar_node_price: res_max <= 0");
  }
  constexpr double kMinFree = 1e-9;
  if (res_free <= kMinFree) return kUnaffordable;
  const Money util_price = res_max / res_free * params.base_price;
  return params.libra_dollar_alpha * params.base_price +
         params.libra_dollar_beta * util_price;
}

Money libra_dollar_quote(const workload::Job& job, Money max_node_price) {
  return job.estimated_runtime * max_node_price;
}

}  // namespace utilrisk::economy
