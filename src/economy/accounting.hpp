// Revenue ledger of the commercial computing service.
//
// Tracks the sums behind the profitability objective (eqn 4):
//   profitability = sum(utility over accepted jobs)
//                 / sum(budget over submitted jobs) * 100.
#pragma once

#include <cstdint>
#include <vector>

#include "economy/money.hpp"
#include "workload/job.hpp"

namespace utilrisk::economy {

/// One settled charge.
struct LedgerEntry {
  workload::JobId job = 0;
  Money utility = 0.0;
};

class Ledger {
 public:
  /// Every submitted job contributes its budget to the denominator.
  void record_submitted(const workload::Job& job) {
    total_budget_ += job.budget;
    ++submitted_;
  }

  /// Utility realised for an accepted job (quoted cost in the commodity
  /// model; bid minus penalty in the bid-based model — may be negative).
  void record_utility(workload::JobId job, Money utility) {
    total_utility_ += utility;
    entries_.push_back({job, utility});
  }

  [[nodiscard]] Money total_utility() const { return total_utility_; }
  [[nodiscard]] Money total_budget() const { return total_budget_; }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const {
    return entries_;
  }

  /// Profitability percentage (eqn 4); 0 when nothing was submitted.
  [[nodiscard]] double profitability_percent() const {
    return total_budget_ > 0.0 ? total_utility_ / total_budget_ * 100.0 : 0.0;
  }

 private:
  Money total_utility_ = 0.0;
  Money total_budget_ = 0.0;
  std::uint64_t submitted_ = 0;
  std::vector<LedgerEntry> entries_;
};

}  // namespace utilrisk::economy
