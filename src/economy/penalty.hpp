// Bid-based model utility with the linear, unbounded penalty of Fig. 2
// (eqns 9-10).
#pragma once

#include "economy/money.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace utilrisk::economy {

/// Delay dy_i = (tf - tsu) - d (eqn 10), clamped at 0 for on-time jobs.
/// The boundary is epsilon-pinned consistently with the SLA classifier:
/// any delay within sim::kTimeEpsilon of the deadline counts as exactly
/// zero, so a job the service classifies as fulfilled always earns its
/// full budget.
[[nodiscard]] double deadline_delay(const workload::Job& job,
                                    sim::SimTime finish_time);

/// Utility u_i = b_i - dy_i * pr_i (eqn 9). Full budget when on time;
/// decreases linearly past the deadline and goes negative without bound —
/// the provider can owe more than the job was ever worth.
[[nodiscard]] Money bid_utility(const workload::Job& job,
                                sim::SimTime finish_time);

/// Time past submission at which the utility crosses zero (budget fully
/// eroded): d + b/pr. Infinite for zero penalty rates. Used by risk-aware
/// admission heuristics and the Fig. 2 bench.
[[nodiscard]] double breakeven_delay(const workload::Job& job);

}  // namespace utilrisk::economy
