#include "economy/penalty.hpp"

#include <limits>

namespace utilrisk::economy {

double deadline_delay(const workload::Job& job, sim::SimTime finish_time) {
  const double delay =
      (finish_time - job.submit_time) - job.deadline_duration;
  // Pin the eqn-10 boundary: finishing exactly at the deadline is zero
  // delay even when (finish - submit) - d carries floating-point residue,
  // using the same epsilon the SLA classifier (record_finished) applies —
  // a fulfilled SLA can therefore never settle below its full budget.
  return delay <= sim::kTimeEpsilon ? 0.0 : delay;
}

Money bid_utility(const workload::Job& job, sim::SimTime finish_time) {
  return job.budget - deadline_delay(job, finish_time) * job.penalty_rate;
}

double breakeven_delay(const workload::Job& job) {
  if (job.penalty_rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return job.deadline_duration + job.budget / job.penalty_rate;
}

}  // namespace utilrisk::economy
