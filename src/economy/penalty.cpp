#include "economy/penalty.hpp"

#include <algorithm>
#include <limits>

namespace utilrisk::economy {

double deadline_delay(const workload::Job& job, sim::SimTime finish_time) {
  const double delay =
      (finish_time - job.submit_time) - job.deadline_duration;
  return std::max(0.0, delay);
}

Money bid_utility(const workload::Job& job, sim::SimTime finish_time) {
  return job.budget - deadline_delay(job, finish_time) * job.penalty_rate;
}

double breakeven_delay(const workload::Job& job) {
  if (job.penalty_rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return job.deadline_duration + job.budget / job.penalty_rate;
}

}  // namespace utilrisk::economy
