// Monetary quantities.
//
// Utilities can be negative (unbounded penalties in the bid-based model,
// Fig. 2), so Money is a signed double of dollars.
#pragma once

#include <limits>

namespace utilrisk::economy {

using Money = double;

inline constexpr Money kUnaffordable = std::numeric_limits<Money>::infinity();

/// The paper's two economic models (§5.1).
enum class EconomicModel {
  /// The provider sets the price (flat/variable); no deadline penalty —
  /// late jobs are still charged normally. Jobs whose expected cost
  /// exceeds their budget are rejected.
  CommodityMarket,
  /// The user bids a price for on-time completion; the provider pays a
  /// linear, unbounded penalty for finishing past the deadline.
  BidBased,
};

[[nodiscard]] inline const char* to_string(EconomicModel model) {
  return model == EconomicModel::CommodityMarket ? "commodity" : "bid";
}

}  // namespace utilrisk::economy
