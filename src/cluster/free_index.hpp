// Hierarchical-bitmap index over free node ids: O(log64 n) insert/erase
// and find-minimum, replacing the std::set<NodeId> free pool whose
// rebalancing dominated SpaceSharedCluster::start at 10k-100k nodes.
// Placement stays deterministic: min() returns the lowest free id, the
// same node the ordered set used to hand out.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/node.hpp"

namespace utilrisk::cluster {

/// Set of node ids in [0, capacity) supporting lowest-id queries.
///
/// One bit per id at level 0; each higher level summarises 64 words of the
/// level below (bit set iff any child bit is set), so membership updates
/// touch one word per level and min() descends the first-set-bit path from
/// the root: three levels cover 262 144 nodes.
class FreeNodeIndex {
 public:
  explicit FreeNodeIndex(std::uint32_t capacity) { reset(capacity); }

  /// Re-initialises to an empty index over [0, capacity).
  void reset(std::uint32_t capacity) {
    capacity_ = capacity;
    count_ = 0;
    levels_.clear();
    std::size_t words = capacity;
    do {
      words = (words + 63) / 64;
      levels_.emplace_back(words, std::uint64_t{0});
    } while (words > 1);
  }

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] bool contains(NodeId id) const {
    assert(id < capacity_);
    return (levels_[0][id >> 6] >> (id & 63)) & 1u;
  }

  /// Adds `id`. Precondition: not present.
  void insert(NodeId id) {
    assert(!contains(id));
    std::size_t word = id >> 6;
    levels_[0][word] |= std::uint64_t{1} << (id & 63);
    for (std::size_t level = 1; level < levels_.size(); ++level) {
      const std::size_t parent = word >> 6;
      levels_[level][parent] |= std::uint64_t{1} << (word & 63);
      word = parent;
    }
    ++count_;
  }

  /// Removes `id`. Precondition: present.
  void erase(NodeId id) {
    assert(contains(id));
    std::size_t word = id >> 6;
    levels_[0][word] &= ~(std::uint64_t{1} << (id & 63));
    for (std::size_t level = 1; level < levels_.size(); ++level) {
      if (levels_[level - 1][word] != 0) break;
      const std::size_t parent = word >> 6;
      levels_[level][parent] &= ~(std::uint64_t{1} << (word & 63));
      word = parent;
    }
    --count_;
  }

  /// Lowest id present. Precondition: not empty.
  [[nodiscard]] NodeId min() const {
    assert(!empty());
    std::size_t word = 0;
    for (std::size_t level = levels_.size(); level-- > 0;) {
      word = word * 64 +
             static_cast<std::size_t>(std::countr_zero(levels_[level][word]));
    }
    return static_cast<NodeId>(word);
  }

  /// Removes and returns the lowest id present. Precondition: not empty.
  NodeId pop_min() {
    const NodeId id = min();
    erase(id);
    return id;
  }

 private:
  std::uint32_t capacity_ = 0;
  std::uint32_t count_ = 0;
  /// levels_[0] = one bit per id; levels_[k][w] bit b set iff
  /// levels_[k-1][w*64+b] != 0.
  std::vector<std::vector<std::uint64_t>> levels_;
};

}  // namespace utilrisk::cluster
