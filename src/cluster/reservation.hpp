// Advance-reservation bookkeeping for share capacity over future windows.
//
// The Libra+$ pricing function (§5.2) deducts "units of resource committed
// for other confirmed reservations" over a job's deadline window — i.e. the
// underlying system tracks share commitments through time, not just
// instantaneously. This module is that substrate: a per-node piecewise-
// constant timeline of committed share, supporting interval booking,
// release, and max-over-window queries. The LibraReserve extension policy
// (policy/libra_reserve.hpp) builds deferred admission on top of it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/node.hpp"
#include "sim/time.hpp"

namespace utilrisk::cluster {

/// Piecewise-constant committed-share timeline for one node.
///
/// Invariants: committed share is 0 outside booked intervals; bookings
/// add, releases subtract the exact booked amount. Queries are O(log n +
/// segments in range).
class ReservationTimeline {
 public:
  ReservationTimeline();

  /// Adds `share` over [start, end). Throws std::invalid_argument on
  /// degenerate intervals or non-positive share.
  void book(sim::SimTime start, sim::SimTime end, double share);

  /// Subtracts `share` over [start, end) (exact inverse of a book call).
  /// Throws std::logic_error if the release would drive any segment
  /// negative beyond epsilon.
  void release(sim::SimTime start, sim::SimTime end, double share);

  /// Committed share at time t.
  [[nodiscard]] double committed_at(sim::SimTime t) const;

  /// Maximum committed share over [start, end).
  [[nodiscard]] double max_committed(sim::SimTime start,
                                     sim::SimTime end) const;

  /// Earliest time >= `from` at which a booking of `share` over a window
  /// of length `duration` would keep the committed share <= `capacity`
  /// throughout — or kTimeNever if no such time exists before `deadline`
  /// (the window must also *end* by `deadline + duration`... callers pass
  /// the latest admissible start). Scans segment boundaries, so cost is
  /// linear in the number of future segments.
  [[nodiscard]] sim::SimTime earliest_fit(sim::SimTime from,
                                          sim::SimTime latest_start,
                                          double duration, double share,
                                          double capacity = 1.0) const;

  /// Drops all segments ending at or before `t` (compaction; the past is
  /// immutable and never queried).
  void discard_before(sim::SimTime t);

  /// Number of internal breakpoints (diagnostics/tests).
  [[nodiscard]] std::size_t breakpoint_count() const {
    return steps_.size();
  }

  /// True when no breakpoints exist: committed share is identically 0, so
  /// any booking fits immediately (earliest_fit returns `from`) and
  /// max_committed is 0 over every window. Lets hot paths skip the walk.
  [[nodiscard]] bool empty() const { return steps_.empty(); }

 private:
  // steps_[t] = committed share from t (inclusive) until the next key.
  // A sentinel at -infinity is emulated by treating "before first key" as
  // 0-committed; the map always carries the value *changes* flattened
  // into absolute levels.
  std::map<sim::SimTime, double> steps_;
};

/// One timeline per node, plus convenience queries used by admission.
class ReservationBook {
 public:
  explicit ReservationBook(std::uint32_t node_count);

  [[nodiscard]] ReservationTimeline& node(NodeId id);
  [[nodiscard]] const ReservationTimeline& node(NodeId id) const;
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(timelines_.size());
  }

  /// Nodes whose max committed share over [start, end) stays <=
  /// capacity - share (i.e. the booking fits), best-fit ordered: highest
  /// max-committed first, id ascending on ties. Down nodes never fit.
  /// `max_needed` caps the result length (0 = unlimited): callers that
  /// only consume the first k nodes get the identical prefix without the
  /// full list being materialised and sorted — untouched (empty) timelines
  /// all carry level 0.0 and sort by id, so they are appended in id order
  /// without querying them.
  [[nodiscard]] std::vector<NodeId> fitting_nodes(
      sim::SimTime start, sim::SimTime end, double share,
      double capacity = 1.0, std::size_t max_needed = 0) const;

  /// Marks a node out of (or back into) service; fitting_nodes excludes
  /// down nodes so new reservations never book a dead node. Existing
  /// bookings on the node are left to the owning policy to release.
  void set_down(NodeId id, bool down);
  [[nodiscard]] bool is_down(NodeId id) const;

 private:
  std::vector<ReservationTimeline> timelines_;
  std::vector<char> down_;
};

}  // namespace utilrisk::cluster
