#include "cluster/reservation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace utilrisk::cluster {

namespace {
constexpr double kShareSlack = 1e-9;
}

ReservationTimeline::ReservationTimeline() = default;

void ReservationTimeline::book(sim::SimTime start, sim::SimTime end,
                               double share) {
  if (!(start < end)) {
    throw std::invalid_argument("ReservationTimeline::book: start >= end");
  }
  if (share <= 0.0 || !std::isfinite(share)) {
    throw std::invalid_argument(
        "ReservationTimeline::book: share must be positive and finite");
  }
  if (!std::isfinite(start) || !std::isfinite(end)) {
    throw std::invalid_argument(
        "ReservationTimeline::book: non-finite interval");
  }
  // Ensure breakpoints exist at start and end carrying the current level.
  auto ensure = [this](sim::SimTime t) {
    auto it = steps_.lower_bound(t);
    if (it != steps_.end() && it->first == t) return;
    const double level = committed_at(t);
    steps_.emplace(t, level);
  };
  ensure(start);
  ensure(end);
  for (auto it = steps_.lower_bound(start);
       it != steps_.end() && it->first < end; ++it) {
    it->second += share;
  }
}

void ReservationTimeline::release(sim::SimTime start, sim::SimTime end,
                                  double share) {
  if (!(start < end) || share <= 0.0) {
    throw std::invalid_argument("ReservationTimeline::release: bad args");
  }
  auto ensure = [this](sim::SimTime t) {
    auto it = steps_.lower_bound(t);
    if (it != steps_.end() && it->first == t) return;
    steps_.emplace(t, committed_at(t));
  };
  ensure(start);
  ensure(end);
  for (auto it = steps_.lower_bound(start);
       it != steps_.end() && it->first < end; ++it) {
    it->second -= share;
    if (it->second < -kShareSlack) {
      throw std::logic_error(
          "ReservationTimeline::release: releasing more than booked");
    }
    if (it->second < 0.0) it->second = 0.0;
  }
}

double ReservationTimeline::committed_at(sim::SimTime t) const {
  auto it = steps_.upper_bound(t);
  if (it == steps_.begin()) return 0.0;
  return std::prev(it)->second;
}

double ReservationTimeline::max_committed(sim::SimTime start,
                                          sim::SimTime end) const {
  if (!(start < end)) {
    throw std::invalid_argument(
        "ReservationTimeline::max_committed: start >= end");
  }
  double max_level = committed_at(start);
  for (auto it = steps_.upper_bound(start);
       it != steps_.end() && it->first < end; ++it) {
    max_level = std::max(max_level, it->second);
  }
  return max_level;
}

sim::SimTime ReservationTimeline::earliest_fit(sim::SimTime from,
                                               sim::SimTime latest_start,
                                               double duration, double share,
                                               double capacity) const {
  if (duration <= 0.0 || share <= 0.0) {
    throw std::invalid_argument("ReservationTimeline::earliest_fit: bad args");
  }
  if (from > latest_start) return sim::kTimeNever;
  // Candidate starts: `from` and every breakpoint in (from, latest_start].
  auto fits = [&](sim::SimTime start) {
    return max_committed(start, start + duration) + share <=
           capacity + kShareSlack;
  };
  if (fits(from)) return from;
  for (auto it = steps_.upper_bound(from);
       it != steps_.end() && it->first <= latest_start; ++it) {
    if (fits(it->first)) return it->first;
  }
  return sim::kTimeNever;
}

void ReservationTimeline::discard_before(sim::SimTime t) {
  // Keep the last breakpoint <= t (it carries the current level).
  auto it = steps_.upper_bound(t);
  if (it == steps_.begin()) return;
  --it;  // last key <= t
  steps_.erase(steps_.begin(), it);
}

ReservationBook::ReservationBook(std::uint32_t node_count)
    : timelines_(node_count), down_(node_count, 0) {
  if (node_count == 0) {
    throw std::invalid_argument("ReservationBook: node_count == 0");
  }
}

void ReservationBook::set_down(NodeId id, bool down) {
  if (id >= timelines_.size()) {
    throw std::out_of_range("ReservationBook::set_down: bad id");
  }
  down_[id] = down ? 1 : 0;
}

bool ReservationBook::is_down(NodeId id) const {
  if (id >= timelines_.size()) {
    throw std::out_of_range("ReservationBook::is_down: bad id");
  }
  return down_[id] != 0;
}

ReservationTimeline& ReservationBook::node(NodeId id) {
  if (id >= timelines_.size()) {
    throw std::out_of_range("ReservationBook::node: bad id");
  }
  return timelines_[id];
}

const ReservationTimeline& ReservationBook::node(NodeId id) const {
  if (id >= timelines_.size()) {
    throw std::out_of_range("ReservationBook::node: bad id");
  }
  return timelines_[id];
}

std::vector<NodeId> ReservationBook::fitting_nodes(sim::SimTime start,
                                                   sim::SimTime end,
                                                   double share,
                                                   double capacity,
                                                   std::size_t max_needed) const {
  // Zero-level nodes (empty timelines, plus booked ones whose window max
  // is exactly 0.0) all tie in the best-fit order and break ties by id —
  // which is the ascending order this scan visits them in. Keeping them
  // out of the sort means only nodes with live commitments pay for a
  // timeline walk and the O(n log n) ordering step.
  std::vector<std::pair<double, NodeId>> committed;
  std::vector<NodeId> zero_level;
  for (NodeId id = 0; id < timelines_.size(); ++id) {
    if (down_[id] != 0) continue;
    const double max_level = timelines_[id].empty()
                                 ? 0.0
                                 : timelines_[id].max_committed(start, end);
    if (max_level + share <= capacity + kShareSlack) {
      if (max_level == 0.0) {
        zero_level.push_back(id);
      } else {
        committed.emplace_back(max_level, id);
      }
    }
  }
  // Best fit: most committed (least residual) first; id tiebreak.
  std::sort(committed.begin(), committed.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const std::size_t cap = max_needed == 0
                              ? committed.size() + zero_level.size()
                              : max_needed;
  std::vector<NodeId> out;
  out.reserve(std::min(cap, committed.size() + zero_level.size()));
  for (const auto& [level, id] : committed) {
    if (out.size() >= cap) break;
    out.push_back(id);
  }
  for (NodeId id : zero_level) {
    if (out.size() >= cap) break;
    out.push_back(id);
  }
  return out;
}

}  // namespace utilrisk::cluster
