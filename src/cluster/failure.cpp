#include "cluster/failure.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/logger.hpp"

namespace utilrisk::cluster {

const char* to_string(FailureDistribution distribution) {
  return distribution == FailureDistribution::Weibull ? "weibull"
                                                      : "exponential";
}

void FailureConfig::validate() const {
  if (std::isnan(mtbf_seconds) || mtbf_seconds < 0.0) {
    throw std::invalid_argument("FailureConfig: mtbf_seconds < 0");
  }
  if (!std::isfinite(mttr_seconds) || mttr_seconds <= 0.0) {
    throw std::invalid_argument(
        "FailureConfig: mttr_seconds must be positive and finite");
  }
  if (!std::isfinite(weibull_shape) || weibull_shape <= 0.0) {
    throw std::invalid_argument("FailureConfig: weibull_shape <= 0");
  }
  if (std::isnan(correlated_fraction) || correlated_fraction < 0.0 ||
      correlated_fraction > 1.0) {
    throw std::invalid_argument(
        "FailureConfig: correlated_fraction outside [0, 1]");
  }
  if (correlated_size == 0) {
    throw std::invalid_argument("FailureConfig: correlated_size == 0");
  }
}

void RecoveryParams::validate() const {
  if (!std::isfinite(backoff_seconds) || backoff_seconds < 0.0) {
    throw std::invalid_argument("RecoveryParams: backoff_seconds < 0");
  }
  if (!std::isfinite(backoff_factor) || backoff_factor < 1.0) {
    throw std::invalid_argument("RecoveryParams: backoff_factor < 1");
  }
  if (std::isnan(checkpoint_interval) || checkpoint_interval < 0.0) {
    throw std::invalid_argument("RecoveryParams: checkpoint_interval < 0");
  }
}

double RecoveryParams::checkpointed(double completed_work) const {
  if (checkpoint_interval <= 0.0 || completed_work <= 0.0) return 0.0;
  return std::floor(completed_work / checkpoint_interval) *
         checkpoint_interval;
}

double RecoveryParams::backoff_for(std::uint32_t attempt) const {
  return backoff_seconds * std::pow(backoff_factor, attempt);
}

FailureModel::FailureModel(FailureConfig config) : config_(config) {
  config_.validate();
  if (config_.distribution == FailureDistribution::Weibull &&
      config_.enabled()) {
    // Weibull mean = lambda * Gamma(1 + 1/k); solve for lambda.
    weibull_scale_ =
        config_.mtbf_seconds / std::tgamma(1.0 + 1.0 / config_.weibull_shape);
  }
}

double FailureModel::sample_time_to_failure(sim::Rng& rng) const {
  // Inverse-CDF sampling keeps exactly one draw per TTF, so per-node
  // streams stay aligned regardless of distribution.
  const double u = rng.uniform01();
  if (config_.distribution == FailureDistribution::Weibull) {
    return weibull_scale_ *
           std::pow(-std::log1p(-u), 1.0 / config_.weibull_shape);
  }
  return -config_.mtbf_seconds * std::log1p(-u);
}

double FailureModel::sample_time_to_repair(sim::Rng& rng) const {
  return -config_.mttr_seconds * std::log1p(-rng.uniform01());
}

FailureInjector::FailureInjector(sim::Simulator& simulator,
                                 const MachineConfig& machine,
                                 const FailureConfig& config)
    : Entity(simulator, "failure-injector"), model_(config) {
  machine.validate();
  nodes_.resize(machine.node_count);
  // Independent child stream per node, derived in id order: node k's
  // failure schedule is a pure function of (seed, k).
  sim::Rng parent(config.seed);
  for (NodeRuntime& node : nodes_) node.rng = parent.split();
}

void FailureInjector::set_callbacks(NodeCallback on_down, NodeCallback on_up) {
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
}

void FailureInjector::arm() {
  if (armed_ || !model_.config().enabled()) return;
  armed_ = true;
  for (NodeId id = 0; id < nodes_.size(); ++id) schedule_failure(id);
}

void FailureInjector::disarm() {
  if (!armed_) return;
  armed_ = false;
  for (NodeRuntime& node : nodes_) node.pending.cancel();
}

bool FailureInjector::is_down(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("FailureInjector::is_down: bad node");
  }
  return nodes_[id].down;
}

std::uint32_t FailureInjector::down_count() const {
  std::uint32_t count = 0;
  for (const NodeRuntime& node : nodes_) {
    if (node.down) ++count;
  }
  return count;
}

void FailureInjector::schedule_failure(NodeId id) {
  NodeRuntime& node = nodes_[id];
  node.pending = after(model_.sample_time_to_failure(node.rng),
                       [this, id] { fail_group(id); });
}

void FailureInjector::fail_group(NodeId primary) {
  NodeRuntime& first = nodes_[primary];
  if (first.down) return;  // defensive: taken down as a secondary

  const FailureConfig& config = model_.config();
  std::vector<NodeId> group{primary};
  if (config.correlated_fraction > 0.0 &&
      first.rng.bernoulli(config.correlated_fraction)) {
    // Contiguous blast radius starting at the primary, wrapping, skipping
    // nodes that are already down.
    NodeId candidate = primary;
    while (group.size() < config.correlated_size) {
      candidate = static_cast<NodeId>((candidate + 1) % nodes_.size());
      if (candidate == primary) break;  // machine smaller than the group
      if (!nodes_[candidate].down) group.push_back(candidate);
    }
  }
  // The whole group shares one repair (the outage ends when the rack
  // comes back); the repair draw comes from the primary's stream.
  const double ttr = model_.sample_time_to_repair(first.rng);

  for (NodeId id : group) {
    NodeRuntime& node = nodes_[id];
    node.pending.cancel();  // secondaries' own TTF events die with them
    node.down = true;
    ++failures_;
    UTILRISK_ELOG(sim::LogLevel::Debug, "node " << id
                                                              << " down");
    if (on_down_) on_down_(id);
  }
  // A down callback can disarm the injector (all jobs settled); schedule
  // nothing more in that case so the run can drain.
  if (!armed_) return;
  nodes_[primary].pending =
      after(ttr, [this, group] { repair_group(group); });
}

void FailureInjector::repair_group(const std::vector<NodeId>& group) {
  for (NodeId id : group) {
    NodeRuntime& node = nodes_[id];
    node.down = false;
    ++repairs_;
    UTILRISK_ELOG(sim::LogLevel::Debug, "node " << id
                                                              << " up");
    if (on_up_) on_up_(id);
    if (armed_) schedule_failure(id);
  }
}

}  // namespace utilrisk::cluster
