// Compute-node description shared by the cluster executors.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace utilrisk::cluster {

using NodeId = std::uint32_t;

/// Static description of the simulated machine. Default matches the paper's
/// testbed: the IBM SP2 at SDSC — 128 single-processor compute nodes with a
/// SPEC rating of 168. The rating is carried for fidelity/reporting; job
/// runtimes in the trace are already expressed in seconds on this machine,
/// so the executors do not rescale by it.
struct MachineConfig {
  std::uint32_t node_count = 128;
  double spec_rating = 168.0;

  void validate() const {
    if (node_count == 0) {
      throw std::invalid_argument("MachineConfig: node_count == 0");
    }
    if (spec_rating <= 0.0) {
      throw std::invalid_argument("MachineConfig: spec_rating <= 0");
    }
  }
};

}  // namespace utilrisk::cluster
