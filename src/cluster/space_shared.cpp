#include "cluster/space_shared.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/trace_log.hpp"

namespace utilrisk::cluster {

SpaceSharedCluster::SpaceSharedCluster(sim::Simulator& simulator,
                                       MachineConfig machine)
    : Entity(simulator, "space-shared-cluster"), machine_(machine) {
  machine_.validate();
  free_procs_ = machine_.node_count;
}

void SpaceSharedCluster::start(const workload::Job& job,
                               CompletionCallback on_complete) {
  if (job.procs == 0) {
    throw std::logic_error("SpaceSharedCluster::start: job needs 0 procs");
  }
  if (job.procs > free_procs_) {
    throw std::logic_error(
        "SpaceSharedCluster::start: insufficient free processors");
  }
  if (running_.contains(job.id)) {
    throw std::logic_error("SpaceSharedCluster::start: job already running");
  }
  free_procs_ -= job.procs;
  Running entry;
  entry.job = job;
  entry.start_time = now();
  entry.on_complete = std::move(on_complete);
  const workload::JobId id = job.id;
  auto [it, inserted] = running_.emplace(id, std::move(entry));
  UTILRISK_LOG(sim::LogLevel::Debug, now(), name(),
               "start job " << id << " procs=" << job.procs
                            << " run=" << job.actual_runtime);
  it->second.completion_event =
      after(job.actual_runtime, [this, id] { complete(id); });
}

bool SpaceSharedCluster::cancel(workload::JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  it->second.completion_event.cancel();
  free_procs_ += it->second.job.procs;
  delivered_proc_seconds_ +=
      (now() - it->second.start_time) *
      static_cast<double>(it->second.job.procs);
  UTILRISK_LOG(sim::LogLevel::Debug, now(), name(), "cancel job " << id);
  running_.erase(it);
  return true;
}

void SpaceSharedCluster::complete(workload::JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("SpaceSharedCluster::complete: unknown job");
  }
  Running entry = std::move(it->second);
  running_.erase(it);
  free_procs_ += entry.job.procs;
  delivered_proc_seconds_ +=
      entry.job.actual_runtime * static_cast<double>(entry.job.procs);
  UTILRISK_LOG(sim::LogLevel::Debug, now(), name(), "finish job " << id);
  if (entry.on_complete) entry.on_complete(id, now());
}

std::vector<RunningJobInfo> SpaceSharedCluster::running_jobs() const {
  std::vector<RunningJobInfo> out;
  out.reserve(running_.size());
  for (const auto& [id, entry] : running_) {
    RunningJobInfo info;
    info.id = id;
    info.procs = entry.job.procs;
    info.start_time = entry.start_time;
    info.estimated_finish = entry.start_time + entry.job.estimated_runtime;
    info.actual_finish = entry.start_time + entry.job.actual_runtime;
    out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const RunningJobInfo& a, const RunningJobInfo& b) {
              if (a.estimated_finish != b.estimated_finish) {
                return a.estimated_finish < b.estimated_finish;
              }
              return a.id < b.id;
            });
  return out;
}

sim::SimTime SpaceSharedCluster::estimated_availability(
    std::uint32_t procs) const {
  if (procs > machine_.node_count) return sim::kTimeNever;
  if (procs <= free_procs_) return now();
  std::uint32_t available = free_procs_;
  for (const auto& info : running_jobs()) {  // sorted by estimated finish
    available += info.procs;
    if (available >= procs) {
      // Overrun jobs have estimated_finish < now; they "should" already
      // have ended, so the scheduler's best guess is "available now".
      return std::max(info.estimated_finish, now());
    }
  }
  return sim::kTimeNever;  // unreachable: all jobs finish eventually
}

double SpaceSharedCluster::busy_proc_seconds(sim::SimTime at) const {
  double total = delivered_proc_seconds_;
  for (const auto& [id, entry] : running_) {
    total += (at - entry.start_time) * static_cast<double>(entry.job.procs);
  }
  return total;
}

}  // namespace utilrisk::cluster
