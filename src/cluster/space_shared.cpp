#include "cluster/space_shared.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/logger.hpp"

namespace utilrisk::cluster {

SpaceSharedCluster::SpaceSharedCluster(sim::Simulator& simulator,
                                       MachineConfig machine)
    : Entity(simulator, "space-shared-cluster"),
      machine_(machine),
      free_nodes_(machine.node_count) {
  machine_.validate();
  free_procs_ = machine_.node_count;
  down_.assign(machine_.node_count, 0);
  occupant_.assign(machine_.node_count, kNoOccupant);
  for (NodeId id = 0; id < machine_.node_count; ++id) free_nodes_.insert(id);
}

void SpaceSharedCluster::start(const workload::Job& job,
                               CompletionCallback on_complete) {
  if (job.procs == 0) {
    throw std::logic_error("SpaceSharedCluster::start: job needs 0 procs");
  }
  if (job.procs > free_procs_) {
    throw std::logic_error(
        "SpaceSharedCluster::start: insufficient free processors");
  }
  if (running_.contains(job.id)) {
    throw std::logic_error("SpaceSharedCluster::start: job already running");
  }
  free_procs_ -= job.procs;
  Running entry;
  entry.job = job;
  entry.start_time = now();
  entry.estimated_finish = entry.start_time + job.estimated_runtime;
  entry.on_complete = std::move(on_complete);
  // Deterministic placement: lowest free node ids first.
  entry.nodes.reserve(job.procs);
  for (std::uint32_t i = 0; i < job.procs; ++i) {
    const NodeId node = free_nodes_.pop_min();
    occupant_[node] = job.id;
    entry.nodes.push_back(node);
  }
  const workload::JobId id = job.id;
  FinishEntry index_entry;
  index_entry.estimated_finish = entry.estimated_finish;
  index_entry.id = id;
  index_entry.procs = job.procs;
  index_entry.start_time = entry.start_time;
  index_entry.actual_finish = entry.start_time + job.actual_runtime;
  finish_index_.insert(index_entry);
  auto [it, inserted] = running_.emplace(id, std::move(entry));
  UTILRISK_ELOG(sim::LogLevel::Debug, "start job " << id << " procs=" << job.procs
                            << " run=" << job.actual_runtime);
  it->second.completion_event =
      after(job.actual_runtime, [this, id] { complete(id); });
}

void SpaceSharedCluster::erase_finish_entry(const Running& entry,
                                            workload::JobId id) {
  FinishEntry key;
  key.estimated_finish = entry.estimated_finish;
  key.id = id;
  finish_index_.erase(key);
}

void SpaceSharedCluster::release_nodes(const Running& entry) {
  for (NodeId node : entry.nodes) {
    occupant_[node] = kNoOccupant;
    if (down_[node] == 0) {
      free_nodes_.insert(node);
      ++free_procs_;
    }
  }
}

bool SpaceSharedCluster::cancel(workload::JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  it->second.completion_event.cancel();
  release_nodes(it->second);
  erase_finish_entry(it->second, id);
  delivered_proc_seconds_ +=
      (now() - it->second.start_time) *
      static_cast<double>(it->second.job.procs);
  UTILRISK_ELOG(sim::LogLevel::Debug, "cancel job " << id);
  running_.erase(it);
  return true;
}

std::optional<FailureKill> SpaceSharedCluster::node_down(NodeId id) {
  if (id >= machine_.node_count) {
    throw std::out_of_range("SpaceSharedCluster::node_down: bad node");
  }
  if (down_[id] != 0) {
    throw std::logic_error("SpaceSharedCluster::node_down: node already down");
  }
  down_[id] = 1;
  ++down_count_;
  if (occupant_[id] == kNoOccupant) {
    free_nodes_.erase(id);
    --free_procs_;
    return std::nullopt;
  }
  // The node was running a task: the whole (rigid, non-preemptible) job
  // dies with it. Its other nodes return to the free pool.
  auto it = running_.find(occupant_[id]);
  if (it == running_.end()) {
    throw std::logic_error("SpaceSharedCluster::node_down: orphan occupant");
  }
  it->second.completion_event.cancel();
  FailureKill kill;
  kill.job = it->second.job;
  kill.completed_work = now() - it->second.start_time;
  release_nodes(it->second);
  erase_finish_entry(it->second, it->first);
  delivered_proc_seconds_ +=
      kill.completed_work * static_cast<double>(kill.job.procs);
  UTILRISK_ELOG(sim::LogLevel::Debug, "node " << id << " down kills job " << kill.job.id);
  running_.erase(it);
  return kill;
}

void SpaceSharedCluster::node_up(NodeId id) {
  if (id >= machine_.node_count) {
    throw std::out_of_range("SpaceSharedCluster::node_up: bad node");
  }
  if (down_[id] == 0) {
    throw std::logic_error("SpaceSharedCluster::node_up: node is not down");
  }
  down_[id] = 0;
  --down_count_;
  free_nodes_.insert(id);
  ++free_procs_;
}

bool SpaceSharedCluster::is_up(NodeId id) const {
  if (id >= machine_.node_count) {
    throw std::out_of_range("SpaceSharedCluster::is_up: bad node");
  }
  return down_[id] == 0;
}

void SpaceSharedCluster::complete(workload::JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("SpaceSharedCluster::complete: unknown job");
  }
  Running entry = std::move(it->second);
  running_.erase(it);
  release_nodes(entry);
  erase_finish_entry(entry, id);
  delivered_proc_seconds_ +=
      entry.job.actual_runtime * static_cast<double>(entry.job.procs);
  UTILRISK_ELOG(sim::LogLevel::Debug, "finish job " << id);
  if (entry.on_complete) entry.on_complete(id, now());
}

std::vector<RunningJobInfo> SpaceSharedCluster::running_jobs() const {
  std::vector<RunningJobInfo> out;
  out.reserve(finish_index_.size());
  for (const auto& entry : finish_index_) {  // already (finish, id) ordered
    RunningJobInfo info;
    info.id = entry.id;
    info.procs = entry.procs;
    info.start_time = entry.start_time;
    info.estimated_finish = entry.estimated_finish;
    info.actual_finish = entry.actual_finish;
    out.push_back(info);
  }
  return out;
}

sim::SimTime SpaceSharedCluster::estimated_availability(
    std::uint32_t procs) const {
  if (procs > up_procs()) return sim::kTimeNever;
  if (procs <= free_procs_) return now();
  std::uint32_t available = free_procs_;
  for (const auto& entry : finish_index_) {  // sorted by estimated finish
    available += entry.procs;
    if (available >= procs) {
      // Overrun jobs have estimated_finish < now; they "should" already
      // have ended, so the scheduler's best guess is "available now".
      return std::max(entry.estimated_finish, now());
    }
  }
  return sim::kTimeNever;  // unreachable: all jobs finish eventually
}

std::uint32_t SpaceSharedCluster::estimated_procs_free_by(
    sim::SimTime when) const {
  std::uint32_t available = free_procs_;
  for (const auto& entry : finish_index_) {
    // (finish, id) order makes the predicate a prefix: stop at the first
    // job estimated to outlast `when`.
    if (entry.estimated_finish > when + sim::kTimeEpsilon) break;
    available += entry.procs;
  }
  return std::min(available, total_procs());
}

double SpaceSharedCluster::busy_proc_seconds(sim::SimTime at) const {
  double total = delivered_proc_seconds_;
  for (const auto& [id, entry] : running_) {
    total += (at - entry.start_time) * static_cast<double>(entry.job.procs);
  }
  return total;
}

}  // namespace utilrisk::cluster
