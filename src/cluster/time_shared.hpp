// Time-shared proportional-share cluster executor — the execution model of
// the Libra family (paper §5.2).
//
// Each job admitted with share s = estimate / deadline-duration places one
// task on each of `procs` distinct nodes. A node runs its tasks
// concurrently; admission keeps the committed share sum <= 1. Execution is
// work-conserving: leftover capacity is redistributed proportionally, so
// the instantaneous rate of task i on a node is
//     rate_i = share_i / sum_j share_j   (>= share_i).
// A task finishes when its integrated rate reaches the job's *actual*
// runtime; the job finishes when its last task does. Jobs are
// non-preemptible: shares stay committed until task completion, which is
// exactly how under-estimated jobs poison later admissions (Set B).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "sim/entity.hpp"
#include "workload/job.hpp"

namespace utilrisk::cluster {

/// Read-only view of a task for admission logic (Libra best-fit,
/// LibraRiskD risk projection) and tests.
struct TaskView {
  workload::JobId job = 0;
  double share = 0.0;
  /// Scheduler-visible work target (estimated runtime, seconds of
  /// dedicated-processor time).
  double estimated_work = 0.0;
  /// Work integrated so far.
  double done_work = 0.0;
  /// Absolute deadline of the owning job.
  sim::SimTime deadline = 0.0;
  /// True once done_work exceeds estimated_work while the task still runs:
  /// the estimate was too small, remaining work is unknowable to the
  /// scheduler (LibraRiskD's risk signal).
  [[nodiscard]] bool overran_estimate() const {
    return done_work > estimated_work + 1e-9;
  }
};

/// Read-only per-node view, integrated up to "now".
struct NodeView {
  NodeId node = 0;
  double committed_share = 0.0;
  std::vector<TaskView> tasks;
};

/// Proportional-share executor.
class TimeSharedCluster : public sim::Entity {
 public:
  using CompletionCallback =
      std::function<void(workload::JobId, sim::SimTime)>;

  TimeSharedCluster(sim::Simulator& simulator, MachineConfig machine);

  [[nodiscard]] std::uint32_t node_count() const {
    return machine_.node_count;
  }

  /// Committed share on `node` (sum of task shares), without integration —
  /// shares only change at start/completion events.
  [[nodiscard]] double committed_share(NodeId node) const;

  /// Integrated view of `node` at the current simulation time.
  [[nodiscard]] NodeView node_view(NodeId node) const;

  /// Starts `job` with per-node share `share` on the given distinct nodes
  /// (exactly job.procs of them). Throws std::logic_error on violated
  /// preconditions (duplicate nodes, share overflow past 1 + epsilon,
  /// wrong node count). Admission decisions belong to the policy; the
  /// executor only enforces physical feasibility.
  void start(const workload::Job& job, const std::vector<NodeId>& nodes,
             double share, CompletionCallback on_complete);

  /// Terminates a running job (deadline enforcement / preemption
  /// ablation): removes all its tasks, frees their shares, re-plans the
  /// affected nodes, and does NOT invoke the completion callback. Returns
  /// false if the job is not running.
  bool cancel(workload::JobId id);

  /// Takes `id` out of service: every job with a task on it is killed
  /// entirely (rigid jobs lose all tasks when one dies), their shares are
  /// released on all nodes, and the kills are returned with each job's
  /// completed work (the minimum integrated work across its tasks — a
  /// restart must redo the slowest task's remainder). A down node accepts
  /// no new tasks and its committed share is 0, so Sigma-share accounting
  /// excludes it. Throws std::logic_error if the node is already down.
  std::vector<FailureKill> node_down(NodeId id);

  /// Returns a repaired node to service. Throws std::logic_error if the
  /// node is not down.
  void node_up(NodeId id);

  [[nodiscard]] bool is_up(NodeId id) const;
  [[nodiscard]] std::uint32_t down_count() const { return down_count_; }

  /// Number of jobs with at least one unfinished task.
  [[nodiscard]] std::size_t running_count() const { return jobs_.size(); }

  /// Processor-seconds delivered so far across all nodes. Walks only
  /// nodes that have ever hosted a task (identical sum: untouched nodes
  /// contribute exactly 0.0).
  [[nodiscard]] double busy_proc_seconds() const;

  /// Visits up nodes in best-fit order — committed share descending, node
  /// id ascending, the exact order Libra's node selection sorts into —
  /// until `visit` returns false. Nodes whose committed share exceeds
  /// `max_committed_bound` are skipped wholesale; callers pass a
  /// conservative bound (strictly above their true eligibility cutoff)
  /// and re-check the exact predicate per node, so the skip can never
  /// change which nodes are chosen. Template visitor (not std::function):
  /// this sits on the admission hot path.
  template <typename Visit>
  void for_each_up_node_best_fit(double max_committed_bound,
                                 Visit&& visit) const {
    // Entries above the bound sort strictly before this probe; entries at
    // exactly the bound are still visited (callers pass a conservative
    // bound, so the boundary is never load-bearing).
    ShareEntry probe;
    probe.committed = max_committed_bound;
    probe.id = 0;
    for (auto it = share_index_.lower_bound(probe);
         it != share_index_.end(); ++it) {
      if (!visit(it->id, it->committed)) return;
    }
  }

  /// Share-capacity headroom tolerance: admission comparisons use this to
  /// absorb floating-point accumulation.
  static constexpr double kShareEpsilon = 1e-9;

 private:
  struct Task {
    workload::JobId job = 0;
    double share = 0.0;
    double estimated_work = 0.0;
    double actual_work = 0.0;  ///< ground truth completion target
    double done = 0.0;
    sim::SimTime deadline = 0.0;
  };

  struct NodeState {
    std::vector<Task> tasks;
    double total_share = 0.0;
    sim::SimTime last_integrated = 0.0;
    sim::EventHandle next_completion;
    double delivered = 0.0;  ///< proc-seconds completed on this node
  };

  struct JobState {
    workload::Job job;  ///< kept so an outage kill can report/resubmit it
    std::uint32_t remaining_tasks = 0;
    CompletionCallback on_complete;
    /// Hosting nodes, ascending — job teardown visits exactly these
    /// instead of rescanning the whole cluster.
    std::vector<NodeId> nodes;
  };

  /// Share-index entry ordered best-fit first: committed share
  /// descending, node id ascending (Libra's selection order).
  struct ShareEntry {
    double committed = 0.0;
    NodeId id = 0;

    bool operator<(const ShareEntry& other) const {
      if (committed != other.committed) return committed > other.committed;
      return id < other.id;
    }
  };

  void integrate(NodeState& node);
  void reschedule(NodeState& node, NodeId id);
  void handle_node_event(NodeId id);
  void task_finished(workload::JobId job);
  /// Integrates every node in `hosting` (ascending), removes `job`'s
  /// tasks, and returns the minimum done work across them (0 when the job
  /// hosts no tasks).
  double remove_job_tasks(workload::JobId job,
                          const std::vector<NodeId>& hosting);
  /// Removes/re-adds node `id`'s share-index entry keyed by its *current*
  /// total_share; call erase before mutating the share, insert after.
  /// Both no-op for down nodes.
  void share_index_erase(NodeId id);
  void share_index_insert(NodeId id);

  MachineConfig machine_;
  std::vector<NodeState> nodes_;
  std::vector<char> down_;
  std::uint32_t down_count_ = 0;
  /// Never iterated (find/emplace/erase only), so hashed lookup is safe:
  /// no observable order depends on this container.
  std::unordered_map<workload::JobId, JobState> jobs_;
  /// Up nodes keyed by (committed share desc, id asc); maintained around
  /// every total_share mutation so best-fit selection needs no full scan.
  std::set<ShareEntry> share_index_;
  /// Each up node's entry in share_index_, so the erase half of an update
  /// skips the O(log n) key search (set iterators stay valid across other
  /// inserts/erases). Valid iff the node is up.
  std::vector<std::set<ShareEntry>::iterator> share_iters_;
  /// Nodes that have ever hosted a task; the only ones that can carry a
  /// non-zero delivered term in busy_proc_seconds().
  std::set<NodeId> ever_tasked_;
  /// Membership mirror of ever_tasked_, so the hot start path pays the
  /// set insert only on a node's first-ever task.
  std::vector<char> ever_tasked_flag_;
};

}  // namespace utilrisk::cluster
