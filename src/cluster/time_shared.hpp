// Time-shared proportional-share cluster executor — the execution model of
// the Libra family (paper §5.2).
//
// Each job admitted with share s = estimate / deadline-duration places one
// task on each of `procs` distinct nodes. A node runs its tasks
// concurrently; admission keeps the committed share sum <= 1. Execution is
// work-conserving: leftover capacity is redistributed proportionally, so
// the instantaneous rate of task i on a node is
//     rate_i = share_i / sum_j share_j   (>= share_i).
// A task finishes when its integrated rate reaches the job's *actual*
// runtime; the job finishes when its last task does. Jobs are
// non-preemptible: shares stay committed until task completion, which is
// exactly how under-estimated jobs poison later admissions (Set B).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "sim/entity.hpp"
#include "workload/job.hpp"

namespace utilrisk::cluster {

/// Read-only view of a task for admission logic (Libra best-fit,
/// LibraRiskD risk projection) and tests.
struct TaskView {
  workload::JobId job = 0;
  double share = 0.0;
  /// Scheduler-visible work target (estimated runtime, seconds of
  /// dedicated-processor time).
  double estimated_work = 0.0;
  /// Work integrated so far.
  double done_work = 0.0;
  /// Absolute deadline of the owning job.
  sim::SimTime deadline = 0.0;
  /// True once done_work exceeds estimated_work while the task still runs:
  /// the estimate was too small, remaining work is unknowable to the
  /// scheduler (LibraRiskD's risk signal).
  [[nodiscard]] bool overran_estimate() const {
    return done_work > estimated_work + 1e-9;
  }
};

/// Read-only per-node view, integrated up to "now".
struct NodeView {
  NodeId node = 0;
  double committed_share = 0.0;
  std::vector<TaskView> tasks;
};

/// Proportional-share executor.
class TimeSharedCluster : public sim::Entity {
 public:
  using CompletionCallback =
      std::function<void(workload::JobId, sim::SimTime)>;

  TimeSharedCluster(sim::Simulator& simulator, MachineConfig machine);

  [[nodiscard]] std::uint32_t node_count() const {
    return machine_.node_count;
  }

  /// Committed share on `node` (sum of task shares), without integration —
  /// shares only change at start/completion events.
  [[nodiscard]] double committed_share(NodeId node) const;

  /// Integrated view of `node` at the current simulation time.
  [[nodiscard]] NodeView node_view(NodeId node) const;

  /// Starts `job` with per-node share `share` on the given distinct nodes
  /// (exactly job.procs of them). Throws std::logic_error on violated
  /// preconditions (duplicate nodes, share overflow past 1 + epsilon,
  /// wrong node count). Admission decisions belong to the policy; the
  /// executor only enforces physical feasibility.
  void start(const workload::Job& job, const std::vector<NodeId>& nodes,
             double share, CompletionCallback on_complete);

  /// Terminates a running job (deadline enforcement / preemption
  /// ablation): removes all its tasks, frees their shares, re-plans the
  /// affected nodes, and does NOT invoke the completion callback. Returns
  /// false if the job is not running.
  bool cancel(workload::JobId id);

  /// Takes `id` out of service: every job with a task on it is killed
  /// entirely (rigid jobs lose all tasks when one dies), their shares are
  /// released on all nodes, and the kills are returned with each job's
  /// completed work (the minimum integrated work across its tasks — a
  /// restart must redo the slowest task's remainder). A down node accepts
  /// no new tasks and its committed share is 0, so Sigma-share accounting
  /// excludes it. Throws std::logic_error if the node is already down.
  std::vector<FailureKill> node_down(NodeId id);

  /// Returns a repaired node to service. Throws std::logic_error if the
  /// node is not down.
  void node_up(NodeId id);

  [[nodiscard]] bool is_up(NodeId id) const;
  [[nodiscard]] std::uint32_t down_count() const { return down_count_; }

  /// Number of jobs with at least one unfinished task.
  [[nodiscard]] std::size_t running_count() const { return jobs_.size(); }

  /// Processor-seconds delivered so far across all nodes.
  [[nodiscard]] double busy_proc_seconds() const;

  /// Share-capacity headroom tolerance: admission comparisons use this to
  /// absorb floating-point accumulation.
  static constexpr double kShareEpsilon = 1e-9;

 private:
  struct Task {
    workload::JobId job = 0;
    double share = 0.0;
    double estimated_work = 0.0;
    double actual_work = 0.0;  ///< ground truth completion target
    double done = 0.0;
    sim::SimTime deadline = 0.0;
  };

  struct NodeState {
    std::vector<Task> tasks;
    double total_share = 0.0;
    sim::SimTime last_integrated = 0.0;
    sim::EventHandle next_completion;
    double delivered = 0.0;  ///< proc-seconds completed on this node
  };

  struct JobState {
    workload::Job job;  ///< kept so an outage kill can report/resubmit it
    std::uint32_t remaining_tasks = 0;
    CompletionCallback on_complete;
  };

  void integrate(NodeState& node);
  void reschedule(NodeState& node, NodeId id);
  void handle_node_event(NodeId id);
  void task_finished(workload::JobId job);
  /// Integrates every node hosting `job`, removes its tasks, and returns
  /// the minimum done work across them (0 when the job hosts no tasks).
  double remove_job_tasks(workload::JobId job);

  MachineConfig machine_;
  std::vector<NodeState> nodes_;
  std::vector<char> down_;
  std::uint32_t down_count_ = 0;
  std::map<workload::JobId, JobState> jobs_;
};

}  // namespace utilrisk::cluster
