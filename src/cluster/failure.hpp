// Fault injection for the cluster substrate (dependability layer).
//
// A seeded FailureModel draws node time-to-failure (exponential or
// Weibull around an MTBF) and time-to-repair (exponential around an
// MTTR), after the MTBF/MTTR-driven dependability simulation of Dobre et
// al. The FailureInjector is a sim entity that turns those draws into
// node_down/node_up events against the kernel; the computing service
// forwards them to the active policy, whose executor kills resident
// tasks (non-preemptive semantics) or lets the service restart them from
// the last checkpoint (RecoveryParams, after Daly's periodic-checkpoint
// model).
//
// Determinism: every node owns an independent child stream split from
// the config seed, so the failure schedule of node k never depends on
// how many draws other nodes consumed. With MTBF = infinity (the
// default) the injector is inert — arm() schedules nothing and every
// executor takes its pre-failure fast path, keeping legacy runs
// bit-identical.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "cluster/node.hpp"
#include "sim/entity.hpp"
#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace utilrisk::cluster {

/// A job killed by a node outage, as reported by an executor's
/// node_down(): the job (the attempt's SLA terms, needed to resubmit)
/// plus the per-processor seconds of work it completed before the crash
/// (feeds the checkpoint-restart credit).
struct FailureKill {
  workload::Job job;
  double completed_work = 0.0;
};

enum class FailureDistribution : std::uint8_t { Exponential, Weibull };

[[nodiscard]] const char* to_string(FailureDistribution distribution);

/// Failure-injection knobs. The default (infinite MTBF) disables the
/// subsystem entirely.
struct FailureConfig {
  /// Per-node mean time between failures, seconds. Non-finite or
  /// non-positive disables injection.
  double mtbf_seconds = std::numeric_limits<double>::infinity();
  /// Mean time to repair a failed node, seconds (exponential).
  double mttr_seconds = 3600.0;
  FailureDistribution distribution = FailureDistribution::Exponential;
  /// Weibull shape k (only with FailureDistribution::Weibull); k > 1
  /// models wear-out, k < 1 infant mortality.
  double weibull_shape = 1.5;
  /// Seed of the injector's RNG tree (independent of trace/QoS seeds).
  std::uint64_t seed = 64023;
  /// Probability that a failure is a correlated outage taking down a
  /// contiguous group of nodes (switch/rack-style blast radius).
  double correlated_fraction = 0.0;
  /// Nodes per correlated outage (including the primary).
  std::uint32_t correlated_size = 4;

  /// True when injection is active: finite, positive MTBF.
  [[nodiscard]] bool enabled() const {
    return std::isfinite(mtbf_seconds) && mtbf_seconds > 0.0;
  }

  /// Throws std::invalid_argument on nonsensical knobs.
  void validate() const;
};

/// Recovery knobs for jobs killed by an outage, applied by the service
/// layer (the bounded-retry/backoff resubmission policy).
struct RecoveryParams {
  /// Maximum resubmissions of a job whose attempt was killed by an
  /// outage; 0 (default) fails the job permanently on first kill.
  std::uint32_t retry_limit = 0;
  /// Delay before the first resubmission, seconds.
  double backoff_seconds = 60.0;
  /// Multiplier applied to the backoff per prior attempt (>= 1).
  double backoff_factor = 2.0;
  /// Checkpoint interval tau, seconds; 0 = no checkpointing (a restart
  /// loses all progress). With tau > 0 a restart resumes from the last
  /// completed multiple of tau.
  double checkpoint_interval = 0.0;

  void validate() const;

  /// Work credited to a restart after completing `completed_work`
  /// seconds: the last checkpoint boundary at or below it.
  [[nodiscard]] double checkpointed(double completed_work) const;

  /// Backoff before attempt number `attempt` (0-based).
  [[nodiscard]] double backoff_for(std::uint32_t attempt) const;
};

/// Seeded sampling of time-to-failure / time-to-repair.
class FailureModel {
 public:
  explicit FailureModel(FailureConfig config);

  [[nodiscard]] const FailureConfig& config() const { return config_; }

  /// Draws a time-to-failure from `rng` with mean mtbf_seconds.
  [[nodiscard]] double sample_time_to_failure(sim::Rng& rng) const;

  /// Draws a time-to-repair from `rng` with mean mttr_seconds.
  [[nodiscard]] double sample_time_to_repair(sim::Rng& rng) const;

 private:
  FailureConfig config_;
  /// Weibull scale lambda chosen so the mean equals mtbf_seconds.
  double weibull_scale_ = 0.0;
};

/// Schedules node_down/node_up events against the kernel. The owner (the
/// computing service) wires the callbacks to the active policy.
class FailureInjector : public sim::Entity {
 public:
  using NodeCallback = std::function<void(NodeId)>;

  FailureInjector(sim::Simulator& simulator, const MachineConfig& machine,
                  const FailureConfig& config);

  /// Installs the down/up callbacks (must be set before arm()).
  void set_callbacks(NodeCallback on_down, NodeCallback on_up);

  /// Starts injection: schedules the first time-to-failure of every node.
  /// A no-op when the config is disabled or the injector is already
  /// armed, so the disabled path adds zero events to the schedule.
  void arm();

  /// Cancels every pending failure/repair event. The service calls this
  /// once all submitted jobs reached a terminal outcome, so run() can
  /// drain instead of injecting failures forever.
  void disarm();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool is_down(NodeId id) const;
  [[nodiscard]] std::uint32_t down_count() const;
  [[nodiscard]] std::uint64_t failures_injected() const { return failures_; }
  [[nodiscard]] std::uint64_t repairs_completed() const { return repairs_; }

 private:
  struct NodeRuntime {
    sim::Rng rng{0};
    bool down = false;
    sim::EventHandle pending;  ///< next failure, or the group repair
  };

  void schedule_failure(NodeId id);
  void fail_group(NodeId primary);
  void repair_group(const std::vector<NodeId>& group);

  FailureModel model_;
  std::vector<NodeRuntime> nodes_;
  NodeCallback on_down_;
  NodeCallback on_up_;
  bool armed_ = false;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
};

}  // namespace utilrisk::cluster
