#include "cluster/time_shared.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/logger.hpp"

namespace utilrisk::cluster {

namespace {

/// Work-completion slack: a task is done when its remaining work drops
/// below this many processor-seconds (absorbs rate-integration rounding).
constexpr double kWorkEpsilon = 1e-6;

}  // namespace

TimeSharedCluster::TimeSharedCluster(sim::Simulator& simulator,
                                     MachineConfig machine)
    : Entity(simulator, "time-shared-cluster"), machine_(machine) {
  machine_.validate();
  nodes_.resize(machine_.node_count);
  down_.assign(machine_.node_count, 0);
  ever_tasked_flag_.assign(machine_.node_count, 0);
  share_iters_.reserve(machine_.node_count);
  for (NodeId id = 0; id < machine_.node_count; ++id) {
    share_iters_.push_back(share_index_.insert(ShareEntry{0.0, id}).first);
  }
}

void TimeSharedCluster::share_index_erase(NodeId id) {
  if (down_[id] != 0) return;
  share_index_.erase(share_iters_[id]);
}

void TimeSharedCluster::share_index_insert(NodeId id) {
  if (down_[id] != 0) return;
  share_iters_[id] =
      share_index_.insert(ShareEntry{nodes_[id].total_share, id}).first;
}

double TimeSharedCluster::committed_share(NodeId node) const {
  if (node >= nodes_.size()) {
    throw std::out_of_range("TimeSharedCluster::committed_share: bad node");
  }
  return nodes_[node].total_share;
}

NodeView TimeSharedCluster::node_view(NodeId node) const {
  if (node >= nodes_.size()) {
    throw std::out_of_range("TimeSharedCluster::node_view: bad node");
  }
  const NodeState& state = nodes_[node];
  NodeView view;
  view.node = node;
  view.committed_share = state.total_share;
  view.tasks.reserve(state.tasks.size());
  // Project integration to "now" without mutating (const view).
  const double elapsed = now() - state.last_integrated;
  for (const Task& task : state.tasks) {
    TaskView tv;
    tv.job = task.job;
    tv.share = task.share;
    tv.estimated_work = task.estimated_work;
    const double rate =
        state.total_share > 0.0 ? task.share / state.total_share : 0.0;
    tv.done_work = task.done + rate * elapsed;
    tv.deadline = task.deadline;
    view.tasks.push_back(tv);
  }
  return view;
}

void TimeSharedCluster::start(const workload::Job& job,
                              const std::vector<NodeId>& nodes, double share,
                              CompletionCallback on_complete) {
  if (nodes.size() != job.procs) {
    throw std::logic_error(
        "TimeSharedCluster::start: node list size != job.procs");
  }
  if (share <= 0.0 || share > 1.0 + kShareEpsilon) {
    throw std::logic_error("TimeSharedCluster::start: share outside (0,1]");
  }
  if (jobs_.contains(job.id)) {
    throw std::logic_error("TimeSharedCluster::start: job already running");
  }
  // One validated pass: every check runs before any node is touched (the
  // strong exception guarantee the old two-pass version provided), but
  // each id is bounds-checked and indexed exactly once. Duplicate
  // detection rides on the sorted copy job teardown needs anyway.
  std::vector<NodeId> sorted_nodes = nodes;
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  if (std::adjacent_find(sorted_nodes.begin(), sorted_nodes.end()) !=
      sorted_nodes.end()) {
    throw std::logic_error("TimeSharedCluster::start: duplicate node");
  }
  std::vector<NodeState*> states;
  states.reserve(nodes.size());
  for (NodeId id : nodes) {
    if (id >= nodes_.size()) {
      throw std::logic_error("TimeSharedCluster::start: bad node id");
    }
    if (down_[id] != 0) {
      throw std::logic_error("TimeSharedCluster::start: node is down");
    }
    NodeState& state = nodes_[id];
    if (state.total_share + share > 1.0 + kShareEpsilon) {
      throw std::logic_error(
          "TimeSharedCluster::start: share capacity exceeded on node");
    }
    states.push_back(&state);
  }

  JobState job_state;
  job_state.job = job;
  job_state.remaining_tasks = job.procs;
  job_state.on_complete = std::move(on_complete);
  job_state.nodes = std::move(sorted_nodes);
  jobs_.emplace(job.id, std::move(job_state));

  UTILRISK_ELOG(sim::LogLevel::Debug, "start job " << job.id << " share=" << share << " on "
                            << nodes.size() << " nodes");

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId id = nodes[i];
    NodeState& node = *states[i];
    integrate(node);
    Task task;
    task.job = job.id;
    task.share = share;
    task.estimated_work = job.estimated_runtime;
    task.actual_work = job.actual_runtime;
    task.deadline = job.absolute_deadline();
    node.tasks.push_back(task);
    share_index_erase(id);
    node.total_share += share;
    share_index_insert(id);
    if (ever_tasked_flag_[id] == 0) {
      ever_tasked_flag_[id] = 1;
      ever_tasked_.insert(id);
    }
    reschedule(node, id);
  }
}

void TimeSharedCluster::integrate(NodeState& node) {
  const sim::SimTime t = now();
  const double elapsed = t - node.last_integrated;
  node.last_integrated = t;
  if (elapsed <= 0.0 || node.tasks.empty() || node.total_share <= 0.0) {
    return;
  }
  for (Task& task : node.tasks) {
    const double rate = task.share / node.total_share;
    task.done += rate * elapsed;
    node.delivered += rate * elapsed;
  }
}

void TimeSharedCluster::reschedule(NodeState& node, NodeId id) {
  node.next_completion.cancel();
  if (node.tasks.empty()) return;
  double min_dt = std::numeric_limits<double>::infinity();
  for (const Task& task : node.tasks) {
    const double rate = task.share / node.total_share;
    const double remaining = std::max(0.0, task.actual_work - task.done);
    min_dt = std::min(min_dt, remaining / rate);
  }
  node.next_completion =
      after(std::max(0.0, min_dt), [this, id] { handle_node_event(id); });
}

void TimeSharedCluster::handle_node_event(NodeId id) {
  NodeState& node = nodes_[id];
  integrate(node);
  share_index_erase(id);
  // Complete every task whose work target is met (ties complete together).
  std::vector<workload::JobId> finished;
  for (auto it = node.tasks.begin(); it != node.tasks.end();) {
    if (it->done + kWorkEpsilon >= it->actual_work) {
      node.total_share -= it->share;
      finished.push_back(it->job);
      it = node.tasks.erase(it);
    } else {
      ++it;
    }
  }
  if (node.total_share < kShareEpsilon && node.tasks.empty()) {
    node.total_share = 0.0;  // clear accumulated float dust
  }
  share_index_insert(id);
  reschedule(node, id);
  // Notify after the node is consistent: completion callbacks may admit
  // new jobs onto this node.
  for (workload::JobId job : finished) task_finished(job);
}

void TimeSharedCluster::task_finished(workload::JobId job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    throw std::logic_error("TimeSharedCluster: task for unknown job");
  }
  if (--it->second.remaining_tasks == 0) {
    CompletionCallback callback = std::move(it->second.on_complete);
    jobs_.erase(it);
    UTILRISK_ELOG(sim::LogLevel::Debug, "finish job " << job);
    if (callback) callback(job, now());
  }
}

double TimeSharedCluster::remove_job_tasks(
    workload::JobId job, const std::vector<NodeId>& hosting) {
  double done_min = std::numeric_limits<double>::infinity();
  // `hosting` is ascending, so events reschedule in the same node-id
  // order the old whole-cluster scan produced.
  for (NodeId node_id : hosting) {
    NodeState& node = nodes_[node_id];
    bool touched = false;
    // Settle progress at the old rates before removing the task.
    for (const Task& task : node.tasks) {
      if (task.job == job) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    integrate(node);
    share_index_erase(node_id);
    for (auto task = node.tasks.begin(); task != node.tasks.end();) {
      if (task->job == job) {
        done_min = std::min(done_min, task->done);
        node.total_share -= task->share;
        task = node.tasks.erase(task);
      } else {
        ++task;
      }
    }
    if (node.total_share < kShareEpsilon && node.tasks.empty()) {
      node.total_share = 0.0;
    }
    share_index_insert(node_id);
    reschedule(node, node_id);
  }
  return std::isfinite(done_min) ? done_min : 0.0;
}

bool TimeSharedCluster::cancel(workload::JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const std::vector<NodeId> hosting = std::move(it->second.nodes);
  jobs_.erase(it);
  remove_job_tasks(id, hosting);
  UTILRISK_ELOG(sim::LogLevel::Debug, "cancel job " << id);
  return true;
}

std::vector<FailureKill> TimeSharedCluster::node_down(NodeId id) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("TimeSharedCluster::node_down: bad node");
  }
  if (down_[id] != 0) {
    throw std::logic_error("TimeSharedCluster::node_down: node already down");
  }
  share_index_.erase(share_iters_[id]);
  down_[id] = 1;
  ++down_count_;
  NodeState& node = nodes_[id];
  integrate(node);
  node.next_completion.cancel();
  // Every task resident on the node belongs to a distinct job (one task
  // per node per job); each such job dies entirely, in task order.
  std::vector<workload::JobId> victims;
  victims.reserve(node.tasks.size());
  for (const Task& task : node.tasks) victims.push_back(task.job);
  std::vector<FailureKill> kills;
  kills.reserve(victims.size());
  for (workload::JobId victim : victims) {
    auto it = jobs_.find(victim);
    if (it == jobs_.end()) continue;  // defensive
    FailureKill kill;
    kill.job = it->second.job;
    const std::vector<NodeId> hosting = std::move(it->second.nodes);
    jobs_.erase(it);
    kill.completed_work = remove_job_tasks(victim, hosting);
    UTILRISK_ELOG(sim::LogLevel::Debug, "node " << id << " down kills job " << victim);
    kills.push_back(kill);
  }
  return kills;
}

void TimeSharedCluster::node_up(NodeId id) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("TimeSharedCluster::node_up: bad node");
  }
  if (down_[id] == 0) {
    throw std::logic_error("TimeSharedCluster::node_up: node is not down");
  }
  down_[id] = 0;
  --down_count_;
  // The node hosted no tasks while down; restart its integration clock so
  // the idle window never counts as progress.
  nodes_[id].last_integrated = now();
  share_iters_[id] =
      share_index_.insert(ShareEntry{nodes_[id].total_share, id}).first;
}

bool TimeSharedCluster::is_up(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("TimeSharedCluster::is_up: bad node");
  }
  return down_[id] == 0;
}

double TimeSharedCluster::busy_proc_seconds() const {
  double total = 0.0;
  const sim::SimTime t = now();
  // Only nodes that ever hosted a task can contribute: the rest add an
  // exact 0.0, so skipping them leaves the sum bit-identical. Ascending
  // id order matches the old whole-cluster walk.
  for (NodeId id : ever_tasked_) {
    const NodeState& node = nodes_[id];
    total += node.delivered;
    // Include un-integrated progress since the node's last event.
    if (!node.tasks.empty() && node.total_share > 0.0) {
      const double elapsed = t - node.last_integrated;
      if (elapsed > 0.0) {
        // Work-conserving: aggregate rate is 1 while any task runs.
        total += elapsed;
      }
    }
  }
  return total;
}

}  // namespace utilrisk::cluster
