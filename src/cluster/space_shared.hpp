// Space-shared cluster executor: one task per processor, jobs occupy
// `procs` dedicated nodes from start to completion (the execution model of
// the backfilling policies and FirstReward).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/node.hpp"
#include "sim/entity.hpp"
#include "workload/job.hpp"

namespace utilrisk::cluster {

/// Snapshot of one running job, exposed so schedulers can compute EASY
/// backfilling shadow reservations from *estimated* completions.
struct RunningJobInfo {
  workload::JobId id = 0;
  std::uint32_t procs = 0;
  sim::SimTime start_time = 0.0;
  /// start_time + estimated_runtime: what the scheduler believes.
  sim::SimTime estimated_finish = 0.0;
  /// start_time + actual_runtime: ground truth (hidden from policies; used
  /// by tests and metrics only).
  sim::SimTime actual_finish = 0.0;
};

/// Dedicated-processor executor.
///
/// The executor runs jobs; *deciding* which job runs next is the policy's
/// concern (policy/queue_policy.hpp). Completion callbacks fire inside the
/// simulation event that completes the job, before any later event.
class SpaceSharedCluster : public sim::Entity {
 public:
  /// Called when a job completes; receives the job id and completion time.
  using CompletionCallback =
      std::function<void(workload::JobId, sim::SimTime)>;

  SpaceSharedCluster(sim::Simulator& simulator, MachineConfig machine);

  /// Free processors right now.
  [[nodiscard]] std::uint32_t free_procs() const { return free_procs_; }

  [[nodiscard]] std::uint32_t total_procs() const {
    return machine_.node_count;
  }

  [[nodiscard]] bool can_start(std::uint32_t procs) const {
    return procs <= free_procs_;
  }

  /// Starts `job` now on `job.procs` dedicated processors. Throws
  /// std::logic_error if insufficient processors are free (callers must
  /// check can_start). Completion fires at now + job.actual_runtime.
  void start(const workload::Job& job, CompletionCallback on_complete);

  /// Terminates a running job immediately (deadline enforcement / the
  /// preemption ablation): frees its processors, suppresses the pending
  /// completion, and does NOT invoke the completion callback. Returns
  /// false if the job is not running. Delivered work up to now is still
  /// accounted.
  bool cancel(workload::JobId id);

  /// Running jobs sorted by estimated finish time (scheduler view).
  [[nodiscard]] std::vector<RunningJobInfo> running_jobs() const;

  /// Number of currently running jobs.
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }

  /// Earliest time at which at least `procs` processors are *estimated* to
  /// be free, assuming running jobs finish at their estimated completions
  /// and nothing new starts: the EASY "shadow time". Returns now() when
  /// already free. Jobs that have overrun their estimate are treated as
  /// finishing immediately (their estimated finish is in the past).
  [[nodiscard]] sim::SimTime estimated_availability(std::uint32_t procs) const;

  /// Processor-seconds actually delivered so far (utilisation accounting).
  [[nodiscard]] double busy_proc_seconds(sim::SimTime now) const;

 private:
  struct Running {
    workload::Job job;
    sim::SimTime start_time = 0.0;
    CompletionCallback on_complete;
    sim::EventHandle completion_event;
  };

  void complete(workload::JobId id);

  MachineConfig machine_;
  std::uint32_t free_procs_ = 0;
  std::map<workload::JobId, Running> running_;
  double delivered_proc_seconds_ = 0.0;
};

}  // namespace utilrisk::cluster
