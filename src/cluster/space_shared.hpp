// Space-shared cluster executor: one task per processor, jobs occupy
// `procs` dedicated nodes from start to completion (the execution model of
// the backfilling policies and FirstReward).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/free_index.hpp"
#include "cluster/node.hpp"
#include "sim/entity.hpp"
#include "workload/job.hpp"

namespace utilrisk::cluster {

/// Snapshot of one running job, exposed so schedulers can compute EASY
/// backfilling shadow reservations from *estimated* completions.
struct RunningJobInfo {
  workload::JobId id = 0;
  std::uint32_t procs = 0;
  sim::SimTime start_time = 0.0;
  /// start_time + estimated_runtime: what the scheduler believes.
  sim::SimTime estimated_finish = 0.0;
  /// start_time + actual_runtime: ground truth (hidden from policies; used
  /// by tests and metrics only).
  sim::SimTime actual_finish = 0.0;
};

/// Dedicated-processor executor.
///
/// The executor runs jobs; *deciding* which job runs next is the policy's
/// concern (policy/queue_policy.hpp). Completion callbacks fire inside the
/// simulation event that completes the job, before any later event.
///
/// Failure semantics: node_down(id) removes the node from the free pool
/// and — because allocations are dedicated and jobs are rigid and
/// non-preemptible — kills the job occupying it (all of the job's nodes
/// are freed). node_up(id) restores the node. Placement is deterministic
/// (lowest free node ids first), so runs without failures are
/// bit-identical to the pre-occupancy-tracking executor.
class SpaceSharedCluster : public sim::Entity {
 public:
  /// Called when a job completes; receives the job id and completion time.
  using CompletionCallback =
      std::function<void(workload::JobId, sim::SimTime)>;

  SpaceSharedCluster(sim::Simulator& simulator, MachineConfig machine);

  /// Free processors right now (excludes down nodes).
  [[nodiscard]] std::uint32_t free_procs() const { return free_procs_; }

  [[nodiscard]] std::uint32_t total_procs() const {
    return machine_.node_count;
  }

  /// Processors currently up (total minus down nodes).
  [[nodiscard]] std::uint32_t up_procs() const {
    return machine_.node_count - down_count_;
  }

  [[nodiscard]] bool can_start(std::uint32_t procs) const {
    return procs <= free_procs_;
  }

  /// Starts `job` now on `job.procs` dedicated processors. Throws
  /// std::logic_error if insufficient processors are free (callers must
  /// check can_start). Completion fires at now + job.actual_runtime.
  void start(const workload::Job& job, CompletionCallback on_complete);

  /// Terminates a running job immediately (deadline enforcement / the
  /// preemption ablation): frees its processors, suppresses the pending
  /// completion, and does NOT invoke the completion callback. Returns
  /// false if the job is not running. Delivered work up to now is still
  /// accounted.
  bool cancel(workload::JobId id);

  /// Takes `id` out of service. If a job occupied the node, the whole job
  /// is killed (rigid, non-preemptive: losing one task loses the job) and
  /// returned with the work it completed; its other nodes return to the
  /// free pool. Throws std::logic_error if the node is already down.
  std::optional<FailureKill> node_down(NodeId id);

  /// Returns a repaired node to the free pool. Throws std::logic_error if
  /// the node is not down.
  void node_up(NodeId id);

  [[nodiscard]] bool is_up(NodeId id) const;
  [[nodiscard]] std::uint32_t down_count() const { return down_count_; }

  /// Running jobs sorted by (estimated finish time, id) — a walk of the
  /// incrementally maintained finish index, no per-call sort.
  [[nodiscard]] std::vector<RunningJobInfo> running_jobs() const;

  /// Number of currently running jobs.
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }

  /// Earliest time at which at least `procs` processors are *estimated* to
  /// be free, assuming running jobs finish at their estimated completions
  /// and nothing new starts: the EASY "shadow time". Returns now() when
  /// already free. Jobs that have overrun their estimate are treated as
  /// finishing immediately (their estimated finish is in the past).
  /// Returns kTimeNever while down nodes leave fewer than `procs`
  /// processors in service.
  [[nodiscard]] sim::SimTime estimated_availability(std::uint32_t procs) const;

  /// Processors *estimated* to be free at `when` (free now, plus every
  /// running job whose estimated finish is at or before `when`, within the
  /// kernel time epsilon), capped at total_procs(). The EASY backfill
  /// "extra" query, answered from the finish index prefix in O(matching
  /// jobs) instead of a full running-set rescan.
  [[nodiscard]] std::uint32_t estimated_procs_free_by(sim::SimTime when) const;

  /// Processor-seconds actually delivered so far (utilisation accounting).
  [[nodiscard]] double busy_proc_seconds(sim::SimTime now) const;

 private:
  struct Running {
    workload::Job job;
    sim::SimTime start_time = 0.0;
    sim::SimTime estimated_finish = 0.0;  ///< key into finish_index_
    CompletionCallback on_complete;
    sim::EventHandle completion_event;
    std::vector<NodeId> nodes;  ///< dedicated nodes, ascending
  };

  /// Finish-time index entry; ordered by (estimated_finish, id), the same
  /// total order running_jobs() used to sort into. The remaining fields
  /// ride along so index walks need no running_ lookups.
  struct FinishEntry {
    sim::SimTime estimated_finish = 0.0;
    workload::JobId id = 0;
    std::uint32_t procs = 0;
    sim::SimTime start_time = 0.0;
    sim::SimTime actual_finish = 0.0;

    bool operator<(const FinishEntry& other) const {
      if (estimated_finish != other.estimated_finish) {
        return estimated_finish < other.estimated_finish;
      }
      return id < other.id;
    }
  };

  void complete(workload::JobId id);
  void release_nodes(const Running& entry);
  void erase_finish_entry(const Running& entry, workload::JobId id);

  MachineConfig machine_;
  std::uint32_t free_procs_ = 0;
  std::uint32_t down_count_ = 0;
  FreeNodeIndex free_nodes_;  ///< up and unoccupied, min() = lowest id
  std::vector<char> down_;
  /// occupant_[node] = running job id, or kNoOccupant.
  std::vector<workload::JobId> occupant_;
  std::map<workload::JobId, Running> running_;
  /// Incremental (estimated_finish, id) order over running_; maintained on
  /// start/complete/cancel/node_down so earliest-finish queries are a
  /// prefix walk.
  std::set<FinishEntry> finish_index_;
  double delivered_proc_seconds_ = 0.0;

  static constexpr workload::JobId kNoOccupant =
      static_cast<workload::JobId>(-1);
};

}  // namespace utilrisk::cluster
