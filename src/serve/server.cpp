#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace utilrisk::serve {

namespace {

/// Poll granularity of the accept/read loops: the latency bound on
/// noticing a stop request.
constexpr int kPollMillis = 100;

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

struct Server::Connection {
  /// Write-side state after a flush attempt.
  enum class WriteState {
    Idle,     ///< outbox empty — nothing buffered
    Pending,  ///< bytes buffered, peer socket full, still making progress
    Stalled,  ///< bytes buffered and no progress for stall_ms — wedged peer
  };

  int fd = -1;
  std::size_t outbox_cap = 256 * 1024;
  double stall_ms = 5000.0;
  /// Server-wide slow-client kill counter (overflow kills happen on the
  /// engine thread, which has no other path to the server's stats).
  std::atomic<std::uint64_t>* stalled_counter = nullptr;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
  /// Buffered-but-unsent response bytes (guarded by write_mutex). Writes
  /// are non-blocking: the engine thread appends here and moves on; the
  /// connection's reader task drains it via POLLOUT. Bounded — a peer
  /// that stops reading overflows the cap and is disconnected instead of
  /// wedging the engine thread inside send().
  std::string outbox;
  /// Last instant a flush moved bytes (guarded by write_mutex); the
  /// stall clock for the slow-loris timeout.
  std::chrono::steady_clock::time_point last_progress;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Force-disconnect: wakes the peer (and our reader's poll) with a
  /// FIN/RST instead of leaving a half-dead socket lingering until
  /// server shutdown. Safe from any thread; the fd itself stays valid
  /// until the Connection is destroyed.
  void kill() {
    open.store(false, std::memory_order_relaxed);
    ::shutdown(fd, SHUT_RDWR);
  }

  /// Queues one line (appending '\n') and flushes what the socket will
  /// take right now. Never blocks. Returns false when the connection is
  /// (or just became) dead — including an outbox overflow, which kills
  /// the connection on the spot.
  bool write_line(const std::string& line) {
    std::lock_guard lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return false;
    if (outbox.empty()) {
      last_progress = std::chrono::steady_clock::now();
    }
    outbox += line;
    outbox.push_back('\n');
    if (outbox.size() > outbox_cap) {
      kill();
      if (stalled_counter != nullptr) {
        stalled_counter->fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    flush_locked();
    return open.load(std::memory_order_relaxed);
  }

  /// Flushes buffered bytes and reports the write-side state; called by
  /// the reader task each poll tick. The caller kills Stalled peers.
  WriteState service_writes() {
    std::lock_guard lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return WriteState::Idle;
    flush_locked();
    if (outbox.empty()) return WriteState::Idle;
    const double stalled_for =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - last_progress)
            .count();
    return stalled_for > stall_ms ? WriteState::Stalled : WriteState::Pending;
  }

 private:
  /// Non-blocking partial-write loop (caller holds write_mutex). A
  /// vanished peer closes the connection instead of raising SIGPIPE.
  void flush_locked() {
    while (!outbox.empty()) {
      const ssize_t n = ::send(fd, outbox.data(), outbox.size(),
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        outbox.erase(0, static_cast<std::size_t>(n));
        last_progress = std::chrono::steady_clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      open.store(false, std::memory_order_relaxed);
      return;
    }
  }
};

Server::Server(const ServerConfig& config, EngineApi& engine)
    : config_(config), engine_(engine), io_pool_(config.io_threads) {}

Server::~Server() { stop_and_drain(); }

void Server::start() {
  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " +
                               config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a crash
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error(errno_message("socket"));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error(
          errno_message(("bind " + config_.unix_path).c_str()));
    }
  } else if (config_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error(errno_message("socket"));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error(errno_message("bind"));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  } else {
    throw std::runtime_error(
        "Server: configure a unix socket path or a TCP port");
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error(errno_message("listen"));
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void Server::request_stop() { stop_requested_.store(true); }

void Server::acceptor_loop() {
  pollfd pfd{listen_fd_, POLLIN, 0};
  while (!stop_requested_.load()) {
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    connection->outbox_cap = config_.write_buffer_bytes;
    connection->stall_ms = config_.write_stall_ms;
    connection->stalled_counter = &stalled_;
    {
      std::lock_guard lock(connections_mutex_);
      connections_.push_back(connection);
    }
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    // ThreadPool tasks must not throw; the reader reports protocol
    // problems to the peer, anything else just ends the connection.
    io_pool_.submit([this, connection] {
      try {
        reader_loop(connection);
      } catch (...) {
        connection->open.store(false, std::memory_order_relaxed);
      }
    });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& connection) {
  std::string buffer;
  bool discarding = false;  // inside an over-long line, until its newline
  char chunk[4096];
  pollfd pfd{connection->fd, POLLIN, 0};
  for (;;) {
    if (stop_requested_.load()) return;
    // Drain buffered responses first; a peer that buffers past the stall
    // timeout without accepting a byte is wedged — cut it loose so its
    // responses stop accumulating (slow-loris defense).
    const Connection::WriteState writes = connection->service_writes();
    if (writes == Connection::WriteState::Stalled) {
      stalled_.fetch_add(1, std::memory_order_relaxed);
      connection->kill();
      return;
    }
    if (!connection->open.load(std::memory_order_relaxed)) return;
    pfd.events = static_cast<short>(
        POLLIN |
        (writes == Connection::WriteState::Pending ? POLLOUT : 0));
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return;
    // Writable-only wakeup: loop back to service_writes(). POLLHUP falls
    // through to read(), which reports the EOF/RST properly.
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) continue;
    const ssize_t n = ::read(connection->fd, chunk, sizeof(chunk));
    if (n == 0) break;  // EOF: peer is done submitting
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (discarding) {
        discarding = false;  // the tail of the oversized line
        continue;
      }
      if (!line.empty()) handle_line(connection, std::move(line));
    }
    buffer.erase(0, start);
    // A line still has no newline: cap its growth before parsing.
    if (!discarding && buffer.size() > config_.max_line_bytes) {
      oversized_.fetch_add(1, std::memory_order_relaxed);
      lines_.fetch_add(1, std::memory_order_relaxed);
      Response error;
      error.status = Status::Error;
      error.message = "request exceeds " +
                      std::to_string(config_.max_line_bytes) + " bytes";
      if (connection->write_line(encode_response(error))) {
        responses_.fetch_add(1, std::memory_order_relaxed);
      }
      buffer.clear();
      discarding = true;
    }
  }
  if (!discarding && !buffer.empty()) {
    handle_line(connection, std::move(buffer));  // unterminated last line
  }
  // Half-close linger: the peer stopped submitting but responses already
  // queued in the outbox must still reach it. Drain under the same stall
  // timeout; responses that complete after this task exits are delivered
  // by write_line's opportunistic flush.
  for (;;) {
    if (stop_requested_.load()) return;
    const Connection::WriteState writes = connection->service_writes();
    if (writes == Connection::WriteState::Idle) return;
    if (writes == Connection::WriteState::Stalled) {
      stalled_.fetch_add(1, std::memory_order_relaxed);
      connection->kill();
      return;
    }
    pollfd wp{connection->fd, POLLOUT, 0};
    (void)::poll(&wp, 1, kPollMillis);
  }
}

void Server::handle_line(const std::shared_ptr<Connection>& connection,
                         std::string line) {
  lines_.fetch_add(1, std::memory_order_relaxed);
  Response error;
  error.status = Status::Error;
  if (line.size() > config_.max_line_bytes) {
    oversized_.fetch_add(1, std::memory_order_relaxed);
    error.message = "request exceeds " +
                    std::to_string(config_.max_line_bytes) + " bytes";
    if (connection->write_line(encode_response(error))) {
      responses_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  Request request;
  try {
    request = parse_request(line);
  } catch (const ProtocolError& e) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    error.message = e.what();
    if (connection->write_line(encode_response(error))) {
      responses_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  const bool queued = engine_.submit(
      request, [this, connection](const Response& response) {
        if (connection->write_line(encode_response(response))) {
          responses_.fetch_add(1, std::memory_order_relaxed);
        }
      });
  if (!queued) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    if (connection->write_line(
            encode_response(engine_.make_busy_response(request)))) {
      responses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

EngineStats Server::stop_and_drain() {
  std::lock_guard lock(lifecycle_mutex_);
  if (drained_.load()) return engine_.drain();
  stop_requested_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  io_pool_.wait_idle();  // readers exit at the next poll tick
  // Every request that made it into the bounded queue is answered before
  // the connections close: zero dropped responses on shutdown.
  EngineStats stats = engine_.drain();
  {
    std::lock_guard connections_lock(connections_mutex_);
    connections_.clear();  // ~Connection closes the fds
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
  drained_.store(true);
  return stats;
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections = connections_total_.load(std::memory_order_relaxed);
  stats.lines = lines_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  stats.oversized = oversized_.load(std::memory_order_relaxed);
  stats.busy = busy_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.stalled = stalled_.load(std::memory_order_relaxed);
  return stats;
}

ServerStats Server::run_stdio(EngineApi& engine, std::istream& in,
                              std::ostream& out,
                              std::size_t max_line_bytes) {
  ServerStats stats;
  std::mutex write_mutex;
  auto write_line = [&out, &write_mutex, &stats](const Response& response) {
    std::lock_guard lock(write_mutex);
    out << encode_response(response) << '\n';
    ++stats.responses;
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++stats.lines;
    if (line.size() > max_line_bytes) {
      ++stats.oversized;
      Response error;
      error.status = Status::Error;
      error.message =
          "request exceeds " + std::to_string(max_line_bytes) + " bytes";
      write_line(error);
      continue;
    }
    Request request;
    try {
      request = parse_request(line);
    } catch (const ProtocolError& e) {
      ++stats.malformed;
      Response error;
      error.status = Status::Error;
      error.message = e.what();
      write_line(error);
      continue;
    }
    if (!engine.submit(request, write_line)) {
      ++stats.busy;
      write_line(engine.make_busy_response(request));
    }
  }
  engine.drain();  // EOF on stdin is the drain signal in stdio mode
  out.flush();
  return stats;
}

}  // namespace utilrisk::serve
