#include "serve/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"

namespace utilrisk::serve {

namespace {

/// SplitMix64 finalizer: the ring positions and key placements must be
/// stable across processes, so no std::hash (implementation-defined).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::string four_digit(std::size_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04zu", value);
  return buf;
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shard_count)
    : shard_count_(std::max<std::size_t>(1, shard_count)) {
  ring_.reserve(shard_count_ * kVirtualPoints);
  for (std::size_t shard = 0; shard < shard_count_; ++shard) {
    for (std::size_t point = 0; point < kVirtualPoints; ++point) {
      // Double-mix so shard 0's points are not a shifted copy of shard
      // 1's (a single pass over `shard * K + point` correlates them).
      const std::uint64_t position =
          mix64(mix64(shard + 1) ^ (point * 0x9e3779b97f4a7c15ULL));
      ring_.emplace_back(position, static_cast<std::uint32_t>(shard));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::shard_for(std::uint64_t routing_key) const {
  if (shard_count_ == 1) return 0;
  const std::uint64_t point = mix64(routing_key);
  // First ring position at or after the key's point, wrapping past the
  // top of the ring back to the first entry.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t value) { return entry.first < value; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::string shard_journal_dir(const std::string& root,
                              std::size_t shard_index,
                              std::size_t shard_count) {
  // --shards 1 keeps the legacy flat layout so pre-shard journals recover
  // without a migration.
  if (shard_count <= 1) return root;
  return (std::filesystem::path(root) / ("shard-" + four_digit(shard_index)))
      .string();
}

void check_shard_journal_layout(const std::string& root,
                                std::size_t shard_count) {
  namespace fs = std::filesystem;
  const fs::path meta_path = fs::path(root) / "shards.meta";
  std::error_code ec;
  if (fs::exists(meta_path, ec)) {
    std::ifstream in(meta_path);
    std::size_t recorded = 0;
    std::string label;
    if (!(in >> label >> recorded) || label != "shards" || recorded == 0) {
      throw JournalError("unreadable shard marker " + meta_path.string());
    }
    if (recorded != shard_count) {
      throw JournalError(
          "journal " + root + " was written with --shards " +
          std::to_string(recorded) + " but the server was started with " +
          "--shards " + std::to_string(shard_count) +
          " — re-routing journalled tenants onto different shards would " +
          "change their simulation state; recover with the original shard " +
          "count or point --journal at a fresh directory");
    }
    return;
  }
  // No marker: a legacy (pre-shard) flat journal may still be present.
  // Reopening it sharded would split its request stream across engines.
  if (shard_count > 1 && fs::exists(root, ec)) {
    for (const auto& entry : fs::directory_iterator(root, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("journal-") && name.ends_with(".ndjson")) {
        throw JournalError(
            "journal " + root +
            " holds a flat single-shard segment layout; refusing to reopen "
            "it with --shards " +
            std::to_string(shard_count));
      }
    }
  }
  fs::create_directories(root, ec);
  std::ofstream out(meta_path, std::ios::trunc);
  out << "shards " << shard_count << '\n';
  if (!out) {
    throw JournalError("cannot write shard marker " + meta_path.string());
  }
}

ShardedEngine::ShardedEngine(const ShardedEngineConfig& config)
    : router_(config.shards) {
  const std::size_t count = router_.shard_count();
  if (!config.engine.journal_dir.empty()) {
    check_shard_journal_layout(config.engine.journal_dir, count);
  }
  engines_.reserve(count);
  routed_metrics_.reserve(count);
  depth_metrics_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EngineConfig engine_config = config.engine;
    engine_config.shard_index = static_cast<int>(i);
    if (!engine_config.journal_dir.empty()) {
      engine_config.journal_dir =
          shard_journal_dir(config.engine.journal_dir, i, count);
    }
    engines_.push_back(std::make_unique<AdmissionEngine>(engine_config));
    const std::string prefix = "serve.shard." + std::to_string(i);
    routed_metrics_.push_back(
        obs::counter_or_null(config.engine.metrics, prefix + ".routed"));
    depth_metrics_.push_back(
        obs::gauge_or_null(config.engine.metrics, prefix + ".queue_depth"));
  }
  if (auto* shards_gauge =
          obs::gauge_or_null(config.engine.metrics, "serve.shards")) {
    shards_gauge->set(static_cast<double>(count));
  }
}

void ShardedEngine::start() {
  for (const auto& engine : engines_) engine->start();
}

bool ShardedEngine::submit(const Request& request, Completion completion) {
  const std::size_t index = router_.shard_for(routing_key(request));
  AdmissionEngine& engine = *engines_[index];
  const bool queued = engine.submit(request, std::move(completion));
  if (queued && routed_metrics_[index] != nullptr) {
    routed_metrics_[index]->inc();
  }
  if (depth_metrics_[index] != nullptr) {
    depth_metrics_[index]->set(static_cast<double>(engine.queue_depth()));
  }
  return queued;
}

Response ShardedEngine::make_busy_response(const Request& request) const {
  const std::size_t index = router_.shard_for(routing_key(request));
  Response response = engines_[index]->make_busy_response(request);
  response.shard = static_cast<int>(index);
  return response;
}

EngineStats ShardedEngine::drain() {
  if (drained_) return merged_;
  shard_stats_.clear();
  shard_stats_.reserve(engines_.size());
  for (const auto& engine : engines_) {
    shard_stats_.push_back(engine->drain());
  }
  EngineStats merged;
  for (const EngineStats& stats : shard_stats_) {
    merged.processed += stats.processed;
    merged.accepted += stats.accepted;
    merged.rejected += stats.rejected;
    merged.fulfilled += stats.fulfilled;
    merged.violated += stats.violated;
    merged.batches += stats.batches;
    merged.events_dispatched += stats.events_dispatched;
    merged.shed += stats.shed;
    merged.brownout += stats.brownout;
    merged.advise_queries += stats.advise_queries;
    merged.advisor_evaluations += stats.advisor_evaluations;
    merged.policy_switches += stats.policy_switches;
    merged.virtual_end_time =
        std::max(merged.virtual_end_time, stats.virtual_end_time);
    merged.digest.merge(stats.digest);
  }
  merged.decision_digest = verify::to_hex(merged.digest.value());
  merged_ = merged;
  drained_ = true;
  return merged_;
}

RecoveryStats ShardedEngine::recovery() const {
  RecoveryStats merged;
  verify::UnorderedDigest digest;
  for (const auto& engine : engines_) {
    const RecoveryStats& stats = engine->recovery();
    merged.attempted = merged.attempted || stats.attempted;
    merged.replayed += stats.replayed;
    merged.digest_match = merged.digest_match && stats.digest_match;
    merged.segments += stats.segments;
    merged.truncated_records += stats.truncated_records;
    merged.truncated_bytes += stats.truncated_bytes;
    // Per-shard replay digests merge into the session digest the banner
    // prints — comparable with a pre-crash client's merged digest. (Safe
    // before start(): recovery replays on the constructing thread.)
    digest.merge(engine->decision_digest_snapshot());
  }
  if (merged.replayed > 0) {
    merged.replayed_digest = verify::to_hex(digest.value());
    merged.journal_digest = merged.replayed_digest;  // each shard verified
  }
  return merged;
}

JournalStats ShardedEngine::journal_stats() const {
  JournalStats merged;
  for (const auto& engine : engines_) {
    const JournalStats stats = engine->journal_stats();
    merged.requests += stats.requests;
    merged.ticks += stats.ticks;
    merged.switches += stats.switches;
    merged.fsyncs += stats.fsyncs;
    merged.rotations += stats.rotations;
    merged.bytes += stats.bytes;
  }
  return merged;
}

}  // namespace utilrisk::serve
