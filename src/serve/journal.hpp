// Write-ahead admission journal: the durability layer of `utilrisk serve`.
//
// An admission decision is a financial commitment (paper §5.3): once the
// server answers "accepted", the provider is on the hook for the SLA.
// The journal makes that commitment crash-safe by logging the request
// *sequence* — which, by the engine's determinism contract
// (docs/SERVING.md), fully determines every decision — plus periodic
// tick records carrying the engine's running decision digest. After a
// crash, replaying the surviving records through a fresh engine must
// reproduce the pre-crash digest byte for byte; the tick records are the
// oracle that proves it did.
//
// On-disk format: append-only NDJSON segments in one directory,
//
//   journal-00000001.ndjson
//     {"type":"req","seq":1,"req":{...wire request...},"chk":"<16hex>"}
//     {"type":"sw","seq":2,"key":"<16hex>","at":64,"from":"Libra",
//      "to":"FCFS-BF","chk":"..."}            (advise-auto policy switch)
//     {"type":"tick","seq":3,"processed":1,"digest":"<16hex>","chk":"..."}
//     ...
//     {"type":"seal","records":4096,"digest":"<16hex>"}   (rotation only)
//
// Integrity is layered (all FNV-1a via src/verify):
//  - per line: `chk` digests the line's own bytes up to the chk field, so
//    a torn (partially written) or edited tail line is detected and the
//    journal is truncated at the last intact record on load;
//  - per segment: the `seal` trailer digests every record line in the
//    segment, so a sealed (rotated) segment is tamper-evident end to end.
//    A sealed segment that fails its trailer is corruption *before* the
//    tail — recovery refuses to proceed rather than silently dropping
//    acknowledged requests.
//
// Fsync policy trades durability for throughput (docs/SERVING.md table):
//  - Always: fsync after every appended record;
//  - Batch (default): fsync once per tick record — the engine defers the
//    batch's completions until after this sync, so no response reaches a
//    client before the records that reproduce it are durable;
//  - None: never fsync (the OS flushes); a power loss may lose the tail,
//    a process crash alone does not.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "verify/digest.hpp"

namespace utilrisk::obs {
class MetricsRegistry;
class Counter;
}  // namespace utilrisk::obs

namespace utilrisk::serve {

enum class FsyncPolicy : std::uint8_t {
  None,    ///< never fsync; fastest, weakest
  Batch,   ///< fsync once per engine tick (default)
  Always,  ///< fsync after every record
};

[[nodiscard]] const char* to_string(FsyncPolicy policy);
/// Parses "none" | "batch" | "always"; throws std::invalid_argument.
[[nodiscard]] FsyncPolicy parse_fsync_policy(const std::string& name);

struct JournalConfig {
  /// Segment directory; created (one level) if absent.
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::Batch;
  /// Records per segment before rotation (a seal trailer is written and
  /// the next segment opened). Must be >= 1.
  std::size_t max_segment_records = 4096;
  /// Optional registry for the serve.journal_* counters (may be null).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Writer-side session totals.
struct JournalStats {
  std::uint64_t requests = 0;  ///< req records appended
  std::uint64_t ticks = 0;     ///< tick records appended
  std::uint64_t switches = 0;  ///< sw (policy-switch) records appended
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;  ///< segments sealed
  std::uint64_t bytes = 0;      ///< bytes appended (all records)
};

/// One journalled live policy switch ({"type":"sw",...}): routing key
/// `key` moved from policy `from` to `to` after its `at`-th decided
/// request. Purely an audit/verification record — replaying the request
/// sequence re-derives every switch deterministically; recovery checks
/// the journalled switches are a prefix of the replayed ones
/// (docs/ADVISOR.md, docs/DETERMINISM.md).
struct SwitchRecord {
  std::uint64_t key = 0;
  std::uint64_t at = 0;
  std::string from;
  std::string to;
};

/// What load_journal() recovered from a directory.
struct RecoveredJournal {
  /// Every surviving request, in append (= admission) order, across all
  /// segments. Replaying exactly this sequence reproduces the decisions.
  std::vector<Request> requests;
  /// Running decision digest recorded by the newest surviving tick
  /// record (empty when no tick survived).
  std::string last_tick_digest;
  /// How many requests that tick covered (the digest is over decisions
  /// for requests[0 .. last_tick_processed)).
  std::uint64_t last_tick_processed = 0;
  /// Journalled policy switches, in append order. A crash may lose a
  /// trailing sw record whose triggering request survived, so replay can
  /// legitimately produce *more* switches than were journalled — never
  /// different ones.
  std::vector<SwitchRecord> switches;
  std::size_t segments = 0;
  std::size_t sealed_segments = 0;
  /// Torn/invalid trailing records dropped from the newest segment.
  std::size_t truncated_records = 0;
  /// Bytes physically truncated off the newest segment's tail.
  std::uint64_t truncated_bytes = 0;
  std::vector<std::string> warnings;

  [[nodiscard]] bool empty() const { return requests.empty(); }
};

/// Thrown on unrecoverable journal damage: a *sealed* segment failing its
/// trailer digest, or an unreadable directory. (A torn tail on the open
/// segment is expected crash damage and is truncated, not thrown.)
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Scans `directory` (no-op result when absent/empty), verifies segment
/// and line digests, physically truncates a torn tail off the newest
/// segment, and returns the surviving record stream. Throws JournalError
/// on mid-journal corruption.
[[nodiscard]] RecoveredJournal load_journal(const std::string& directory);

/// Appends records to a fresh segment numbered after every existing one
/// (recovery never rewrites history; each process writes its own
/// segments). Not thread-safe: the engine thread is the only writer.
class JournalWriter {
 public:
  explicit JournalWriter(const JournalConfig& config);
  /// Seals and closes the open segment (close() is the polite path).
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Write-ahead: the engine appends the request *before* simulating it.
  void append_request(const Request& request);

  /// Records a live policy switch (advise-auto mode), after the req
  /// record that triggered it and before the covering tick record.
  void append_switch(const SwitchRecord& record);

  /// Tick boundary: `processed` requests decided so far (lifetime total,
  /// recovered replays included) and the engine's running decision
  /// digest. Under FsyncPolicy::Batch this is the record that fsyncs —
  /// unless the caller passes `sync_now = false` to group-commit several
  /// ticks under one later sync() (the engine then also holds the ticks'
  /// completions until that sync, so the durability contract is intact).
  /// The record bytes always reach the kernel here regardless.
  void append_tick(std::uint64_t processed, const std::string& digest_hex,
                   bool sync_now = true);

  /// Forces everything appended so far to disk (flush + fsync). The
  /// group-commit point for ticks appended with `sync_now = false`.
  void sync();

  /// Seals the open segment (trailer + fsync) and closes the fd.
  /// Idempotent; the destructor calls it.
  void close();

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  [[nodiscard]] const JournalConfig& config() const { return config_; }

 private:
  void open_segment();
  void rotate();
  void append_line(std::string_view payload);
  /// Writes the seal trailer + fsync and closes the segment fd.
  void seal_segment();
  /// Writes `pending_` through to the segment fd (one syscall per tick
  /// instead of one per record; durability is only ever promised at tick
  /// boundaries, where the engine holds completions until after this).
  void flush();
  void fsync_now();

  JournalConfig config_;
  int fd_ = -1;
  /// Records appended since the last flush(). Always drained before any
  /// fsync and at every tick/seal, so nothing a client was answered for
  /// can sit only here.
  std::string pending_;
  /// Reused per-record build buffer (append_request/append_tick are the
  /// engine loop's hot path; no per-record allocations).
  std::string scratch_;
  std::uint64_t next_segment_ = 1;
  std::uint64_t next_seq_ = 1;        ///< record seq, journal-lifetime
  std::size_t segment_records_ = 0;   ///< records in the open segment
  /// Running seal-trailer digest: put_string fold over the open
  /// segment's record lines, reset at rotation.
  verify::DigestStream seal_fold_;
  JournalStats stats_;

  obs::Counter* appends_metric_ = nullptr;
  obs::Counter* fsyncs_metric_ = nullptr;
  obs::Counter* rotations_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
};

}  // namespace utilrisk::serve
