// Bounded MPMC queue with explicit backpressure — the admission buffer
// between the server's IO threads and the single engine thread.
//
// The producer side never blocks: `try_push` returns false when the queue
// is at capacity (the server turns that into a `busy` response with a
// retry-after hint) or after close(). The consumer side blocks in
// `pop_wait` until an item arrives or the queue is closed *and* drained,
// so a graceful shutdown is: close(), then keep popping until nullopt —
// every request accepted before the close still gets its response.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace utilrisk::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue. False = full or closed (backpressure).
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// While held (see hold()) items do not satisfy the wait, so consumers
  /// stay blocked without consuming; close() overrides a hold so a drain
  /// always proceeds.
  [[nodiscard]] std::optional<T> pop_wait() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock,
                    [this] { return closed_ || (!held_ && !items_.empty()); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking drain of up to `max` further items into `out` (appends).
  /// The engine uses this to coalesce a batch after the first blocking
  /// pop. Returns the number of items moved.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    std::lock_guard lock(mutex_);
    std::size_t moved = 0;
    while (moved < max && !items_.empty() && (!held_ || closed_)) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    return moved;
  }

  /// While held, pop_wait blocks even when items are available, so the
  /// queue observably fills to capacity — the deterministic backpressure
  /// gate behind AdmissionEngine::pause(). Pushes are unaffected.
  void hold() {
    std::lock_guard lock(mutex_);
    held_ = true;
  }

  /// Lifts a hold(); blocked consumers re-check for items.
  void release() {
    {
      std::lock_guard lock(mutex_);
      held_ = false;
    }
    not_empty_.notify_all();
  }

  /// No further pushes succeed; blocked consumers wake once drained.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  bool held_ = false;
};

}  // namespace utilrisk::serve
