// Load generator for the online admission service (`utilrisk loadgen`).
//
// Replays a seeded arrival process from src/workload (the synthetic SDSC
// SP2 trace + §5.3 QoS synthesis) against a running `utilrisk serve`
// instance over its NDJSON socket protocol, in one of two modes:
//
//  - closed loop (default): one request in flight — send, await the
//    decision, send the next. Request order is then deterministic, so a
//    fixed seed yields bit-identical admission decisions on every run;
//    the report's decision digest must equal the server's.
//  - open loop: requests go out on a wall-clock schedule (`rate`/s)
//    regardless of responses — the overload mode that drives the bounded
//    admission queue into observable `busy` backpressure.
//
// The report carries throughput and p50/p95/p99 wall-latency percentiles;
// bench_serving serialises it into BENCH_serving.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace utilrisk::serve {

struct LoadgenConfig {
  /// Unix-domain socket path of the server (precedence over TCP).
  std::string unix_path;
  /// TCP loopback port of the server; -1 = off.
  int tcp_port = -1;
  std::size_t requests = 5000;
  std::uint64_t seed = 42;
  /// Open loop when true (see header comment); closed loop otherwise.
  bool open_loop = false;
  /// Open-loop send rate, requests per wall second.
  double rate = 2000.0;
  /// Workload shaping knobs (paper Table VI semantics).
  double high_urgency_percent = 20.0;
  double arrival_delay_factor = 1.0;
  double inaccuracy_percent = 100.0;
  /// Give up when the server goes silent for this long.
  double idle_timeout_seconds = 30.0;
};

struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;  ///< decisions + busy + errors received
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t busy = 0;    ///< backpressure rejections observed
  std::uint64_t errors = 0;  ///< protocol errors reported by the server
  /// Requests the run gave up on (idle timeout / connection loss). A
  /// clean run has zero.
  std::uint64_t dropped = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< responses per wall second
  LatencySummary latency;
  /// Order-independent digest over the accepted/rejected decisions
  /// (protocol.hpp decision_hash); comparable with the server's.
  std::string decision_digest;
};

/// The seeded request stream the generator replays: synthetic SDSC trace
/// -> QoS terms -> arrival scaling -> wire requests, ids 1..N in
/// submission order. Deterministic in `config`. Exposed for tests and the
/// bench, which drive engines/servers with it directly.
[[nodiscard]] std::vector<Request> make_request_stream(
    const LoadgenConfig& config);

/// Runs the full client session against a live server. Throws
/// std::runtime_error when the connection cannot be established.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenConfig& config);

/// Percentile summary of raw wall latencies (milliseconds).
[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> ms);

}  // namespace utilrisk::serve
