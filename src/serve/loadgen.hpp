// Load generator for the online admission service (`utilrisk loadgen`).
//
// Replays a seeded arrival process from src/workload (the synthetic SDSC
// SP2 trace + §5.3 QoS synthesis) against a running `utilrisk serve`
// instance over its NDJSON socket protocol, in one of two modes:
//
//  - closed loop (default): one request in flight — send, await the
//    decision, send the next. Request order is then deterministic, so a
//    fixed seed yields bit-identical admission decisions on every run;
//    the report's decision digest must equal the server's.
//  - open loop: requests go out on a wall-clock schedule (`rate`/s)
//    regardless of responses — the overload mode that drives the bounded
//    admission queue into observable `busy` backpressure.
//
// The report carries throughput and p50/p95/p99 wall-latency percentiles;
// bench_serving serialises it into BENCH_serving.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace utilrisk::serve {

struct LoadgenConfig {
  /// Unix-domain socket path of the server (precedence over TCP).
  std::string unix_path;
  /// TCP loopback port of the server; -1 = off.
  int tcp_port = -1;
  std::size_t requests = 5000;
  std::uint64_t seed = 42;
  /// Workload-generator spec ("name:key=value,...",
  /// workload/generator.hpp) shaping the request stream; empty (default)
  /// = the synthetic SDSC trace. `requests` and `seed` are injected as
  /// the spec's jobs/seed defaults, so "--workload zipf:theta=0.9" keeps
  /// the configured request count and seed unless the spec pins its own.
  std::string workload;
  /// Mix-shift splice ("T:SPEC", `--mix-shift`): at virtual time T the
  /// request stream switches from the configured `workload` (or the
  /// default SDSC trace) to the workload spec SPEC — e.g.
  /// "21600:zipf:theta=0.5". Implemented by wrapping both into the
  /// registry's `mixshift` method, so it composes with flash/zipf specs
  /// on either side. Empty = no shift.
  std::string mix_shift;
  /// Open loop when true (see header comment); closed loop otherwise.
  bool open_loop = false;
  /// Open-loop send rate, requests per wall second.
  double rate = 2000.0;
  /// Workload shaping knobs (paper Table VI semantics).
  double high_urgency_percent = 20.0;
  double arrival_delay_factor = 1.0;
  double inaccuracy_percent = 100.0;
  /// Give up when the server goes silent for this long.
  double idle_timeout_seconds = 30.0;
  /// Wall-clock admission-decision budget (milliseconds) stamped on every
  /// generated request (`deadline_ms` on the wire); 0 = none. Under
  /// overload the server sheds requests whose budget expired in its
  /// queue instead of simulating them.
  double deadline_ms = 0.0;
  /// Client connections to fan the stream across (`--connections`).
  /// Requests partition by routing key (protocol.hpp routing_key) with
  /// the same consistent hash the sharded server uses, so every tenant's
  /// subsequence stays ordered on one connection and the merged client
  /// digest stays comparable with the server's merged digest.
  std::size_t connections = 1;
  /// Closed-loop busy handling: how many times one request is re-sent
  /// after a `busy` answer before the client gives up and books the busy
  /// as final. 0 restores the legacy treat-busy-as-terminal behaviour.
  std::size_t busy_retries = 8;
  /// Fallback backoff (milliseconds) between busy retries, used only when
  /// the server's `retry_after_ms` hint is absent/zero — the hint, when
  /// present, is the delay (hinted retries are counted separately).
  double retry_interval_ms = 5.0;
  /// Chaos mode (run_chaos): how many hostile connections to run and a
  /// wall-clock cap on the whole attack phase.
  std::size_t chaos_connections = 24;
  double chaos_duration_seconds = 10.0;
};

struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;  ///< decisions + busy + errors received
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t busy = 0;    ///< backpressure rejections observed
  /// Closed-loop busy retries performed (re-sends after a busy answer).
  std::uint64_t busy_retried = 0;
  /// Busy retries whose backoff came from the server's `retry_after_ms`
  /// hint (the rest waited the client-side `retry_interval_ms` fallback).
  std::uint64_t hinted_retries = 0;
  std::uint64_t shed = 0;    ///< decision-deadline sheds observed
  std::uint64_t errors = 0;  ///< protocol errors reported by the server
  /// Requests the run gave up on (idle timeout / connection loss). A
  /// clean run has zero. The three cause counters below say *why* reads
  /// gave up — an idle server, a closed connection and a socket error
  /// are different failures and get debugged differently.
  std::uint64_t dropped = 0;
  std::uint64_t read_timeouts = 0;  ///< gave up: server silent past idle timeout
  std::uint64_t read_eofs = 0;      ///< gave up: server closed the connection
  std::uint64_t read_errors = 0;    ///< gave up: socket error on read
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< responses per wall second
  LatencySummary latency;
  /// Order-independent digest over the accepted/rejected decisions
  /// (protocol.hpp decision_hash); comparable with the server's.
  std::string decision_digest;
};

/// The seeded request stream the generator replays: synthetic SDSC trace
/// -> QoS terms -> arrival scaling -> wire requests, ids 1..N in
/// submission order. Deterministic in `config`. Exposed for tests and the
/// bench, which drive engines/servers with it directly.
[[nodiscard]] std::vector<Request> make_request_stream(
    const LoadgenConfig& config);

/// Runs the full client session against a live server. Throws
/// std::runtime_error when the connection cannot be established.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenConfig& config);

/// What the chaos run did to the server — and whether it survived.
struct ChaosReport {
  std::uint64_t connections = 0;     ///< hostile connections opened
  std::uint64_t disconnects = 0;     ///< mid-request disconnects injected
  std::uint64_t torn_writes = 0;     ///< frames torn mid-byte then abandoned
  std::uint64_t malformed_sent = 0;  ///< malformed/hostile frames sent
  std::uint64_t oversized_sent = 0;  ///< over-limit frames sent
  std::uint64_t slow_loris = 0;      ///< drip-fed connections
  std::uint64_t responses = 0;       ///< lines the server still answered with
  std::uint64_t errors_reported = 0;  ///< structured `error` responses seen
  /// Post-attack clean probe: a seeded closed-loop stream must still get
  /// every decision. This is the no-crash/no-hang/no-corruption verdict.
  bool probe_clean = false;
  LoadgenReport probe;
};

/// Chaos mode (`utilrisk loadgen --chaos`): hammers the server with
/// hostile connections — mid-request disconnects, torn partial frames,
/// malformed/oversized/non-UTF-8 lines, slow-loris drip feeds — then runs
/// a clean closed-loop probe stream. The server holds if the probe gets
/// every decision (`probe_clean`); the attack itself is best-effort and
/// must never take the client down either. Deterministically seeded from
/// `config.seed`. Throws std::runtime_error only when the server cannot
/// be reached at all.
[[nodiscard]] ChaosReport run_chaos(const LoadgenConfig& config);

/// Percentile summary of raw wall latencies (milliseconds).
[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> ms);

}  // namespace utilrisk::serve
