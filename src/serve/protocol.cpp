#include "serve/protocol.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "core/advisor.hpp"
#include "obs/json.hpp"
#include "verify/digest.hpp"

namespace utilrisk::serve {

namespace {

using obs::json::Value;

[[nodiscard]] double number_field(const Value& object, std::string_view key) {
  const Value* value = object.find(key);
  if (value == nullptr) {
    throw ProtocolError("missing field '" + std::string(key) + "'");
  }
  if (!value->is_number()) {
    throw ProtocolError("field '" + std::string(key) + "' must be a number");
  }
  return value->as_number();
}

[[nodiscard]] double number_field_or(const Value& object,
                                     std::string_view key,
                                     double fallback) {
  const Value* value = object.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) {
    throw ProtocolError("field '" + std::string(key) + "' must be a number");
  }
  return value->as_number();
}

[[nodiscard]] const std::string& string_field(const Value& object,
                                              std::string_view key) {
  const Value* value = object.find(key);
  if (value == nullptr || !value->is_string()) {
    throw ProtocolError("missing string field '" + std::string(key) + "'");
  }
  return value->as_string();
}

void require_finite(double value, const char* what) {
  if (!std::isfinite(value)) {
    throw ProtocolError(std::string(what) + " must be finite");
  }
}

/// Input-derived text that gets echoed back in an error message: clamp
/// to printable ASCII and a short length so a hostile frame cannot smuggle
/// control bytes or megabytes into the server's response stream.
[[nodiscard]] std::string sanitize_echo(std::string_view text) {
  constexpr std::size_t kMaxEcho = 48;
  std::string out;
  out.reserve(std::min(text.size(), kMaxEcho) + 3);
  for (char c : text) {
    if (out.size() >= kMaxEcho) {
      out += "...";
      break;
    }
    const auto byte = static_cast<unsigned char>(c);
    out.push_back(byte >= 0x20 && byte < 0x7f ? c : '?');
  }
  return out;
}

/// Strict UTF-8 well-formedness check (RFC 3629: no overlongs, no
/// surrogates, nothing above U+10FFFF). The NDJSON protocol is a JSON
/// protocol, and JSON text is UTF-8 — arbitrary byte salad is rejected
/// before the parser ever sees it.
[[nodiscard]] bool is_valid_utf8(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size()) {
    const auto byte = static_cast<unsigned char>(text[i]);
    std::size_t length = 0;
    std::uint32_t code = 0;
    if (byte < 0x80) {
      ++i;
      continue;
    } else if ((byte & 0xE0) == 0xC0) {
      length = 2;
      code = byte & 0x1Fu;
    } else if ((byte & 0xF0) == 0xE0) {
      length = 3;
      code = byte & 0x0Fu;
    } else if ((byte & 0xF8) == 0xF0) {
      length = 4;
      code = byte & 0x07u;
    } else {
      return false;  // continuation byte or 0xFE/0xFF at sequence start
    }
    if (i + length > text.size()) return false;
    for (std::size_t k = 1; k < length; ++k) {
      const auto cont = static_cast<unsigned char>(text[i + k]);
      if ((cont & 0xC0) != 0x80) return false;
      code = (code << 6) | (cont & 0x3Fu);
    }
    static constexpr std::uint32_t kMinForLength[5] = {0, 0, 0x80, 0x800,
                                                       0x10000};
    if (code < kMinForLength[length]) return false;          // overlong
    if (code >= 0xD800 && code <= 0xDFFF) return false;      // surrogate
    if (code > 0x10FFFF) return false;                       // beyond range
    i += length;
  }
  return true;
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::Accepted: return "accepted";
    case Status::Rejected: return "rejected";
    case Status::Busy: return "busy";
    case Status::Error: return "error";
    case Status::Shed: return "shed";
    case Status::Advice: return "advice";
  }
  return "?";
}

namespace {

/// Shared routing-field parsing (tenant + scenario) for both verbs.
void parse_routing_fields(const Value& doc, Request& request) {
  const double tenant = number_field_or(doc, "tenant", 0.0);
  if (tenant < 0.0 || tenant != std::floor(tenant) ||
      tenant > static_cast<double>(UINT32_MAX)) {
    throw ProtocolError("'tenant' must be an integer in [0, 2^32)");
  }
  request.tenant = static_cast<std::uint32_t>(tenant);
  if (const Value* scenario = doc.find("scenario"); scenario != nullptr) {
    if (!scenario->is_string()) {
      throw ProtocolError("'scenario' must be a string");
    }
    constexpr std::size_t kMaxScenarioBytes = 128;
    if (scenario->as_string().size() > kMaxScenarioBytes) {
      throw ProtocolError("'scenario' exceeds " +
                          std::to_string(kMaxScenarioBytes) + " bytes");
    }
    request.scenario = scenario->as_string();
  }
}

/// {"type":"advise",...}: correlation id + routing + optional preferences.
[[nodiscard]] Request parse_advise(const Value& doc) {
  Request request;
  request.kind = RequestKind::Advise;
  request.id = static_cast<std::uint64_t>(number_field(doc, "id"));
  parse_routing_fields(doc, request);
  if (const Value* weights = doc.find("weights"); weights != nullptr) {
    if (!weights->is_array() || weights->as_array().size() != 4) {
      throw ProtocolError("'weights' must be an array of 4 numbers "
                          "(wait, SLA, reliability, profitability)");
    }
    for (std::size_t o = 0; o < 4; ++o) {
      const Value& entry = weights->as_array()[o];
      if (!entry.is_number()) {
        throw ProtocolError("'weights' must be an array of 4 numbers "
                            "(wait, SLA, reliability, profitability)");
      }
      request.weights[o] = entry.as_number();
    }
  }
  request.risk_aversion = number_field_or(doc, "risk_aversion", 0.5);
  // The structured advisor-config rules (finite weights in [0,1] summing
  // to 1, finite non-negative risk aversion) become protocol errors.
  core::AdvisorConfig scoring;
  scoring.objective_weights = request.weights;
  scoring.risk_aversion = request.risk_aversion;
  try {
    scoring.validate();
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(e.what());
  }
  return request;
}

}  // namespace

Request parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    throw ProtocolError("request exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes");
  }
  if (!is_valid_utf8(line)) {
    throw ProtocolError("request is not valid UTF-8");
  }
  Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const obs::json::ParseError& e) {
    throw ProtocolError(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ProtocolError("request must be a JSON object");
  const std::string& type = string_field(doc, "type");
  if (type == "advise") return parse_advise(doc);
  if (type != "submit") {
    throw ProtocolError("unknown request type '" + sanitize_echo(type) +
                        "'");
  }

  Request request;
  request.id = static_cast<std::uint64_t>(number_field(doc, "id"));
  request.submit_time = number_field_or(doc, "t", 0.0);
  const double procs = number_field(doc, "procs");
  if (procs < 1.0 || procs != std::floor(procs)) {
    throw ProtocolError("'procs' must be a positive integer");
  }
  request.procs = static_cast<std::uint32_t>(procs);
  request.runtime = number_field(doc, "runtime");
  request.estimate = number_field_or(doc, "estimate", request.runtime);
  request.deadline = number_field(doc, "deadline");
  request.budget = number_field(doc, "budget");
  request.penalty_rate = number_field_or(doc, "penalty", 0.0);
  request.deadline_ms = number_field_or(doc, "deadline_ms", 0.0);
  parse_routing_fields(doc, request);
  if (const Value* urgency = doc.find("urgency"); urgency != nullptr) {
    // is_string first: as_string() on a non-string throws a plain
    // runtime_error, which would escape the server's ProtocolError
    // firewall and kill the connection (or the stdio loop) instead of
    // producing an `error` response.
    if (!urgency->is_string()) {
      throw ProtocolError("'urgency' must be \"high\" or \"low\"");
    }
    const std::string& name = urgency->as_string();
    if (name == "high") {
      request.urgency = workload::Urgency::High;
    } else if (name == "low") {
      request.urgency = workload::Urgency::Low;
    } else {
      throw ProtocolError("'urgency' must be \"high\" or \"low\"");
    }
  }

  require_finite(request.submit_time, "'t'");
  if (request.submit_time < 0.0) throw ProtocolError("'t' must be >= 0");
  require_finite(request.runtime, "'runtime'");
  if (request.runtime <= 0.0) throw ProtocolError("'runtime' must be > 0");
  require_finite(request.estimate, "'estimate'");
  if (request.estimate <= 0.0) throw ProtocolError("'estimate' must be > 0");
  require_finite(request.deadline, "'deadline'");
  if (request.deadline <= 0.0) throw ProtocolError("'deadline' must be > 0");
  require_finite(request.budget, "'budget'");
  if (request.budget < 0.0) throw ProtocolError("'budget' must be >= 0");
  require_finite(request.penalty_rate, "'penalty'");
  if (request.penalty_rate < 0.0) {
    throw ProtocolError("'penalty' must be >= 0");
  }
  require_finite(request.deadline_ms, "'deadline_ms'");
  if (request.deadline_ms < 0.0) {
    throw ProtocolError("'deadline_ms' must be >= 0");
  }
  return request;
}

namespace {

/// Shortest-round-trip number append (std::to_chars): the encoders sit on
/// the journal's write-ahead path, where ostringstream's locale machinery
/// is measurable per-request overhead.
template <typename T>
void append_number(std::string& out, T value) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

}  // namespace

std::string encode_request(const Request& request) {
  std::string out;
  out.reserve(192);
  encode_request_to(out, request);
  return out;
}

namespace {

/// Tenant/scenario tail shared by both request encodings; emitted only
/// when set so legacy encodings stay byte-identical.
void append_routing_fields(std::string& out, const Request& request) {
  if (request.tenant != 0) {
    out += ",\"tenant\":";
    append_number(out, request.tenant);
  }
  if (!request.scenario.empty()) {
    out += ",\"scenario\":";
    std::ostringstream escaped;
    obs::json::write_escaped(escaped, request.scenario);
    out += escaped.str();
  }
}

}  // namespace

void encode_request_to(std::string& out, const Request& request) {
  if (request.kind == RequestKind::Advise) {
    out += "{\"type\":\"advise\",\"id\":";
    append_number(out, request.id);
    out += ",\"weights\":[";
    for (std::size_t o = 0; o < request.weights.size(); ++o) {
      if (o != 0) out += ',';
      append_number(out, request.weights[o]);
    }
    out += "],\"risk_aversion\":";
    append_number(out, request.risk_aversion);
    append_routing_fields(out, request);
    out += '}';
    return;
  }
  // Hand-rolled single line: obs::json::dump pretty-prints across lines,
  // and the protocol is strictly one document per line.
  out += "{\"type\":\"submit\",\"id\":";
  append_number(out, request.id);
  out += ",\"t\":";
  append_number(out, request.submit_time);
  out += ",\"procs\":";
  append_number(out, request.procs);
  out += ",\"runtime\":";
  append_number(out, request.runtime);
  out += ",\"estimate\":";
  append_number(out, request.estimate);
  out += ",\"deadline\":";
  append_number(out, request.deadline);
  out += ",\"budget\":";
  append_number(out, request.budget);
  out += ",\"penalty\":";
  append_number(out, request.penalty_rate);
  out += ",\"urgency\":\"";
  out += workload::to_string(request.urgency);
  out += '"';
  // Only when set, so pre-deadline encodings stay byte-identical.
  if (request.deadline_ms > 0.0) {
    out += ",\"deadline_ms\":";
    append_number(out, request.deadline_ms);
  }
  // Same conditional-emission rule for the routing fields: unattributed
  // single-tenant traffic — including every pre-shard journal — encodes
  // byte-identically to the legacy wire format.
  append_routing_fields(out, request);
  out += '}';
}

Response parse_response(std::string_view line) {
  Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const obs::json::ParseError& e) {
    throw ProtocolError(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ProtocolError("response must be a JSON object");

  Response response;
  response.id = static_cast<std::uint64_t>(number_field(doc, "id"));
  const std::string& status = string_field(doc, "status");
  if (status == "accepted") {
    response.status = Status::Accepted;
  } else if (status == "rejected") {
    response.status = Status::Rejected;
  } else if (status == "busy") {
    response.status = Status::Busy;
  } else if (status == "error") {
    response.status = Status::Error;
  } else if (status == "shed") {
    response.status = Status::Shed;
  } else if (status == "advice") {
    response.status = Status::Advice;
  } else {
    throw ProtocolError("unknown response status '" + sanitize_echo(status) +
                        "'");
  }
  response.price = number_field_or(doc, "price", 0.0);
  response.risk = number_field_or(doc, "risk", 0.0);
  response.virtual_time = number_field_or(doc, "t", 0.0);
  response.retry_after_ms = number_field_or(doc, "retry_after_ms", 0.0);
  response.tenant =
      static_cast<std::uint32_t>(number_field_or(doc, "tenant", 0.0));
  response.shard = static_cast<int>(number_field_or(doc, "shard", -1.0));
  if (const Value* message = doc.find("message");
      message != nullptr && message->is_string()) {
    response.message = message->as_string();
  }
  if (response.status == Status::Advice) {
    auto body = std::make_shared<AdviceBody>();
    body->active = string_field(doc, "active");
    body->recommended = string_field(doc, "recommended");
    body->decided =
        static_cast<std::uint64_t>(number_field_or(doc, "decided", 0.0));
    body->evaluations =
        static_cast<std::uint64_t>(number_field_or(doc, "evaluations", 0.0));
    body->switches =
        static_cast<std::uint64_t>(number_field_or(doc, "switches", 0.0));
    body->samples =
        static_cast<std::uint64_t>(number_field_or(doc, "samples", 0.0));
    const auto read_array4 = [&doc](std::string_view key,
                                    std::array<double, 4>& into) {
      const Value* value = doc.find(key);
      if (value == nullptr) return;
      if (!value->is_array() || value->as_array().size() != 4) {
        throw ProtocolError("field '" + std::string(key) +
                            "' must be an array of 4 numbers");
      }
      for (std::size_t o = 0; o < 4; ++o) {
        const Value& entry = value->as_array()[o];
        if (!entry.is_number()) {
          throw ProtocolError("field '" + std::string(key) +
                              "' must be an array of 4 numbers");
        }
        into[o] = entry.as_number();
      }
    };
    read_array4("estimate_mean", body->estimate_mean);
    read_array4("estimate_stddev", body->estimate_stddev);
    if (const Value* ranked = doc.find("ranked"); ranked != nullptr) {
      if (!ranked->is_array()) {
        throw ProtocolError("field 'ranked' must be an array");
      }
      for (const Value& entry : ranked->as_array()) {
        if (!entry.is_object()) {
          throw ProtocolError("'ranked' entries must be objects");
        }
        RankedPolicyWire row;
        row.policy = string_field(entry, "policy");
        row.score = number_field(entry, "score");
        row.performance = number_field(entry, "performance");
        row.volatility = number_field(entry, "volatility");
        body->ranked.push_back(std::move(row));
      }
    }
    if (const Value* digest = doc.find("digest");
        digest != nullptr && digest->is_string()) {
      body->digest = digest->as_string();
    }
    response.advice = std::move(body);
  }
  return response;
}

std::string encode_response(const Response& response) {
  std::string out;
  out.reserve(128);
  out += "{\"id\":";
  append_number(out, response.id);
  out += ",\"status\":\"";
  out += to_string(response.status);
  out += '"';
  switch (response.status) {
    case Status::Accepted:
    case Status::Rejected:
      out += ",\"price\":";
      append_number(out, response.price);
      out += ",\"risk\":";
      append_number(out, response.risk);
      out += ",\"t\":";
      append_number(out, response.virtual_time);
      // Conditional like the request side: unattributed/unsharded
      // responses stay byte-identical to the legacy encoding.
      if (response.tenant != 0) {
        out += ",\"tenant\":";
        append_number(out, response.tenant);
      }
      if (response.shard >= 0) {
        out += ",\"shard\":";
        append_number(out, response.shard);
      }
      break;
    case Status::Busy:
      out += ",\"retry_after_ms\":";
      append_number(out, response.retry_after_ms);
      break;
    case Status::Shed:
    case Status::Error: {
      out += ",\"message\":";
      std::ostringstream escaped;
      obs::json::write_escaped(escaped, response.message);
      out += escaped.str();
      break;
    }
    case Status::Advice: {
      const auto append_string = [&out](std::string_view text) {
        std::ostringstream escaped;
        obs::json::write_escaped(escaped, text);
        out += escaped.str();
      };
      const auto append_array4 = [&out](const std::array<double, 4>& values) {
        out += '[';
        for (std::size_t o = 0; o < values.size(); ++o) {
          if (o != 0) out += ',';
          append_number(out, values[o]);
        }
        out += ']';
      };
      static const AdviceBody kEmptyAdvice;
      const AdviceBody& body =
          response.advice != nullptr ? *response.advice : kEmptyAdvice;
      out += ",\"active\":";
      append_string(body.active);
      out += ",\"recommended\":";
      append_string(body.recommended);
      out += ",\"decided\":";
      append_number(out, body.decided);
      out += ",\"evaluations\":";
      append_number(out, body.evaluations);
      out += ",\"switches\":";
      append_number(out, body.switches);
      out += ",\"samples\":";
      append_number(out, body.samples);
      out += ",\"estimate_mean\":";
      append_array4(body.estimate_mean);
      out += ",\"estimate_stddev\":";
      append_array4(body.estimate_stddev);
      out += ",\"ranked\":[";
      for (std::size_t r = 0; r < body.ranked.size(); ++r) {
        if (r != 0) out += ',';
        out += "{\"policy\":";
        append_string(body.ranked[r].policy);
        out += ",\"score\":";
        append_number(out, body.ranked[r].score);
        out += ",\"performance\":";
        append_number(out, body.ranked[r].performance);
        out += ",\"volatility\":";
        append_number(out, body.ranked[r].volatility);
        out += '}';
      }
      out += "],\"digest\":";
      append_string(body.digest);
      if (response.tenant != 0) {
        out += ",\"tenant\":";
        append_number(out, response.tenant);
      }
      if (response.shard >= 0) {
        out += ",\"shard\":";
        append_number(out, response.shard);
      }
      break;
    }
  }
  out += '}';
  return out;
}

workload::Job to_job(const Request& request, workload::JobId job_id,
                     double submit_time) {
  workload::Job job;
  job.id = job_id;
  job.submit_time = submit_time;
  job.actual_runtime = request.runtime;
  job.estimated_runtime = request.estimate;
  job.procs = request.procs;
  job.deadline_duration = request.deadline;
  job.budget = request.budget;
  job.penalty_rate = request.penalty_rate;
  job.urgency = request.urgency;
  job.tenant = request.tenant;
  return job;
}

Request from_job(const workload::Job& job, std::uint64_t id) {
  Request request;
  request.id = id;
  request.submit_time = job.submit_time;
  request.procs = job.procs;
  request.runtime = job.actual_runtime;
  request.estimate = job.estimated_runtime;
  request.deadline = job.deadline_duration;
  request.budget = job.budget;
  request.penalty_rate = job.penalty_rate;
  request.urgency = job.urgency;
  request.tenant = job.tenant;
  return request;
}

std::uint64_t decision_hash(const Response& response) {
  verify::DigestStream stream;
  stream.put_u64(response.id);
  stream.put_byte(static_cast<std::uint8_t>(response.status));
  stream.put_double(response.price);
  // Tenant attribution, only when present: legacy single-tenant sessions
  // keep their historical digests, while two decision streams differing
  // only in tenant assignment now digest apart (the PR-8 `zipf` router
  // bug class). The shard hint is deliberately NOT folded — the merged
  // digest must be invariant under shard count and routing.
  if (response.tenant != 0) stream.put_u64(response.tenant);
  return stream.value();
}

std::uint64_t routing_key(const Request& request) {
  if (request.tenant != 0) return request.tenant;
  if (request.scenario.empty()) return 0;
  verify::DigestStream stream;
  stream.put_string(request.scenario);
  return stream.value();
}

}  // namespace utilrisk::serve
