#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "obs/json.hpp"
#include "verify/digest.hpp"

namespace utilrisk::serve {

namespace {

using obs::json::Value;

[[nodiscard]] double number_field(const Value& object, std::string_view key) {
  const Value* value = object.find(key);
  if (value == nullptr) {
    throw ProtocolError("missing field '" + std::string(key) + "'");
  }
  if (!value->is_number()) {
    throw ProtocolError("field '" + std::string(key) + "' must be a number");
  }
  return value->as_number();
}

[[nodiscard]] double number_field_or(const Value& object,
                                     std::string_view key,
                                     double fallback) {
  const Value* value = object.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) {
    throw ProtocolError("field '" + std::string(key) + "' must be a number");
  }
  return value->as_number();
}

[[nodiscard]] const std::string& string_field(const Value& object,
                                              std::string_view key) {
  const Value* value = object.find(key);
  if (value == nullptr || !value->is_string()) {
    throw ProtocolError("missing string field '" + std::string(key) + "'");
  }
  return value->as_string();
}

void require_finite(double value, const char* what) {
  if (!std::isfinite(value)) {
    throw ProtocolError(std::string(what) + " must be finite");
  }
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::Accepted: return "accepted";
    case Status::Rejected: return "rejected";
    case Status::Busy: return "busy";
    case Status::Error: return "error";
  }
  return "?";
}

Request parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    throw ProtocolError("request exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes");
  }
  Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const obs::json::ParseError& e) {
    throw ProtocolError(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ProtocolError("request must be a JSON object");
  if (string_field(doc, "type") != "submit") {
    throw ProtocolError("unknown request type '" +
                        string_field(doc, "type") + "'");
  }

  Request request;
  request.id = static_cast<std::uint64_t>(number_field(doc, "id"));
  request.submit_time = number_field_or(doc, "t", 0.0);
  const double procs = number_field(doc, "procs");
  if (procs < 1.0 || procs != std::floor(procs)) {
    throw ProtocolError("'procs' must be a positive integer");
  }
  request.procs = static_cast<std::uint32_t>(procs);
  request.runtime = number_field(doc, "runtime");
  request.estimate = number_field_or(doc, "estimate", request.runtime);
  request.deadline = number_field(doc, "deadline");
  request.budget = number_field(doc, "budget");
  request.penalty_rate = number_field_or(doc, "penalty", 0.0);
  if (const Value* urgency = doc.find("urgency"); urgency != nullptr) {
    const std::string& name = urgency->as_string();
    if (name == "high") {
      request.urgency = workload::Urgency::High;
    } else if (name == "low") {
      request.urgency = workload::Urgency::Low;
    } else {
      throw ProtocolError("'urgency' must be \"high\" or \"low\"");
    }
  }

  require_finite(request.submit_time, "'t'");
  if (request.submit_time < 0.0) throw ProtocolError("'t' must be >= 0");
  require_finite(request.runtime, "'runtime'");
  if (request.runtime <= 0.0) throw ProtocolError("'runtime' must be > 0");
  require_finite(request.estimate, "'estimate'");
  if (request.estimate <= 0.0) throw ProtocolError("'estimate' must be > 0");
  require_finite(request.deadline, "'deadline'");
  if (request.deadline <= 0.0) throw ProtocolError("'deadline' must be > 0");
  require_finite(request.budget, "'budget'");
  if (request.budget < 0.0) throw ProtocolError("'budget' must be >= 0");
  require_finite(request.penalty_rate, "'penalty'");
  if (request.penalty_rate < 0.0) {
    throw ProtocolError("'penalty' must be >= 0");
  }
  return request;
}

std::string encode_request(const Request& request) {
  // Hand-rolled single line: obs::json::dump pretty-prints across lines,
  // and the protocol is strictly one document per line.
  std::ostringstream out;
  out.precision(17);
  out << "{\"type\":\"submit\",\"id\":" << request.id
      << ",\"t\":" << request.submit_time << ",\"procs\":" << request.procs
      << ",\"runtime\":" << request.runtime
      << ",\"estimate\":" << request.estimate
      << ",\"deadline\":" << request.deadline
      << ",\"budget\":" << request.budget
      << ",\"penalty\":" << request.penalty_rate << ",\"urgency\":\""
      << workload::to_string(request.urgency) << "\"}";
  return out.str();
}

Response parse_response(std::string_view line) {
  Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const obs::json::ParseError& e) {
    throw ProtocolError(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ProtocolError("response must be a JSON object");

  Response response;
  response.id = static_cast<std::uint64_t>(number_field(doc, "id"));
  const std::string& status = string_field(doc, "status");
  if (status == "accepted") {
    response.status = Status::Accepted;
  } else if (status == "rejected") {
    response.status = Status::Rejected;
  } else if (status == "busy") {
    response.status = Status::Busy;
  } else if (status == "error") {
    response.status = Status::Error;
  } else {
    throw ProtocolError("unknown response status '" + status + "'");
  }
  response.price = number_field_or(doc, "price", 0.0);
  response.risk = number_field_or(doc, "risk", 0.0);
  response.virtual_time = number_field_or(doc, "t", 0.0);
  response.retry_after_ms = number_field_or(doc, "retry_after_ms", 0.0);
  if (const Value* message = doc.find("message"); message != nullptr) {
    response.message = message->as_string();
  }
  return response;
}

std::string encode_response(const Response& response) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"id\":" << response.id << ",\"status\":\""
      << to_string(response.status) << '"';
  switch (response.status) {
    case Status::Accepted:
    case Status::Rejected:
      out << ",\"price\":" << response.price << ",\"risk\":" << response.risk
          << ",\"t\":" << response.virtual_time;
      break;
    case Status::Busy:
      out << ",\"retry_after_ms\":" << response.retry_after_ms;
      break;
    case Status::Error: {
      out << ",\"message\":";
      std::ostringstream escaped;
      obs::json::write_escaped(escaped, response.message);
      out << escaped.str();
      break;
    }
  }
  out << '}';
  return out.str();
}

workload::Job to_job(const Request& request, workload::JobId job_id,
                     double submit_time) {
  workload::Job job;
  job.id = job_id;
  job.submit_time = submit_time;
  job.actual_runtime = request.runtime;
  job.estimated_runtime = request.estimate;
  job.procs = request.procs;
  job.deadline_duration = request.deadline;
  job.budget = request.budget;
  job.penalty_rate = request.penalty_rate;
  job.urgency = request.urgency;
  return job;
}

Request from_job(const workload::Job& job, std::uint64_t id) {
  Request request;
  request.id = id;
  request.submit_time = job.submit_time;
  request.procs = job.procs;
  request.runtime = job.actual_runtime;
  request.estimate = job.estimated_runtime;
  request.deadline = job.deadline_duration;
  request.budget = job.budget;
  request.penalty_rate = job.penalty_rate;
  request.urgency = job.urgency;
  return request;
}

std::uint64_t decision_hash(const Response& response) {
  verify::DigestStream stream;
  stream.put_u64(response.id);
  stream.put_byte(static_cast<std::uint8_t>(response.status));
  stream.put_double(response.price);
  return stream.value();
}

}  // namespace utilrisk::serve
