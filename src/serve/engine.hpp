// Admission engine: the long-lived simulation backend of `utilrisk serve`.
//
// Turns the offline ComputingService + policy/economy engine into an
// online decision maker. One dedicated engine thread owns a live
// Simulator and ComputingService for the whole server session; IO threads
// hand it requests through a bounded queue (bounded_queue.hpp) and the
// engine coalesces whatever is in flight into a batch, advances the
// virtual clock tick by tick, and answers each request with the policy's
// admission decision, the quoted price and a load-risk index.
//
// Determinism (docs/SERVING.md): each request carries its own virtual
// submission instant `t`; the engine clamps it monotonically
// (virtual_now = max(virtual_now, t)) and the policy decides from
// simulation state alone, so decisions are a pure function of the request
// sequence — *not* of wall-clock timing, batch boundaries or worker
// count. A seeded closed-loop client therefore gets bit-identical
// decisions on every run, digest-checked with verify::UnorderedDigest.
// Interleaving across concurrent connections is the one nondeterminism
// the engine cannot remove; single-connection (or replayed) streams are
// fully reproducible.
//
// Tenant isolation: each routing key (serve/protocol.hpp routing_key —
// the tenant, or the scenario hash, or 0 for legacy traffic) owns its own
// Simulator/ComputingService/virtual clock, created lazily on first use.
// A decision therefore depends only on the prior requests of its *own*
// key, which is what makes the sharded server's merged decision digest
// invariant under shard count and request routing (serve/shard.hpp):
// however tenants are partitioned across engines, every tenant's decision
// stream is bit-identical. Key-0 traffic uses a single state, so legacy
// single-tenant sessions behave exactly as before.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "advise/advisor_engine.hpp"
#include "policy/factory.hpp"
#include "policy/policy.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "service/computing_service.hpp"
#include "sim/simulator.hpp"
#include "verify/digest.hpp"

namespace utilrisk::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace utilrisk::obs

namespace utilrisk::serve {

struct EngineConfig {
  policy::PolicyKind policy = policy::PolicyKind::Libra;
  economy::EconomicModel model = economy::EconomicModel::CommodityMarket;
  cluster::MachineConfig machine;  ///< node_count defaults per cluster/node.hpp
  economy::PricingParams pricing;
  policy::FirstRewardParams first_reward;
  /// Bounded admission queue capacity; a full queue is backpressure.
  std::size_t queue_capacity = 1024;
  /// Max requests coalesced into one simulation tick.
  std::size_t max_batch = 64;
  /// Hint clients receive with a `busy` response.
  double retry_after_ms = 50.0;
  /// Write-ahead journal directory. Empty = journaling off. When set, the
  /// constructor first replays any surviving journal from this directory
  /// (deterministic crash recovery, digest-verified against the last tick
  /// record) and then appends the new session to a fresh segment.
  std::string journal_dir;
  FsyncPolicy fsync = FsyncPolicy::Batch;
  std::size_t journal_segment_records = 4096;
  /// Group-commit window for FsyncPolicy::Batch: under sustained backlog
  /// the engine fsyncs at most once per this many milliseconds, holding
  /// the covered ticks' completions until the sync (no client ever learns
  /// a decision before it is durable). When the queue empties the engine
  /// syncs immediately, so an idle or closed-loop client never waits out
  /// the window.
  double group_commit_ms = 8.0;
  /// Brownout high watermark as a fraction of queue capacity. When the
  /// queue is at or above `watermark * capacity`, submit() fast-fails
  /// (busy / retry-after) instead of queueing — the engine stops building
  /// a backlog it cannot decide within anyone's patience. 1.0 disables
  /// brownout (only a completely full queue pushes back).
  double brownout_watermark = 1.0;
  /// Optional registry for the serve.* instruments (may be null).
  obs::MetricsRegistry* metrics = nullptr;
  sim::LogLevel log_level = sim::LogLevel::Off;
  /// Which shard this engine is in a sharded deployment (-1 = unsharded).
  /// Stamped on every response's `shard` hint; never digested.
  int shard_index = -1;
  /// Online risk advisor (docs/ADVISOR.md). The observe path (rolling
  /// window + live estimators) is always on; scheduled evaluations run
  /// when advisor.scheduled() and live policy switching additionally
  /// needs advisor.auto_switch. Switch points are per routing key (every
  /// advisor.effective_every() decided requests of that key's own
  /// subsequence), so they reproduce identically under replay, shard
  /// count and interleaving.
  advise::OnlineAdvisorConfig advisor;
};

/// Delivered on the engine thread once the decision for a request exists.
using Completion = std::function<void(const Response&)>;

/// Session totals, snapshotted at drain time.
struct EngineStats {
  std::uint64_t processed = 0;  ///< requests that reached the engine
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  /// Jobs whose SLA settled fulfilled/violated by the time of the drain.
  std::uint64_t fulfilled = 0;
  std::uint64_t violated = 0;
  std::uint64_t batches = 0;
  std::uint64_t events_dispatched = 0;
  /// Requests dropped unsimulated because their `deadline_ms` decision
  /// budget expired in the queue (wall-clock artefact; not digested).
  std::uint64_t shed = 0;
  /// Submissions fast-failed by the brownout high watermark.
  std::uint64_t brownout = 0;
  /// `advise` protocol queries answered (read-only; never digested).
  std::uint64_t advise_queries = 0;
  /// Scheduled advisor evaluations at switch points.
  std::uint64_t advisor_evaluations = 0;
  /// Live policy switches performed (advise-auto mode).
  std::uint64_t policy_switches = 0;
  double virtual_end_time = 0.0;
  /// Order-independent digest over (request id, decision, price, tenant)
  /// — equal across runs iff the admission decisions were identical.
  std::string decision_digest;
  /// The digest's raw accumulator — mergeable across shards
  /// (verify::UnorderedDigest::merge) into the combined session digest.
  verify::UnorderedDigest digest;
};

/// Outcome of the constructor's journal replay (all zeros / empty when no
/// journal directory was configured or the directory held no records).
struct RecoveryStats {
  bool attempted = false;    ///< a journal directory was configured
  std::uint64_t replayed = 0;  ///< journalled requests re-decided
  /// True when the replayed decision digest matched the digest recorded
  /// in the journal's last tick record (vacuously true when the journal
  /// held no tick). A mismatch throws from the constructor instead — a
  /// server must never serve on top of a divergent recovery.
  bool digest_match = true;
  std::string journal_digest;   ///< digest the pre-crash process recorded
  std::string replayed_digest;  ///< digest after replay, at the same point
  std::uint64_t segments = 0;
  std::uint64_t truncated_records = 0;  ///< torn-tail records dropped
  std::uint64_t truncated_bytes = 0;
};

/// The surface the server front end (server.hpp) needs from a decision
/// backend. AdmissionEngine is the single-engine implementation; the
/// sharded router (serve/shard.hpp ShardedEngine) fans the same calls out
/// across N engines, so the transport code is shard-agnostic.
class EngineApi {
 public:
  virtual ~EngineApi() = default;

  /// Launches the decision thread(s). Idempotent.
  virtual void start() = 0;

  /// Enqueues a request; `completion` runs on an engine thread with the
  /// decision. Returns false on backpressure (bounded queue full or
  /// draining) — the caller answers `busy` itself. Thread-safe.
  [[nodiscard]] virtual bool submit(const Request& request,
                                    Completion completion) = 0;

  /// The canonical backpressure response for `request`.
  [[nodiscard]] virtual Response make_busy_response(
      const Request& request) const = 0;

  /// Graceful shutdown: stop accepting, answer everything queued, settle
  /// the simulation(s), return session totals. Idempotent.
  virtual EngineStats drain() = 0;
};

class AdmissionEngine : public EngineApi {
 public:
  /// Constructs the engine; when `config.journal_dir` is set, loads and
  /// replays the surviving journal first (see RecoveryStats) and opens a
  /// fresh journal segment for this session. Throws JournalError when the
  /// journal is unreadable/corrupt or the replayed decision digest
  /// diverges from the journal's own record of the pre-crash digest.
  explicit AdmissionEngine(const EngineConfig& config);
  /// Joins the engine thread; pending completions fire first (drain() is
  /// the polite path — the destructor is the safety net).
  ~AdmissionEngine();

  AdmissionEngine(const AdmissionEngine&) = delete;
  AdmissionEngine& operator=(const AdmissionEngine&) = delete;

  /// Launches the engine thread. Idempotent.
  void start() override;

  /// Enqueues a request; `completion` runs on the engine thread with the
  /// decision. Returns false when the bounded queue is full or the engine
  /// is draining — the caller answers `busy` itself (make_busy_response
  /// builds the canonical one). Thread-safe.
  [[nodiscard]] bool submit(const Request& request,
                            Completion completion) override;

  /// The canonical backpressure response for `request`.
  [[nodiscard]] Response make_busy_response(
      const Request& request) const override;

  /// Graceful shutdown: stop accepting, process everything already
  /// queued (every completion fires), run the simulation to quiescence so
  /// accepted jobs settle, and return the session totals. Idempotent —
  /// later calls return the same stats.
  EngineStats drain() override;

  /// Test hook: while paused the engine consumes nothing from the queue
  /// (the hold gate lives inside the queue's pop, so pausing is exact
  /// regardless of where the engine thread currently blocks) and the
  /// queue observably fills — the backpressure tests use this to force
  /// `busy` deterministically. Draining resumes automatically.
  void pause();
  void resume();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const {
    return queue_.capacity();
  }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  /// Crash-recovery outcome (defaults when no journal was configured).
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }
  /// The running decision digest's raw accumulator. Only safe before
  /// start() (e.g. right after a journal recovery, for the sharded
  /// recovery banner) or after drain() — it is engine-thread state.
  [[nodiscard]] const verify::UnorderedDigest& decision_digest_snapshot()
      const {
    return decision_digest_;
  }
  /// Journal write totals for this session (zeros when journaling is off).
  [[nodiscard]] JournalStats journal_stats() const {
    return journal_ != nullptr ? journal_->stats() : JournalStats{};
  }

 private:
  struct Pending {
    Request request;
    Completion completion;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  /// One routing key's isolated simulation world (see the header comment:
  /// isolation per key is what makes sharded digests merge-invariant).
  struct TenantState {
    sim::Simulator simulator;
    std::unique_ptr<service::ComputingService> service;
    double virtual_now = 0.0;
    workload::JobId next_job_id = 1;
    /// Processor-seconds of accepted work, totalled at admission;
    /// together with Policy::delivered_proc_seconds() this yields the
    /// outstanding backlog behind the risk index in O(1).
    double accepted_work = 0.0;
    /// Outcomes settled under *previous* policies of this key: a live
    /// switch rebuilds the ComputingService, so the pre-switch totals are
    /// folded in here first (all ObjectiveInputs fields are additive).
    /// Live estimates and drain totals = settled + the current service's
    /// collectors.
    core::ObjectiveInputs settled_inputs;
    std::uint64_t settled_fulfilled = 0;
    std::uint64_t settled_violated = 0;
  };

  void engine_loop();
  /// The pure decision path: clamp the virtual clock, simulate, digest,
  /// feed the advisor and act on its switch points. Everything wall-clock
  /// (queue-wait metrics, sheds, completions, journaling) lives outside
  /// so recovery replay and live serving share one code path and stay
  /// bit-identical.
  [[nodiscard]] Response decide(const Request& request);
  /// Answers a read-only `advise` query (never journalled or digested).
  [[nodiscard]] Response answer_advise(const Request& request);
  /// Executes a live policy switch for one key: quiesces the key's
  /// simulator, folds the old service's settled outcomes into the
  /// TenantState accumulators, rebuilds the service under the new policy,
  /// folds the switch event into the decision digest and (live sessions
  /// only — journal_ is null during recovery replay) journals it.
  void apply_policy_switch(std::uint64_t key, TenantState& state,
                           const advise::Evaluation& evaluation);
  void recover_from_journal();
  /// Lazily creates the isolated state for one routing key.
  [[nodiscard]] TenantState& state_for(std::uint64_t key);
  [[nodiscard]] double risk_index(const TenantState& state,
                                  const workload::Job& job) const;

  EngineConfig config_;
  BoundedQueue<Pending> queue_;

  // --- engine-thread-only state ----------------------------------------
  /// Isolated per-routing-key worlds (std::map: node-based, so TenantState
  /// — whose Simulator is not movable — stays pinned; deterministic
  /// iteration order for the drain pass). Key 0 is the legacy shared
  /// state for unattributed traffic.
  std::map<std::uint64_t, TenantState> tenants_;
  EngineStats stats_;
  verify::UnorderedDigest decision_digest_;
  /// Write-ahead journal (null when journaling is off). Engine-thread-only
  /// after construction.
  std::unique_ptr<JournalWriter> journal_;
  RecoveryStats recovery_;
  /// Online advisor: always constructed (the observe path is cheap and
  /// keeps `advise` queries answerable); scheduled evaluations and
  /// switching are gated by config_.advisor. Engine-thread-only.
  std::unique_ptr<advise::AdvisorEngine> advisor_;
  /// Switches performed this process lifetime (replay included), in
  /// decision order — recovery verifies the journalled switches are a
  /// prefix of these.
  std::vector<SwitchRecord> session_switches_;

  // --- cross-thread coordination ----------------------------------------
  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};
  std::mutex drain_mutex_;  ///< serialises drain() callers
  std::thread thread_;
  /// Brownout fast-fail threshold in queue slots (SIZE_MAX = disabled);
  /// counted on IO threads, so atomic (stats_ is engine-thread-only).
  std::size_t brownout_threshold_ = SIZE_MAX;
  std::atomic<std::uint64_t> brownout_count_{0};

  // serve.* instruments (null when metrics are absent/disabled).
  obs::Counter* requests_metric_ = nullptr;
  obs::Counter* accepted_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Counter* busy_metric_ = nullptr;
  obs::Counter* shed_metric_ = nullptr;
  obs::Counter* brownout_metric_ = nullptr;
  obs::Counter* advise_metric_ = nullptr;
  obs::Counter* evaluations_metric_ = nullptr;
  obs::Counter* switches_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Histogram* queue_wait_metric_ = nullptr;
  obs::Histogram* batch_size_metric_ = nullptr;
  obs::Histogram* tick_seconds_metric_ = nullptr;
};

}  // namespace utilrisk::serve
